type replacement = Cyclic | Lru_segments | Rice_iterative

type config = {
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  placement : Freelist.Policy.t;
  replacement : replacement;
  max_segment : int option;
}

type seg = {
  seg_name : string;
  descriptor : Descriptor.t;
  mutable backing_addr : int;
  mutable last_touch : int;
  mutable dead : bool;
}

type id = int

type t = {
  cfg : config;
  allocator : Freelist.Allocator.t;
  mutable segs : seg array;
  mutable count : int;
  mutable backing_frontier : int;
  mutable rotor : int;  (* cyclic / Rice sweep position *)
  mutable tick : int;
  mutable segment_faults : int;
  mutable evictions : int;
  mutable writebacks : int;
  space_time : Metrics.Space_time.t;
  timeline : Metrics.Timeline.t;
  obs : Obs.Sink.t;
  tracing : bool;
}

let create ?(obs = Obs.Sink.null) cfg =
  let core_words = Memstore.Level.size cfg.core in
  {
    cfg;
    (* The core allocator shares our sink and clock, so placement-level
       alloc/free/split/coalesce events interleave with segment events. *)
    allocator =
      Freelist.Allocator.create ~obs
        ~clock:(Memstore.Level.clock cfg.core)
        (Memstore.Level.physical cfg.core)
        ~base:0 ~len:core_words ~policy:cfg.placement;
    segs = [||];
    count = 0;
    backing_frontier = 0;
    rotor = 0;
    tick = 0;
    segment_faults = 0;
    evictions = 0;
    writebacks = 0;
    space_time = Metrics.Space_time.create ();
    timeline = Metrics.Timeline.create ();
    obs;
    tracing = Obs.Sink.is_active obs;
  }

let emit t kind =
  Obs.Sink.emit t.obs
    (Obs.Event.make ~t_us:(Sim.Clock.now (Memstore.Level.clock t.cfg.core)) kind)

(* Run [f], charging the simulated time it takes to the space-time
   product at the current occupancy. *)
let timed t state f =
  let clock = Memstore.Level.clock t.cfg.core in
  let words = Freelist.Allocator.live_words t.allocator in
  let before = Sim.Clock.now clock in
  let result = f () in
  let dt = Sim.Clock.now clock - before in
  Metrics.Space_time.accrue t.space_time ~words ~dt state;
  Metrics.Timeline.record t.timeline ~at:before ~dt ~words state;
  result

let seg t id =
  if id < 0 || id >= t.count then invalid_arg "Segment_store: unknown segment";
  let s = t.segs.(id) in
  if s.dead then invalid_arg "Segment_store: segment has ceased to exist";
  s

let alloc_backing t words =
  let addr = t.backing_frontier in
  if addr + words > Memstore.Level.size t.cfg.backing then
    (* lint: allow L4 — backing exhaustion is a documented fatal misconfiguration *)
    failwith "Segment_store: backing storage exhausted";
  t.backing_frontier <- addr + words;
  addr

let define t ?name ~length () =
  if length < 1 then invalid_arg "Segment_store.define: length must be positive";
  (match t.cfg.max_segment with
   | Some m when length > m ->
     invalid_arg (Printf.sprintf "Segment_store.define: %d exceeds maximum segment %d" length m)
   | Some _ | None -> ());
  if t.count >= Array.length t.segs then begin
    let dummy =
      {
        seg_name = "";
        descriptor = Descriptor.make ~extent:0;
        backing_addr = 0;
        last_touch = 0;
        dead = true;
      }
    in
    let grown = Array.make (max 8 (2 * Array.length t.segs)) dummy in
    Array.blit t.segs 0 grown 0 t.count;
    t.segs <- grown
  end;
  let id = t.count in
  t.count <- t.count + 1;
  let seg_name = match name with Some n -> n | None -> Printf.sprintf "seg%d" id in
  t.segs.(id) <-
    {
      seg_name;
      descriptor = Descriptor.make ~extent:length;
      backing_addr = alloc_backing t length;
      last_touch = 0;
      dead = false;
    };
  id

let evict_segment t id =
  let s = t.segs.(id) in
  let d = s.descriptor in
  assert d.Descriptor.present;
  if d.Descriptor.modified then begin
    Memstore.Level.transfer ~src:t.cfg.core ~src_off:d.Descriptor.base ~dst:t.cfg.backing
      ~dst_off:s.backing_addr ~len:d.Descriptor.extent;
    t.writebacks <- t.writebacks + 1;
    if t.tracing then emit t (Writeback { page = id });
    d.Descriptor.modified <- false
  end;
  Freelist.Allocator.free t.allocator d.Descriptor.base;
  d.Descriptor.present <- false;
  d.Descriptor.base <- -1;
  t.evictions <- t.evictions + 1;
  if t.tracing then
    emit t
      (Segment_swap { segment = id; words = d.Descriptor.extent; direction = Obs.Event.Out })

let resident t =
  let acc = ref [] in
  for id = t.count - 1 downto 0 do
    if (not t.segs.(id).dead) && t.segs.(id).descriptor.Descriptor.present then
      acc := id :: !acc
  done;
  !acc

(* Pick one victim under the configured rule; [avoid] is the segment
   being fetched (never resident here, but guards growth-in-place). *)
let choose_victim t ~avoid =
  let live = List.filter (fun id -> id <> avoid) (resident t) in
  match live with
  | [] -> None
  | first :: _ ->
    (match t.cfg.replacement with
     | Lru_segments ->
       Some
         (List.fold_left
            (fun best id -> if t.segs.(id).last_touch < t.segs.(best).last_touch then id else best)
            first live)
     | Cyclic ->
       (* Advance the rotor to the next resident segment. *)
       let n = t.count in
       let rec sweep steps =
         if steps > n then Some first
         else begin
           let id = t.rotor in
           t.rotor <- (t.rotor + 1) mod n;
           if List.mem id live then Some id else sweep (steps + 1)
         end
       in
       sweep 0
     | Rice_iterative ->
       (* Second chance over the rotor: a segment used since last
          considered is passed over (bit cleared); first unused one is
          taken. *)
       let n = t.count in
       let rec sweep steps =
         if steps > 2 * n then Some first
         else begin
           let id = t.rotor in
           t.rotor <- (t.rotor + 1) mod n;
           if not (List.mem id live) then sweep (steps + 1)
           else if t.segs.(id).descriptor.Descriptor.used then begin
             t.segs.(id).descriptor.Descriptor.used <- false;
             sweep (steps + 1)
           end
           else Some id
         end
       in
       sweep 0)

(* Allocate a core block of [words], evicting segments (never [avoid])
   until placement succeeds. *)
let alloc_core t ~words ~avoid =
  let rec attempt () =
    match Freelist.Allocator.alloc t.allocator words with
    | Some addr -> addr
    | None ->
      (match choose_victim t ~avoid with
       | Some victim ->
         evict_segment t victim;
         attempt ()
       | None ->
         (* lint: allow L4 — a segment larger than working storage is a documented fatal misconfiguration *)
         failwith
           (Printf.sprintf
              "Segment_store: segment of %d words cannot fit in working storage" words))
  in
  attempt ()

let fetch t id =
  let s = t.segs.(id) in
  let d = s.descriptor in
  t.segment_faults <- t.segment_faults + 1;
  if t.tracing then emit t (Fault { page = id });
  let base = timed t Metrics.Space_time.Waiting (fun () -> alloc_core t ~words:d.Descriptor.extent ~avoid:id) in
  timed t Metrics.Space_time.Waiting (fun () ->
      Memstore.Level.transfer ~src:t.cfg.backing ~src_off:s.backing_addr ~dst:t.cfg.core
        ~dst_off:base ~len:d.Descriptor.extent);
  d.Descriptor.base <- base;
  d.Descriptor.present <- true;
  d.Descriptor.used <- true;
  d.Descriptor.modified <- false;
  if t.tracing then
    emit t
      (Segment_swap { segment = id; words = d.Descriptor.extent; direction = Obs.Event.In })

let touch t id index ~write =
  let s = seg t id in
  let d = s.descriptor in
  if index < 0 || index >= d.Descriptor.extent then
    raise (Descriptor.Subscript_violation { segment = id; index; extent = d.Descriptor.extent });
  if not d.Descriptor.present then fetch t id;
  t.tick <- t.tick + 1;
  s.last_touch <- t.tick;
  d.Descriptor.used <- true;
  if write then d.Descriptor.modified <- true;
  d.Descriptor.base + index

let read t id index =
  let addr = touch t id index ~write:false in
  timed t Metrics.Space_time.Active (fun () -> Memstore.Level.read t.cfg.core addr)

let write t id index v =
  let addr = touch t id index ~write:true in
  timed t Metrics.Space_time.Active (fun () -> Memstore.Level.write t.cfg.core addr v)

let delete t id =
  let s = seg t id in
  if s.descriptor.Descriptor.present then begin
    Freelist.Allocator.free t.allocator s.descriptor.Descriptor.base;
    s.descriptor.Descriptor.present <- false
  end;
  s.dead <- true

let grow t id ~new_length =
  let s = seg t id in
  let d = s.descriptor in
  if new_length <= d.Descriptor.extent then
    invalid_arg "Segment_store.grow: new length not larger";
  (match t.cfg.max_segment with
   | Some m when new_length > m -> invalid_arg "Segment_store.grow: exceeds maximum segment"
   | Some _ | None -> ());
  let old_length = d.Descriptor.extent in
  (* Grow via a fresh, larger backing image: write the authoritative
     copy there, release any core block, and let the next touch fetch
     the enlarged segment (evicting others as needed).  Keeping the old
     core block while placing the new one could fail on fragmentation
     the old block itself causes. *)
  let new_backing = alloc_backing t new_length in
  if d.Descriptor.present then begin
    Memstore.Level.transfer ~src:t.cfg.core ~src_off:d.Descriptor.base ~dst:t.cfg.backing
      ~dst_off:new_backing ~len:old_length;
    Freelist.Allocator.free t.allocator d.Descriptor.base;
    d.Descriptor.present <- false;
    d.Descriptor.base <- -1;
    d.Descriptor.modified <- false
  end
  else
    Memstore.Level.transfer ~src:t.cfg.backing ~src_off:s.backing_addr ~dst:t.cfg.backing
      ~dst_off:new_backing ~len:old_length;
  s.backing_addr <- new_backing;
  d.Descriptor.extent <- new_length

let shrink t id ~new_length =
  let s = seg t id in
  let d = s.descriptor in
  if new_length < 1 || new_length > d.Descriptor.extent then
    invalid_arg "Segment_store.shrink: bad length";
  (* Truncation in place: the tail words are abandoned.  The core block
     keeps its size until the segment is next evicted and refetched. *)
  d.Descriptor.extent <- new_length;
  ignore s

let length t id = (seg t id).descriptor.Descriptor.extent

let is_resident t id = (seg t id).descriptor.Descriptor.present

let name t id = (seg t id).seg_name

let segment_faults t = t.segment_faults

let evictions t = t.evictions

let writebacks t = t.writebacks

let core_live_words t = Freelist.Allocator.live_words t.allocator

let core_free_sizes t = Freelist.Allocator.free_block_sizes t.allocator

let external_fragmentation t =
  Metrics.Fragmentation.external_of_free_blocks (core_free_sizes t)

let search_stats t = Freelist.Allocator.search_stats t.allocator

let space_time t = t.space_time

let timeline t = t.timeline
