type t = {
  mutable present : bool;
  mutable base : int;
  mutable extent : int;
  mutable used : bool;
  mutable modified : bool;
}

exception Segment_absent of int

exception Subscript_violation of { segment : int; index : int; extent : int }

let make ~extent =
  assert (extent >= 0);
  { present = false; base = -1; extent; used = false; modified = false }

module Prt = struct
  type table = { mutable descriptors : t array; mutable count : int }

  let create () = { descriptors = [||]; count = 0 }

  let add table ~extent =
    if table.count >= Array.length table.descriptors then begin
      let grown = Array.make (max 8 (2 * Array.length table.descriptors)) (make ~extent:0) in
      Array.blit table.descriptors 0 grown 0 table.count;
      table.descriptors <- grown
    end;
    let segment = table.count in
    table.descriptors.(segment) <- make ~extent;
    table.count <- table.count + 1;
    segment

  let descriptor table segment =
    if segment < 0 || segment >= table.count then
      invalid_arg (Printf.sprintf "Prt: unknown segment %d" segment);
    table.descriptors.(segment)

  let size table = table.count

  let address table ~segment ~index =
    let d = descriptor table segment in
    if index < 0 || index >= d.extent then
      raise (Subscript_violation { segment; index; extent = d.extent });
    if not d.present then raise (Segment_absent segment);
    d.used <- true;
    d.base + index

  let resident table =
    let acc = ref [] in
    for segment = table.count - 1 downto 0 do
      if table.descriptors.(segment).present then acc := segment :: !acc
    done;
    !acc
end
