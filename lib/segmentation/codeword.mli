(** Rice University Computer codewords (appendix A.4, Iliffe & Jodeit).

    "Codewords are used to provide a compact characterization of
    individual program or data segments, and are thus approximately
    analogous to the descriptors, or PRT elements, used in the B5000
    system.  Probably the major difference ... is that codewords
    contain an index register address.  When the codeword is used to
    access a segment, the contents of the specified index register are
    automatically added to the segment base address given in the
    codeword.  The equivalent operation on the B5000 would have to be
    programmed explicitly." *)

type t = {
  mutable present : bool;
  mutable base : int;
  mutable extent : int;
  index_register : int;  (** which index register is added on access *)
  mutable in_backing : bool;  (** a copy exists in backing storage *)
  mutable used : bool;  (** used since last considered for replacement *)
}

(** A file of index registers.  "In the B8500 any word in storage can be
    used as an index register"; here a plain register array suffices. *)
module Registers : sig
  type file

  val create : count:int -> file

  val get : file -> int -> int

  val set : file -> int -> int -> unit
end

exception Segment_absent of int

val make : extent:int -> index_register:int -> t

val address : Registers.file -> codeword_id:int -> t -> offset:int -> int
(** Core address for [offset] words past the indexed base: checks
    presence (raising {!Segment_absent} with [codeword_id]), adds the
    index register contents automatically, bound-checks the effective
    index against the extent, and sets the use bit.  Raises
    [Invalid_argument] on a bound violation. *)
