type config = {
  page_size : int;
  frames : int;
  tlb : Paging.Tlb.t option;
  policy : Paging.Replacement.t;
}

(* Pages are identified across segments by packed keys. *)
let key_bits = 24

let key ~segment ~page = (segment lsl key_bits) lor page

type seg = { mutable length : int }

type t = {
  cfg : config;
  mutable segments : seg array;
  mutable seg_count : int;
  resident : (int, unit) Hashtbl.t;  (* resident page keys *)
  mutable refs : int;
  mutable faults : int;
  mutable map_accesses : int;
}

let create cfg =
  assert (cfg.page_size > 0 && cfg.frames > 0);
  {
    cfg;
    segments = [||];
    seg_count = 0;
    resident = Hashtbl.create 64;
    refs = 0;
    faults = 0;
    map_accesses = 0;
  }

let add_segment t ~length =
  assert (length >= 1);
  assert (length < 1 lsl key_bits * t.cfg.page_size);
  if t.seg_count >= Array.length t.segments then begin
    let grown = Array.make (max 8 (2 * Array.length t.segments)) { length = 0 } in
    Array.blit t.segments 0 grown 0 t.seg_count;
    t.segments <- grown
  end;
  let id = t.seg_count in
  t.seg_count <- t.seg_count + 1;
  t.segments.(id) <- { length };
  id

let seg t segment =
  if segment < 0 || segment >= t.seg_count then invalid_arg "Two_level: unknown segment";
  t.segments.(segment)

let segment_length t segment = (seg t segment).length

let grow_segment t ~segment ~new_length =
  let s = seg t segment in
  if new_length <= s.length then invalid_arg "Two_level.grow_segment: not larger";
  s.length <- new_length

let candidates t =
  let a = Array.make (Hashtbl.length t.resident) 0 in
  let i = ref 0 in
  (* lint: allow L3 — the array is sorted immediately after filling *)
  Hashtbl.iter
    (fun k () ->
      a.(!i) <- k;
      incr i)
    t.resident;
  Array.sort compare a;
  a

let touch t ~segment ~offset ~write =
  let s = seg t segment in
  if offset < 0 || offset >= s.length then
    raise (Descriptor.Subscript_violation { segment; index = offset; extent = s.length });
  let page = offset / t.cfg.page_size in
  let k = key ~segment ~page in
  t.refs <- t.refs + 1;
  t.cfg.policy.Paging.Replacement.on_reference ~page:k ~write;
  let translated =
    match t.cfg.tlb with
    | Some tlb -> (match Paging.Tlb.lookup tlb k with Some _ -> true | None -> false)
    | None -> false
  in
  if not translated then begin
    (* Walk the segment table, then the page table: two map accesses. *)
    t.map_accesses <- t.map_accesses + 2;
    if not (Hashtbl.mem t.resident k) then begin
      t.faults <- t.faults + 1;
      if Hashtbl.length t.resident >= t.cfg.frames then begin
        let victim = t.cfg.policy.Paging.Replacement.choose_victim ~candidates:(candidates t) in
        Hashtbl.remove t.resident victim;
        t.cfg.policy.Paging.Replacement.on_evict ~page:victim;
        match t.cfg.tlb with
        | Some tlb -> Paging.Tlb.invalidate tlb ~key:victim
        | None -> ()
      end;
      Hashtbl.replace t.resident k ();
      t.cfg.policy.Paging.Replacement.on_load ~page:k
    end;
    match t.cfg.tlb with
    | Some tlb -> Paging.Tlb.insert tlb ~key:k ~value:0
    | None -> ()
  end

let run_segmented t pairs =
  Array.iter (fun (segment, offset) -> touch t ~segment ~offset ~write:false) pairs

let refs t = t.refs

let faults t = t.faults

let map_accesses t = t.map_accesses

let tlb t = t.cfg.tlb

let resident_pages t = Hashtbl.length t.resident

let effective_access_us t ~word_us =
  if t.refs = 0 then 0.
  else
    float_of_int ((t.refs + t.map_accesses) * word_us) /. float_of_int t.refs
