(** The MULTICS dual-page-size mechanism, operational (appendix A.6).

    "Allocation is performed by a variant of the standard paging
    technique, since in fact two different page sizes (64 and 1024
    words) are used.  Thus, at the cost of somewhat added complexity to
    the placement and replacement strategies, the loss in storage
    utilization caused by fragmentation occurring within pages can be
    reduced."

    Each segment's body is carved into large pages and its tail into
    small pages.  Working storage is split into two frame pools, one
    per size, each with its own replacement policy — the added
    complexity the paper prices in.  Fault counting is untimed (like
    {!Two_level}); what the experiment reads off is faults per class,
    words of core actually occupied, and the internal waste of the
    resident set. *)

type config = {
  small_page : int;  (** e.g. 64 *)
  large_page : int;  (** e.g. 1024; must be a multiple of [small_page] *)
  small_frames : int;
  large_frames : int;
}

type t

val create : config -> t

val add_segment : t -> length:int -> int

val touch : t -> segment:int -> offset:int -> write:bool -> unit
(** Bound-checks (raising {!Descriptor.Subscript_violation}) and faults
    the covering page (large for the body, small for the tail) into its
    pool. *)

val refs : t -> int

val small_faults : t -> int

val large_faults : t -> int

val faults : t -> int

val resident_words : t -> int
(** Core words held by resident pages of both sizes. *)

val resident_useful_words : t -> int
(** The part of {!resident_words} that lies inside segment extents —
    the rest is fragmentation within the final page of each segment. *)

val core_words : t -> int
(** Total pool capacity in words. *)
