(** Two-level mapping: segment table -> page table -> frame (Fig. 4).

    "Name contiguity within segments is provided by a mapping mechanism
    using two levels of indirect addressing, through a segment table and
    a set of page tables.  A small associative memory is used to contain
    the locations of recently accessed pages in order to reduce the
    overhead caused by the mapping process." (MULTICS, appendix A.6;
    the 360/67 mapping in A.7 has the same shape.)

    This mapper counts the cost of that mechanism: each reference that
    misses the associative memory pays two working-storage accesses (one
    per table level); a hit pays none.  Pages of all segments compete
    for one pool of frames under a pluggable replacement policy, so the
    experiment F4 can sweep TLB size and read off the addressing
    overhead the paper says "would often be unacceptable" without the
    associative memory. *)

type config = {
  page_size : int;
  frames : int;  (** frames shared by the pages of every segment *)
  tlb : Paging.Tlb.t option;
  policy : Paging.Replacement.t;
}

type t

val create : config -> t

val add_segment : t -> length:int -> int
(** Declare a segment of [length] words; returns its segment number. *)

val segment_length : t -> int -> int

val grow_segment : t -> segment:int -> new_length:int -> unit
(** Dynamic segments: extend a segment's extent (its page table grows). *)

val touch : t -> segment:int -> offset:int -> write:bool -> unit
(** One reference to [segment[offset]].  Bound-checks the offset
    ({!Descriptor.Subscript_violation}), consults the associative
    memory, then the two table levels, faulting the page in on a miss. *)

val run_segmented : t -> (int * int) array -> unit
(** Touch every (segment, offset) pair in order. *)

val refs : t -> int

val faults : t -> int

val map_accesses : t -> int
(** Working-storage accesses spent walking the two table levels. *)

val tlb : t -> Paging.Tlb.t option

val resident_pages : t -> int

val effective_access_us : t -> word_us:int -> float
(** Mean cost of one reference in core-access terms: the data access
    itself plus the amortized mapping accesses ([faults] excluded —
    fetch time is a fetch-strategy cost, not an addressing cost). *)
