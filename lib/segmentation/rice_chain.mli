(** The Rice University Computer storage allocation scheme (appendix
    A.4, after Iliffe & Jodeit).

    "Segments are initially placed sequentially in storage in a block of
    contiguous locations, the first of which is a 'back reference' to
    the codeword of the segment.  When a segment loses its significance
    the block in which it was stored is designated as 'inactive', and
    its first word set up with the size of the block and the location of
    the next inactive block in storage.  When space is required for a
    segment, the chain of inactive blocks is searched sequentially for
    one of sufficient size.  If one is found, the requested amount of
    space is allocated, and if any unused space is left over it replaces
    the original inactive block in the chain.  If an inactive block of
    sufficient size cannot be found, an attempt is made to make one by
    finding groups of adjacent inactive blocks which can be combined."

    The iterative replacement algorithm the paper describes next lives
    in {!Segment_store}; this module is the placement machinery.  (On
    the real machine the block size of an active segment lived in its
    codeword; we shadow it in a side table.) *)

type t

val create : Memstore.Physical.t -> base:int -> len:int -> t

val alloc : t -> payload:int -> codeword:int -> int option
(** Claim a block for [payload >= 1] words plus the back-reference word.
    Returns the block offset (payload starts one word later), or [None]
    when neither the sequential frontier, the inactive chain, nor
    combining adjacent inactive blocks can supply the space — at which
    point the caller must release something and retry. *)

val free : t -> int -> unit
(** Designate a previously allocated block inactive and push it on the
    chain.  Raises [Invalid_argument] on a double free or foreign
    offset. *)

val payload_base : int -> int
(** Core offset of the first payload word of a block. *)

val back_reference : t -> int -> int
(** The codeword id stored in the block's back-reference word. *)

val frontier : t -> int
(** First never-allocated offset (sequential placement point). *)

val chain_blocks : t -> (int * int) list
(** Inactive (offset, size) pairs in chain order. *)

val combines : t -> int
(** How many times adjacent-block combination was attempted. *)

val chain_search_stats : t -> Metrics.Stats.t
(** Chain nodes examined per allocation. *)

val validate : t -> unit
(** Active blocks and chain blocks must exactly tile [0, frontier).
    Raises [Failure] on violation. *)
