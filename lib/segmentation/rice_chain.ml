type t = {
  mem : Memstore.Physical.t;
  base : int;
  len : int;
  mutable frontier : int;
  mutable chain : int;  (* offset of first inactive block, -1 if none *)
  active : (int, int) Hashtbl.t;  (* block offset -> total size *)
  mutable combines : int;
  searches : Metrics.Stats.t;
}

let nil = -1

let min_inactive = 2  (* size word + chain link word *)

let create mem ~base ~len =
  assert (len >= min_inactive);
  assert (base >= 0 && base + len <= Memstore.Physical.size mem);
  {
    mem;
    base;
    len;
    frontier = 0;
    chain = nil;
    active = Hashtbl.create 64;
    combines = 0;
    searches = Metrics.Stats.create ();
  }

let read t off = Int64.to_int (Memstore.Physical.read t.mem (t.base + off))

let write_word t off v = Memstore.Physical.write t.mem (t.base + off) (Int64.of_int v)

let block_size t off = read t off

let next_inactive t off = read t (off + 1)

let set_inactive t off ~size ~next =
  write_word t off size;
  write_word t (off + 1) next

let payload_base off = off + 1

let back_reference t off =
  if not (Hashtbl.mem t.active off) then invalid_arg "Rice_chain: not an active block";
  read t off

let chain_blocks t =
  let rec loop off acc =
    if off = nil then List.rev acc else loop (next_inactive t off) ((off, block_size t off) :: acc)
  in
  loop t.chain []

(* First-fit search of the inactive chain; takes the requested space out
   of the found block, the leftover replacing it in the chain. *)
let take_from_chain t total ~examined =
  let rec loop prev off =
    if off = nil then None
    else begin
      incr examined;
      let size = block_size t off in
      let next = next_inactive t off in
      if size >= total then begin
        let leftover = size - total in
        let replacement =
          if leftover >= min_inactive then begin
            let rest = off + total in
            set_inactive t rest ~size:leftover ~next;
            rest
          end
          else next
        in
        (if prev = nil then t.chain <- replacement
         else write_word t (prev + 1) replacement);
        let granted = if leftover >= min_inactive then total else size in
        Some (off, granted)
      end
      else loop off next
    end
  in
  loop nil t.chain

(* Combine adjacent inactive blocks, and reclaim a block that abuts the
   frontier back into never-allocated space. *)
let combine t =
  t.combines <- t.combines + 1;
  let blocks = List.sort compare (chain_blocks t) in
  let rec merge = function
    | (o1, s1) :: (o2, s2) :: rest when o1 + s1 = o2 -> merge ((o1, s1 + s2) :: rest)
    | b :: rest -> b :: merge rest
    | [] -> []
  in
  let merged = merge blocks in
  let merged =
    match List.rev merged with
    | (o, s) :: rest when o + s = t.frontier ->
      t.frontier <- o;
      List.rev rest
    | _ -> merged
  in
  t.chain <- nil;
  List.iter (fun (o, s) -> set_inactive t o ~size:s ~next:nil) merged;
  let rec link = function
    | (o1, _) :: ((o2, _) :: _ as rest) ->
      write_word t (o1 + 1) o2;
      link rest
    | [ _ ] | [] -> ()
  in
  (match merged with (o, _) :: _ -> t.chain <- o | [] -> ());
  link merged

let alloc t ~payload ~codeword =
  assert (payload >= 1);
  let total = max min_inactive (payload + 1) in
  let examined = ref 0 in
  let claim (off, granted) =
    Hashtbl.replace t.active off granted;
    write_word t off codeword;
    Some off
  in
  let result =
    if t.len - t.frontier >= total then begin
      (* Sequential initial placement. *)
      let off = t.frontier in
      t.frontier <- t.frontier + total;
      claim (off, total)
    end
    else begin
      match take_from_chain t total ~examined with
      | Some got -> claim got
      | None ->
        combine t;
        (match take_from_chain t total ~examined with
         | Some got -> claim got
         | None ->
           if t.len - t.frontier >= total then begin
             let off = t.frontier in
             t.frontier <- t.frontier + total;
             claim (off, total)
           end
           else None)
    end
  in
  Metrics.Stats.add t.searches (float_of_int !examined);
  result

let free t off =
  match Hashtbl.find_opt t.active off with
  | None -> invalid_arg "Rice_chain.free: not an active block"
  | Some size ->
    Hashtbl.remove t.active off;
    set_inactive t off ~size ~next:t.chain;
    t.chain <- off

let frontier t = t.frontier

let combines t = t.combines

let chain_search_stats t = t.searches

let validate t =
  let pieces =
    (* lint: allow L3 — pieces are sorted before tiling *)
    Hashtbl.fold (fun off size acc -> (off, size) :: acc) t.active []
    @ chain_blocks t
  in
  let sorted = List.sort compare pieces in
  let rec tile expected = function
    | [] ->
      if expected <> t.frontier then
        (* lint: allow L4 — validate is a documented test-facing checker that raises Failure *)
        failwith
          (Printf.sprintf "Rice_chain.validate: blocks end at %d, frontier %d" expected
             t.frontier)
    | (off, size) :: rest ->
      if off <> expected then
        (* lint: allow L4 — validate is a documented test-facing checker that raises Failure *)
        failwith (Printf.sprintf "Rice_chain.validate: gap/overlap at %d (expected %d)" off expected);
      (* lint: allow L4 — validate is a documented test-facing checker that raises Failure *)
      if size < min_inactive then failwith "Rice_chain.validate: runt block";
      tile (off + size) rest
  in
  tile 0 sorted
