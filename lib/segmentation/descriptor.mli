(** Segment descriptors and the B5000 Program Reference Table.

    "Each program in the system has associated with it a Program
    Reference Table (PRT). ...  Every segment of the program is
    represented by an entry in this table.  This entry gives the base
    address and extent of the segment, and an indication of whether the
    segment is currently in working storage." (appendix A.3)

    Accessing a word through a descriptor checks the index against the
    extent (the automatic subscript check the paper credits to
    segmentation) and traps to {!Segment_absent} when the presence bit
    is off — the hardware event a segment-fetch strategy hangs off. *)

type t = {
  mutable present : bool;
  mutable base : int;  (** core address of word 0 while present *)
  mutable extent : int;  (** words *)
  mutable used : bool;
  mutable modified : bool;
}

exception Segment_absent of int
(** Raised with the segment number on access through a non-present
    descriptor. *)

exception Subscript_violation of { segment : int; index : int; extent : int }

val make : extent:int -> t
(** A non-present descriptor of the given extent. *)

(** The Program Reference Table: descriptors indexed by segment
    number. *)
module Prt : sig
  type table

  val create : unit -> table

  val add : table -> extent:int -> int
  (** Allocate the next segment number and its descriptor. *)

  val descriptor : table -> int -> t
  (** Raises [Invalid_argument] on an unknown segment number. *)

  val size : table -> int

  val address : table -> segment:int -> index:int -> int
  (** Core address of [segment[index]]: bound-checks the index, traps
      {!Segment_absent} if non-present, and marks the use bit. *)

  val resident : table -> int list
  (** Present segment numbers, ascending. *)
end
