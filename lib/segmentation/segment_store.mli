(** Segment-as-unit-of-allocation storage management (B5000-style).

    "The segment is used directly as the unit of allocation.  Each
    segment is fetched when reference is first made to information in
    the segment." (appendix A.3)

    Core storage is managed by the variable-unit {!Freelist.Allocator}
    under a pluggable placement policy; segment images live in backing
    storage; a reference to an absent segment triggers a timed fetch,
    evicting resident segments under the chosen replacement rule until
    the newcomer fits.  Segments are {e dynamic}: they can be created,
    destroyed, grown and shrunk during execution, with contents
    preserved. *)

type replacement =
  | Cyclic  (** B5000: "a replacement strategy which was essentially cyclical" *)
  | Lru_segments  (** least recently touched segment *)
  | Rice_iterative
      (** Rice A.4: sweep cyclically; a segment used since last
          considered gets its use bit cleared and is passed over;
          applied iteratively until enough space is released *)

type config = {
  core : Memstore.Level.t;  (** working storage *)
  backing : Memstore.Level.t;  (** drum/tape image store *)
  placement : Freelist.Policy.t;
  replacement : replacement;
  max_segment : int option;  (** e.g. Some 1024 on the B5000 *)
}

type t

type id = int

val create : ?obs:Obs.Sink.t -> config -> t
(** With a sink, the store reports fault (segment id), segment_swap
    in/out and writeback events on the core level's clock, and its
    internal {!Freelist.Allocator} shares the sink, so placement-level
    alloc / free / split / coalesce events interleave in the same
    stream. *)

val define : t -> ?name:string -> length:int -> unit -> id
(** Declare a new (dynamic) segment of [length] words, initially
    zero-filled in backing storage and absent from core.  Raises
    [Invalid_argument] if [length] exceeds [max_segment] or is < 1. *)

val read : t -> id -> int -> int64
(** [read t seg i] fetches the segment on first touch (timed transfer),
    bound-checks [i], and returns word [i]. *)

val write : t -> id -> int -> int64 -> unit

val delete : t -> id -> unit
(** The segment ceases to exist; its core space (if any) is released.
    Further access raises [Invalid_argument]. *)

val grow : t -> id -> new_length:int -> unit
(** Extend the segment, preserving contents.  The enlarged image is
    written to backing storage and the segment becomes absent; the next
    touch fetches it at its new size (evicting others as needed).
    [new_length] must exceed the current length and respect
    [max_segment]. *)

val shrink : t -> id -> new_length:int -> unit
(** Truncate the segment in place (no data movement). *)

val length : t -> id -> int

val resident : t -> id list

val is_resident : t -> id -> bool

val name : t -> id -> string

(** {2 Measurements} *)

val segment_faults : t -> int

val evictions : t -> int

val writebacks : t -> int

val core_live_words : t -> int

val core_free_sizes : t -> int list

val external_fragmentation : t -> float

val search_stats : t -> Metrics.Stats.t
(** Placement search lengths, from the underlying allocator. *)

val space_time : t -> Metrics.Space_time.t
(** The paper's central metric, for segments: core words held,
    integrated over time, split between Active (program accessing) and
    Waiting (segment fetches and write-backs in progress). *)

val timeline : t -> Metrics.Timeline.t
(** The Fig.-3-style time profile of this store's occupancy. *)
