(** Inter-program sharing and protection of segments.

    The paper lists among segmentation's advantages: "Segments form a
    very convenient unit for purposes of information protection and
    sharing, between programs."  This module adds both on top of
    {!Segment_store}: one shared store of segments, with each program
    holding its own {e access list} granting per-segment rights.  A
    shared segment is fetched once and every sharer reaches the same
    copy; an access outside a program's rights traps. *)

type right =
  | Read
  | Write
  | Execute

exception Protection_violation of { program : string; segment : int; needed : right }

exception Not_granted of { program : string; segment : int }

type t
(** The sharing layer over one segment store. *)

type program

val create : Segment_store.t -> t

val store : t -> Segment_store.t

val add_program : t -> name:string -> program

val program_name : program -> string

val grant : t -> program -> segment:Segment_store.id -> rights:right list -> unit
(** Give [program] the listed rights on [segment].  Re-granting
    replaces the rights. *)

val revoke : t -> program -> segment:Segment_store.id -> unit

val rights : t -> program -> segment:Segment_store.id -> right list
(** [] if not granted. *)

val read : t -> program -> Segment_store.id -> int -> int64
(** Checked access: requires [Read].  Raises {!Not_granted} if the
    program has no entry for the segment, {!Protection_violation} if it
    lacks the right. *)

val write : t -> program -> Segment_store.id -> int -> int64 -> unit
(** Requires [Write]. *)

val fetch_for_execute : t -> program -> Segment_store.id -> unit
(** Requires [Execute]; touches word 0 (instruction fetch). *)

val sharers : t -> segment:Segment_store.id -> string list
(** Programs currently granted any right on the segment. *)
