type t = {
  mutable present : bool;
  mutable base : int;
  mutable extent : int;
  index_register : int;
  mutable in_backing : bool;
  mutable used : bool;
}

module Registers = struct
  type file = int array

  let create ~count =
    assert (count > 0);
    Array.make count 0

  let get file i = file.(i)

  let set file i v = file.(i) <- v
end

exception Segment_absent of int

let make ~extent ~index_register =
  assert (extent >= 0 && index_register >= 0);
  { present = false; base = -1; extent; index_register; in_backing = false; used = false }

let address registers ~codeword_id cw ~offset =
  if not cw.present then raise (Segment_absent codeword_id);
  let effective = offset + Registers.get registers cw.index_register in
  if effective < 0 || effective >= cw.extent then
    invalid_arg
      (Printf.sprintf "Codeword: index %d outside extent %d" effective cw.extent);
  cw.used <- true;
  cw.base + effective
