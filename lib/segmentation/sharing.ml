type right =
  | Read
  | Write
  | Execute

exception Protection_violation of { program : string; segment : int; needed : right }

exception Not_granted of { program : string; segment : int }

type program = { name : string; access : (int, right list) Hashtbl.t }

type t = { store : Segment_store.t; mutable programs : program list }

let create store = { store; programs = [] }

let store t = t.store

let add_program t ~name =
  let p = { name; access = Hashtbl.create 16 } in
  t.programs <- p :: t.programs;
  p

let program_name p = p.name

let grant _t p ~segment ~rights = Hashtbl.replace p.access segment rights

let revoke _t p ~segment = Hashtbl.remove p.access segment

let rights _t p ~segment =
  match Hashtbl.find_opt p.access segment with Some r -> r | None -> []

let require t p segment needed =
  match Hashtbl.find_opt p.access segment with
  | None -> raise (Not_granted { program = p.name; segment })
  | Some granted ->
    if not (List.mem needed granted) then
      raise (Protection_violation { program = p.name; segment; needed });
    ignore t

let read t p segment index =
  require t p segment Read;
  Segment_store.read t.store segment index

let write t p segment index v =
  require t p segment Write;
  Segment_store.write t.store segment index v

let fetch_for_execute t p segment =
  require t p segment Execute;
  let (_ : int64) = Segment_store.read t.store segment 0 in
  ()

let sharers t ~segment =
  List.rev
    (List.filter_map
       (fun p -> if Hashtbl.mem p.access segment then Some p.name else None)
       t.programs)
