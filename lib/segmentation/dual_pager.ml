type config = {
  small_page : int;
  large_page : int;
  small_frames : int;
  large_frames : int;
}

(* One frame pool with LRU replacement over packed page keys. *)
type pool = {
  capacity : int;
  resident : (int, int) Hashtbl.t;  (* key -> last use *)
  mutable faults : int;
}

type seg = { length : int }

type t = {
  cfg : config;
  small : pool;
  large : pool;
  mutable segments : seg array;
  mutable seg_count : int;
  mutable tick : int;
  mutable refs : int;
}

let key_bits = 24

let create cfg =
  assert (cfg.small_page > 0 && cfg.large_page mod cfg.small_page = 0);
  assert (cfg.small_frames >= 0 && cfg.large_frames >= 0);
  let pool capacity = { capacity; resident = Hashtbl.create 64; faults = 0 } in
  {
    cfg;
    small = pool cfg.small_frames;
    large = pool cfg.large_frames;
    segments = [||];
    seg_count = 0;
    tick = 0;
    refs = 0;
  }

let add_segment t ~length =
  assert (length >= 1);
  if t.seg_count >= Array.length t.segments then begin
    let grown = Array.make (max 8 (2 * Array.length t.segments)) { length = 0 } in
    Array.blit t.segments 0 grown 0 t.seg_count;
    t.segments <- grown
  end;
  let id = t.seg_count in
  t.seg_count <- t.seg_count + 1;
  t.segments.(id) <- { length };
  id

let pool_touch t pool key =
  t.tick <- t.tick + 1;
  if Hashtbl.mem pool.resident key then Hashtbl.replace pool.resident key t.tick
  else begin
    pool.faults <- pool.faults + 1;
    if pool.capacity = 0 then ()
    else begin
      if Hashtbl.length pool.resident >= pool.capacity then begin
        (* LRU victim. *)
        let victim = ref (-1) and oldest = ref max_int in
        (* lint: allow L3 — argmin under the total (last, key) order is order-independent *)
        Hashtbl.iter
          (fun k last ->
            if last < !oldest || (last = !oldest && k < !victim) then begin
              victim := k;
              oldest := last
            end)
          pool.resident;
        Hashtbl.remove pool.resident !victim
      end;
      Hashtbl.replace pool.resident key t.tick
    end
  end

(* A segment's body (whole large pages) then its tail (small pages). *)
let body_words t length = length / t.cfg.large_page * t.cfg.large_page

let touch t ~segment ~offset ~write =
  ignore write;
  if segment < 0 || segment >= t.seg_count then invalid_arg "Dual_pager: unknown segment";
  let s = t.segments.(segment) in
  if offset < 0 || offset >= s.length then
    raise (Descriptor.Subscript_violation { segment; index = offset; extent = s.length });
  t.refs <- t.refs + 1;
  let body = body_words t s.length in
  if offset < body then
    pool_touch t t.large ((segment lsl key_bits) lor (offset / t.cfg.large_page))
  else
    pool_touch t t.small
      ((segment lsl key_bits) lor ((offset - body) / t.cfg.small_page))

let refs t = t.refs

let small_faults t = t.small.faults

let large_faults t = t.large.faults

let faults t = t.small.faults + t.large.faults

let resident_words t =
  (Hashtbl.length t.small.resident * t.cfg.small_page)
  + (Hashtbl.length t.large.resident * t.cfg.large_page)

let resident_useful_words t =
  let useful = ref 0 in
  let count pool page_words tail_of =
    (* lint: allow L3 — commutative sum over all bindings is order-independent *)
    Hashtbl.iter
      (fun key _ ->
        let segment = key lsr key_bits and page = key land ((1 lsl key_bits) - 1) in
        let s = t.segments.(segment) in
        let base = tail_of s + (page * page_words) in
        useful := !useful + min page_words (s.length - base))
      pool.resident
  in
  count t.large t.cfg.large_page (fun _ -> 0);
  count t.small t.cfg.small_page (fun s -> body_words t s.length);
  !useful

let core_words t =
  (t.cfg.small_frames * t.cfg.small_page) + (t.cfg.large_frames * t.cfg.large_page)
