(** The typed failure vocabulary shared by every layer above the device.

    A terminal device failure ({!Device.Model.failure}) surfaces to an
    engine as an {!Io_failed}; each layer either recovers (its policy's
    business) or re-wraps the failure in its own terms and passes it up:
    the swapper reports {!Swap_in_failed}, the multiprogramming
    scheduler reports {!Job_failed} once a job's restart budget is
    spent.  Engines that recover successfully never surface a failure —
    recovery is counted in their stats instead. *)

type t =
  | Io_failed of { page : int; io : Obs.Event.io; attempts : int; at_us : int }
      (** a backing-store request terminally failed (permanent media
          error, or retries exhausted under {!Device.Fault.Fail}) *)
  | Swap_in_failed of { segment : int; words : int; attempts : int; at_us : int }
      (** a whole-segment swap-in could not be completed *)
  | Job_failed of { job : int; restarts : int; at_us : int }
      (** a job exhausted its abort-and-restart budget *)
  | Shard_crashed of { shard : int; restarts : int; at_us : int }
      (** a sharded-engine worker exhausted its supervisor's restart
          budget on repeated crashes *)
  | Shard_stalled of { shard : int; restarts : int; at_us : int }
      (** a sharded-engine worker exhausted its supervisor's restart
          budget, the last fault being a detected stall *)
  | Watchdog_tripped of { rule : string; shard : int; at_us : int }
      (** an escalating telemetry watchdog rule ([Obs.Watch]) fired on
          the shard's snapshot stream — the observability layer's way
          of declaring a live run stuck or out of bounds; [at_us] is
          the snapshot time of the first fire *)

val of_device : Device.Model.failure -> t

val at_us : t -> int

val to_string : t -> string
