(** The seeded chaos harness: randomized-but-reproducible fault
    schedules driven through engine scenarios, every run validated by
    {!Obs.Check}.

    A {!scenario} is a thunk an upper layer (the experiments library,
    or the CLI) supplies: given a seed, a fault configuration and a
    sink, run an engine workload and return named recovery counters
    (e.g. [("mirror_fetches", 3)]).  The harness owns the randomness:
    one chaos seed deterministically fixes every run's fault schedule
    and workload seed, so a failing run can be replayed exactly.

    Layering note: this module sits below the engines on purpose — it
    cannot name [Paging] or [Core], so scenarios arrive as closures. *)

type scenario = {
  name : string;
  run :
    seed:int ->
    fault:Device.Fault.config ->
    obs:Obs.Sink.t ->
    (string * int) list;
      (** run the workload, return named recovery/outcome counters *)
}

type run_result = {
  scenario : string;
  index : int;
  fault : Device.Fault.config;
  counters : (string * int) list;
  events : int;
  check : Obs.Check.report;
}

type summary = {
  runs : run_result list;
  total_events : int;
  violations : int;  (** invariant violations across all runs *)
  totals : (string * int) list;  (** counters summed across runs *)
}

val schedule : Sim.Rng.t -> Device.Fault.config
(** Draw one fault configuration: read error probability in
    [0.05, 0.45), write errors on half the schedules, permanence up to
    0.3, 0-3 retries, always [Fail] escalation (chaos exercises
    recovery, and [Degrade] never surfaces a failure). *)

val run :
  ?trace:Obs.Sink.t ->
  ?progress:(int -> unit) ->
  scenarios:scenario list ->
  runs:int ->
  seed:int ->
  unit ->
  summary
(** Execute [runs] rounds, cycling through [scenarios], each under a
    fresh {!schedule} draw.  Every round's event stream is collected
    and checked ({!Obs.Check.check_events}); [trace], if given, receives
    the spliced multi-run stream ({!Obs.Sink.segment} boundaries
    included) for offline re-checking.  [progress] is called after each
    round with its index. *)

val ok : summary -> bool
(** Zero invariant violations. *)

val counter : summary -> string -> int
(** Summed counter by name, 0 if absent. *)

(** {2 Multicore chaos}

    The sharded variant injects {e shard} faults — simulated domain
    crashes and stalls at chosen workload steps — instead of device
    faults.  This module sits below [lib/parallel], so a kill is pure
    data here; the experiments layer converts it to a supervisor kill
    and runs the workload under supervision. *)

type shard_kill = {
  sk_shard : int;  (** which shard to kill *)
  sk_attempt : int;  (** on which execution attempt (0 = first run) *)
  sk_progress : int;  (** after how many completed workload steps *)
  sk_stall : bool;  (** simulate a detected stall instead of a crash *)
}

val shard_schedule :
  Sim.Rng.t -> shards:int -> steps:int -> shard_kill list
(** Draw one kill schedule: per shard, 0-2 kills at ascending workload
    steps in [1, steps], each a stall with probability 1/5.  At most 2
    kills per shard keeps every schedule inside the default restart
    budget — chaos exercises recovery; escalation is a deliberate,
    separate test. *)

type shard_scenario = {
  sh_name : string;
  sh_run :
    seed:int ->
    kills:shard_kill list ->
    engine:Obs.Sink.t ->
    supervision:Obs.Sink.t ->
    (string * int) list;
      (** run a supervised sharded workload; write the merged engine
          trace to [engine] and the supervision stream to
          [supervision]; return named counters *)
}

type sharded_result = {
  sr_scenario : string;
  sr_index : int;
  sr_kills : shard_kill list;
  sr_counters : (string * int) list;
  sr_engine_events : int;
  sr_supervision_events : int;
  sr_check : Obs.Check.report;
}

type sharded_summary = {
  sr_runs : sharded_result list;
  sr_total_events : int;
  sr_violations : int;
  sr_totals : (string * int) list;
}

val run_sharded :
  ?trace:Obs.Sink.t ->
  ?progress:(int -> unit) ->
  ?kills:shard_kill list ->
  scenarios:shard_scenario list ->
  shards:int ->
  steps:int ->
  runs:int ->
  seed:int ->
  unit ->
  sharded_summary
(** Execute [runs] rounds, cycling through [scenarios], each under a
    fresh {!shard_schedule} draw — or under the fixed [kills] schedule
    for every round, when given.  Engine and supervision events carry
    different vocabularies, so each round contributes {e two} run
    segments to [trace]: run [2i] (engine) then run [2i+1]
    (supervision).  The in-memory check validates the same two-segment
    structure per round. *)

val sharded_ok : sharded_summary -> bool
(** Zero invariant violations. *)

val sharded_counter : sharded_summary -> string -> int
(** Summed counter by name, 0 if absent. *)
