(** The seeded chaos harness: randomized-but-reproducible fault
    schedules driven through engine scenarios, every run validated by
    {!Obs.Check}.

    A {!scenario} is a thunk an upper layer (the experiments library,
    or the CLI) supplies: given a seed, a fault configuration and a
    sink, run an engine workload and return named recovery counters
    (e.g. [("mirror_fetches", 3)]).  The harness owns the randomness:
    one chaos seed deterministically fixes every run's fault schedule
    and workload seed, so a failing run can be replayed exactly.

    Layering note: this module sits below the engines on purpose — it
    cannot name [Paging] or [Core], so scenarios arrive as closures. *)

type scenario = {
  name : string;
  run :
    seed:int ->
    fault:Device.Fault.config ->
    obs:Obs.Sink.t ->
    (string * int) list;
      (** run the workload, return named recovery/outcome counters *)
}

type run_result = {
  scenario : string;
  index : int;
  fault : Device.Fault.config;
  counters : (string * int) list;
  events : int;
  check : Obs.Check.report;
}

type summary = {
  runs : run_result list;
  total_events : int;
  violations : int;  (** invariant violations across all runs *)
  totals : (string * int) list;  (** counters summed across runs *)
}

val schedule : Sim.Rng.t -> Device.Fault.config
(** Draw one fault configuration: read error probability in
    [0.05, 0.45), write errors on half the schedules, permanence up to
    0.3, 0-3 retries, always [Fail] escalation (chaos exercises
    recovery, and [Degrade] never surfaces a failure). *)

val run :
  ?trace:Obs.Sink.t ->
  ?progress:(int -> unit) ->
  scenarios:scenario list ->
  runs:int ->
  seed:int ->
  unit ->
  summary
(** Execute [runs] rounds, cycling through [scenarios], each under a
    fresh {!schedule} draw.  Every round's event stream is collected
    and checked ({!Obs.Check.check_events}); [trace], if given, receives
    the spliced multi-run stream ({!Obs.Sink.segment} boundaries
    included) for offline re-checking.  [progress] is called after each
    round with its index. *)

val ok : summary -> bool
(** Zero invariant violations. *)

val counter : summary -> string -> int
(** Summed counter by name, 0 if absent. *)
