(** Space-time-product load control for the multiprogramming set.

    The thrashing mode of Randell & Kuehner's multiprogrammed paging
    system is collective: with too many jobs resident, every job's
    working set is squeezed, every reference faults, and the CPU idles
    while the drum queue grows.  The controller watches CPU utilization
    over fixed windows and applies hysteresis: when utilization falls
    below [low_utilization] it sheds one job (the one with the largest
    space-time product — window fault count x resident occupancy — the
    paper's measure of how expensively a job holds storage), and when
    utilization rises above [high_utilization] it re-admits previously
    shed jobs, oldest first.  Between the watermarks it does nothing,
    so a marginal system does not oscillate.

    The controller only decides; the scheduler ([Core.Multiprog]) owns
    the mechanics (parking and waking jobs, evicting their pages) and
    reports actions back via {!note_shed} / {!note_admit}, and emits
    the [load_shed] / [load_admit] events. *)

type config = {
  period_us : int;  (** decision window length *)
  low_utilization : float;  (** shed below this CPU utilization *)
  high_utilization : float;  (** re-admit above this CPU utilization *)
  min_active : int;  (** never shed below this many active jobs *)
}

val config :
  ?period_us:int ->
  ?low_utilization:float ->
  ?high_utilization:float ->
  ?min_active:int ->
  unit ->
  config
(** Defaults: 20 ms windows, shed below 0.35, re-admit above 0.65,
    keep at least 1 job active. *)

type verdict = Steady | Shed_one | Admit_one

type t

val create : config -> t

val observe_execute : t -> us:int -> unit
(** Account [us] of compute progress to the current window. *)

val observe_fault : t -> job:int -> unit
(** Account one page fault by [job] to the current window. *)

val tick : t -> now:int -> n_active:int -> n_parked:int -> verdict
(** Called by the scheduler whenever convenient (e.g. once per quantum).
    Returns [Steady] until a full window has elapsed; at a window
    boundary, closes the window (resetting its counters) and renders
    the hysteresis verdict.  At most one shed or admit per window. *)

val choose_victim : t -> candidates:(int * int) list -> int option
(** [choose_victim t ~candidates] picks the job to shed from
    [(job, resident_pages)] pairs: the largest space-time product over
    the last closed window.  [None] on an empty list.  Ties keep the
    earliest candidate. *)

val note_shed : t -> unit

val note_admit : t -> unit

val ticks : t -> int
(** Closed decision windows. *)

val sheds : t -> int

val admits : t -> int

val level_series : t -> Obs.Series.t
(** Active multiprogramming level, sampled at each window boundary. *)
