type scenario = {
  name : string;
  run :
    seed:int ->
    fault:Device.Fault.config ->
    obs:Obs.Sink.t ->
    (string * int) list;
}

type run_result = {
  scenario : string;
  index : int;
  fault : Device.Fault.config;
  counters : (string * int) list;
  events : int;
  check : Obs.Check.report;
}

type summary = {
  runs : run_result list;
  total_events : int;
  violations : int;
  totals : (string * int) list;  (* counters summed across runs, first-seen order *)
}

(* One randomized-but-reproducible fault configuration.  Escalation is
   always [Fail]: chaos exists to exercise the recovery paths, and
   [Degrade] never surfaces a failure.  Every draw comes from the
   caller's rng, so a fixed chaos seed fixes the whole schedule. *)
let schedule rng =
  let read_error_prob = 0.05 +. Sim.Rng.float rng 0.4 in
  let write_error_prob = if Sim.Rng.bool rng then Sim.Rng.float rng 0.25 else 0. in
  let permanent_prob = Sim.Rng.float rng 0.3 in
  let max_retries = Sim.Rng.int rng 4 in
  Device.Fault.config
    ~seed:(Sim.Rng.int rng 0x3FFFFFFF)
    ~max_retries ~write_error_prob ~permanent_prob ~on_exhausted:Device.Fault.Fail
    ~read_error_prob ()

let add_counters totals counters =
  List.fold_left
    (fun totals (k, v) ->
      match List.assoc_opt k totals with
      | Some _ -> List.map (fun (k', v') -> if k' = k then (k', v' + v) else (k', v')) totals
      | None -> totals @ [ (k, v) ])
    totals counters

let run ?(trace = Obs.Sink.null) ?progress ~scenarios ~runs ~seed () =
  assert (runs >= 1 && scenarios <> []);
  let rng = Sim.Rng.create seed in
  let n = List.length scenarios in
  let results = ref [] in
  let offset = ref 0 in
  for index = 0 to runs - 1 do
    let scenario = List.nth scenarios (index mod n) in
    let fault = schedule rng in
    let run_seed = Sim.Rng.int rng 0x3FFFFFFF in
    let buffer = ref [] in
    let collect = Obs.Sink.collect (fun ev -> buffer := ev :: !buffer) in
    (* One segment per run splices everything — the collected stream
       and the optional JSONL trace — into one monotone multi-run
       stream that Obs.Check can scope. *)
    let obs =
      Obs.Sink.segment ~seed:run_seed
        ~config:("chaos scenario=" ^ scenario.name)
        ~run:index ~offset:!offset
        (Obs.Sink.tee collect trace)
    in
    let counters = scenario.run ~seed:run_seed ~fault ~obs in
    let events = List.rev !buffer in
    List.iter
      (fun (ev : Obs.Event.t) -> if ev.t_us > !offset then offset := ev.t_us)
    events;
    incr offset;
    let check = Obs.Check.check_events events in
    results :=
      {
        scenario = scenario.name;
        index;
        fault;
        counters;
        events = List.length events;
        check;
      }
      :: !results;
    (match progress with Some f -> f index | None -> ())
  done;
  let runs = List.rev !results in
  let violation_count (r : Obs.Check.report) =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts
  in
  {
    runs;
    total_events = List.fold_left (fun acc r -> acc + r.events) 0 runs;
    violations = List.fold_left (fun acc r -> acc + violation_count r.check) 0 runs;
    totals = List.fold_left (fun acc r -> add_counters acc r.counters) [] runs;
  }

let ok s = s.violations = 0

let counter s name = match List.assoc_opt name s.totals with Some n -> n | None -> 0
