type scenario = {
  name : string;
  run :
    seed:int ->
    fault:Device.Fault.config ->
    obs:Obs.Sink.t ->
    (string * int) list;
}

type run_result = {
  scenario : string;
  index : int;
  fault : Device.Fault.config;
  counters : (string * int) list;
  events : int;
  check : Obs.Check.report;
}

type summary = {
  runs : run_result list;
  total_events : int;
  violations : int;
  totals : (string * int) list;  (* counters summed across runs, first-seen order *)
}

(* One randomized-but-reproducible fault configuration.  Escalation is
   always [Fail]: chaos exists to exercise the recovery paths, and
   [Degrade] never surfaces a failure.  Every draw comes from the
   caller's rng, so a fixed chaos seed fixes the whole schedule. *)
let schedule rng =
  let read_error_prob = 0.05 +. Sim.Rng.float rng 0.4 in
  let write_error_prob = if Sim.Rng.bool rng then Sim.Rng.float rng 0.25 else 0. in
  let permanent_prob = Sim.Rng.float rng 0.3 in
  let max_retries = Sim.Rng.int rng 4 in
  Device.Fault.config
    ~seed:(Sim.Rng.int rng 0x3FFFFFFF)
    ~max_retries ~write_error_prob ~permanent_prob ~on_exhausted:Device.Fault.Fail
    ~read_error_prob ()

let add_counters totals counters =
  List.fold_left
    (fun totals (k, v) ->
      match List.assoc_opt k totals with
      | Some _ -> List.map (fun (k', v') -> if k' = k then (k', v' + v) else (k', v')) totals
      | None -> totals @ [ (k, v) ])
    totals counters

let run ?(trace = Obs.Sink.null) ?progress ~scenarios ~runs ~seed () =
  assert (runs >= 1 && scenarios <> []);
  let rng = Sim.Rng.create seed in
  let n = List.length scenarios in
  let results = ref [] in
  let offset = ref 0 in
  for index = 0 to runs - 1 do
    let scenario = List.nth scenarios (index mod n) in
    let fault = schedule rng in
    let run_seed = Sim.Rng.int rng 0x3FFFFFFF in
    let buffer = ref [] in
    let collect = Obs.Sink.collect (fun ev -> buffer := ev :: !buffer) in
    (* One segment per run splices everything — the collected stream
       and the optional JSONL trace — into one monotone multi-run
       stream that Obs.Check can scope. *)
    let obs =
      Obs.Sink.segment ~seed:run_seed
        ~config:("chaos scenario=" ^ scenario.name)
        ~run:index ~offset:!offset
        (Obs.Sink.tee collect trace)
    in
    let counters = scenario.run ~seed:run_seed ~fault ~obs in
    let events = List.rev !buffer in
    List.iter
      (fun (ev : Obs.Event.t) -> if ev.t_us > !offset then offset := ev.t_us)
    events;
    incr offset;
    let check = Obs.Check.check_events events in
    results :=
      {
        scenario = scenario.name;
        index;
        fault;
        counters;
        events = List.length events;
        check;
      }
      :: !results;
    (match progress with Some f -> f index | None -> ())
  done;
  let runs = List.rev !results in
  let violation_count (r : Obs.Check.report) =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts
  in
  {
    runs;
    total_events = List.fold_left (fun acc r -> acc + r.events) 0 runs;
    violations = List.fold_left (fun acc r -> acc + violation_count r.check) 0 runs;
    totals = List.fold_left (fun acc r -> add_counters acc r.counters) [] runs;
  }

let ok s = s.violations = 0

let counter s name = match List.assoc_opt name s.totals with Some n -> n | None -> 0

(* {2 Multicore chaos} *)

(* Pure data: this module sits below lib/parallel, so shard-kill
   schedules are described here and converted to Supervisor kills by
   the experiments layer. *)
type shard_kill = {
  sk_shard : int;
  sk_attempt : int;
  sk_progress : int;
  sk_stall : bool;
}

(* 0-2 kills per shard keeps every schedule inside the default restart
   budget (3): chaos exercises recovery, escalation is a separate,
   deliberate test.  Progresses are sorted so attempt n's kill point
   never precedes attempt n-1's — later attempts resume at or before
   the earlier kill point, so each kill has a chance to fire.  A fifth
   of the kills stall instead of crashing. *)
let shard_schedule rng ~shards ~steps =
  assert (shards >= 1 && steps >= 1);
  List.concat
    (List.init shards (fun s ->
         let n = Sim.Rng.int rng 3 in
         let points =
           List.sort compare
             (List.init n (fun _ -> Sim.Rng.int_in rng 1 steps))
         in
         List.mapi
           (fun a p ->
             { sk_shard = s; sk_attempt = a; sk_progress = p;
               sk_stall = Sim.Rng.int rng 5 = 0 })
           points))

type shard_scenario = {
  sh_name : string;
  sh_run :
    seed:int ->
    kills:shard_kill list ->
    engine:Obs.Sink.t ->
    supervision:Obs.Sink.t ->
    (string * int) list;
}

type sharded_result = {
  sr_scenario : string;
  sr_index : int;
  sr_kills : shard_kill list;
  sr_counters : (string * int) list;
  sr_engine_events : int;
  sr_supervision_events : int;
  sr_check : Obs.Check.report;
}

type sharded_summary = {
  sr_runs : sharded_result list;
  sr_total_events : int;
  sr_violations : int;
  sr_totals : (string * int) list;
}

(* A sharded round produces two vocabularies — the engine trace and
   the supervision trace — which must live in separate run segments or
   the vocabulary invariant (rightly) fires.  The scenario writes into
   plain buffering sinks; the harness splices the buffers into the
   JSONL trace afterwards as runs 2i (engine) and 2i+1 (supervision),
   when it knows the engine segment's time extent. *)
let run_sharded ?(trace = Obs.Sink.null) ?progress ?kills ~scenarios ~shards
    ~steps ~runs ~seed () =
  assert (runs >= 1 && scenarios <> []);
  let rng = Sim.Rng.create seed in
  let n = List.length scenarios in
  let results = ref [] in
  let offset = ref 0 in
  let emit_segment ~seed ~config ~run events =
    let seg = Obs.Sink.segment ~seed ~config ~run ~offset:!offset trace in
    List.iter (Obs.Sink.emit seg) events;
    List.iter
      (fun (ev : Obs.Event.t) ->
        if !offset + ev.t_us >= !offset then
          offset := max !offset (!offset + ev.t_us))
      events;
    incr offset
  in
  for index = 0 to runs - 1 do
    let scenario = List.nth scenarios (index mod n) in
    let drawn = shard_schedule rng ~shards ~steps in
    let kills = match kills with Some ks -> ks | None -> drawn in
    let run_seed = Sim.Rng.int rng 0x3FFFFFFF in
    let engine_buf = ref [] in
    let sup_buf = ref [] in
    let counters =
      scenario.sh_run ~seed:run_seed ~kills
        ~engine:(Obs.Sink.collect (fun ev -> engine_buf := ev :: !engine_buf))
        ~supervision:(Obs.Sink.collect (fun ev -> sup_buf := ev :: !sup_buf))
    in
    let engine_events = List.rev !engine_buf in
    let sup_events = List.rev !sup_buf in
    let config = "chaos sharded scenario=" ^ scenario.sh_name in
    if Obs.Sink.is_active trace then begin
      emit_segment ~seed:run_seed ~config ~run:(2 * index) engine_events;
      emit_segment ~seed:run_seed ~config:(config ^ " supervision")
        ~run:((2 * index) + 1)
        sup_events
    end;
    (* In-memory check: same two-segment structure, one boundary. *)
    let boundary =
      Obs.Event.make ~t_us:0
        (Obs.Event.Run_start { run = 1; seed = None; config = None })
    in
    let check = Obs.Check.check_events (engine_events @ (boundary :: sup_events)) in
    results :=
      {
        sr_scenario = scenario.sh_name;
        sr_index = index;
        sr_kills = kills;
        sr_counters = counters;
        sr_engine_events = List.length engine_events;
        sr_supervision_events = List.length sup_events;
        sr_check = check;
      }
      :: !results;
    (match progress with Some f -> f index | None -> ())
  done;
  let rounds = List.rev !results in
  let violation_count (r : Obs.Check.report) =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts
  in
  {
    sr_runs = rounds;
    sr_total_events =
      List.fold_left
        (fun acc r -> acc + r.sr_engine_events + r.sr_supervision_events)
        0 rounds;
    sr_violations =
      List.fold_left (fun acc r -> acc + violation_count r.sr_check) 0 rounds;
    sr_totals =
      List.fold_left (fun acc r -> add_counters acc r.sr_counters) [] rounds;
  }

let sharded_ok s = s.sr_violations = 0

let sharded_counter s name =
  match List.assoc_opt name s.sr_totals with Some n -> n | None -> 0
