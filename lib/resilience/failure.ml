type t =
  | Io_failed of { page : int; io : Obs.Event.io; attempts : int; at_us : int }
  | Swap_in_failed of { segment : int; words : int; attempts : int; at_us : int }
  | Job_failed of { job : int; restarts : int; at_us : int }
  | Shard_crashed of { shard : int; restarts : int; at_us : int }
  | Shard_stalled of { shard : int; restarts : int; at_us : int }
  | Watchdog_tripped of { rule : string; shard : int; at_us : int }

let of_device (f : Device.Model.failure) =
  Io_failed { page = f.page; io = f.kind; attempts = f.attempts; at_us = f.at_us }

let at_us = function
  | Io_failed { at_us; _ } | Swap_in_failed { at_us; _ } | Job_failed { at_us; _ }
  | Shard_crashed { at_us; _ } | Shard_stalled { at_us; _ }
  | Watchdog_tripped { at_us; _ }
    -> at_us

let to_string = function
  | Io_failed { page; io; attempts; at_us } ->
    Printf.sprintf "%s of page %d failed after %d attempt(s) at %d us"
      (Obs.Event.io_name io) page attempts at_us
  | Swap_in_failed { segment; words; attempts; at_us } ->
    Printf.sprintf "swap-in of segment %d (%d words) failed after %d attempt(s) at %d us"
      segment words attempts at_us
  | Job_failed { job; restarts; at_us } ->
    Printf.sprintf "job %d failed at %d us after %d restart(s)" job at_us restarts
  | Shard_crashed { shard; restarts; at_us } ->
    Printf.sprintf "shard %d crashed at %d us after %d restart(s)" shard at_us restarts
  | Shard_stalled { shard; restarts; at_us } ->
    Printf.sprintf "shard %d stalled at %d us after %d restart(s)" shard at_us restarts
  | Watchdog_tripped { rule; shard; at_us } ->
    Printf.sprintf "watchdog rule %S tripped on shard %d at %d us" rule shard at_us
