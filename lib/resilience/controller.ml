type config = {
  period_us : int;
  low_utilization : float;
  high_utilization : float;
  min_active : int;
}

let config ?(period_us = 20_000) ?(low_utilization = 0.35)
    ?(high_utilization = 0.65) ?(min_active = 1) () =
  assert (period_us > 0);
  assert (0. <= low_utilization && low_utilization <= high_utilization
          && high_utilization <= 1.);
  assert (min_active >= 1);
  { period_us; low_utilization; high_utilization; min_active }

type verdict = Steady | Shed_one | Admit_one

type t = {
  cfg : config;
  mutable window_start : int;
  mutable busy_us : int;  (* compute time spent inside the current window *)
  window_faults : (int, int) Hashtbl.t;  (* job -> faults, current window *)
  scored_faults : (int, int) Hashtbl.t;  (* job -> faults, last closed window *)
  level : Obs.Series.t;
  mutable ticks : int;
  mutable sheds : int;
  mutable admits : int;
}

let create cfg =
  {
    cfg;
    window_start = 0;
    busy_us = 0;
    window_faults = Hashtbl.create 8;
    scored_faults = Hashtbl.create 8;
    level = Obs.Series.create ();
    ticks = 0;
    sheds = 0;
    admits = 0;
  }

let observe_execute t ~us = t.busy_us <- t.busy_us + us

let observe_fault t ~job =
  let n = match Hashtbl.find_opt t.window_faults job with Some n -> n | None -> 0 in
  Hashtbl.replace t.window_faults job (n + 1)

let tick t ~now ~n_active ~n_parked =
  let elapsed = now - t.window_start in
  if elapsed < t.cfg.period_us then Steady
  else begin
    t.ticks <- t.ticks + 1;
    let utilization = float_of_int t.busy_us /. float_of_int elapsed in
    Obs.Series.sample t.level ~t_us:now (float_of_int n_active);
    (* Close the window: victim scoring sees the finished window's
       per-job fault counts, the next window starts clean. *)
    Hashtbl.reset t.scored_faults;
    (* lint: allow L3 — key-for-key copy into a fresh table is order-independent *)
    Hashtbl.iter (Hashtbl.replace t.scored_faults) t.window_faults;
    Hashtbl.reset t.window_faults;
    t.window_start <- now;
    t.busy_us <- 0;
    if utilization < t.cfg.low_utilization && n_active > t.cfg.min_active then
      Shed_one
    else if utilization > t.cfg.high_utilization && n_parked > 0 then Admit_one
    else Steady
  end

let choose_victim t ~candidates =
  let score (job, occupancy) =
    let faults =
      match Hashtbl.find_opt t.scored_faults job with Some n -> n | None -> 0
    in
    (* Space-time product: pages held x demand put on the backing
       store.  +1 on each factor so a job idle in the window still has
       a finite, comparable score. *)
    (faults + 1) * (occupancy + 1)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun best c -> if score c > score best then c else best)
        first rest
    in
    Some (fst best)

let note_shed t = t.sheds <- t.sheds + 1

let note_admit t = t.admits <- t.admits + 1

let ticks t = t.ticks

let sheds t = t.sheds

let admits t = t.admits

let level_series t = t.level
