type mechanism =
  | Paged of {
      page_size : int;
      frames : int;
      policy : Paging.Spec.t;
      tlb_capacity : int;
      device : Device.Spec.t;
    }
  | Segmented of {
      placement : Freelist.Policy.t;
      replacement : Segmentation.Segment_store.replacement;
      max_segment : int option;
    }
  | Segmented_paged of {
      page_size : int;
      frames : int;
      policy : Paging.Spec.t;
      tlb_capacity : int;
    }

type t = {
  name : string;
  characteristics : Namespace.Characteristics.t;
  core_words : int;
  core_device : Memstore.Device.t;
  backing_words : int;
  backing_device : Memstore.Device.t;
  mechanism : mechanism;
  compute_us_per_ref : int;
}

type report = {
  system : string;
  refs : int;
  faults : int;
  writebacks : int;
  elapsed_us : int option;
  space_time_waiting_fraction : float option;
  tlb_hit_ratio : float option;
  map_accesses : int option;
  external_fragmentation : float option;
}

let report_headers =
  [ "system"; "refs"; "faults"; "writebacks"; "elapsed(us)"; "ST waiting"; "TLB hits";
    "map accesses"; "ext frag" ]

let opt_cell f = function None -> "-" | Some v -> f v

let report_rows reports =
  let row r =
    [
      r.system;
      string_of_int r.refs;
      string_of_int r.faults;
      string_of_int r.writebacks;
      opt_cell string_of_int r.elapsed_us;
      opt_cell Metrics.Table.fmt_pct r.space_time_waiting_fraction;
      opt_cell Metrics.Table.fmt_pct r.tlb_hit_ratio;
      opt_cell string_of_int r.map_accesses;
      opt_cell Metrics.Table.fmt_pct r.external_fragmentation;
    ]
  in
  List.map row reports

let make_tlb capacity =
  if capacity <= 0 then None
  else Some (Paging.Tlb.create ~capacity Paging.Tlb.Lru_replacement)

let ceil_div a b = (a + b - 1) / b

(* Build a fresh timed paging engine sized for [pages] pages of name
   space under this system's devices. *)
let paged_engine t ~obs ~page_size ~frames ~policy_spec ~tlb_capacity ~device ~pages
    ~page_trace ~seed =
  let clock = Sim.Clock.create () in
  let rng = Sim.Rng.create seed in
  let core =
    Memstore.Level.make clock t.core_device ~name:"core"
      ~words:(max t.core_words (frames * page_size))
  in
  let backing =
    Memstore.Level.make clock t.backing_device ~name:"backing"
      ~words:(max t.backing_words (pages * page_size))
  in
  let policy = Paging.Spec.instantiate policy_spec ~rng ~trace:page_trace in
  Paging.Demand.create ~obs ?device:(Device.Spec.instantiate ~obs device)
    {
      Paging.Demand.page_size;
      frames;
      pages;
      core;
      backing;
      policy;
      tlb = make_tlb tlb_capacity;
      compute_us_per_ref = t.compute_us_per_ref;
    }

let paged_report t engine =
  {
    system = t.name;
    refs = Paging.Demand.refs engine;
    faults = Paging.Demand.faults engine;
    writebacks = Paging.Demand.writebacks engine;
    elapsed_us = Some (Sim.Clock.now (Paging.Demand.clock engine));
    space_time_waiting_fraction =
      Some (Metrics.Space_time.waiting_fraction (Paging.Demand.space_time engine));
    tlb_hit_ratio = Option.map Paging.Tlb.hit_ratio (Paging.Demand.tlb engine);
    map_accesses = None;
    external_fragmentation = None;
  }

let segment_store t ~obs ~placement ~replacement ~max_segment ~total_words =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock t.core_device ~name:"core" ~words:t.core_words in
  let backing =
    Memstore.Level.make clock t.backing_device ~name:"backing"
      ~words:(max t.backing_words (2 * total_words))
  in
  ( Segmentation.Segment_store.create ~obs
      { Segmentation.Segment_store.core; backing; placement; replacement; max_segment },
    clock )

let segmented_report t store clock ~refs =
  {
    system = t.name;
    refs;
    faults = Segmentation.Segment_store.segment_faults store;
    writebacks = Segmentation.Segment_store.writebacks store;
    elapsed_us = Some (Sim.Clock.now clock);
    space_time_waiting_fraction =
      Some
        (Metrics.Space_time.waiting_fraction
           (Segmentation.Segment_store.space_time store));
    tlb_hit_ratio = None;
    map_accesses = None;
    external_fragmentation = Some (Segmentation.Segment_store.external_fragmentation store);
  }

let two_level_engine ~page_size ~frames ~policy_spec ~tlb_capacity ~seed =
  let rng = Sim.Rng.create seed in
  Segmentation.Two_level.create
    {
      Segmentation.Two_level.page_size;
      frames;
      tlb = make_tlb tlb_capacity;
      policy = Paging.Spec.instantiate policy_spec ~rng ~trace:None;
    }

let two_level_report t engine =
  {
    system = t.name;
    refs = Segmentation.Two_level.refs engine;
    faults = Segmentation.Two_level.faults engine;
    writebacks = 0;
    elapsed_us = None;
    space_time_waiting_fraction = None;
    tlb_hit_ratio = Option.map Paging.Tlb.hit_ratio (Segmentation.Two_level.tlb engine);
    map_accesses = Some (Segmentation.Two_level.map_accesses engine);
    external_fragmentation = None;
  }

(* Chop a linear name space into equal segments, the way a B5000 compiler
   handles structures larger than the maximum segment. *)
let chop ~chunk trace =
  let extent = max 1 (Workload.Trace.extent trace) in
  let segments = Array.make (ceil_div extent chunk) chunk in
  let refs = Array.map (fun addr -> (addr / chunk, addr mod chunk)) trace in
  (segments, refs)

let default_chunk = 1 lsl 18

let rec run_linear t ?(seed = 1) ?(obs = Obs.Sink.null) trace =
  match t.mechanism with
  | Paged { page_size; frames; policy; tlb_capacity; device } ->
    let pages = max 1 (ceil_div (Workload.Trace.extent trace) page_size) in
    let page_trace = Some (Workload.Trace.to_pages ~page_size trace) in
    let engine =
      paged_engine t ~obs ~page_size ~frames ~policy_spec:policy ~tlb_capacity ~device
        ~pages
        ~page_trace ~seed
    in
    Paging.Demand.run engine trace;
    paged_report t engine
  | Segmented { max_segment; _ } ->
    (* Compilers segmented at the level of procedures and blocks; chop
       the linear space into segments of at most 1024 words, the B5000's
       actual limit, rather than a machine's theoretical maximum. *)
    let chunk = match max_segment with Some m -> min m 1024 | None -> 1024 in
    let segments, refs = chop ~chunk trace in
    run_segmented t ~seed ~obs ~segments refs
  | Segmented_paged _ ->
    let segments, refs = chop ~chunk:default_chunk trace in
    run_segmented t ~seed ~obs ~segments refs

and run_segmented t ?(seed = 1) ?(obs = Obs.Sink.null) ~segments refs =
  match t.mechanism with
  | Paged { page_size; frames; policy; tlb_capacity; device } ->
    (* Segments packed contiguously into the linear name space: address
       arithmetic runs across segment boundaries unchecked. *)
    let bases = Array.make (Array.length segments) 0 in
    let total = ref 0 in
    Array.iteri
      (fun i len ->
        bases.(i) <- !total;
        total := !total + len)
      segments;
    let word_trace = Array.map (fun (s, off) -> bases.(s) + off) refs in
    let pages = max 1 (ceil_div !total page_size) in
    let engine =
      paged_engine t ~obs ~page_size ~frames ~policy_spec:policy ~tlb_capacity ~device
        ~pages
        ~page_trace:(Some (Workload.Trace.to_pages ~page_size word_trace))
        ~seed
    in
    Paging.Demand.run engine word_trace;
    paged_report t engine
  | Segmented { placement; replacement; max_segment } ->
    let total_words = Array.fold_left ( + ) 0 segments in
    let store, clock =
      segment_store t ~obs ~placement ~replacement ~max_segment ~total_words
    in
    let ids =
      Array.map (fun len -> Segmentation.Segment_store.define store ~length:len ()) segments
    in
    Array.iter
      (fun (s, off) ->
        let (_ : int64) = Segmentation.Segment_store.read store ids.(s) off in
        ())
      refs;
    segmented_report t store clock ~refs:(Array.length refs)
  | Segmented_paged { page_size; frames; policy; tlb_capacity } ->
    let engine = two_level_engine ~page_size ~frames ~policy_spec:policy ~tlb_capacity ~seed in
    let ids =
      Array.map (fun len -> Segmentation.Two_level.add_segment engine ~length:len) segments
    in
    Array.iter
      (fun (s, off) -> Segmentation.Two_level.touch engine ~segment:ids.(s) ~offset:off ~write:false)
      refs;
    two_level_report t engine

let run_annotated t ?(seed = 1) ?(obs = Obs.Sink.null) steps =
  match t.mechanism with
  | Paged { page_size; frames; policy; tlb_capacity; device } ->
    let trace = Predictive.Directive.strip steps in
    let pages = max 1 (ceil_div (Workload.Trace.extent trace) page_size) in
    let engine =
      paged_engine t ~obs ~page_size ~frames ~policy_spec:policy ~tlb_capacity ~device
        ~pages
        ~page_trace:(Some (Workload.Trace.to_pages ~page_size trace))
        ~seed
    in
    Predictive.Directive.run_annotated engine steps;
    paged_report t engine
  | Segmented _ | Segmented_paged _ ->
    invalid_arg "System.run_annotated: only paged systems accept page advice"
