(** A dynamic storage allocation system, assembled from the paper's
    design space.

    A [System.t] pairs the four-characteristic classification with the
    concrete mechanism that realizes it — a paging engine, a
    segment-unit store, or a two-level segment-and-page mapping — and
    the storage levels it runs over.  Machines from the paper's appendix
    ({!Machines}) are values of this type; experiments assemble ad-hoc
    ones to explore the rest of the design space.

    Running a system on a workload instantiates fresh engines (runs are
    independent and deterministic given the seed) and returns a uniform
    {!report}. *)

type mechanism =
  | Paged of {
      page_size : int;
      frames : int;
      policy : Paging.Spec.t;
      tlb_capacity : int;
      device : Device.Spec.t;
          (** backing-store model; {!Device.Spec.legacy} keeps the flat
              [backing_device] latency, bit-identical to before *)
    }
  | Segmented of {
      placement : Freelist.Policy.t;
      replacement : Segmentation.Segment_store.replacement;
      max_segment : int option;
    }
  | Segmented_paged of {
      page_size : int;
      frames : int;
      policy : Paging.Spec.t;
      tlb_capacity : int;
    }

type t = {
  name : string;
  characteristics : Namespace.Characteristics.t;
  core_words : int;
  core_device : Memstore.Device.t;
  backing_words : int;
  backing_device : Memstore.Device.t;
  mechanism : mechanism;
  compute_us_per_ref : int;
}

type report = {
  system : string;
  refs : int;
  faults : int;  (** page or segment faults *)
  writebacks : int;
  elapsed_us : int option;  (** simulated time (timed engines only) *)
  space_time_waiting_fraction : float option;
  tlb_hit_ratio : float option;
  map_accesses : int option;  (** two-level engines only *)
  external_fragmentation : float option;  (** segmented stores only *)
}

val report_rows : report list -> string list list
(** Rows for {!Metrics.Table.print} with headers {!report_headers}. *)

val report_headers : string list

(** {2 Running workloads} *)

val run_linear : t -> ?seed:int -> ?obs:Obs.Sink.t -> Workload.Trace.t -> report
(** Drive a word-address trace through a [Paged] system.  A [Segmented]
    system treats the linear space as compiler-sized segments (at most
    1024 words, the B5000 limit — the matrix trick); [Segmented_paged]
    maps it as one large segment per 2^18 words.  [seed] feeds
    stochastic policies.

    [obs] is handed to the underlying engine ({!Paging.Demand} or
    {!Segmentation.Segment_store}); two-level engines are not yet
    instrumented.  The default no-op sink changes nothing. *)

val run_annotated :
  t -> ?seed:int -> ?obs:Obs.Sink.t -> Predictive.Directive.step array -> report
(** Like {!run_linear} with predictive directives interleaved.  Only
    [Paged] systems accept advice; raises [Invalid_argument]
    otherwise. *)

val run_segmented :
  t -> ?seed:int -> ?obs:Obs.Sink.t -> segments:int array -> (int * int) array -> report
(** Drive (segment, offset) references over declared segment lengths.
    Works for every mechanism: a [Paged] system lays the segments out
    contiguously in its linear name space (no bound checking between
    them — exactly the paper's complaint), the others map segments
    natively. *)
