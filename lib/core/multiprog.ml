type job_report = {
  job : string;
  refs : int;
  faults : int;
  finish_us : int;
  restarts : int;
  completed : bool;
}

type report = {
  elapsed_us : int;
  cpu_busy_us : int;
  cpu_utilization : float;
  total_faults : int;
  restarts : int;
  jobs_failed : int;
  jobs : job_report list;
}

type job_state = {
  spec : Workload.Job.t;
  index : int;
  mutable pos : int;
  mutable faults : int;
  mutable finish_us : int;
  mutable finished : bool;
  mutable restarts : int;
  mutable completed : bool;
  mutable parked : bool;  (* shed by the load controller; not scheduled *)
}

let key_bits = 32

let key ~job ~page = (job lsl key_bits) lor page

let job_of_key k = k lsr key_bits

let run ?(quantum_refs = 50) ?(obs = Obs.Sink.null) ?device ?(max_restarts = 3)
    ?controller ~frames ~policy ~fetch_us specs =
  assert (frames > 0 && fetch_us >= 0 && quantum_refs > 0 && max_restarts >= 0);
  let tracing = Obs.Sink.is_active obs in
  let jobs =
    Array.of_list
      (List.mapi
         (fun index spec ->
           { spec; index; pos = 0; faults = 0; finish_us = 0; finished = false;
             restarts = 0; completed = false; parked = false })
         specs)
  in
  assert (Array.length jobs > 0);
  let resident : (int, int) Hashtbl.t = Hashtbl.create frames in  (* key -> ready_at *)
  let ready : int Queue.t = Queue.create () in
  let blocked : int Sim.Heap.t = Sim.Heap.create () in
  (* Device mode only: which job is waiting on each request, and jobs
     stalled because every frame held an in-flight page (woken on any
     completion, which makes a frame evictable again). *)
  let req_owner : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let stalled : int Queue.t = Queue.create () in
  (* Load control: runnable-but-parked jobs, and shed order for FIFO
     re-admission. *)
  let parked_ready : int Queue.t = Queue.create () in
  let shed_order : int Queue.t = Queue.create () in
  Array.iter (fun j -> Queue.add j.index ready) jobs;
  let now = ref 0 and busy = ref 0 and device_free_at = ref 0 in
  let finished = ref 0 in
  let failed = ref 0 in
  (* An in-flight fetch whose completion the device has not yet
     committed to a time (requests queue and may be reordered). *)
  let in_flight = max_int in
  let emit kind = Obs.Sink.emit obs (Obs.Event.make ~t_us:!now kind) in
  if tracing then Array.iter (fun j -> emit (Obs.Event.Job_start { job = j.index })) jobs;
  (* Drop every committed-resident page of job [idx] (its in-flight
     pages, if any, stay owned by req_owner and resolve on delivery). *)
  let evict_job_pages idx =
    let mine =
      (* lint: allow L3 — the keys are sorted on the next line *)
      Hashtbl.fold
        (fun k ready_at acc ->
          if job_of_key k = idx && ready_at <> in_flight then k :: acc else acc)
        resident []
    in
    List.iter
      (fun k ->
        Hashtbl.remove resident k;
        policy.Paging.Replacement.on_evict ~page:k;
        if tracing then emit (Obs.Event.Eviction { page = k }))
      (List.sort compare mine)
  in
  let unpark j =
    if j.parked then begin
      j.parked <- false;
      (match controller with
       | Some c -> Resilience.Controller.note_admit c
       | None -> ());
      if tracing then emit (Obs.Event.Load_admit { job = j.index })
    end
  in
  let finish_job ?(completed = true) j =
    unpark j;  (* a failed shed job leaves the shed set before stopping *)
    j.finished <- true;
    j.completed <- completed;
    j.finish_us <- !now;
    incr finished;
    if not completed then incr failed;
    if tracing then emit (Obs.Event.Job_stop { job = j.index })
  in
  (* Recovery for an unrecoverable fetch: abort the job and restart it
     from the beginning — its working set is dropped, its reference
     position rewinds — up to [max_restarts] times, after which the job
     is stopped and reported failed. *)
  let abort_job j ~k =
    (* A shed job can still have the fetch that was in flight when it
       was parked; the failure empties its working set anyway, so the
       abort re-admits it rather than restarting a parked job. *)
    unpark j;
    Hashtbl.remove resident k;
    (* the fault announced page [k]; retract it before the job's
       committed pages go *)
    if tracing then emit (Obs.Event.Eviction { page = k });
    evict_job_pages j.index;
    if j.restarts < max_restarts then begin
      j.restarts <- j.restarts + 1;
      j.pos <- 0;
      if tracing then emit (Obs.Event.Job_abort { job = j.index; restarts = j.restarts });
      Queue.add j.index ready
    end
    else finish_job ~completed:false j;
    Queue.transfer stalled ready
  in
  let deliver req fin =
    match Hashtbl.find_opt req_owner req with
    | None -> ()
    | Some (idx, k) ->
      Hashtbl.remove req_owner req;
      (match device with
       | Some m ->
         (match Device.Model.failure_of m req with
          | Some _ -> abort_job jobs.(idx) ~k
          | None ->
            Hashtbl.replace resident k fin;
            Queue.add idx ready;
            Queue.transfer stalled ready)
       | None ->
         Hashtbl.replace resident k fin;
         Queue.add idx ready;
         Queue.transfer stalled ready)
  in
  let candidates () =
    (* Frames whose fetch has completed; in-flight pages are pinned. *)
    let pool =
      (* lint: allow L3 — the pool is sorted on the next line *)
      Hashtbl.fold (fun k ready_at acc -> if ready_at <= !now then k :: acc else acc)
        resident []
    in
    Array.of_list (List.sort compare pool)
  in
  let start_fetch j k =
    j.faults <- j.faults + 1;
    (match controller with
     | Some c -> Resilience.Controller.observe_fault c ~job:j.index
     | None -> ());
    if tracing then emit (Obs.Event.Fault { page = k });
    (match device with
     | None ->
       let start = max !now !device_free_at in
       let finish = start + fetch_us in
       device_free_at := finish;
       Hashtbl.replace resident k finish;
       Sim.Heap.add blocked finish j.index
     | Some m ->
       let req =
         Device.Model.submit m ~now:!now ~kind:Device.Request.Demand ~page:k ~words:0
       in
       Hashtbl.replace resident k in_flight;
       Hashtbl.replace req_owner req (j.index, k));
    policy.Paging.Replacement.on_load ~page:k
  in
  (* Run job [j] until it faults, exhausts its quantum, or finishes.
     Returns true if it should be requeued as ready. *)
  let execute j =
    Obs.Prof.span "multiprog.execute" @@ fun () ->
    let compute_us = j.spec.Workload.Job.compute_us_per_ref in
    let executed = ref 0 in
    let rec step quantum =
      if j.pos >= Array.length j.spec.Workload.Job.refs then begin
        finish_job j;
        false
      end
      else if quantum = 0 then true
      else begin
        let page = j.spec.Workload.Job.refs.(j.pos) in
        let k = key ~job:j.index ~page in
        policy.Paging.Replacement.on_reference ~page:k ~write:false;
        match Hashtbl.find_opt resident k with
        | Some ready_at when ready_at <= !now ->
          j.pos <- j.pos + 1;
          incr executed;
          now := !now + compute_us;
          busy := !busy + compute_us;
          step (quantum - 1)
        | Some ready_at ->
          (* Our own page is still in flight; wait for it. *)
          if ready_at = in_flight then Queue.add j.index stalled
          else Sim.Heap.add blocked ready_at j.index;
          false
        | None ->
          if Hashtbl.length resident >= frames then begin
            let pool = candidates () in
            if Array.length pool = 0 then begin
              (* Everything in flight: stall until something arrives. *)
              (match device with
               | Some _ -> Queue.add j.index stalled
               | None ->
                 let earliest =
                   (* lint: allow L3 — min over all bindings is order-independent *)
                   Hashtbl.fold (fun _ r acc -> min r acc) resident max_int
                 in
                 Sim.Heap.add blocked earliest j.index);
              false
            end
            else begin
              let victim =
                Obs.Prof.span "multiprog.victim" (fun () ->
                    policy.Paging.Replacement.choose_victim ~candidates:pool)
              in
              Hashtbl.remove resident victim;
              policy.Paging.Replacement.on_evict ~page:victim;
              if tracing then emit (Obs.Event.Eviction { page = victim });
              start_fetch j k;
              false
            end
          end
          else begin
            start_fetch j k;
            false
          end
      end
    in
    let requeue = step quantum_refs in
    (match controller with
     | Some c when !executed > 0 ->
       Resilience.Controller.observe_execute c ~us:(!executed * compute_us)
     | Some _ | None -> ());
    requeue
  in
  let wake_due () =
    let rec loop () =
      match Sim.Heap.min blocked with
      | Some (at, _) when at <= !now ->
        (match Sim.Heap.pop blocked with
         | Some (_, idx) -> Queue.add idx ready
         | None -> ());
        loop ()
      | Some _ | None -> ()
    in
    loop ()
  in
  let occupancy idx =
    (* lint: allow L3 — commutative count over all bindings is order-independent *)
    Hashtbl.fold
      (fun k _ acc -> if job_of_key k = idx then acc + 1 else acc)
      resident 0
  in
  let shed_one c =
    let candidates =
      Array.to_list jobs
      |> List.filter_map (fun j ->
             if j.finished || j.parked then None
             else Some (j.index, occupancy j.index))
    in
    (* keep at least one job active even if tick raced a finish *)
    if List.length candidates > 1 then
      match Resilience.Controller.choose_victim c ~candidates with
      | None -> ()
      | Some idx ->
        let j = jobs.(idx) in
        j.parked <- true;
        Queue.add idx shed_order;
        Resilience.Controller.note_shed c;
        if tracing then emit (Obs.Event.Load_shed { job = idx });
        (* the shed job's working set goes back to the drum: that is
           the point — its frames relieve the others *)
        evict_job_pages idx
  in
  let admit_one () =
    let rec next () =
      match Queue.take_opt shed_order with
      | None -> false
      | Some idx ->
        let j = jobs.(idx) in
        if j.finished || not j.parked then next ()
        else begin
          unpark j;
          (* runnable-but-parked jobs bounce through parked_ready; put
             everyone back and let the parked flag re-sort them *)
          Queue.transfer parked_ready ready;
          true
        end
    in
    next ()
  in
  let control_tick () =
    Obs.Prof.span "multiprog.control" @@ fun () ->
    match controller with
    | None -> ()
    | Some c ->
      let n_active = ref 0 and n_parked = ref 0 in
      Array.iter
        (fun j ->
          if not j.finished then
            if j.parked then incr n_parked else incr n_active)
        jobs;
      (match Resilience.Controller.tick c ~now:!now ~n_active:!n_active
               ~n_parked:!n_parked
       with
       | Resilience.Controller.Steady -> ()
       | Resilience.Controller.Shed_one -> shed_one c
       | Resilience.Controller.Admit_one ->
         let (_ : bool) = admit_one () in
         ())
  in
  (* If scheduling has gone quiet but parked runnable jobs remain, the
     controller's watermarks are moot: force re-admission rather than
     idle forever (and rather than hit the no-pending-work assert). *)
  let force_admissions () =
    match controller with
    | None -> ()
    | Some _ ->
      let progress = ref true in
      while
        !progress
        && Queue.is_empty ready
        && (not (Queue.is_empty parked_ready))
        && Hashtbl.length req_owner = 0
        && Sim.Heap.min blocked = None
      do
        progress := admit_one ()
      done
  in
  while !finished < Array.length jobs do
    (match device with
     | Some m -> Device.Model.deliver_due m ~now:!now deliver
     | None -> ());
    wake_due ();
    control_tick ();
    force_admissions ();
    if Queue.is_empty ready then begin
      (* Processor idle until the next fetch completes. *)
      match device with
      | Some m ->
        (match Device.Model.take_completion m with
         | Some (req, fin) ->
           now := max !now fin;
           deliver req fin
         | None -> assert false  (* unfinished jobs must await some request *))
      | None ->
        (match Sim.Heap.min blocked with
         | Some (at, _) -> now := max !now at
         | None -> assert false  (* unfinished jobs must be ready or blocked *))
    end
    else begin
      let idx = Queue.pop ready in
      let j = jobs.(idx) in
      if not j.finished then
        if j.parked then Queue.add idx parked_ready
        else if execute j then Queue.add idx ready
    end
  done;
  let elapsed = !now in
  {
    elapsed_us = elapsed;
    cpu_busy_us = !busy;
    cpu_utilization = (if elapsed = 0 then 1. else float_of_int !busy /. float_of_int elapsed);
    total_faults = Array.fold_left (fun acc j -> acc + j.faults) 0 jobs;
    restarts = Array.fold_left (fun acc j -> acc + j.restarts) 0 jobs;
    jobs_failed = !failed;
    jobs =
      Array.to_list
        (Array.map
           (fun j ->
             {
               job = j.spec.Workload.Job.name;
               refs = Array.length j.spec.Workload.Job.refs;
               faults = j.faults;
               finish_us = j.finish_us;
               restarts = j.restarts;
               completed = j.completed;
             })
           jobs);
  }
