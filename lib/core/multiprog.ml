type job_report = {
  job : string;
  refs : int;
  faults : int;
  finish_us : int;
}

type report = {
  elapsed_us : int;
  cpu_busy_us : int;
  cpu_utilization : float;
  total_faults : int;
  jobs : job_report list;
}

type job_state = {
  spec : Workload.Job.t;
  index : int;
  mutable pos : int;
  mutable faults : int;
  mutable finish_us : int;
  mutable finished : bool;
}

let key_bits = 32

let key ~job ~page = (job lsl key_bits) lor page

let run ?(quantum_refs = 50) ?(obs = Obs.Sink.null) ?device ~frames ~policy ~fetch_us
    specs =
  assert (frames > 0 && fetch_us >= 0 && quantum_refs > 0);
  let tracing = Obs.Sink.is_active obs in
  let jobs =
    Array.of_list
      (List.mapi
         (fun index spec ->
           { spec; index; pos = 0; faults = 0; finish_us = 0; finished = false })
         specs)
  in
  assert (Array.length jobs > 0);
  let resident : (int, int) Hashtbl.t = Hashtbl.create frames in  (* key -> ready_at *)
  let ready : int Queue.t = Queue.create () in
  let blocked : int Sim.Heap.t = Sim.Heap.create () in
  (* Device mode only: which job is waiting on each request, and jobs
     stalled because every frame held an in-flight page (woken on any
     completion, which makes a frame evictable again). *)
  let req_owner : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let stalled : int Queue.t = Queue.create () in
  Array.iter (fun j -> Queue.add j.index ready) jobs;
  let now = ref 0 and busy = ref 0 and device_free_at = ref 0 in
  let finished = ref 0 in
  (* An in-flight fetch whose completion the device has not yet
     committed to a time (requests queue and may be reordered). *)
  let in_flight = max_int in
  let deliver req fin =
    match Hashtbl.find_opt req_owner req with
    | None -> ()
    | Some (idx, k) ->
      Hashtbl.remove req_owner req;
      Hashtbl.replace resident k fin;
      Queue.add idx ready;
      Queue.transfer stalled ready
  in
  let emit kind = Obs.Sink.emit obs (Obs.Event.make ~t_us:!now kind) in
  if tracing then Array.iter (fun j -> emit (Obs.Event.Job_start { job = j.index })) jobs;
  let candidates () =
    (* Frames whose fetch has completed; in-flight pages are pinned. *)
    let pool =
      (* lint: allow L3 — the pool is sorted on the next line *)
      Hashtbl.fold (fun k ready_at acc -> if ready_at <= !now then k :: acc else acc)
        resident []
    in
    Array.of_list (List.sort compare pool)
  in
  let start_fetch j k =
    j.faults <- j.faults + 1;
    if tracing then emit (Obs.Event.Fault { page = k });
    (match device with
     | None ->
       let start = max !now !device_free_at in
       let finish = start + fetch_us in
       device_free_at := finish;
       Hashtbl.replace resident k finish;
       Sim.Heap.add blocked finish j.index
     | Some m ->
       let req =
         Device.Model.submit m ~now:!now ~kind:Device.Request.Demand ~page:k ~words:0
       in
       Hashtbl.replace resident k in_flight;
       Hashtbl.replace req_owner req (j.index, k));
    policy.Paging.Replacement.on_load ~page:k
  in
  let finish_job j =
    j.finished <- true;
    j.finish_us <- !now;
    incr finished;
    if tracing then emit (Obs.Event.Job_stop { job = j.index })
  in
  (* Run job [j] until it faults, exhausts its quantum, or finishes.
     Returns true if it should be requeued as ready. *)
  let execute j =
    let rec step quantum =
      if j.pos >= Array.length j.spec.Workload.Job.refs then begin
        finish_job j;
        false
      end
      else if quantum = 0 then true
      else begin
        let page = j.spec.Workload.Job.refs.(j.pos) in
        let k = key ~job:j.index ~page in
        policy.Paging.Replacement.on_reference ~page:k ~write:false;
        match Hashtbl.find_opt resident k with
        | Some ready_at when ready_at <= !now ->
          j.pos <- j.pos + 1;
          now := !now + j.spec.Workload.Job.compute_us_per_ref;
          busy := !busy + j.spec.Workload.Job.compute_us_per_ref;
          step (quantum - 1)
        | Some ready_at ->
          (* Our own page is still in flight; wait for it. *)
          if ready_at = in_flight then Queue.add j.index stalled
          else Sim.Heap.add blocked ready_at j.index;
          false
        | None ->
          if Hashtbl.length resident >= frames then begin
            let pool = candidates () in
            if Array.length pool = 0 then begin
              (* Everything in flight: stall until something arrives. *)
              (match device with
               | Some _ -> Queue.add j.index stalled
               | None ->
                 let earliest =
                   (* lint: allow L3 — min over all bindings is order-independent *)
                   Hashtbl.fold (fun _ r acc -> min r acc) resident max_int
                 in
                 Sim.Heap.add blocked earliest j.index);
              false
            end
            else begin
              let victim = policy.Paging.Replacement.choose_victim ~candidates:pool in
              Hashtbl.remove resident victim;
              policy.Paging.Replacement.on_evict ~page:victim;
              if tracing then emit (Obs.Event.Eviction { page = victim });
              start_fetch j k;
              false
            end
          end
          else begin
            start_fetch j k;
            false
          end
      end
    in
    step quantum_refs
  in
  let wake_due () =
    let rec loop () =
      match Sim.Heap.min blocked with
      | Some (at, _) when at <= !now ->
        (match Sim.Heap.pop blocked with
         | Some (_, idx) -> Queue.add idx ready
         | None -> ());
        loop ()
      | Some _ | None -> ()
    in
    loop ()
  in
  while !finished < Array.length jobs do
    (match device with
     | Some m -> Device.Model.deliver_due m ~now:!now deliver
     | None -> ());
    wake_due ();
    if Queue.is_empty ready then begin
      (* Processor idle until the next fetch completes. *)
      match device with
      | Some m ->
        (match Device.Model.take_completion m with
         | Some (req, fin) ->
           now := max !now fin;
           deliver req fin
         | None -> assert false  (* unfinished jobs must await some request *))
      | None ->
        (match Sim.Heap.min blocked with
         | Some (at, _) -> now := max !now at
         | None -> assert false  (* unfinished jobs must be ready or blocked *))
    end
    else begin
      let idx = Queue.pop ready in
      let j = jobs.(idx) in
      if not j.finished then if execute j then Queue.add idx ready
    end
  done;
  let elapsed = !now in
  {
    elapsed_us = elapsed;
    cpu_busy_us = !busy;
    cpu_utilization = (if elapsed = 0 then 1. else float_of_int !busy /. float_of_int elapsed);
    total_faults = Array.fold_left (fun acc j -> acc + j.faults) 0 jobs;
    jobs =
      Array.to_list
        (Array.map
           (fun j ->
             {
               job = j.spec.Workload.Job.name;
               refs = Array.length j.spec.Workload.Job.refs;
               faults = j.faults;
               finish_us = j.finish_us;
             })
           jobs);
  }
