(** Multiprogrammed demand paging: overlapping fetches with execution.

    The paper (via ATLAS and the M44/44X): "A large space-time product
    will not overly affect the performance of a system if the time spent
    on fetching pages can normally be overlapped with the execution of
    other programs."  This simulator runs k jobs round-robin on one
    processor over a shared frame pool and one backing-store channel: a
    faulting job blocks until its page arrives while the processor picks
    the next ready job.  Experiment C7 sweeps k and the fetch time and
    reads off processor utilization. *)

type job_report = {
  job : string;
  refs : int;
  faults : int;
  finish_us : int;
}

type report = {
  elapsed_us : int;  (** when the last job finished *)
  cpu_busy_us : int;
  cpu_utilization : float;
  total_faults : int;
  jobs : job_report list;
}

val run :
  ?quantum_refs:int ->
  ?obs:Obs.Sink.t ->
  ?device:Device.Model.t ->
  frames:int ->
  policy:Paging.Replacement.t ->
  fetch_us:int ->
  Workload.Job.t list ->
  report
(** [frames] is the shared pool; pages of different jobs never collide
    (page identities are job-tagged).  [policy] arbitrates the shared
    pool.  [fetch_us] is the page fetch time; fetches queue on a single
    channel.  [quantum_refs] (default 50) bounds how long a job keeps
    the processor without faulting.

    With a [device], fetches become queued requests against the timed
    backing-store model instead of the flat [fetch_us] channel: a
    faulting job sleeps until the device commits and completes its
    request, so rotational position, multiple channels, and the
    scheduling policy all shape utilization.  Without it, behaviour is
    bit-identical to before the device subsystem existed.

    With a sink, the scheduler reports job_start / job_stop plus fault
    and eviction events on the shared simulated clock; fault and
    eviction pages are the job-tagged keys. *)
