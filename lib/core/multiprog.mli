(** Multiprogrammed demand paging: overlapping fetches with execution.

    The paper (via ATLAS and the M44/44X): "A large space-time product
    will not overly affect the performance of a system if the time spent
    on fetching pages can normally be overlapped with the execution of
    other programs."  This simulator runs k jobs round-robin on one
    processor over a shared frame pool and one backing-store channel: a
    faulting job blocks until its page arrives while the processor picks
    the next ready job.  Experiment C7 sweeps k and the fetch time and
    reads off processor utilization. *)

type job_report = {
  job : string;
  refs : int;
  faults : int;
  finish_us : int;
  restarts : int;  (** abort-and-restart recoveries this job went through *)
  completed : bool;  (** [false]: the job exhausted its restart budget *)
}

type report = {
  elapsed_us : int;  (** when the last job finished *)
  cpu_busy_us : int;
  cpu_utilization : float;
  total_faults : int;
  restarts : int;  (** abort-and-restart recoveries across all jobs *)
  jobs_failed : int;  (** jobs stopped with their restart budget spent *)
  jobs : job_report list;
}

val run :
  ?quantum_refs:int ->
  ?obs:Obs.Sink.t ->
  ?device:Device.Model.t ->
  ?max_restarts:int ->
  ?controller:Resilience.Controller.t ->
  frames:int ->
  policy:Paging.Replacement.t ->
  fetch_us:int ->
  Workload.Job.t list ->
  report
(** [frames] is the shared pool; pages of different jobs never collide
    (page identities are job-tagged).  [policy] arbitrates the shared
    pool.  [fetch_us] is the page fetch time; fetches queue on a single
    channel.  [quantum_refs] (default 50) bounds how long a job keeps
    the processor without faulting.

    With a [device], fetches become queued requests against the timed
    backing-store model instead of the flat [fetch_us] channel: a
    faulting job sleeps until the device commits and completes its
    request, so rotational position, multiple channels, and the
    scheduling policy all shape utilization.  Without it, behaviour is
    bit-identical to before the device subsystem existed.

    With a sink, the scheduler reports job_start / job_stop plus fault
    and eviction events on the shared simulated clock; fault and
    eviction pages are the job-tagged keys.

    {b Failure recovery.}  A terminal fetch failure (a device under a
    [Fault.Fail] escalation policy) aborts the owning job: its resident
    pages are dropped (traced as evictions), its reference position
    rewinds to the start, and it is re-admitted — a [job_abort] event,
    up to [max_restarts] (default 3) times per job.  A job that
    exhausts the budget stops with [completed = false] and is counted
    in [jobs_failed].

    {b Load control.}  With a [controller], the scheduler reports
    compute progress and faults to it, ticks it every loop iteration,
    and obeys its verdicts: shedding parks the chosen job (its working
    set is evicted, [load_shed] is traced) and re-admission wakes the
    longest-shed one ([load_admit]); if scheduling would otherwise go
    idle with parked jobs remaining, they are force re-admitted.  Read
    shed/admit counts and the multiprogramming-level series off the
    controller afterwards. *)
