(** Crash-consistent per-shard checkpoints for the supervised sharded
    engines.

    A checkpoint is everything a shard body needs to resume mid-run
    and re-emit a {e byte-identical} event suffix: workload progress,
    virtual clock, RNG stream position, an engine-specific integer
    payload, and the (already relabelled) event prefix emitted so far.

    A {!store} is owned by one shard and touched only on that shard's
    worker domain.  The authoritative copy is in memory; with a
    directory the store mirrors every save to
    [DIR/shard<N>.ckpt] via the atomic tmp+rename discipline of
    [Campaign.Store], so readers can never observe a torn write.
    {!load} treats any malformed, truncated or missing file as "no
    checkpoint": resuming from scratch is always correct. *)

exception Inconsistent of string
(** Raised by a shard body when a loaded checkpoint fails verification
    (e.g. a replayed engine disagrees with the recorded clock, RNG or
    digest).  The supervisor treats it as a crash with a poisoned
    checkpoint: the checkpoint is discarded, a restart is consumed,
    and the next attempt starts from scratch. *)

type state = {
  ck_shard : int;
  ck_progress : int;  (** workload steps completed *)
  ck_clock_us : int;  (** the shard's virtual clock *)
  ck_rng : int64;  (** {!Sim.Rng.state} of the shard's stream *)
  ck_payload : int array;  (** engine-specific encoding or digest *)
  ck_events : Obs.Event.t array;  (** emitted event prefix, in order *)
}

type store

val store : ?dir:string -> shard:int -> unit -> store
(** In-memory store for [shard]; with [dir] (created if absent) every
    save is also mirrored to [dir/shard<N>.ckpt]. *)

val save : store -> state -> unit
(** Atomic: after [save], {!load} returns the new state; a crash
    mid-save leaves the previous on-disk checkpoint intact. *)

val load : store -> state option
(** The latest checkpoint, falling back to the on-disk mirror when
    the in-memory copy is empty (a fresh store over an old
    directory).  [None] when there is no usable checkpoint. *)

val clear : store -> unit
(** Discard the checkpoint (memory and disk) — used to poison a
    checkpoint that failed verification. *)
