let available_domains () = Domain.recommended_domain_count ()

(* Workers write disjoint cells of [results]; Domain.join publishes the
   spawned workers' writes to the caller, so no further synchronisation
   is needed.  Worker 0 runs on the calling domain both to save a spawn
   and so that [domains = 1] never spawns at all — the single-domain
   path is ordinary sequential code. *)
let map_shards ~domains ~shards f =
  if domains < 1 then invalid_arg "Pool.map_shards: domains < 1";
  if shards < 0 then invalid_arg "Pool.map_shards: shards < 0";
  if shards = 0 then [||]
  else begin
    let w = min domains shards in
    let results = Array.make shards None in
    let worker d () =
      let s = ref d in
      while !s < shards do
        results.(!s) <- Some (f !s);
        s := !s + w
      done
    in
    let first_exn = ref None in
    let record_exn e =
      match !first_exn with None -> first_exn := Some e | Some _ -> ()
    in
    if w = 1 then worker 0 ()
    else begin
      (* Spawn defensively: if a spawn itself raises partway through,
         the domains already running must still be joined before the
         exception propagates — a leaked domain would keep writing
         into [results] behind the caller's back. *)
      let spawned = Array.make (w - 1) None in
      (try
         for i = 0 to w - 2 do
           spawned.(i) <- Some (Domain.spawn (worker (i + 1)))
         done;
         worker 0 ()
       with e -> record_exn e);
      Array.iter
        (function
          | Some d -> ( try Domain.join d with e -> record_exn e)
          | None -> ())
        spawned;
      match !first_exn with Some e -> raise e | None -> ()
    end;
    Array.map (function Some v -> v | None -> assert false) results
  end
