(* Treiber stack: an atomic head pointing at an immutable cons chain.
   Push and pop retry their CAS until the head they read is still the
   head they swap — the standard lock-free loop.  No ABA guard is
   needed: cells are immutable OCaml blocks, and a cell popped while
   another domain holds a reference to it cannot be reused as a
   different value at the same address by the GC. *)

type 'a t = { head : 'a list Atomic.t }

let create () = { head = Atomic.make [] }

let rec push t v =
  let old = Atomic.get t.head in
  if not (Atomic.compare_and_set t.head old (v :: old)) then push t v

let rec pop t =
  match Atomic.get t.head with
  | [] -> None
  | v :: rest as old ->
    if Atomic.compare_and_set t.head old rest then Some v else pop t

let is_empty t = match Atomic.get t.head with [] -> true | _ :: _ -> false

let length t = List.length (Atomic.get t.head)

let to_list t = Atomic.get t.head
