(* Crash-consistent per-shard checkpoints.  A checkpoint captures
   everything a shard body needs to resume mid-workload and re-emit a
   byte-identical suffix: its progress counter, virtual clock, RNG
   stream position, an engine-specific payload (the arena encoding, or
   a verification digest), and the event prefix already emitted.

   A store is owned by exactly one shard and touched only on its
   worker domain.  The authoritative copy lives in memory; when a
   directory is given, every save is mirrored to disk with the same
   tmp+rename discipline as Campaign.Store, so a torn write can never
   be observed — the file is either the old checkpoint or the new
   one.  Loading tolerates any malformed or truncated file by
   reporting no checkpoint at all: resuming from scratch is always
   correct, just slower. *)

exception Inconsistent of string

type state = {
  ck_shard : int;
  ck_progress : int;
  ck_clock_us : int;
  ck_rng : int64;
  ck_payload : int array;
  ck_events : Obs.Event.t array;
}

type store = {
  latest : state option ref;
  path : string option;
}

let schema = "dsas-shard-ckpt/1"

let store ?dir ~shard () =
  let path =
    Option.map (fun d -> Filename.concat d (Printf.sprintf "shard%d.ckpt" shard)) dir
  in
  (match (path, dir) with
   | Some _, Some d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755
   | _ -> ());
  { latest = ref None; path }

let header st =
  Obs.Json.obj
    [
      ("schema", Obs.Json.String schema);
      ("shard", Obs.Json.Int st.ck_shard);
      ("progress", Obs.Json.Int st.ck_progress);
      ("clock_us", Obs.Json.Int st.ck_clock_us);
      ("rng", Obs.Json.String (Int64.to_string st.ck_rng));
      ("events", Obs.Json.Int (Array.length st.ck_events));
      ( "payload",
        Obs.Json.String
          (String.concat " "
             (Array.to_list (Array.map string_of_int st.ck_payload))) );
    ]

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let save t st =
  t.latest := Some st;
  match t.path with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (header st);
    Buffer.add_char buf '\n';
    Array.iter
      (fun ev ->
        Buffer.add_string buf (Obs.Event.to_json ev);
        Buffer.add_char buf '\n')
      st.ck_events;
    write_atomic path (Buffer.contents buf)

let parse_payload s =
  if String.trim s = "" then Some [||]
  else
    let parts = String.split_on_char ' ' (String.trim s) in
    let ints = List.filter_map int_of_string_opt parts in
    if List.length ints <> List.length parts then None
    else Some (Array.of_list ints)

let load_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let result =
      match input_line ic with
      | exception End_of_file -> None
      | first ->
        (match Obs.Json.parse_obj first with
         | None -> None
         | Some fields ->
           let int k = Obs.Json.mem_int fields k in
           (match
              ( Obs.Json.mem_string fields "schema",
                int "shard", int "progress", int "clock_us", int "events",
                Obs.Json.mem_string fields "rng",
                Obs.Json.mem_string fields "payload" )
            with
            | Some s, Some ck_shard, Some ck_progress, Some ck_clock_us,
              Some n_events, Some rng_s, Some payload_s
              when s = schema && ck_progress >= 0 && ck_clock_us >= 0
                   && n_events >= 0 ->
              (match (Int64.of_string_opt rng_s, parse_payload payload_s) with
               | Some ck_rng, Some ck_payload ->
                 let events = ref [] in
                 let torn = ref false in
                 for _ = 1 to n_events do
                   match input_line ic with
                   | exception End_of_file -> torn := true
                   | line ->
                     (match Obs.Event.of_json line with
                      | Some ev -> events := ev :: !events
                      | None -> torn := true)
                 done;
                 if !torn then None
                 else
                   Some
                     { ck_shard; ck_progress; ck_clock_us; ck_rng; ck_payload;
                       ck_events = Array.of_list (List.rev !events) }
               | _ -> None)
            | _ -> None))
    in
    close_in_noerr ic;
    result

let load t =
  match !(t.latest) with
  | Some _ as st -> st
  | None ->
    (match t.path with
     | None -> None
     | Some path ->
       let st = load_file path in
       t.latest := st;
       st)

let clear t =
  t.latest := None;
  match t.path with
  | None -> ()
  | Some path -> (try Sys.remove path with Sys_error _ -> ())
