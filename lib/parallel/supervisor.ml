(* Per-shard supervision: the restart loop runs entirely on the
   shard's worker domain inside Pool.map_shards, so supervision adds
   no cross-domain traffic.  Supervision events (crash / restart /
   checkpoint) are buffered per shard and merged by the caller into a
   separate supervision stream — never into the engine trace, which
   is what keeps recovered engine traces bit-identical to fault-free
   ones.

   Simulated wall time.  Supervision events carry their own clock:
   [wall_off] maps a shard's private engine clock onto a per-shard
   wall timeline that keeps advancing across restarts.  A checkpoint
   at engine clock [c] lands at [wall_off + c]; a crash lands at the
   last ticked clock; the restart follows after a deterministic
   seeded backoff; and the next attempt's offset is chosen so its
   first events land after the restart.  The engine clocks themselves
   are never shifted — determinism of the engine trace is untouched. *)

type fault = Crash | Stall

type kill = {
  k_shard : int;
  k_attempt : int;
  k_progress : int;
  k_stall : bool;
}

exception Injected of fault

type policy = {
  max_restarts : int;
  backoff_us : int;
  backoff_seed : int;
}

let policy ?(max_restarts = 3) ?(backoff_us = 250) ?(backoff_seed = 0xBAC0FF) () =
  if max_restarts < 0 then invalid_arg "Supervisor.policy: max_restarts < 0";
  if backoff_us < 0 then invalid_arg "Supervisor.policy: backoff_us < 0";
  { max_restarts; backoff_us; backoff_seed }

let no_inject ~shard:_ ~attempt:_ ~progress:_ = None

let inject_of_kills kills ~shard ~attempt ~progress =
  match
    List.find_opt
      (fun k -> k.k_shard = shard && k.k_attempt = attempt && k.k_progress = progress)
      kills
  with
  | Some k -> Some (if k.k_stall then Stall else Crash)
  | None -> None

type snap = {
  sn_clock_us : int;
  sn_rng : int64;
  sn_payload : int array;
  sn_events : Obs.Event.t array;
}

type ctl = {
  c_shard : int;
  c_every : int;
  c_store : Checkpoint.store;
  c_inject : shard:int -> attempt:int -> progress:int -> fault option;
  mutable c_attempt : int;  (* crashes suffered so far *)
  mutable c_progress : int;
  mutable c_last_clock : int;
  mutable c_wall_off : int;
  mutable c_checkpoints : int;
  mutable c_sup : Obs.Event.t list;  (* supervision stream, newest first *)
}

let progress ctl = ctl.c_progress

let step ctl ~clock_us ~snapshot =
  ctl.c_progress <- ctl.c_progress + 1;
  ctl.c_last_clock <- clock_us;
  (match
     ctl.c_inject ~shard:ctl.c_shard ~attempt:ctl.c_attempt
       ~progress:ctl.c_progress
   with
   | Some f -> raise (Injected f)
   | None -> ());
  if ctl.c_every > 0 && ctl.c_progress mod ctl.c_every = 0 then begin
    let sn = snapshot () in
    Checkpoint.save ctl.c_store
      { Checkpoint.ck_shard = ctl.c_shard;
        ck_progress = ctl.c_progress;
        ck_clock_us = sn.sn_clock_us;
        ck_rng = sn.sn_rng;
        ck_payload = sn.sn_payload;
        ck_events = sn.sn_events };
    ctl.c_checkpoints <- ctl.c_checkpoints + 1;
    ctl.c_sup <-
      Obs.Event.make
        ~t_us:(ctl.c_wall_off + sn.sn_clock_us)
        (Obs.Event.Shard_checkpoint
           { shard = ctl.c_shard;
             progress = ctl.c_progress;
             events = Array.length sn.sn_events })
      :: ctl.c_sup
  end

type outcome = {
  o_shard : int;
  o_crashes : int;
  o_restarts : int;
  o_checkpoints : int;
  o_events : Obs.Event.t array;  (* supervision stream, emission order *)
}

let supervise ~policy ~inject ~checkpoint_every ~store ~shard ~run =
  let ctl =
    { c_shard = shard; c_every = checkpoint_every; c_store = store;
      c_inject = inject; c_attempt = 0; c_progress = 0; c_last_clock = 0;
      c_wall_off = 0; c_checkpoints = 0; c_sup = [] }
  in
  let crashes = ref 0 in
  let restarts = ref 0 in
  (* One backoff stream per shard: deterministic for a given policy
     seed regardless of how shards map to domains. *)
  let backoff_rng = Sim.Rng.create (policy.backoff_seed lxor (shard * 0x9E3779B)) in
  let rec attempt () =
    let resume = Checkpoint.load store in
    ctl.c_attempt <- !crashes;
    (match resume with
     | Some st ->
       ctl.c_progress <- st.Checkpoint.ck_progress;
       ctl.c_last_clock <- st.Checkpoint.ck_clock_us
     | None ->
       ctl.c_progress <- 0;
       ctl.c_last_clock <- 0);
    match run ~resume ctl with
    | v ->
      Ok
        ( v,
          { o_shard = shard; o_crashes = !crashes; o_restarts = !restarts;
            o_checkpoints = ctl.c_checkpoints;
            o_events = Array.of_list (List.rev ctl.c_sup) } )
    | exception e ->
      let fault, poisoned =
        match e with
        | Injected f -> (f, false)
        | Checkpoint.Inconsistent _ -> (Crash, true)
        | _ -> (Crash, false)
      in
      (* A checkpoint the body could not trust is worse than none:
         drop it so the next attempt resumes from scratch. *)
      if poisoned then Checkpoint.clear store;
      incr crashes;
      let t_crash = ctl.c_wall_off + ctl.c_last_clock in
      ctl.c_sup <-
        Obs.Event.make ~t_us:t_crash
          (Obs.Event.Shard_crash { shard; attempt = !crashes })
        :: ctl.c_sup;
      if !crashes > policy.max_restarts then
        Error
          (match fault with
           | Crash ->
             Resilience.Failure.Shard_crashed
               { shard; restarts = !restarts; at_us = t_crash }
           | Stall ->
             Resilience.Failure.Shard_stalled
               { shard; restarts = !restarts; at_us = t_crash })
      else begin
        let jitter = Sim.Rng.int backoff_rng (max 1 policy.backoff_us) in
        let backoff = (policy.backoff_us * !crashes) + jitter in
        incr restarts;
        let t_restart = t_crash + backoff in
        ctl.c_sup <-
          Obs.Event.make ~t_us:t_restart
            (Obs.Event.Shard_restart { shard; attempt = !restarts })
          :: ctl.c_sup;
        let resume_clock =
          match Checkpoint.load store with
          | Some st -> st.Checkpoint.ck_clock_us
          | None -> 0
        in
        ctl.c_wall_off <- t_restart - resume_clock;
        attempt ()
      end
  in
  attempt ()
