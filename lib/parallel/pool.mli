(** A domain pool running shard bodies under a {e static} shard-to-
    domain assignment.

    The contract that makes multicore runs reproducible: the shard
    count is part of the workload description, the domain count is
    only an execution width.  Shard [s] runs on worker [s mod w] (with
    [w = min domains shards]), each worker executes its shards in
    ascending index order, and a shard body sees only state it owns —
    so the value computed for shard [s] is a pure function of [s] and
    the body, never of [domains].  Changing [domains] can only change
    wall-clock time. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the upper bound the CLI
    enforces for [--domains]. *)

val map_shards : domains:int -> shards:int -> (int -> 'a) -> 'a array
(** [map_shards ~domains ~shards f] computes [|f 0; ...; f (shards-1)|]
    on [min domains shards] domains (the caller's domain is worker 0;
    the rest are spawned and joined before returning).  [f] must touch
    only per-shard state; results are returned in shard order.  If any
    body raises, all domains are still joined and the first exception
    (lowest worker index) is re-raised.  Raises [Invalid_argument] if
    [domains < 1] or [shards < 0]. *)
