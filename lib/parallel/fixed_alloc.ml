(* Shared pool of magazines (arrays of free slot indices) on a Treiber
   stack, fronted by per-domain caches that hold up to two magazines.
   A magazine array is owned by exactly one party at a time — the pool
   or one cache — so its contents are never written concurrently; the
   pool's CAS push/pop is the only cross-domain synchronisation. *)

type t = {
  base : int;
  slots : int;
  slot_words : int;
  magazine : int;
  pool : int array Freestack.t;
  caches : cache list Atomic.t;
}

and cache = {
  shared : t;
  (* [loaded] holds [top] free slot indices; alloc pops from the top,
     free pushes.  [prev] is the second magazine of the classic
     two-magazine cache: it absorbs the empty/full thrash of an
     alloc/free stream sitting exactly on a magazine boundary. *)
  mutable loaded : int array;
  mutable top : int;
  mutable prev : int array;
  mutable prev_top : int;
  mutable allocs : int;
  mutable frees : int;
  mutable refills : int;
  mutable flushes : int;
  mutable failures : int;
}

type stats = {
  allocs : int;
  frees : int;
  refills : int;
  flushes : int;
  failures : int;
}

let create ?(base = 0) ?(magazine = 64) ~slots ~slot_words () =
  if slots < 1 then invalid_arg "Fixed_alloc.create: slots < 1";
  if slot_words < 1 then invalid_arg "Fixed_alloc.create: slot_words < 1";
  if magazine < 1 then invalid_arg "Fixed_alloc.create: magazine < 1";
  let pool = Freestack.create () in
  (* Slice [0..slots) into magazines.  Each magazine is descending so
     that popping from its top hands out the lowest slot first; pushing
     the highest-slot magazine first leaves the lowest on top of the
     LIFO pool.  Cosmetic, but it makes single-cache allocation sweep
     the region from [base] upward, which reads well in traces. *)
  let hi = ref slots in
  while !hi > 0 do
    let lo = max 0 (!hi - magazine) in
    let m = Array.init (!hi - lo) (fun i -> !hi - 1 - i) in
    Freestack.push pool m;
    hi := lo
  done;
  { base; slots; slot_words; magazine; pool; caches = Atomic.make [] }

let rec register t c =
  let old = Atomic.get t.caches in
  if not (Atomic.compare_and_set t.caches old (c :: old)) then register t c

let cache t =
  let c =
    { shared = t; loaded = [||]; top = 0; prev = [||]; prev_top = 0;
      allocs = 0; frees = 0; refills = 0; flushes = 0; failures = 0 }
  in
  register t c;
  c

let swap_magazines c =
  let m = c.loaded and n = c.top in
  c.loaded <- c.prev;
  c.top <- c.prev_top;
  c.prev <- m;
  c.prev_top <- n

let alloc c =
  if c.top = 0 && c.prev_top > 0 then swap_magazines c;
  if c.top = 0 then begin
    match Freestack.pop c.shared.pool with
    | Some m ->
      c.refills <- c.refills + 1;
      c.loaded <- m;
      c.top <- Array.length m
    | None -> ()
  end;
  if c.top = 0 then begin
    c.failures <- c.failures + 1;
    None
  end else begin
    c.top <- c.top - 1;
    let slot = c.loaded.(c.top) in
    c.allocs <- c.allocs + 1;
    Some (c.shared.base + (slot * c.shared.slot_words))
  end

let free c addr =
  let t = c.shared in
  let off = addr - t.base in
  if off < 0 || off >= t.slots * t.slot_words || off mod t.slot_words <> 0
  then invalid_arg "Fixed_alloc.free: address not a slot in this region";
  let slot = off / t.slot_words in
  if c.top >= Array.length c.loaded then begin
    if c.prev_top < Array.length c.prev then swap_magazines c
    else begin
      (* Both magazines full (or the zero-length initial stubs): retire
         the loaded one to the pool and start a fresh empty magazine. *)
      if Array.length c.loaded > 0 then begin
        Freestack.push t.pool c.loaded;
        c.flushes <- c.flushes + 1
      end;
      c.loaded <- Array.make t.magazine 0;
      c.top <- 0
    end
  end;
  c.loaded.(c.top) <- slot;
  c.top <- c.top + 1;
  c.frees <- c.frees + 1

let stats (c : cache) =
  { allocs = c.allocs; frees = c.frees; refills = c.refills;
    flushes = c.flushes; failures = c.failures }

let total_stats t =
  List.fold_left
    (fun (acc : stats) (c : cache) ->
      { allocs = acc.allocs + c.allocs;
        frees = acc.frees + c.frees;
        refills = acc.refills + c.refills;
        flushes = acc.flushes + c.flushes;
        failures = acc.failures + c.failures })
    { allocs = 0; frees = 0; refills = 0; flushes = 0; failures = 0 }
    (Atomic.get t.caches)

let slots t = t.slots
let slot_words t = t.slot_words
let base t = t.base
let pool_magazines t = Freestack.length t.pool

(* Checkpoint serialisation.  A quiescent single-cache allocator is a
   pure function of (geometry, counters, the two private magazines'
   live prefixes, the pool's magazine chain), so a flat int-array
   encoding of those reproduces it exactly.  Magazine array LENGTHS
   are recorded separately from their live prefixes because [free]
   branches on [Array.length c.loaded], not on [top]. *)

let snapshot (c : cache) =
  let t = c.shared in
  let out = ref [] in
  let push v = out := v :: !out in
  push c.allocs; push c.frees; push c.refills; push c.flushes; push c.failures;
  push (Array.length c.loaded); push c.top;
  for i = 0 to c.top - 1 do push c.loaded.(i) done;
  push (Array.length c.prev); push c.prev_top;
  for i = 0 to c.prev_top - 1 do push c.prev.(i) done;
  let mags = Freestack.to_list t.pool in
  push (List.length mags);
  List.iter (fun m -> push (Array.length m); Array.iter push m) mags;
  Array.of_list (List.rev !out)

let restore ?(base = 0) ?(magazine = 64) ~slots ~slot_words enc =
  if slots < 1 || slot_words < 1 || magazine < 1 then None
  else begin
    let n = Array.length enc in
    let pos = ref 0 in
    let ok = ref true in
    let take () =
      if !ok && !pos < n then begin
        let v = enc.(!pos) in
        incr pos;
        v
      end
      else begin
        ok := false;
        0
      end
    in
    let counter () =
      let v = take () in
      if v < 0 then ok := false;
      v
    in
    let max_len = max slots magazine in
    (* A magazine of length [len] whose first [live] entries are valid
       slot indices; the rest is dead space free will overwrite. *)
    let read_mag len live =
      if len < 0 || len > max_len || live < 0 || live > len then begin
        ok := false;
        [||]
      end
      else begin
        let a = Array.make len 0 in
        for i = 0 to live - 1 do
          let s = take () in
          if s < 0 || s >= slots then ok := false else a.(i) <- s
        done;
        a
      end
    in
    let allocs = counter () in
    let frees = counter () in
    let refills = counter () in
    let flushes = counter () in
    let failures = counter () in
    let loaded_len = take () in
    let top = take () in
    let loaded = read_mag loaded_len top in
    let prev_len = take () in
    let prev_top = take () in
    let prev = read_mag prev_len prev_top in
    let nmags = take () in
    let mags = ref [] in
    if nmags < 0 || nmags > slots then ok := false
    else
      for _ = 1 to nmags do
        if !ok then begin
          let len = take () in
          let m = read_mag len len in
          mags := m :: !mags
        end
      done;
    if (not !ok) || !pos <> n then None
    else begin
      let pool = Freestack.create () in
      (* [mags] is the pool chain tail-first; pushing in that order
         rebuilds the stack with the original head on top. *)
      List.iter (fun m -> Freestack.push pool m) !mags;
      let t = { base; slots; slot_words; magazine; pool; caches = Atomic.make [] } in
      let c =
        { shared = t; loaded; top; prev; prev_top;
          allocs; frees; refills; flushes; failures }
      in
      register t c;
      Some (t, c)
    end
  end
