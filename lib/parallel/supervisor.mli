(** Supervised execution of shard bodies: bounded deterministic
    restarts over {!Checkpoint} state, with typed escalation.

    The supervisor wraps one shard's body in a restart loop that runs
    entirely on the shard's worker domain.  The body calls {!step}
    after every workload step; the supervisor uses those ticks to
    inject deterministic faults (a seeded schedule or an explicit
    {!kill} list), to take periodic checkpoints, and to stamp
    supervision events ([shard_crash] / [shard_restart] /
    [shard_checkpoint]) on a per-shard wall timeline that keeps
    advancing across restarts.

    Supervision events are returned in the {!outcome} and belong in a
    {e separate} trace segment: the engine trace of a recovered run is
    bit-identical to the fault-free run, which is the whole point.

    A shard that exhausts [max_restarts] escalates as a typed
    {!Resilience.Failure.t} ([Shard_crashed] or [Shard_stalled] after
    the last observed fault) instead of raising. *)

type fault = Crash | Stall

type kill = {
  k_shard : int;  (** which shard to kill *)
  k_attempt : int;  (** on which execution attempt (0 = first run) *)
  k_progress : int;  (** after how many completed workload steps *)
  k_stall : bool;  (** [true] simulates a detected stall, not a crash *)
}

exception Injected of fault
(** How an injected fault tears down the body mid-step.  Bodies do not
    need to catch it; the supervisor does. *)

type policy = {
  max_restarts : int;  (** restarts allowed per shard before escalation *)
  backoff_us : int;  (** linear backoff step, in simulated wall us *)
  backoff_seed : int;  (** seed of the deterministic backoff jitter *)
}

val policy : ?max_restarts:int -> ?backoff_us:int -> ?backoff_seed:int -> unit -> policy
(** Defaults: 3 restarts, 250 us backoff step, a fixed jitter seed.
    The [n]-th restart waits [backoff_us * n] plus a seeded jitter
    drawn from a per-shard stream — simulated time, deterministic,
    independent of domain scheduling. *)

val no_inject : shard:int -> attempt:int -> progress:int -> fault option
(** The zero-fault schedule. *)

val inject_of_kills :
  kill list -> shard:int -> attempt:int -> progress:int -> fault option
(** Fault schedule from an explicit kill list: fires when shard,
    attempt and progress all match. *)

type snap = {
  sn_clock_us : int;  (** the shard's virtual clock now *)
  sn_rng : int64;  (** {!Sim.Rng.state} of the shard's stream *)
  sn_payload : int array;  (** engine-specific encoding or digest *)
  sn_events : Obs.Event.t array;  (** events emitted so far, in order *)
}
(** What a body's snapshot thunk must capture for a checkpoint. *)

type ctl
(** The supervision handle a body ticks through. *)

val progress : ctl -> int
(** Workload steps completed (monotone across restarts — a resumed
    body starts from its checkpoint's progress). *)

val step : ctl -> clock_us:int -> snapshot:(unit -> snap) -> unit
(** Must be called by the body once after each completed workload
    step, with the shard's current virtual clock.  May raise
    {!Injected} (the schedule killed the shard here) and may take a
    checkpoint (forcing [snapshot], which is otherwise never
    forced). *)

type outcome = {
  o_shard : int;
  o_crashes : int;  (** faults suffered *)
  o_restarts : int;  (** restarts performed (= crashes on success) *)
  o_checkpoints : int;  (** checkpoints taken, across all attempts *)
  o_events : Obs.Event.t array;  (** supervision stream, in order *)
}

val supervise :
  policy:policy ->
  inject:(shard:int -> attempt:int -> progress:int -> fault option) ->
  checkpoint_every:int ->
  store:Checkpoint.store ->
  shard:int ->
  run:(resume:Checkpoint.state option -> ctl -> 'a) ->
  ('a * outcome, Resilience.Failure.t) result
(** Run [run] under supervision.  [checkpoint_every] is in workload
    steps (0 disables checkpointing; every restart then resumes from
    scratch).  [run] receives the checkpoint to resume from, if any,
    and must tick {!step} per workload step.  Any exception out of
    [run] is a fault: {!Injected} keeps its type, a
    {!Checkpoint.Inconsistent} poisons (clears) the checkpoint before
    the retry, anything else counts as a crash.  After
    [policy.max_restarts] restarts the next fault escalates as
    [Error] with a typed {!Resilience.Failure.t}. *)
