(* Shard bodies are pure functions of (config, shard index): private
   clock, derived rng, private engine, private event buffer.  The only
   cross-domain traffic is Pool.map_shards handing back the per-shard
   results; the caller's sink is touched exclusively on the caller's
   domain, after the join, via the deterministic Obs.Merge stage.

   Supervision.  Every body is written against a [tick] callback
   (called once per workload step with the shard's clock and a lazy
   snapshot) and a [resume] checkpoint.  The plain entry points pass a
   no-op tick and no checkpoint, so they run the exact same code the
   unsupervised engines always ran; the [_supervised] entry points
   wire tick to Supervisor.step, which is what turns the same body
   into a crash-restartable one.  A zero-fault supervised run is
   byte-identical to the unsupervised run by construction. *)

(* Per-site rng defaults: distinct streams per shard under one master
   seed (see Sim.Rng.derive).  The multipliers keep alloc and paging
   shards on unrelated streams. *)
let alloc_rng_site shard = 0xA110C + (shard * 7919)
let paging_rng_site shard = 0x9A61B + (shard * 104729)

(* A shard buffers its (already relabelled) events locally; reversed
   into an array at the end so streams arrive in emission order.
   [init] pre-seeds the buffer with a checkpoint's event prefix. *)
let buffer_sink ?(init = [||]) () =
  let buf = ref (List.rev (Array.to_list init)) in
  let sink = Obs.Sink.collect (fun ev -> buf := ev :: !buf) in
  let contents () =
    let arr = Array.of_list !buf in
    let n = Array.length arr in
    Array.init n (fun i -> arr.(n - 1 - i))
  in
  (sink, contents)

let noop_tick ~clock_us:_ ~snapshot:_ = ()

(* Per-shard telemetry is derived from the buffered event stream
   (Obs.Telemetry.of_events) after the shard body finishes, not
   captured live inside the engine: a pure function of the events is
   automatically bit-identical across [domains] widths and across
   crash-recovered supervised runs.  Computed on the shard's own
   domain for plain runs. *)
let shard_telemetry ~telemetry ~shard events =
  match telemetry with
  | Some every_us -> Obs.Telemetry.of_events ~shard ~every_us events
  | None -> [||]

(* Evaluate watchdog rules over each shard's snapshot stream; the
   first escalating fire (by shard index, then snapshot order) becomes
   the run's failure, mirroring the supervisor's own escalation
   order. *)
let watchdog_failure rules telemetry_streams =
  match rules with
  | [] -> None
  | rules ->
    let fail = ref None in
    Array.iteri
      (fun shard snaps ->
        if !fail = None then begin
          let w = Obs.Watch.create rules in
          Array.iter
            (fun (sn : Obs.Telemetry.snapshot) ->
              List.iter
                (fun alert ->
                  match alert with
                  | Obs.Watch.Fire { rule; _ }
                    when rule.Obs.Watch.escalate && !fail = None ->
                    fail :=
                      Some
                        (Resilience.Failure.Watchdog_tripped
                           { rule = rule.Obs.Watch.name;
                             shard;
                             at_us = sn.Obs.Telemetry.sn_t_us })
                  | Obs.Watch.Fire _ | Obs.Watch.Clear _ -> ())
                (Obs.Watch.feed w sn))
            snaps
        end)
      telemetry_streams;
    !fail

(* {2 Fixed-size allocation} *)

type alloc_config = {
  a_shards : int;
  a_ops_per_shard : int;
  a_slots_per_shard : int;
  a_slot_words : int;
  a_op_us : int;
  a_seed : int;
}

let alloc_config ?(shards = 4) ?(ops_per_shard = 20_000) ?(slots_per_shard = 512)
    ?(slot_words = 16) ?(op_us = 5) ~seed () =
  if shards < 1 then invalid_arg "Sharded.alloc_config: shards < 1";
  if ops_per_shard < 0 then invalid_arg "Sharded.alloc_config: ops_per_shard < 0";
  { a_shards = shards; a_ops_per_shard = ops_per_shard;
    a_slots_per_shard = slots_per_shard; a_slot_words = slot_words;
    a_op_us = op_us; a_seed = seed }

type shard_alloc = {
  sa_shard : int;
  sa_allocs : int;
  sa_frees : int;
  sa_failures : int;
  sa_refills : int;
  sa_flushes : int;
  sa_live : int;
  sa_elapsed_us : int;
  sa_events : int;
}

type alloc_report = {
  ar_shards : shard_alloc array;
  ar_events : int;
  ar_telemetry : Obs.Telemetry.snapshot array;
}

(* Rebuild the arena and live set from a checkpoint payload
   [live_n; live slots...; Fixed_alloc encoding...], or refuse it. *)
let alloc_resume cfg shard (st : Checkpoint.state) =
  let fail fmt = Printf.ksprintf (fun m -> raise (Checkpoint.Inconsistent m)) fmt in
  let p = st.Checkpoint.ck_payload in
  if st.Checkpoint.ck_progress > cfg.a_ops_per_shard then
    fail "shard %d checkpoint progress %d beyond %d ops" shard
      st.Checkpoint.ck_progress cfg.a_ops_per_shard;
  if Array.length p < 1 then fail "shard %d checkpoint payload empty" shard;
  let live_n = p.(0) in
  if live_n < 0 || live_n > cfg.a_slots_per_shard
     || Array.length p < 1 + live_n
  then fail "shard %d checkpoint live set malformed" shard;
  let live = Array.make (max 1 cfg.a_slots_per_shard) 0 in
  Array.blit p 1 live 0 live_n;
  let arena_words = cfg.a_slots_per_shard * cfg.a_slot_words in
  let enc = Array.sub p (1 + live_n) (Array.length p - 1 - live_n) in
  match
    Fixed_alloc.restore ~base:(shard * arena_words) ~slots:cfg.a_slots_per_shard
      ~slot_words:cfg.a_slot_words enc
  with
  | None -> fail "shard %d checkpoint arena malformed" shard
  | Some (_, cache) -> (cache, live, live_n)

(* One shard of the mixed alloc/free workload.  The arena base puts the
   shard's addresses in a globally disjoint range, so Alloc/Free events
   need no relabelling.  The stream holds roughly half the arena live:
   below target it biases toward allocation, at the target it frees, in
   between it flips the shard's coin. *)
let alloc_shard_run cfg ~traced ~tick ~resume shard =
  let arena_words = cfg.a_slots_per_shard * cfg.a_slot_words in
  let rng, clock, cache, live, live_n0, start, init_events =
    match resume with
    | None ->
      let rng = Sim.Rng.derive ~override:cfg.a_seed (alloc_rng_site shard) in
      let fa =
        Fixed_alloc.create ~base:(shard * arena_words)
          ~slots:cfg.a_slots_per_shard ~slot_words:cfg.a_slot_words ()
      in
      ( rng, Sim.Clock.create (), Fixed_alloc.cache fa,
        Array.make (max 1 cfg.a_slots_per_shard) 0, 0, 0, [||] )
    | Some st ->
      let cache, live, live_n = alloc_resume cfg shard st in
      let clock = Sim.Clock.create () in
      Sim.Clock.advance clock st.Checkpoint.ck_clock_us;
      ( Sim.Rng.of_state st.Checkpoint.ck_rng, clock, cache, live, live_n,
        st.Checkpoint.ck_progress, st.Checkpoint.ck_events )
  in
  let sink, contents = buffer_sink ~init:init_events () in
  let live_n = ref live_n0 in
  let target = max 1 (cfg.a_slots_per_shard / 2) in
  let size = cfg.a_slot_words in
  for _op = start + 1 to cfg.a_ops_per_shard do
    Sim.Clock.advance clock cfg.a_op_us;
    let do_alloc =
      if !live_n = 0 then true
      else if !live_n >= target then false
      else Sim.Rng.bool rng
    in
    if do_alloc then begin
      match Fixed_alloc.alloc cache with
      | Some addr ->
        live.(!live_n) <- addr;
        incr live_n;
        if traced then
          Obs.Sink.emit sink
            (Obs.Event.make ~t_us:(Sim.Clock.now clock)
               (Obs.Event.Alloc { addr; size }))
      | None -> ()
    end else begin
      let i = Sim.Rng.int rng !live_n in
      let addr = live.(i) in
      live.(i) <- live.(!live_n - 1);
      decr live_n;
      Fixed_alloc.free cache addr;
      if traced then
        Obs.Sink.emit sink
          (Obs.Event.make ~t_us:(Sim.Clock.now clock)
             (Obs.Event.Free { addr; size }))
    end;
    tick ~clock_us:(Sim.Clock.now clock) ~snapshot:(fun () ->
        { Supervisor.sn_clock_us = Sim.Clock.now clock;
          sn_rng = Sim.Rng.state rng;
          sn_payload =
            Array.concat
              [ [| !live_n |]; Array.sub live 0 !live_n;
                Fixed_alloc.snapshot cache ];
          sn_events = contents () })
  done;
  let st = Fixed_alloc.stats cache in
  let events = contents () in
  ( { sa_shard = shard;
      sa_allocs = st.Fixed_alloc.allocs;
      sa_frees = st.Fixed_alloc.frees;
      sa_failures = st.Fixed_alloc.failures;
      sa_refills = st.Fixed_alloc.refills;
      sa_flushes = st.Fixed_alloc.flushes;
      sa_live = !live_n;
      sa_elapsed_us = Sim.Clock.now clock;
      sa_events = Array.length events },
    events )

let alloc_shard cfg ~traced shard =
  alloc_shard_run cfg ~traced ~tick:noop_tick ~resume:None shard

let run_alloc ?(obs = Obs.Sink.null) ?telemetry ~domains cfg =
  if domains < 1 then invalid_arg "Sharded.run_alloc: domains < 1";
  (match telemetry with
   | Some e when e < 1 -> invalid_arg "Sharded.run_alloc: telemetry cadence < 1"
   | _ -> ());
  let traced = Obs.Sink.is_active obs || telemetry <> None in
  let per_shard =
    Pool.map_shards ~domains ~shards:cfg.a_shards (fun shard ->
        let report, events = alloc_shard cfg ~traced shard in
        (report, events, shard_telemetry ~telemetry ~shard events))
  in
  let streams = Array.map (fun (_, ev, _) -> ev) per_shard in
  let emitted = Obs.Merge.emit ~into:obs streams in
  { ar_shards = Array.map (fun (r, _, _) -> r) per_shard;
    ar_events = emitted;
    ar_telemetry = Obs.Telemetry.merge (Array.map (fun (_, _, t) -> t) per_shard) }

(* {2 Demand paging} *)

type paging_config = {
  p_shards : int;
  p_refs_per_shard : int;
  p_frames_per_shard : int;
  p_pages_per_shard : int;
  p_page_size : int;
  p_policy : Paging.Spec.t;
  p_compute_us_per_ref : int;
  p_seed : int;
}

let paging_config ?(shards = 4) ?(refs_per_shard = 8_000) ?(frames_per_shard = 12)
    ?(pages_per_shard = 24) ?(page_size = 256) ?(policy = Paging.Spec.Lru)
    ?(compute_us_per_ref = 50) ~seed () =
  if shards < 1 then invalid_arg "Sharded.paging_config: shards < 1";
  if frames_per_shard < 1 then
    invalid_arg "Sharded.paging_config: frames_per_shard < 1";
  if pages_per_shard < frames_per_shard then
    invalid_arg "Sharded.paging_config: pages_per_shard < frames_per_shard";
  { p_shards = shards; p_refs_per_shard = refs_per_shard;
    p_frames_per_shard = frames_per_shard; p_pages_per_shard = pages_per_shard;
    p_page_size = page_size; p_policy = policy;
    p_compute_us_per_ref = compute_us_per_ref; p_seed = seed }

type shard_paging = {
  sp_shard : int;
  sp_refs : int;
  sp_faults : int;
  sp_writebacks : int;
  sp_elapsed_us : int;
  sp_events : int;
}

type paging_report = {
  pr_shards : shard_paging array;
  pr_events : int;
  pr_telemetry : Obs.Telemetry.snapshot array;
}

(* Relabel a shard-local event into the shard's global ranges: pages
   shift by the shard's page base, io request ids by a per-shard stride
   wide enough that no two shards' ids collide.  Applied at buffering
   time, on the shard's own domain. *)
let relabel ~page_off ~req_off (ev : Obs.Event.t) =
  let open Obs.Event in
  let kind =
    match ev.kind with
    | Fault { page } -> Fault { page = page + page_off }
    | Cold_fault { page } -> Cold_fault { page = page + page_off }
    | Eviction { page } -> Eviction { page = page + page_off }
    | Writeback { page } -> Writeback { page = page + page_off }
    | Tlb_hit { key } -> Tlb_hit { key = key + page_off }
    | Tlb_miss { key } -> Tlb_miss { key = key + page_off }
    | Io_start { req; page; io } ->
      Io_start { req = req + req_off; page = page + page_off; io }
    | Io_done { req; page; io } ->
      Io_done { req = req + req_off; page = page + page_off; io }
    | Io_retry { req; attempt } -> Io_retry { req = req + req_off; attempt }
    | Io_error { req; page; io; attempts } ->
      Io_error { req = req + req_off; page = page + page_off; io; attempts }
    | other -> other
  in
  { ev with kind }

(* Each engine restarts request ids at 0; a fault costs at most a fetch
   and a writeback request, so 2x the reference count (with slack)
   bounds a shard's id range. *)
let req_stride cfg = (4 * cfg.p_refs_per_shard) + 16

(* The paging engine's state (frame tables, device queues, victim
   policies) has no flat encoding, so a resumed shard {e replays}: it
   rebuilds the engine and re-drives the references before the
   checkpoint with emission suppressed, then verifies the replayed
   clock, RNG stream, event count and fault/writeback digest against
   the checkpoint before emitting the suffix.  Any disagreement means
   the checkpoint cannot be trusted — Inconsistent poisons it. *)
let paging_shard_run cfg ~traced ~counting ~tick ~resume shard =
  let rng = Sim.Rng.derive ~override:cfg.p_seed (paging_rng_site shard) in
  let clock = Sim.Clock.create () in
  let pages = cfg.p_pages_per_shard in
  let page_off = shard * pages in
  let req_off = shard * req_stride cfg in
  let start, init_events =
    match resume with
    | Some st ->
      if st.Checkpoint.ck_progress > cfg.p_refs_per_shard then
        raise
          (Checkpoint.Inconsistent
             (Printf.sprintf "shard %d checkpoint progress %d beyond %d refs"
                shard st.Checkpoint.ck_progress cfg.p_refs_per_shard));
      (st.Checkpoint.ck_progress, st.Checkpoint.ck_events)
    | None -> (0, [||])
  in
  let sink, contents = buffer_sink ~init:init_events () in
  let emitting = ref (start = 0) in
  let suppressed = ref 0 in
  let obs =
    if traced || counting then
      Obs.Sink.collect (fun ev ->
          if !emitting then begin
            if traced then Obs.Sink.emit sink (relabel ~page_off ~req_off ev)
          end
          else incr suppressed)
    else Obs.Sink.null
  in
  (* Phase-structured local reference string, then word addresses with
     a random offset inside each page. *)
  let page_trace =
    Workload.Trace.working_set_phases rng ~length:cfg.p_refs_per_shard
      ~extent:pages
      ~set_size:(max 1 (cfg.p_frames_per_shard * 2 / 3))
      ~phase_length:(max 1 (cfg.p_refs_per_shard / 8))
      ~locality:0.95
  in
  let word_trace =
    Array.map (fun p -> (p * cfg.p_page_size) + Sim.Rng.int rng cfg.p_page_size)
      page_trace
  in
  let engine_spec =
    { Paging.Spec.e_page_size = cfg.p_page_size;
      e_frames = cfg.p_frames_per_shard;
      e_pages = pages;
      e_device = Memstore.Device.drum;
      e_policy = cfg.p_policy;
      e_tlb_slots = None;
      e_compute_us_per_ref = cfg.p_compute_us_per_ref }
  in
  let engine =
    Paging.Spec.build ~obs ~core_name:(Printf.sprintf "core%d" shard) ~clock ~rng
      ~trace:page_trace engine_spec
  in
  (* Quarter of the references are writes, so evictions exercise the
     write-back path; the page reference string is unchanged. *)
  let drive i =
    let addr = word_trace.(i) in
    if i land 3 = 0 then Paging.Demand.write engine addr (Int64.of_int addr)
    else
      let (_ : int64) = Paging.Demand.read engine addr in
      ()
  in
  for i = 0 to start - 1 do
    drive i
  done;
  (match resume with
   | None -> ()
   | Some st ->
     let fail fmt =
       Printf.ksprintf (fun m -> raise (Checkpoint.Inconsistent m)) fmt
     in
     if Sim.Clock.now clock <> st.Checkpoint.ck_clock_us then
       fail "shard %d replay clock %d disagrees with checkpoint %d" shard
         (Sim.Clock.now clock) st.Checkpoint.ck_clock_us;
     if Sim.Rng.state rng <> st.Checkpoint.ck_rng then
       fail "shard %d replay rng stream disagrees with checkpoint" shard;
     if traced && !suppressed <> Array.length st.Checkpoint.ck_events then
       fail "shard %d replay emitted %d events where checkpoint recorded %d"
         shard !suppressed
         (Array.length st.Checkpoint.ck_events);
     (match st.Checkpoint.ck_payload with
      | [| faults; writebacks |] ->
        if Paging.Demand.faults engine <> faults
           || Paging.Demand.writebacks engine <> writebacks
        then
          fail "shard %d replay digest %d/%d disagrees with checkpoint %d/%d"
            shard (Paging.Demand.faults engine)
            (Paging.Demand.writebacks engine) faults writebacks
      | _ -> fail "shard %d checkpoint digest malformed" shard);
     emitting := true);
  for i = start to Array.length word_trace - 1 do
    drive i;
    tick ~clock_us:(Sim.Clock.now clock) ~snapshot:(fun () ->
        { Supervisor.sn_clock_us = Sim.Clock.now clock;
          sn_rng = Sim.Rng.state rng;
          sn_payload =
            [| Paging.Demand.faults engine; Paging.Demand.writebacks engine |];
          sn_events = contents () })
  done;
  let events = contents () in
  ( { sp_shard = shard;
      sp_refs = Paging.Demand.refs engine;
      sp_faults = Paging.Demand.faults engine;
      sp_writebacks = Paging.Demand.writebacks engine;
      sp_elapsed_us = Sim.Clock.now clock;
      sp_events = Array.length events },
    events )

let paging_shard cfg ~traced shard =
  paging_shard_run cfg ~traced ~counting:false ~tick:noop_tick ~resume:None shard

let run_paging ?(obs = Obs.Sink.null) ?telemetry ~domains cfg =
  if domains < 1 then invalid_arg "Sharded.run_paging: domains < 1";
  (match telemetry with
   | Some e when e < 1 -> invalid_arg "Sharded.run_paging: telemetry cadence < 1"
   | _ -> ());
  let traced = Obs.Sink.is_active obs || telemetry <> None in
  let per_shard =
    Pool.map_shards ~domains ~shards:cfg.p_shards (fun shard ->
        let report, events = paging_shard cfg ~traced shard in
        (report, events, shard_telemetry ~telemetry ~shard events))
  in
  let streams = Array.map (fun (_, ev, _) -> ev) per_shard in
  let emitted = Obs.Merge.emit ~into:obs streams in
  { pr_shards = Array.map (fun (r, _, _) -> r) per_shard;
    pr_events = emitted;
    pr_telemetry = Obs.Telemetry.merge (Array.map (fun (_, _, t) -> t) per_shard) }

(* {2 Supervised execution} *)

let run_supervised ~policy ~kills ~checkpoint_every ~checkpoint_dir ~domains
    ~shards ~body =
  (match checkpoint_dir with
   | Some d when not (Sys.file_exists d) ->
     (try Sys.mkdir d 0o755 with Sys_error _ -> ())
   | _ -> ());
  let inject =
    match kills with
    | [] -> Supervisor.no_inject
    | ks -> Supervisor.inject_of_kills ks
  in
  let per =
    Pool.map_shards ~domains ~shards (fun shard ->
        let store = Checkpoint.store ?dir:checkpoint_dir ~shard () in
        Supervisor.supervise ~policy ~inject ~checkpoint_every ~store ~shard
          ~run:(fun ~resume ctl ->
            body shard ~resume
              ~tick:(fun ~clock_us ~snapshot ->
                Supervisor.step ctl ~clock_us ~snapshot)))
  in
  (* First escalation (by shard index) wins; no partial emission. *)
  let err =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with None, Error f -> Some f | _, _ -> acc)
      None per
  in
  match err with
  | Some f -> Error f
  | None ->
    Ok (Array.map (function Ok v -> v | Error _ -> assert false) per)

let run_alloc_supervised ?(obs = Obs.Sink.null) ?(supervision = Obs.Sink.null)
    ?telemetry ?(watch = []) ?(policy = Supervisor.policy ()) ?(kills = [])
    ?(checkpoint_every = 512) ?checkpoint_dir ~domains cfg =
  if domains < 1 then invalid_arg "Sharded.run_alloc_supervised: domains < 1";
  if watch <> [] && telemetry = None then
    invalid_arg "Sharded.run_alloc_supervised: watch rules need a telemetry cadence";
  let traced = Obs.Sink.is_active obs || telemetry <> None in
  match
    run_supervised ~policy ~kills ~checkpoint_every ~checkpoint_dir ~domains
      ~shards:cfg.a_shards
      ~body:(fun shard ~resume ~tick ->
        alloc_shard_run cfg ~traced ~tick ~resume shard)
  with
  | Error _ as e -> e
  | Ok per ->
    let streams = Array.map (fun ((_, ev), _) -> ev) per in
    let tele = Array.mapi (fun shard ev -> shard_telemetry ~telemetry ~shard ev) streams in
    (match watchdog_failure watch tele with
     | Some f -> Error f
     | None ->
       let emitted = Obs.Merge.emit ~into:obs streams in
       let sup_streams =
         Array.map (fun (_, o) -> o.Supervisor.o_events) per
       in
       let (_ : int) = Obs.Merge.emit ~into:supervision sup_streams in
       Ok
         ( { ar_shards = Array.map (fun ((r, _), _) -> r) per;
             ar_events = emitted;
             ar_telemetry = Obs.Telemetry.merge tele },
           Array.map snd per ))

let run_paging_supervised ?(obs = Obs.Sink.null) ?(supervision = Obs.Sink.null)
    ?telemetry ?(watch = []) ?(policy = Supervisor.policy ()) ?(kills = [])
    ?(checkpoint_every = 512) ?checkpoint_dir ~domains cfg =
  if domains < 1 then invalid_arg "Sharded.run_paging_supervised: domains < 1";
  if watch <> [] && telemetry = None then
    invalid_arg "Sharded.run_paging_supervised: watch rules need a telemetry cadence";
  let traced = Obs.Sink.is_active obs || telemetry <> None in
  match
    run_supervised ~policy ~kills ~checkpoint_every ~checkpoint_dir ~domains
      ~shards:cfg.p_shards
      ~body:(fun shard ~resume ~tick ->
        paging_shard_run cfg ~traced ~counting:true ~tick ~resume shard)
  with
  | Error _ as e -> e
  | Ok per ->
    let streams = Array.map (fun ((_, ev), _) -> ev) per in
    let tele = Array.mapi (fun shard ev -> shard_telemetry ~telemetry ~shard ev) streams in
    (match watchdog_failure watch tele with
     | Some f -> Error f
     | None ->
       let emitted = Obs.Merge.emit ~into:obs streams in
       let sup_streams =
         Array.map (fun (_, o) -> o.Supervisor.o_events) per
       in
       let (_ : int) = Obs.Merge.emit ~into:supervision sup_streams in
       Ok
         ( { pr_shards = Array.map (fun ((r, _), _) -> r) per;
             pr_events = emitted;
             pr_telemetry = Obs.Telemetry.merge tele },
           Array.map snd per ))
