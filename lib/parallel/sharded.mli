(** Sharded multicore simulation: partitioned engines on a domain
    pool, with a deterministic merge of the per-shard event streams.

    The execution model.  A workload is split into [shards] independent
    partitions.  Each shard owns {e everything} it touches — a virtual
    clock starting at 0, a derived RNG stream, its arena (a slice of
    the global address / page-name space), its engine, and a private
    event buffer.  {!Pool.map_shards} runs the shard bodies across
    [domains] domains under a static assignment; afterwards, on the
    caller's domain, {!Obs.Merge} interleaves the buffered per-shard
    streams by (virtual time, shard index, arrival order) into the
    caller's sink.

    The determinism contract.  The shard count is part of the workload
    description; [domains] is only an execution width.  Because no
    shard shares mutable state with another and the merge key is a
    pure function of the events, the merged trace — and every count in
    the report — is bit-identical for any [domains >= 1].  Results can
    legitimately differ only when the {e shard count} changes: that is
    a different workload (different partitions, clocks and RNG
    streams), not a different schedule.

    Namespacing.  Each shard simulates in local coordinates and its
    events are relabelled into disjoint global ranges at buffering
    time: shard [s] of an allocation run owns addresses
    [[s*slots*slot_words, (s+1)*slots*slot_words)]; shard [s] of a
    paging run owns pages [[s*pages, (s+1)*pages)] and a disjoint
    io-request-id range.  A merged stream therefore passes
    {!Obs.Check} as one run segment: residency, io pairing and
    first-touch accounting never collide across shards. *)

(** {2 Fixed-size allocation (the lock-free engine)} *)

type alloc_config = {
  a_shards : int;  (** partitions; part of the workload, not the width *)
  a_ops_per_shard : int;  (** alloc/free operations per shard *)
  a_slots_per_shard : int;  (** fixed-size blocks per shard arena *)
  a_slot_words : int;  (** words per block *)
  a_op_us : int;  (** virtual time per operation *)
  a_seed : int;  (** master seed; each shard derives its own stream *)
}

val alloc_config :
  ?shards:int ->
  ?ops_per_shard:int ->
  ?slots_per_shard:int ->
  ?slot_words:int ->
  ?op_us:int ->
  seed:int ->
  unit ->
  alloc_config
(** Defaults: 4 shards, 20_000 ops, 512 slots of 16 words, 5 us/op. *)

type shard_alloc = {
  sa_shard : int;
  sa_allocs : int;  (** successful allocations *)
  sa_frees : int;
  sa_failures : int;  (** allocations denied (arena exhausted) *)
  sa_refills : int;  (** magazines pulled from the shard's pool *)
  sa_flushes : int;  (** magazines returned to it *)
  sa_live : int;  (** blocks still allocated at end of run *)
  sa_elapsed_us : int;  (** the shard's virtual clock at end of run *)
  sa_events : int;  (** events this shard contributed to the trace *)
}

type alloc_report = {
  ar_shards : shard_alloc array;  (** in shard order *)
  ar_events : int;
      (** events in the merged stream (0 when neither trace nor
          telemetry was requested) *)
  ar_telemetry : Obs.Telemetry.snapshot array;
      (** merged per-shard telemetry ({!Obs.Telemetry.merge} order);
          [[||]] when no cadence was requested *)
}

val run_alloc :
  ?obs:Obs.Sink.t -> ?telemetry:int -> domains:int -> alloc_config -> alloc_report
(** Run the workload: each shard drives a private {!Fixed_alloc} over
    its arena with a mixed alloc/free stream (holding roughly half the
    arena live), buffering [Alloc]/[Free] events when [obs] is active.
    [telemetry] (a cadence in simulated µs) additionally derives each
    shard's {!Obs.Telemetry} snapshot stream from its buffered events
    — on the shard's own domain — and merges them into
    [ar_telemetry]; it forces event buffering even when [obs] is
    inactive.  The report, the merged stream, and the merged telemetry
    are bit-identical for any [domains >= 1].  Raises
    [Invalid_argument] if [domains < 1]. *)

(** {2 Demand paging} *)

type paging_config = {
  p_shards : int;
  p_refs_per_shard : int;
  p_frames_per_shard : int;
  p_pages_per_shard : int;
  p_page_size : int;
  p_policy : Paging.Spec.t;
  p_compute_us_per_ref : int;
  p_seed : int;
}

val paging_config :
  ?shards:int ->
  ?refs_per_shard:int ->
  ?frames_per_shard:int ->
  ?pages_per_shard:int ->
  ?page_size:int ->
  ?policy:Paging.Spec.t ->
  ?compute_us_per_ref:int ->
  seed:int ->
  unit ->
  paging_config
(** Defaults: 4 shards, 8_000 refs, 12 frames over 24 pages of 256
    words, LRU, 50 us compute per reference. *)

type shard_paging = {
  sp_shard : int;
  sp_refs : int;
  sp_faults : int;
  sp_writebacks : int;
  sp_elapsed_us : int;
  sp_events : int;
}

type paging_report = {
  pr_shards : shard_paging array;
  pr_events : int;
  pr_telemetry : Obs.Telemetry.snapshot array;
}

val run_paging :
  ?obs:Obs.Sink.t -> ?telemetry:int -> domains:int -> paging_config -> paging_report
(** Each shard builds a fresh {!Paging.Spec.build} engine on its own
    clock and drives it over a phase-structured reference trace derived
    from the shard's RNG stream.  Events are relabelled into the
    shard's global page and request-id ranges at buffering time.  Same
    determinism and [telemetry] contract as {!run_alloc}. *)

(** {2 Supervised execution}

    The [_supervised] entry points run the exact same shard bodies
    under {!Supervisor.supervise}: per-shard bounded restarts from
    {!Checkpoint} state, deterministic fault injection via [kills],
    and typed escalation.  Guarantees, for every [domains >= 1] and
    every kill schedule that does not escalate:

    - the merged {e engine} trace written to [obs] is bit-identical
      to the zero-fault run (and hence to the unsupervised run);
    - the report is identical to the zero-fault report;
    - the {e supervision} trace (crash / restart / checkpoint events,
      on a simulated wall timeline) is written separately to
      [supervision] and is itself deterministic.

    An alloc shard resumes by restoring its arena directly from the
    checkpoint encoding; a paging shard resumes by replaying the
    references before the checkpoint with emission suppressed and
    verifying clock, RNG, event count and fault digest against the
    checkpoint ({!Checkpoint.Inconsistent} poisons an untrustworthy
    checkpoint and costs a restart).

    [checkpoint_every] counts workload steps (default 512; 0 disables
    checkpointing).  With [checkpoint_dir], checkpoints are mirrored
    to [DIR/shard<N>.ckpt] with atomic tmp+rename writes.

    [telemetry] behaves as in {!run_alloc}; because the snapshots are
    derived from the recovered event streams after the join, a
    crash-recovered run's telemetry is bit-identical to the fault-free
    run's by construction.  [watch] (requires [telemetry]) evaluates
    {!Obs.Watch} rules over every shard's snapshot stream after the
    join; the first escalating fire — lowest shard index, then
    snapshot order — aborts the run with
    [Resilience.Failure.Watchdog_tripped] before anything is emitted
    to [obs], the same no-partial-emission discipline as crash
    escalation. *)

val run_alloc_supervised :
  ?obs:Obs.Sink.t ->
  ?supervision:Obs.Sink.t ->
  ?telemetry:int ->
  ?watch:Obs.Watch.rule list ->
  ?policy:Supervisor.policy ->
  ?kills:Supervisor.kill list ->
  ?checkpoint_every:int ->
  ?checkpoint_dir:string ->
  domains:int ->
  alloc_config ->
  (alloc_report * Supervisor.outcome array, Resilience.Failure.t) result

val run_paging_supervised :
  ?obs:Obs.Sink.t ->
  ?supervision:Obs.Sink.t ->
  ?telemetry:int ->
  ?watch:Obs.Watch.rule list ->
  ?policy:Supervisor.policy ->
  ?kills:Supervisor.kill list ->
  ?checkpoint_every:int ->
  ?checkpoint_dir:string ->
  domains:int ->
  paging_config ->
  (paging_report * Supervisor.outcome array, Resilience.Failure.t) result
