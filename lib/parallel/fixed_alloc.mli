(** Constant-time fixed-size allocation: a shared lock-free slab pool
    plus per-domain magazine caches, after Blelloch & Wei's wait-free
    fixed-size allocator and Bonwick's magazine layer.

    The managed region is [slots * slot_words] words starting at
    [base].  At creation the slots are sliced into {e magazines} —
    arrays of at most [magazine] slot indices — and pushed onto a
    shared {!Freestack}.  Each cache (one per domain, or one per shard
    in the deterministic sharded engines) holds up to two magazines
    privately: the common-case [alloc]/[free] touch only the owning
    cache, and only an empty/full magazine boundary costs a CAS on the
    shared pool.  No operation takes a lock and no operation is
    proportional to the number of live or free blocks.

    Determinism: a cache used by a single thread of control performs a
    fixed sequence of private-state steps and LIFO pool transfers, so
    allocation addresses are a pure function of the call sequence.
    The sharded engines rely on this — each shard owns a private
    allocator, so results cannot depend on how shards map to domains.

    Double frees are not detected (the constant-time design has no
    per-slot headers); freeing an address twice corrupts accounting
    exactly as it would in the paper's systems.  Addresses outside the
    region or misaligned to [slot_words] are rejected. *)

type t
(** The shared state: region geometry plus the lock-free magazine
    pool.  Safe to share across domains. *)

type cache
(** A private front for one domain (or one shard).  NOT safe to share
    across domains — create one per worker with {!cache}. *)

type stats = {
  allocs : int;      (** successful allocations through this cache *)
  frees : int;       (** frees through this cache *)
  refills : int;     (** magazines pulled from the shared pool *)
  flushes : int;     (** full magazines returned to the shared pool *)
  failures : int;    (** allocations that found the pool empty *)
}

val create : ?base:int -> ?magazine:int -> slots:int -> slot_words:int -> unit -> t
(** [create ~slots ~slot_words ()] manages [slots] blocks of
    [slot_words] words each, at addresses [base + i * slot_words].
    [magazine] (default 64) bounds the slot indices per magazine.
    Raises [Invalid_argument] if [slots < 1], [slot_words < 1] or
    [magazine < 1]. *)

val cache : t -> cache
(** A fresh private cache over the shared pool.  Starts empty: the
    first allocation pulls a magazine from the pool. *)

val alloc : cache -> int option
(** The word address of a free block, or [None] if the shared pool and
    both private magazines are exhausted.  O(1); at most one pool pop. *)

val free : cache -> int -> unit
(** Return a block to the owning cache.  O(1); at most one pool push.
    Raises [Invalid_argument] if the address is outside the region or
    not slot-aligned. *)

val stats : cache -> stats

val total_stats : t -> stats
(** Sums over every cache ever created from [t].  Exact when all
    caches are quiescent (e.g. after joining their domains). *)

val slots : t -> int

val slot_words : t -> int

val base : t -> int

val pool_magazines : t -> int
(** Magazines currently in the shared pool; exact when quiescent. *)

val snapshot : cache -> int array
(** Flat serialisation of a {e quiescent, single-cache} allocator: the
    cache's counters and private magazines plus the shared pool's
    magazine chain.  Only meaningful when [c] is the sole cache of its
    allocator and no other domain touches the pool — exactly the
    sharded engines' per-shard arenas. *)

val restore :
  ?base:int -> ?magazine:int -> slots:int -> slot_words:int ->
  int array -> (t * cache) option
(** [restore ~slots ~slot_words enc] rebuilds a fresh allocator and its
    single cache from a {!snapshot} taken under the same geometry.
    Subsequent [alloc]/[free] sequences behave identically to the
    snapshotted original.  [None] if the encoding is truncated,
    malformed, or names out-of-range slots. *)
