(** A lock-free LIFO free stack (Treiber's stack over [Atomic]).

    The shared pool at the heart of the Blelloch & Wei fixed-size
    allocation design: push and free are a single compare-and-set on
    the head in the common case, so any number of domains can feed and
    drain the pool without locks.  In OCaml the nodes are immutable
    list cells and the collector never recycles a reachable cell, so
    the classic ABA hazard of CAS stacks does not arise.

    Used single-threaded the stack is strictly deterministic: pops
    return pushes in exact LIFO order.  That is what lets one sharded
    engine run bit-identically whether its shards share one domain or
    get one each — each shard owns a private stack. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option

val is_empty : 'a t -> bool
(** Snapshot; racy under concurrent use (like any size query on a
    lock-free structure), exact when quiescent. *)

val length : 'a t -> int
(** O(n) snapshot of the current chain; exact when quiescent. *)

val to_list : 'a t -> 'a list
(** Snapshot of the chain, head (most recently pushed) first; exact
    when quiescent.  Re-pushing the reversed list onto a fresh stack
    reproduces the same pop order — the checkpoint serialisation
    hook. *)
