let min_block = 4

let overhead = 2

let null = -1

type tag = { size : int; allocated : bool }

let encode { size; allocated } =
  Int64.of_int ((size lsl 1) lor (if allocated then 1 else 0))

let decode v =
  let n = Int64.to_int v in
  { size = n lsr 1; allocated = n land 1 = 1 }

let read_header mem ~base off = decode (Memstore.Physical.read mem (base + off))

let read_footer mem ~base off = decode (Memstore.Physical.read mem (base + off - 1))

let write_tags mem ~base off tag =
  assert (tag.size >= 2);
  let v = encode tag in
  Memstore.Physical.write mem (base + off) v;
  Memstore.Physical.write mem (base + off + tag.size - 1) v

let read_next mem ~base off = Int64.to_int (Memstore.Physical.read mem (base + off + 1))

let read_prev mem ~base off = Int64.to_int (Memstore.Physical.read mem (base + off + 2))

let write_next mem ~base off v =
  Memstore.Physical.write mem (base + off + 1) (Int64.of_int v)

let write_prev mem ~base off v =
  Memstore.Physical.write mem (base + off + 2) (Int64.of_int v)
