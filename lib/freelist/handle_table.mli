(** Relocatable references: the codeword / descriptor discipline.

    The paper observes that relocating information is only convenient
    when "there are no stored absolute addresses, because all access to
    information is via, for example, base registers or an address
    mapping device".  A handle table is the minimal such device: clients
    hold opaque handles; the table holds the single absolute address per
    object; compaction updates the table through its [relocate]
    callback and every outstanding handle stays valid.  This is exactly
    the role of Rice codewords and B5000 PRT descriptors. *)

type t

type handle = private int
(** Opaque capability for one stored object. *)

val create : unit -> t

val register : t -> int -> handle
(** [register t addr] records an object at absolute address [addr]. *)

val deref : t -> handle -> int
(** Current absolute address.  Raises [Invalid_argument] on a released
    handle. *)

val release : t -> handle -> unit

val live : t -> int
(** Number of live handles. *)

val relocate : t -> old_addr:int -> new_addr:int -> unit
(** Retarget the (unique) live handle whose address is [old_addr];
    made to be passed to {!Allocator.compact}.  Raises
    [Invalid_argument] if no live handle has that address. *)

val iter : t -> (handle -> int -> unit) -> unit
(** Apply to every live (handle, address) pair. *)
