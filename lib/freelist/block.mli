(** Boundary-tag block encoding inside simulated memory.

    A block of [size] words (size includes both tags) is laid out as:

    {v
      +0          header: (size lsl 1) lor allocated-bit
      +1          free blocks: offset of next free block (-1 = none)
      +2          free blocks: offset of previous free block (-1 = none)
      ...         payload (allocated blocks: words +1 .. size-2)
      +size-1     footer: same encoding as header
    v}

    The footer lets [free] find the preceding block for coalescing —
    the "boundary tag" technique.  All offsets are region-relative word
    offsets; the minimum representable block is {!min_block} words. *)

val min_block : int
(** 4: header + two link words + footer. *)

val overhead : int
(** 2: tag words unavailable to the payload of an allocated block. *)

val null : int
(** -1, the nil link. *)

type tag = { size : int; allocated : bool }

val read_header : Memstore.Physical.t -> base:int -> int -> tag

val read_footer : Memstore.Physical.t -> base:int -> int -> tag
(** [read_footer mem ~base off] reads the tag of the block {e ending}
    just before region offset [off] (i.e. the word at [off - 1]). *)

val write_tags : Memstore.Physical.t -> base:int -> int -> tag -> unit
(** Write both header and footer of the block at region offset. *)

val read_next : Memstore.Physical.t -> base:int -> int -> int

val read_prev : Memstore.Physical.t -> base:int -> int -> int

val write_next : Memstore.Physical.t -> base:int -> int -> int -> unit

val write_prev : Memstore.Physical.t -> base:int -> int -> int -> unit
