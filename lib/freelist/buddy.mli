(** Binary buddy allocator.

    The classical compromise between uniform and variable units of
    allocation: blocks come only in power-of-two sizes, so a freed block
    can be merged with its unique "buddy" in O(1), at the cost of
    rounding every request up to a power of two (internal
    fragmentation).  Included as a baseline for the C1/C2 experiments:
    it sits between the boundary-tag allocator (no rounding waste, costly
    search) and paging (fixed units, no search). *)

type t

val create : words:int -> t
(** A buddy system over [words] words; [words] must be a power of two
    and at least 1. *)

val alloc : t -> int -> int option
(** [alloc t n] returns the offset of a block of [granted_size n] words,
    or [None] if no block is available. *)

val free : t -> int -> unit
(** Release a previously allocated offset.  Raises [Invalid_argument]
    on a double free or unknown offset. *)

val granted_size : int -> int
(** The power of two a request of [n >= 1] words is rounded up to. *)

val live_requested : t -> int
(** Sum of requested sizes of live blocks. *)

val live_granted : t -> int
(** Sum of granted (power-of-two) sizes of live blocks; the difference
    from {!live_requested} is the buddy system's internal
    fragmentation. *)

val free_words : t -> int

val largest_free : t -> int
(** Largest single request currently satisfiable. *)

type invariant_error =
  | Tiling_mismatch of { free : int; granted : int; words : int }
      (** Free words plus granted words no longer cover the store. *)
  | Misaligned_free of { offset : int; order : int }
  | Unmerged_buddies of { offset : int; buddy : int; order : int }
      (** Two free buddies coexist instead of merging. *)
  | Misaligned_live of { offset : int; order : int }

val describe_error : invariant_error -> string

val validate : t -> (unit, invariant_error) result
(** Check the free lists tile the store together with live blocks and
    that no free block coexists with its free buddy.  Returns the first
    violation in deterministic (offset-sorted) order. *)
