type t = {
  words : int;
  max_order : int;
  free : (int, unit) Hashtbl.t array;  (* free.(o): offsets of free 2^o blocks *)
  live : (int, int * int) Hashtbl.t;  (* offset -> (order, requested) *)
  mutable live_requested : int;
  mutable live_granted : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let order_of n =
  let rec loop o v = if v >= n then o else loop (o + 1) (v * 2) in
  loop 0 1

let granted_size n =
  assert (n >= 1);
  1 lsl order_of n

let create ~words =
  assert (is_power_of_two words);
  let max_order = order_of words in
  let free = Array.init (max_order + 1) (fun _ -> Hashtbl.create 16) in
  Hashtbl.replace free.(max_order) 0 ();
  { words; max_order; free; live = Hashtbl.create 64; live_requested = 0; live_granted = 0 }

let pop_free t o =
  let table = t.free.(o) in
  match Hashtbl.length table with
  | 0 -> None
  | _ ->
    (* Take the lowest offset for determinism. *)
    (* lint: allow L3 — min over all bindings is order-independent *)
    let best = Hashtbl.fold (fun off () acc -> min off acc) table max_int in
    Hashtbl.remove table best;
    Some best

let alloc t n =
  assert (n >= 1);
  let want = order_of n in
  if want > t.max_order then None
  else begin
    (* Find the smallest order >= want with a free block. *)
    let rec find o = if o > t.max_order then None else if Hashtbl.length t.free.(o) > 0 then Some o else find (o + 1) in
    match find want with
    | None -> None
    | Some o ->
      let off = match pop_free t o with Some off -> off | None -> assert false in
      (* Split down to the wanted order, freeing the upper halves. *)
      let rec split o =
        if o > want then begin
          let o' = o - 1 in
          Hashtbl.replace t.free.(o') (off + (1 lsl o')) ();
          split o'
        end
      in
      split o;
      Hashtbl.replace t.live off (want, n);
      t.live_requested <- t.live_requested + n;
      t.live_granted <- t.live_granted + (1 lsl want);
      Some off
  end

let free t off =
  match Hashtbl.find_opt t.live off with
  | None -> invalid_arg "Buddy.free: unknown or already-freed offset"
  | Some (order, requested) ->
    Hashtbl.remove t.live off;
    t.live_requested <- t.live_requested - requested;
    t.live_granted <- t.live_granted - (1 lsl order);
    let rec merge off o =
      if o >= t.max_order then (off, o)
      else begin
        let buddy = off lxor (1 lsl o) in
        if Hashtbl.mem t.free.(o) buddy then begin
          Hashtbl.remove t.free.(o) buddy;
          merge (min off buddy) (o + 1)
        end
        else (off, o)
      end
    in
    let off, o = merge off order in
    Hashtbl.replace t.free.(o) off ()

let live_requested t = t.live_requested

let live_granted t = t.live_granted

let free_words t =
  let total = ref 0 in
  Array.iteri (fun o table -> total := !total + (Hashtbl.length table * (1 lsl o))) t.free;
  !total

let largest_free t =
  let rec loop o = if o < 0 then 0 else if Hashtbl.length t.free.(o) > 0 then 1 lsl o else loop (o - 1) in
  loop t.max_order

type invariant_error =
  | Tiling_mismatch of { free : int; granted : int; words : int }
  | Misaligned_free of { offset : int; order : int }
  | Unmerged_buddies of { offset : int; buddy : int; order : int }
  | Misaligned_live of { offset : int; order : int }

let describe_error = function
  | Tiling_mismatch { free; granted; words } ->
    Printf.sprintf "free %d + granted %d does not tile the %d-word store" free granted words
  | Misaligned_free { offset; order } ->
    Printf.sprintf "free block at %d misaligned for order %d" offset order
  | Unmerged_buddies { offset; buddy; order } ->
    Printf.sprintf "order-%d blocks %d and %d are free buddies left unmerged" order offset buddy
  | Misaligned_live { offset; order } ->
    Printf.sprintf "live block at %d misaligned for order %d" offset order

let sorted_keys table = Hashtbl.to_seq_keys table |> List.of_seq |> List.sort compare

let validate t =
  let ( let* ) = Result.bind in
  let rec first_error check = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = check x in
      first_error check rest
  in
  let free = free_words t in
  let* () =
    if free + t.live_granted <> t.words then
      Error (Tiling_mismatch { free; granted = t.live_granted; words = t.words })
    else Ok ()
  in
  let* () =
    first_error
      (fun o ->
        let table = t.free.(o) in
        first_error
          (fun off ->
            if off mod (1 lsl o) <> 0 then Error (Misaligned_free { offset = off; order = o })
            else if o < t.max_order && Hashtbl.mem table (off lxor (1 lsl o)) then
              Error (Unmerged_buddies { offset = off; buddy = off lxor (1 lsl o); order = o })
            else Ok ())
          (sorted_keys table))
      (List.init (t.max_order + 1) Fun.id)
  in
  first_error
    (fun off ->
      match Hashtbl.find_opt t.live off with
      | Some (o, _) when off mod (1 lsl o) <> 0 ->
        Error (Misaligned_live { offset = off; order = o })
      | _ -> Ok ())
    (sorted_keys t.live)
