type t =
  | First_fit
  | Next_fit
  | Best_fit
  | Worst_fit
  | Two_ends of { small_max : int }

let to_string = function
  | First_fit -> "first-fit"
  | Next_fit -> "next-fit"
  | Best_fit -> "best-fit"
  | Worst_fit -> "worst-fit"
  | Two_ends { small_max } -> Printf.sprintf "two-ends(<=%d)" small_max

let all_standard =
  [ First_fit; Next_fit; Best_fit; Worst_fit; Two_ends { small_max = 64 } ]
