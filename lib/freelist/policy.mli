(** Placement strategies for variable units of allocation.

    These are the alternatives the paper's "Placement Strategies"
    section discusses: the "smallest space which is sufficient" rule
    (best fit), the lower-bookkeeping "large blocks at one end, small at
    the other" rule (two ends), and the standard fits the later
    literature measured them against. *)

type t =
  | First_fit  (** lowest-addressed sufficient hole *)
  | Next_fit  (** first fit resuming from a roving pointer *)
  | Best_fit  (** smallest sufficient hole (paper's "common and
                  frequently satisfactory strategy") *)
  | Worst_fit  (** largest hole — a deliberate straw man *)
  | Two_ends of { small_max : int }
      (** requests up to [small_max] words placed low-end-first; larger
          requests placed high-end-first (paper's alternative "which
          involves less bookkeeping") *)

val to_string : t -> string

val all_standard : t list
(** The policy set the C2 experiment sweeps (two-ends instantiated with
    a representative threshold). *)
