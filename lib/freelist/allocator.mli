(** A variable-unit storage allocator whose bookkeeping lives {e inside}
    the simulated store it manages, as a real supervisor's must.

    Blocks carry boundary tags ({!Block}); free blocks are threaded on a
    doubly-linked, address-ordered free list whose link words occupy the
    free blocks themselves.  Freeing coalesces with both neighbours
    immediately, so the free list never contains adjacent blocks.

    Placement is pluggable ({!Policy.t}).  {!compact} implements the
    paper's second "course of action" against fragmentation — moving
    information to consolidate holes — using the autonomous
    storage-to-storage channel, and is only sound because clients reach
    their storage through relocatable references (see {!Handle_table}). *)

type t

val create :
  ?obs:Obs.Sink.t ->
  ?clock:Sim.Clock.t ->
  Memstore.Physical.t ->
  base:int ->
  len:int ->
  policy:Policy.t ->
  t
(** Manage the [len] words of [mem] starting at absolute offset [base].
    [len] must be at least {!Block.min_block}.

    With a sink, the allocator reports alloc / free (payload address
    and words), split (block address, words granted, words left),
    coalesce (merged block address and total words) and
    compaction_move events.  Timestamps come from [clock] when given
    (e.g. the owning store's virtual clock), else from a per-allocator
    operation counter. *)

type spec = { s_base : int; s_len : int; s_policy : Policy.t }
(** A pure description of an allocator configuration: region geometry
    plus placement strategy, with no store and no clocked state.  The
    counterpart of {!Paging.Spec.engine} for the variable-unit
    allocator — shard runners build one allocator per shard from a
    single shared description. *)

val build : ?obs:Obs.Sink.t -> ?clock:Sim.Clock.t -> Memstore.Physical.t -> spec -> t
(** Instantiate a description against a store (and optionally a virtual
    clock); equivalent to {!create} with the spec's fields. *)

val policy : t -> Policy.t

val capacity : t -> int
(** Total words managed, including tag overhead. *)

val alloc : t -> int -> int option
(** [alloc t n] requests [n >= 1] payload words.  Returns the absolute
    word address of the payload, or [None] when no sufficient hole
    exists (a failure is recorded either way). *)

val free : t -> int -> unit
(** Release a payload address previously returned by {!alloc}.  Raises
    [Invalid_argument] if the address is not a live allocation. *)

val payload_size : t -> int -> int
(** Usable words of the live allocation at the given payload address
    (at least the requested size; may be larger due to splitting
    limits). *)

val live_words : t -> int
(** Payload words currently allocated. *)

val live_blocks : t -> int

val free_words : t -> int
(** Words in free blocks (including their tag words). *)

val free_block_sizes : t -> int list
(** Sizes (total words) of every free block, in address order. *)

val largest_free : t -> int
(** Largest payload currently satisfiable without compaction; 0 if none. *)

val failures : t -> int
(** Allocation requests that returned [None]. *)

val search_stats : t -> Metrics.Stats.t
(** Free-list nodes examined per allocation attempt — the bookkeeping
    cost the paper weighs against fragmentation. *)

val compact : t -> Memstore.Channel.t -> relocate:(int -> int -> unit) -> unit
(** Slide every live block to the low end of the region, leaving one
    maximal hole.  [relocate old_payload new_payload] is invoked for
    each moved block so the owner can update its (single, indirect)
    reference. *)

(** {2 Introspection for tests} *)

type walk_block = { off : int; size : int; allocated : bool }

val walk : t -> walk_block list
(** Every block in address order, read from raw memory. *)

val validate : t -> unit
(** Walk raw memory and the free list and check every invariant
    (tags consistent, sizes tile the region, no adjacent free blocks,
    free list = free blocks of the walk, counters consistent).
    Raises [Failure] describing the first violation. *)
