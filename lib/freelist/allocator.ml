type t = {
  mem : Memstore.Physical.t;
  base : int;
  len : int;
  policy : Policy.t;
  mutable free_head : int;  (* region-relative offset, Block.null if none *)
  mutable rover : int;  (* next-fit resume point *)
  mutable live_words : int;  (* sum of payload words of live blocks *)
  mutable live_blocks : int;
  mutable failures : int;
  searches : Metrics.Stats.t;
  obs : Obs.Sink.t;
  tracing : bool;
  clock : Sim.Clock.t option;  (* event timestamps; operation count if absent *)
  mutable ops : int;
}

let null = Block.null

type spec = { s_base : int; s_len : int; s_policy : Policy.t }

let create ?(obs = Obs.Sink.null) ?clock mem ~base ~len ~policy =
  assert (len >= Block.min_block);
  assert (base >= 0 && base + len <= Memstore.Physical.size mem);
  let t =
    {
      mem;
      base;
      len;
      policy;
      free_head = 0;
      rover = null;
      live_words = 0;
      live_blocks = 0;
      failures = 0;
      searches = Metrics.Stats.create ();
      obs;
      tracing = Obs.Sink.is_active obs;
      clock;
      ops = 0;
    }
  in
  Block.write_tags mem ~base 0 { size = len; allocated = false };
  Block.write_next mem ~base 0 null;
  Block.write_prev mem ~base 0 null;
  t

let build ?obs ?clock mem spec =
  create ?obs ?clock mem ~base:spec.s_base ~len:spec.s_len ~policy:spec.s_policy

let emit t kind =
  let t_us = match t.clock with Some c -> Sim.Clock.now c | None -> t.ops in
  Obs.Sink.emit t.obs (Obs.Event.make ~t_us kind)

let policy t = t.policy

let capacity t = t.len

let header t off = Block.read_header t.mem ~base:t.base off

let next_free t off = Block.read_next t.mem ~base:t.base off

let prev_free t off = Block.read_prev t.mem ~base:t.base off

let set_next t off v = Block.write_next t.mem ~base:t.base off v

let set_prev t off v = Block.write_prev t.mem ~base:t.base off v

let unlink t off =
  let next = next_free t off and prev = prev_free t off in
  if prev = null then t.free_head <- next else set_next t prev next;
  if next <> null then set_prev t next prev;
  if t.rover = off then t.rover <- next

(* Replace node [off] by node [off'] at the same list position; used when
   splitting leaves the remainder where the hole's links can be reused in
   address order. *)
let replace_node t off off' =
  let next = next_free t off and prev = prev_free t off in
  set_next t off' next;
  set_prev t off' prev;
  if prev = null then t.free_head <- off' else set_next t prev off';
  if next <> null then set_prev t next off';
  if t.rover = off then t.rover <- off'

let insert_ordered t off =
  if t.free_head = null || t.free_head > off then begin
    set_next t off t.free_head;
    set_prev t off null;
    if t.free_head <> null then set_prev t t.free_head off;
    t.free_head <- off
  end
  else begin
    let rec find cur =
      let next = next_free t cur in
      if next = null || next > off then cur else find next
    in
    let cur = find t.free_head in
    let next = next_free t cur in
    set_next t off next;
    set_prev t off cur;
    set_next t cur off;
    if next <> null then set_prev t next off
  end

let mark_free t off size =
  Block.write_tags t.mem ~base:t.base off { size; allocated = false };
  insert_ordered t off

(* Placement: find a free block whose size covers [needed].  Returns the
   block offset and whether the allocation should be taken from its high
   end.  [examined] counts free-list nodes looked at. *)
let find_hole t ~request ~needed ~examined =
  let scan_first start =
    let rec loop off =
      if off = null then null
      else begin
        incr examined;
        if (header t off).size >= needed then off else loop (next_free t off)
      end
    in
    loop start
  in
  match t.policy with
  | Policy.First_fit ->
    let off = scan_first t.free_head in
    if off = null then None else Some (off, false)
  | Policy.Next_fit ->
    if t.free_head = null then None
    else begin
      let start = if t.rover <> null then t.rover else t.free_head in
      let rec loop off wrapped =
        if off = null then if wrapped then null else loop t.free_head true
        else if wrapped && off >= start then null
        else begin
          incr examined;
          if (header t off).size >= needed then off
          else loop (next_free t off) wrapped
        end
      in
      let off = loop start false in
      if off = null then None else Some (off, false)
    end
  | Policy.Best_fit ->
    let best = ref null and best_size = ref max_int in
    let rec loop off =
      if off <> null then begin
        incr examined;
        let s = (header t off).size in
        if s >= needed && s < !best_size then begin
          best := off;
          best_size := s
        end;
        loop (next_free t off)
      end
    in
    loop t.free_head;
    if !best = null then None else Some (!best, false)
  | Policy.Worst_fit ->
    let worst = ref null and worst_size = ref 0 in
    let rec loop off =
      if off <> null then begin
        incr examined;
        let s = (header t off).size in
        if s >= needed && s > !worst_size then begin
          worst := off;
          worst_size := s
        end;
        loop (next_free t off)
      end
    in
    loop t.free_head;
    if !worst = null then None else Some (!worst, false)
  | Policy.Two_ends { small_max } ->
    if request <= small_max then begin
      let off = scan_first t.free_head in
      if off = null then None else Some (off, false)
    end
    else begin
      (* Highest-addressed sufficient hole, taken from its high end. *)
      let last = ref null in
      let rec loop off =
        if off <> null then begin
          incr examined;
          if (header t off).size >= needed then last := off;
          loop (next_free t off)
        end
      in
      loop t.free_head;
      if !last = null then None else Some (!last, true)
    end

let alloc t request =
  assert (request >= 1);
  t.ops <- t.ops + 1;
  let needed = max Block.min_block (request + Block.overhead) in
  let examined = ref 0 in
  let result =
    match find_hole t ~request ~needed ~examined with
    | None ->
      t.failures <- t.failures + 1;
      None
    | Some (off, take_high) ->
      let size = (header t off).size in
      let remainder = size - needed in
      let succ = next_free t off in
      let granted_off, granted_size, rover_after =
        if remainder >= Block.min_block then begin
          if take_high then begin
            (* The hole shrinks in place; its links and position are
               unchanged.  The allocation sits at its high end. *)
            Block.write_tags t.mem ~base:t.base off
              { size = remainder; allocated = false };
            (off + remainder, needed, off)
          end
          else begin
            let rem_off = off + needed in
            Block.write_tags t.mem ~base:t.base rem_off
              { size = remainder; allocated = false };
            replace_node t off rem_off;
            (off, needed, rem_off)
          end
        end
        else begin
          unlink t off;
          (off, size, succ)
        end
      in
      Block.write_tags t.mem ~base:t.base granted_off
        { size = granted_size; allocated = true };
      (match t.policy with
       | Policy.Next_fit ->
         (* Resume the rove just past the hole we carved. *)
         t.rover <- (if rover_after <> null then rover_after else t.free_head)
       | Policy.First_fit | Policy.Best_fit | Policy.Worst_fit | Policy.Two_ends _ -> ());
      t.live_words <- t.live_words + granted_size - Block.overhead;
      t.live_blocks <- t.live_blocks + 1;
      if t.tracing then begin
        if remainder >= Block.min_block then
          emit t
            (Split { addr = t.base + off; size = granted_size; remainder });
        emit t
          (Alloc
             { addr = t.base + granted_off + 1; size = granted_size - Block.overhead })
      end;
      Some (t.base + granted_off + 1)
  in
  Metrics.Stats.add t.searches (float_of_int !examined);
  result

let block_of_payload t addr =
  let off = addr - t.base - 1 in
  if off < 0 || off >= t.len then invalid_arg "Allocator: address outside region";
  let tag = header t off in
  if not tag.Block.allocated then invalid_arg "Allocator: not a live allocation";
  if tag.Block.size < Block.min_block || tag.Block.size > t.len - off then
    invalid_arg "Allocator: corrupt block";
  (off, tag.Block.size)

let payload_size t addr =
  let _, size = block_of_payload t addr in
  size - Block.overhead

let free t addr =
  let off, size = block_of_payload t addr in
  t.ops <- t.ops + 1;
  t.live_words <- t.live_words - (size - Block.overhead);
  t.live_blocks <- t.live_blocks - 1;
  if t.tracing then emit t (Free { addr; size = size - Block.overhead });
  let new_off = ref off and new_size = ref size in
  let after = off + size in
  if after < t.len then begin
    let next = header t after in
    if not next.Block.allocated then begin
      unlink t after;
      new_size := !new_size + next.Block.size
    end
  end;
  if off > 0 then begin
    let prev = Block.read_footer t.mem ~base:t.base off in
    if not prev.Block.allocated then begin
      let prev_off = off - prev.Block.size in
      unlink t prev_off;
      new_off := prev_off;
      new_size := !new_size + prev.Block.size
    end
  end;
  if t.tracing && !new_size > size then
    emit t (Coalesce { addr = t.base + !new_off; size = !new_size });
  mark_free t !new_off !new_size

let live_words t = t.live_words

let live_blocks t = t.live_blocks

let failures t = t.failures

let search_stats t = t.searches

type walk_block = { off : int; size : int; allocated : bool }

let walk t =
  let rec loop off acc =
    if off >= t.len then List.rev acc
    else begin
      let tag = header t off in
      assert (tag.Block.size >= 2);
      loop (off + tag.Block.size)
        ({ off; size = tag.Block.size; allocated = tag.Block.allocated } :: acc)
    end
  in
  loop 0 []

let free_block_sizes t =
  List.filter_map (fun b -> if b.allocated then None else Some b.size) (walk t)

let free_words t = List.fold_left ( + ) 0 (free_block_sizes t)

let largest_free t =
  let largest = List.fold_left max 0 (free_block_sizes t) in
  max 0 (largest - Block.overhead)

let compact t channel ~relocate =
  let blocks = walk t in
  t.free_head <- null;
  t.rover <- null;
  let place dst b =
    if b.allocated then begin
      if b.off > dst then begin
        Memstore.Channel.move channel t.mem ~src:(t.base + b.off)
          ~dst:(t.base + dst) ~len:b.size;
        relocate (t.base + b.off + 1) (t.base + dst + 1);
        if t.tracing then
          emit t
            (Compaction_move { src = t.base + b.off; dst = t.base + dst; len = b.size })
      end;
      dst + b.size
    end
    else dst
  in
  let dst = List.fold_left place 0 blocks in
  let remainder = t.len - dst in
  if remainder >= Block.min_block then begin
    Block.write_tags t.mem ~base:t.base dst { size = remainder; allocated = false };
    set_next t dst null;
    set_prev t dst null;
    t.free_head <- dst
  end
  else if remainder > 0 then begin
    (* Too small to describe as a block: pad the final live block. *)
    let rec last_live_end off acc =
      if off >= dst then acc
      else
        let tag = header t off in
        last_live_end (off + tag.Block.size) (off, tag.Block.size)
    in
    match last_live_end 0 (-1, 0) with
    | -1, _ -> assert false (* dst > 0 implies at least one live block *)
    | last_off, last_size ->
      Block.write_tags t.mem ~base:t.base last_off
        { size = last_size + remainder; allocated = true };
      t.live_words <- t.live_words + remainder
  end

(* lint: allow L4 — validate below is a documented test-facing checker that raises Failure *)
let fail fmt = Printf.ksprintf failwith fmt

let validate t =
  let blocks = walk t in
  let total = List.fold_left (fun acc b -> acc + b.size) 0 blocks in
  if total <> t.len then fail "validate: blocks cover %d of %d words" total t.len;
  List.iter
    (fun b ->
      let footer = Block.read_footer t.mem ~base:t.base (b.off + b.size) in
      if footer.Block.size <> b.size || footer.Block.allocated <> b.allocated then
        fail "validate: footer mismatch at %d" b.off;
      if b.size < Block.min_block then fail "validate: runt block at %d" b.off)
    blocks;
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      if (not a.allocated) && not b.allocated then
        fail "validate: uncoalesced free blocks at %d and %d" a.off b.off;
      adjacent rest
    | [ _ ] | [] -> ()
  in
  adjacent blocks;
  let walked_free = List.filter_map (fun b -> if b.allocated then None else Some b.off) blocks in
  let listed_free =
    let rec loop off prev acc =
      if off = null then List.rev acc
      else begin
        if prev_free t off <> prev then fail "validate: bad prev link at %d" off;
        if prev <> null && off <= prev then fail "validate: free list not ascending at %d" off;
        if (header t off).Block.allocated then fail "validate: allocated block %d on free list" off;
        loop (next_free t off) off (off :: acc)
      end
    in
    loop t.free_head null []
  in
  if walked_free <> listed_free then
    fail "validate: free list (%d nodes) disagrees with walk (%d free blocks)"
      (List.length listed_free) (List.length walked_free);
  let live = List.filter (fun b -> b.allocated) blocks in
  if List.length live <> t.live_blocks then
    fail "validate: live_blocks counter %d vs %d" t.live_blocks (List.length live);
  let payload = List.fold_left (fun acc b -> acc + b.size - Block.overhead) 0 live in
  if payload <> t.live_words then
    fail "validate: live_words counter %d vs %d" t.live_words payload;
  if t.rover <> null && not (List.mem t.rover listed_free) then
    fail "validate: rover %d not on free list" t.rover
