type handle = int

type t = {
  mutable slots : int array;  (* handle -> address, or -1 for dead *)
  mutable used : int;
  mutable free_slots : int list;
  by_addr : (int, int) Hashtbl.t;  (* address -> handle *)
}

let dead = -1

let create () = { slots = [||]; used = 0; free_slots = []; by_addr = Hashtbl.create 64 }

let register t addr =
  let h =
    match t.free_slots with
    | h :: rest ->
      t.free_slots <- rest;
      h
    | [] ->
      if t.used >= Array.length t.slots then begin
        let grown = Array.make (max 8 (2 * Array.length t.slots)) dead in
        Array.blit t.slots 0 grown 0 t.used;
        t.slots <- grown
      end;
      let h = t.used in
      t.used <- t.used + 1;
      h
  in
  t.slots.(h) <- addr;
  Hashtbl.replace t.by_addr addr h;
  h

let check t h =
  if h < 0 || h >= t.used || t.slots.(h) = dead then
    invalid_arg "Handle_table: dead or unknown handle"

let deref t h =
  check t h;
  t.slots.(h)

let release t h =
  check t h;
  Hashtbl.remove t.by_addr t.slots.(h);
  t.slots.(h) <- dead;
  t.free_slots <- h :: t.free_slots

let live t = Hashtbl.length t.by_addr

let relocate t ~old_addr ~new_addr =
  match Hashtbl.find_opt t.by_addr old_addr with
  | None -> invalid_arg "Handle_table.relocate: no live handle at address"
  | Some h ->
    Hashtbl.remove t.by_addr old_addr;
    t.slots.(h) <- new_addr;
    Hashtbl.replace t.by_addr new_addr h

let iter t f =
  for h = 0 to t.used - 1 do
    if t.slots.(h) <> dead then f h t.slots.(h)
  done
