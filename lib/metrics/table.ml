type align = Left | Right

let default_align ncols = List.init ncols (fun i -> if i = 0 then Left else Right)

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~headers rows =
  let ncols = List.length headers in
  let align = match align with Some a -> a | None -> default_align ncols in
  assert (List.length align = ncols);
  assert (List.for_all (fun r -> List.length r = ncols) rows);
  let widths = Array.of_list (List.map String.length headers) in
  let note row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter note rows;
  let line cells =
    let padded = List.mapi (fun i (a, c) -> ignore i; c, a) (List.combine align cells) in
    String.concat "  " (List.mapi (fun i (c, a) -> pad a widths.(i) c) padded)
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let body = List.map line rows in
  String.concat "\n" ((line headers :: rule :: body) @ [ "" ])

let print ?align ~headers rows = print_string (render ?align ~headers rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct x = Printf.sprintf "%.1f%%" (100. *. x)
