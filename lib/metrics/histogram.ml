type scheme =
  | Linear of { lo : int; width : int }
  | Log2

type t = {
  scheme : scheme;
  counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let linear ~lo ~hi ~buckets =
  assert (lo < hi && buckets > 0);
  let width = max 1 ((hi - lo + buckets - 1) / buckets) in
  { scheme = Linear { lo; width };
    counts = Array.make buckets 0;
    total = 0;
    min_v = max_int;
    max_v = min_int }

let log2 ~max_exponent =
  assert (max_exponent >= 0);
  { scheme = Log2;
    counts = Array.make (max_exponent + 2) 0;
    total = 0;
    min_v = max_int;
    max_v = min_int }

let clamp n lo hi = if n < lo then lo else if n > hi then hi else n

let bucket_of t x =
  let n = Array.length t.counts in
  match t.scheme with
  | Linear { lo; width } -> clamp ((x - lo) / width) 0 (n - 1)
  | Log2 ->
    if x <= 0 then 0
    else
      (* bucket i>=1 holds [2^(i-1), 2^i). *)
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      clamp (bits 0 x) 1 (n - 1)

let add t x =
  t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
  t.total <- t.total + 1;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.total

let min_value t = if t.total = 0 then None else Some t.min_v

let max_value t = if t.total = 0 then None else Some t.max_v

let lower_bound t i =
  match t.scheme with
  | Linear { lo; width } -> lo + (i * width)
  | Log2 -> if i = 0 then 0 else 1 lsl (i - 1)

let label t i =
  match t.scheme with
  | Linear { lo; width } ->
    Printf.sprintf "[%d,%d)" (lo + (i * width)) (lo + ((i + 1) * width))
  | Log2 ->
    if i = 0 then "0"
    else if i = 1 then "1"
    else Printf.sprintf "[%d,%d)" (1 lsl (i - 1)) (1 lsl i)

let bucket_counts t = Array.init (Array.length t.counts) (fun i -> (label t i, t.counts.(i)))

let percentile t p =
  assert (p >= 0. && p <= 1.);
  if t.total = 0 then 0
  else begin
    let threshold = int_of_float (ceil (p *. float_of_int t.total)) in
    let threshold = max 1 threshold in
    let acc = ref 0 and result = ref (lower_bound t (Array.length t.counts - 1)) in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= threshold then begin
           result := lower_bound t i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let percentiles t ps = List.map (fun p -> (p, percentile t p)) ps

let num_buckets t = Array.length t.counts
