(** Fixed-width text tables — the "rows the paper reports".

    Every experiment in the benchmark harness prints its results through
    this module so that output is uniform and diffable. *)

type align = Left | Right

val render : ?align:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] lays the rows out in columns sized to the
    widest cell, with a rule under the header.  [align] gives per-column
    alignment (default: right for cells that parse as numbers is NOT
    attempted — default is left for the first column, right for the
    rest). *)

val print : ?align:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper (default 2 decimals). *)

val fmt_pct : float -> string
(** Format a [0,1] fraction as a percentage with one decimal. *)
