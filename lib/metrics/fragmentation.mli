(** Fragmentation measures for both allocation disciplines.

    The paper (Conclusions, v) insists that paging does not remove
    fragmentation, it merely relocates it: variable-unit allocation
    suffers {e external} fragmentation (free store shattered into
    unusable shards) while paging suffers {e internal} fragmentation
    (partly-used page frames).  These measures make the two comparable. *)

val external_of_free_blocks : int list -> float
(** [external_of_free_blocks sizes] = [1 - largest / total] over the free
    block sizes; 0. if no free store.  0 means one contiguous hole; values
    near 1 mean the free store is badly shattered. *)

val unusable_for : request:int -> int list -> int
(** Words of free store lying in blocks smaller than [request] — free
    space that cannot satisfy a request of that size without compaction. *)

(** Accumulator for internal fragmentation under a uniform allocation
    unit: the slack between what was asked for and the whole page frames
    granted. *)
module Internal : sig
  type t

  val create : page_size:int -> t

  val record : t -> requested:int -> unit
  (** Record one allocation request of [requested] words; the allocator
      grants [ceil (requested / page_size)] frames. *)

  val release : t -> requested:int -> unit
  (** Record that a previously recorded request was freed. *)

  val requested_live : t -> int
  (** Words currently requested and not yet released. *)

  val granted_live : t -> int
  (** Words currently granted (whole frames). *)

  val wasted_live : t -> int
  (** [granted_live - requested_live]: current internal fragmentation. *)

  val waste_fraction : t -> float
  (** [wasted_live / granted_live]; 0. if nothing granted. *)
end
