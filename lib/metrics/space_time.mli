(** Space-time product accounting (paper, Fig. 3).

    The paper argues that the significant measure of a fetch strategy is
    not the amount of storage a program occupies but its {e space-time
    product}: words occupied integrated over time, split between periods
    when the program is executing and periods when it occupies storage
    while suspended awaiting a page.  This accumulator records both
    components. *)

type t

type state =
  | Active  (** program executing *)
  | Waiting  (** program suspended, awaiting a fetch, still holding store *)

val create : unit -> t

val accrue : t -> words:int -> dt:int -> state -> unit
(** [accrue t ~words ~dt state] records that [words] of working storage
    were held for [dt] microseconds while in [state]. *)

val active : t -> float
(** Word-microseconds accrued while executing. *)

val waiting : t -> float
(** Word-microseconds accrued while awaiting fetches. *)

val total : t -> float

val waiting_fraction : t -> float
(** [waiting /. total]; 0. if nothing accrued.  The paper's Fig. 3 point:
    with slow backing store this fraction dominates. *)
