let clamp_nonneg x = if x < 0. then 0. else x

let bars ?(width = 50) data =
  assert (width > 0);
  let largest = List.fold_left (fun m (_, v) -> Float.max m (clamp_nonneg v)) 0. data in
  let label_width = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 data in
  let bar (label, v) =
    let v = clamp_nonneg v in
    (* lint: allow L5 — exact-zero sentinel guarding division; largest is a max of clamped values *)
    let n = if largest = 0. then 0 else int_of_float (v /. largest *. float_of_int width) in
    Printf.sprintf "%-*s |%s %g" label_width label (String.make n '#') v
  in
  String.concat "\n" (List.map bar data @ [ "" ])

let stacked_bars ?(width = 50) ~legend:(a_name, b_name) rows =
  assert (width > 0);
  let total (_, a, b) = clamp_nonneg a +. clamp_nonneg b in
  let largest = List.fold_left (fun m r -> Float.max m (total r)) 0. rows in
  let label_width = List.fold_left (fun m (l, _, _) -> max m (String.length l)) 0 rows in
  (* lint: allow L5 — exact-zero sentinel guarding division; largest is a max of clamped values *)
  let scale v = if largest = 0. then 0 else int_of_float (clamp_nonneg v /. largest *. float_of_int width) in
  let bar (label, a, b) =
    Printf.sprintf "%-*s |%s%s %g/%g" label_width label
      (String.make (scale a) '#')
      (String.make (scale b) '.')
      a b
  in
  let header = Printf.sprintf "legend: '#' = %s, '.' = %s" a_name b_name in
  String.concat "\n" ((header :: List.map bar rows) @ [ "" ])

let series ?(width = 60) ?(height = 18) ~x_label ~y_label named =
  assert (width > 1 && height > 1);
  let marks = [| '*'; 'o'; '+'; 'x'; '@'; '%'; '&'; '$' |] in
  let all = List.concat_map snd named in
  if all = [] then "(empty chart)\n"
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let fmin = List.fold_left Float.min infinity and fmax = List.fold_left Float.max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs and y0 = fmin ys and y1 = fmax ys in
    let xspan = if x1 > x0 then x1 -. x0 else 1. in
    let yspan = if y1 > y0 then y1 -. y0 else 1. in
    let grid = Array.make_matrix height width ' ' in
    let plot mark (x, y) =
      let col = int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1)) in
      let row = int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1)) in
      grid.(height - 1 - row).(col) <- mark
    in
    List.iteri
      (fun i (_, points) -> List.iter (plot marks.(i mod Array.length marks)) points)
      named;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    Buffer.add_string buf (Printf.sprintf "%s (vertical) vs %s (horizontal)\n" y_label x_label);
    List.iteri
      (fun i (name, _) ->
        Buffer.add_string buf (Printf.sprintf "  '%c' = %s\n" marks.(i mod Array.length marks) name))
      named;
    Array.iteri
      (fun i row ->
        let edge =
          if i = 0 then Printf.sprintf "%10.3g |" y1
          else if i = height - 1 then Printf.sprintf "%10.3g |" y0
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf edge;
        Buffer.add_string buf (String.init width (fun j -> row.(j)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "%10s  %-10.4g%*.4g\n" "" x0 (width - 10) x1);
    Buffer.contents buf
  end
