let external_of_free_blocks sizes =
  let total = List.fold_left ( + ) 0 sizes in
  if total = 0 then 0.
  else
    let largest = List.fold_left max 0 sizes in
    1. -. (float_of_int largest /. float_of_int total)

let unusable_for ~request sizes =
  List.fold_left (fun acc s -> if s < request then acc + s else acc) 0 sizes

module Internal = struct
  type t = {
    page_size : int;
    mutable requested_live : int;
    mutable granted_live : int;
  }

  let create ~page_size =
    assert (page_size > 0);
    { page_size; requested_live = 0; granted_live = 0 }

  let frames t requested = (requested + t.page_size - 1) / t.page_size

  let record t ~requested =
    assert (requested >= 0);
    t.requested_live <- t.requested_live + requested;
    t.granted_live <- t.granted_live + (frames t requested * t.page_size)

  let release t ~requested =
    assert (requested >= 0);
    t.requested_live <- t.requested_live - requested;
    t.granted_live <- t.granted_live - (frames t requested * t.page_size);
    assert (t.requested_live >= 0 && t.granted_live >= 0)

  let requested_live t = t.requested_live

  let granted_live t = t.granted_live

  let wasted_live t = t.granted_live - t.requested_live

  let waste_fraction t =
    if t.granted_live = 0 then 0.
    else float_of_int (wasted_live t) /. float_of_int t.granted_live
end
