(** Streaming summary statistics (Welford's online algorithm).

    Accumulates count, mean, variance, min and max of a stream of floats
    in O(1) space, without storing the samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. if no samples. *)

val variance : t -> float
(** Population variance; 0. with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] if no samples. *)

val max : t -> float
(** [neg_infinity] if no samples. *)

val total : t -> float
(** Sum of all samples. *)

(** {2 Least-squares line fit} *)

type fit = {
  slope : float;
  intercept : float;
  r_square : float;  (** fraction of variance explained; 1. for a flat line *)
}

val linfit : (float * float) list -> fit option
(** Ordinary least squares over [(x, y)] pairs.  Feed [log x / log y]
    pairs to fit a power law ([slope] is then the exponent).  [None]
    with fewer than two points or zero x-variance. *)
