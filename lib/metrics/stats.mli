(** Streaming summary statistics (Welford's online algorithm).

    Accumulates count, mean, variance, min and max of a stream of floats
    in O(1) space, without storing the samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. if no samples. *)

val variance : t -> float
(** Population variance; 0. with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] if no samples. *)

val max : t -> float
(** [neg_infinity] if no samples. *)

val total : t -> float
(** Sum of all samples. *)
