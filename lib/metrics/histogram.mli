(** Fixed-bucket histograms over non-negative integers.

    Two bucketing schemes: linear (equal-width buckets over [lo, hi)) and
    logarithmic (one bucket per power of two), the latter suited to
    allocation-size and lifetime distributions which span decades. *)

type t

val linear : lo:int -> hi:int -> buckets:int -> t
(** Equal-width buckets covering [lo, hi); out-of-range samples are
    clamped into the first/last bucket.  Requires [lo < hi] and
    [buckets > 0]. *)

val log2 : max_exponent:int -> t
(** Buckets [0], [1], [2-3], [4-7], ... up to [2^max_exponent]; larger
    samples land in the last bucket. *)

val add : t -> int -> unit

val count : t -> int
(** Total number of samples. *)

val bucket_counts : t -> (string * int) array
(** Label and count of every bucket, in order. *)

val percentile : t -> float -> int
(** [percentile t p] with [0. <= p <= 1.] returns a representative value
    (bucket lower bound) at or above the [p]-fraction point of the
    distribution; 0 if empty.  Precisely: the lower bound of the bucket
    holding the [ceil (p * count)]-th smallest sample, so it agrees with
    a sorted-array percentile up to bucket resolution. *)

val percentiles : t -> float list -> (float * int) list
(** [percentiles t ps] is [percentile] mapped over [ps], keeping the
    requested fractions alongside the values. *)

val min_value : t -> int option
(** Exact smallest sample added, independent of bucket resolution;
    [None] if empty. *)

val max_value : t -> int option
(** Exact largest sample added; [None] if empty. *)

val bucket_of : t -> int -> int
(** Index of the bucket a sample would land in (after clamping). *)

val lower_bound : t -> int -> int
(** Inclusive lower bound of bucket [i]. *)

val num_buckets : t -> int
