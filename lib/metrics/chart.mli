(** ASCII charts, used to regenerate the paper's figures in a terminal.

    Two forms: a horizontal bar chart (one bar per labelled value) and a
    multi-series scatter/line chart on a character grid.  Nothing here is
    interactive; the output is deterministic text suitable for diffing. *)

val bars : ?width:int -> (string * float) list -> string
(** [bars data] renders one horizontal bar per entry, scaled so the
    largest value spans [width] characters (default 50).  Negative values
    are clamped to 0. *)

val stacked_bars : ?width:int -> legend:string * string -> (string * float * float) list -> string
(** [stacked_bars ~legend:(a_name, b_name) rows] renders rows of
    [(label, a, b)] as bars where the [a] component is drawn with ['#']
    and the [b] component with ['.'] — used for Fig. 3's active/waiting
    space-time split. *)

val series : ?width:int -> ?height:int -> x_label:string -> y_label:string ->
  (string * (float * float) list) list -> string
(** [series named_points] plots each named series of (x, y) points on a
    shared grid, each series with its own mark character.  Axes are
    annotated with the data ranges. *)
