(** A time profile of storage occupancy — the picture in Fig. 3.

    The paper's figure plots space held by a program against real time,
    shading the intervals spent awaiting page arrivals.  A timeline
    accumulates (interval, words held, active/waiting) segments as a
    simulation runs and renders them as an ASCII silhouette: column
    height is storage held, ['#'] columns are mostly execution, ['.']
    columns mostly waiting. *)

type t

val create : unit -> t

val record : t -> at:int -> dt:int -> words:int -> Space_time.state -> unit
(** Append a segment covering [at, at+dt) during which [words] of
    working storage were held in the given state.  Zero-length segments
    are ignored. *)

val segments : t -> int

val span_us : t -> int
(** Time covered, from 0 to the end of the last segment. *)

val render : ?width:int -> ?height:int -> t -> string
(** The Fig. 3 silhouette.  Each column covers [span/width]
    microseconds; its height is the time-weighted mean words held there
    and its character the dominant state. *)
