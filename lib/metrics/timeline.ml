type segment = { at : int; dt : int; words : int; state : Space_time.state }

type t = { mutable segments : segment list; mutable count : int; mutable span : int }

let create () = { segments = []; count = 0; span = 0 }

let record t ~at ~dt ~words state =
  assert (at >= 0 && dt >= 0 && words >= 0);
  if dt > 0 then begin
    t.segments <- { at; dt; words; state } :: t.segments;
    t.count <- t.count + 1;
    t.span <- max t.span (at + dt)
  end

let segments t = t.count

let span_us t = t.span

let render ?(width = 64) ?(height = 12) t =
  assert (width > 0 && height > 0);
  if t.span = 0 then "(empty timeline)\n"
  else begin
    (* Per column: time-weighted words, and time split by state. *)
    let words_area = Array.make width 0. in
    let active_time = Array.make width 0. in
    let waiting_time = Array.make width 0. in
    let column_span = float_of_int t.span /. float_of_int width in
    let spread seg =
      let t0 = float_of_int seg.at and t1 = float_of_int (seg.at + seg.dt) in
      let c0 = int_of_float (t0 /. column_span) in
      let c1 = min (width - 1) (int_of_float ((t1 -. 1e-9) /. column_span)) in
      for c = c0 to c1 do
        let lo = Float.max t0 (float_of_int c *. column_span) in
        let hi = Float.min t1 (float_of_int (c + 1) *. column_span) in
        let overlap = Float.max 0. (hi -. lo) in
        words_area.(c) <- words_area.(c) +. (overlap *. float_of_int seg.words);
        match seg.state with
        | Space_time.Active -> active_time.(c) <- active_time.(c) +. overlap
        | Space_time.Waiting -> waiting_time.(c) <- waiting_time.(c) +. overlap
      done
    in
    List.iter spread t.segments;
    let mean_words c =
      let busy = active_time.(c) +. waiting_time.(c) in
      (* lint: allow L5 — exact-zero sentinel guarding division over nonnegative sums *)
      if busy = 0. then 0. else words_area.(c) /. busy
    in
    let peak = ref 1. in
    for c = 0 to width - 1 do
      if mean_words c > !peak then peak := mean_words c
    done;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    Buffer.add_string buf "space held (words) vs real time; '#' executing, '.' awaiting pages\n";
    for row = height downto 1 do
      let threshold = float_of_int row /. float_of_int height *. !peak in
      Buffer.add_string buf
        (if row = height then Printf.sprintf "%8.0f |" !peak
         else Printf.sprintf "%8s |" "");
      for c = 0 to width - 1 do
        if mean_words c +. 1e-9 >= threshold then
          Buffer.add_char buf (if waiting_time.(c) > active_time.(c) then '.' else '#')
        else Buffer.add_char buf ' '
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  0%*d us\n" "" (width - 1) t.span);
    Buffer.contents buf
  end
