type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.count

let mean t = if t.count = 0 then 0. else t.mean

let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int t.count

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let total t = t.total

type fit = {
  slope : float;
  intercept : float;
  r_square : float;
}

let linfit points =
  let n = List.length points in
  if n < 2 then None
  else begin
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
    let mx = sx /. nf and my = sy /. nf in
    let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0. points in
    let syy = List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0. points in
    let sxy =
      List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points
    in
    if sxx <= 0. then None
    else begin
      let slope = sxy /. sxx in
      let intercept = my -. (slope *. mx) in
      (* All y equal: the flat line explains everything. *)
      let r_square = if syy <= 0. then 1. else sxy *. sxy /. (sxx *. syy) in
      Some { slope; intercept; r_square }
    end
  end
