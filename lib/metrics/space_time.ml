type t = { mutable active : float; mutable waiting : float }

type state = Active | Waiting

let create () = { active = 0.; waiting = 0. }

let accrue t ~words ~dt state =
  assert (words >= 0 && dt >= 0);
  let wt = float_of_int words *. float_of_int dt in
  match state with
  | Active -> t.active <- t.active +. wt
  | Waiting -> t.waiting <- t.waiting +. wt

let active t = t.active

let waiting t = t.waiting

let total t = t.active +. t.waiting

let waiting_fraction t =
  let sum = total t in
  (* lint: allow L5 — exact-zero sentinel guarding division; sum is a monotone accumulator *)
  if sum = 0. then 0. else t.waiting /. sum
