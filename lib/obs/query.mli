(** Trace analytics: composable queries over recorded event streams.

    Where {!Summary} gives one fixed roll-up, this module loads a JSONL
    trace (or takes in-memory events) into an indexed form — every event
    tagged with its line number and run segment — and offers filters,
    group-by aggregation, start/done pairing into latency distributions,
    and top-N tables.  The [dsas_sim query] subcommand is a thin shell
    over these; [dsas_sim stats] is {!to_summary} of an unfiltered
    {!load}.

    Loading is strict: a file that does not exist, contains malformed or
    truncated lines, or holds no events at all is an [Error] with a
    diagnostic, never a silently empty result. *)

type entry = {
  line : int;  (** 1-based position in the source (file line) *)
  run : int;  (** enclosing run segment; events before any
                  [run_start] belong to run 0 *)
  ev : Event.t;
}

type t
(** A loaded trace: entries in source order. *)

val of_events : Event.t list -> t
(** Tag an in-memory stream.  Line numbers are the 1-based positions in
    the list. *)

val load : string -> (t, string) result
(** Read a JSONL trace file; the name ["-"] reads from stdin instead
    (left open).  [Error] on an unreadable file, on any malformed line
    (up to five are quoted in the diagnostic), and on a trace with
    zero events. *)

val length : t -> int

val entries : t -> entry list

val events : t -> Event.t list

(** {1 Filtering} *)

val filter :
  ?kinds:string list ->
  ?run:int ->
  ?since_us:int ->
  ?until_us:int ->
  t ->
  t
(** Keep entries matching every given criterion: event kind-name in
    [kinds], run segment = [run], and [since_us <= t_us <= until_us].
    Omitted criteria match everything. *)

(** {1 Grouping} *)

type group_key =
  | By_kind  (** event kind name *)
  | By_run  (** run segment id *)
  | By_field of string
      (** a payload field's printed value; entries without the field are
          dropped *)

type agg =
  | Count
  | Sum of string  (** sum of a numeric payload field *)
  | Mean of string  (** mean of a numeric payload field *)

val group : t -> key:group_key -> agg:agg -> (string * float) list
(** Aggregate over groups, sorted by group label.  [Sum]/[Mean] skip
    entries lacking the named numeric field; a group with no usable
    samples under [Mean] is dropped. *)

val top : int -> (string * float) list -> (string * float) list
(** Largest [n] rows by value, descending; label breaks ties. *)

(** {1 Pairing and latency} *)

type pair_row = {
  p_run : int;
  req : int;
  io : string;  (** the start event's ["io"] field, [""] if absent *)
  start_us : int;
  finish_us : int;
  latency_us : int;  (** [finish_us - start_us] *)
}

type pairing = {
  rows : pair_row list;  (** in order of the done events *)
  unmatched_starts : int;  (** starts never closed (within their run) *)
  unmatched_dones : int;  (** dones with no open start *)
}

val pair : t -> start_kind:string -> done_kind:string -> (pairing, string) result
(** Match [start_kind] events to [done_kind] events by their ["req"]
    payload field, scoped to run segments (a request left open when the
    next run begins is unmatched).  [Error] if either kind name is
    unknown or carries no ["req"] field. *)

type latency = {
  samples : int;
  min_us : int;
  max_us : int;
  mean_us : float;
  p50_us : int;
  p90_us : int;
  p99_us : int;
  hist : Metrics.Histogram.t;  (** log2-bucketed latencies *)
}

val latency_of : pairing -> latency option
(** Log-bucketed latency distribution of the paired rows; [None] if
    there are none.  Percentiles are bucket lower bounds
    (see {!Metrics.Histogram.percentile}); min/max/mean are exact. *)

val exact_latency_of : pairing -> latency option
(** Like {!latency_of}, but [p50_us]/[p90_us]/[p99_us] are the exact
    ceil-rank order statistics over the raw latencies (the sample the
    bucketed percentile approximates from below — at the tail the
    bucket lower bound can understate it by up to 2x).  The [hist]
    field still carries the log-bucketed histogram for display.  Costs
    a sort of all samples; [latency_of] streams. *)

(** {1 Bridges} *)

val to_summary : t -> Summary.trace_stats

val metrics_sink : Registry.t -> Sink.t
(** A live sink that folds the stream into a registry as it is emitted:
    an [ev.<kind>] counter per event, an [io_latency_us] histogram and
    stats pair fed by io_start/io_done matching, and a [t_last_us]
    gauge.  Attach with {!Sink.tee} to also record the stream. *)
