(** Exporters to standard tooling formats.

    Traces, profiles, and telemetry are more useful when the usual
    viewers can open them: {!chrome_of_events} renders an event stream
    as Chrome trace-event JSON (load in Perfetto / [chrome://tracing]),
    {!flamegraph} renders folded stacks (the [--profile-out] format) as
    a self-contained SVG, and {!telemetry_csv} flattens snapshots for
    spreadsheets.  All three are pure string transformations — file
    handling stays in the caller — and deterministic, so exported
    artifacts diff cleanly across runs. *)

val chrome_of_events : Event.t list -> string
(** One Chrome trace-event JSON document.  The mapping: each run
    segment is a process ([pid] = run id); each shard a thread within
    it ([tid] = shard + 1, with [tid] 0 for unsharded engine events) —
    both announced with [process_name]/[thread_name] metadata.
    [io_start] opens and [io_done]/[io_error] closes an async span
    (category ["io"], id = request id; errors carry their attempt count
    in [args]); watchdog fire/clear pair as async spans (category
    ["watchdog"], id = rule); every other event is a thread-scoped
    instant with its payload as [args].  [ts] is the event's [t_us]
    unchanged — Chrome's native unit is also the microsecond. *)

val flamegraph : ?title:string -> string -> (string, string) result
(** Render folded-stacks text (lines of ["frame;frame;frame WEIGHT"],
    blank and [#] lines ignored) as a self-contained flamegraph SVG:
    bottom-up boxes, width proportional to cumulative weight, sibling
    order = first-appearance order, colors a deterministic hash of the
    frame name, each box carrying a [<title>] tooltip with its weight
    and share.  [Error] when no line parses. *)

val telemetry_csv : Telemetry.snapshot list -> string
(** One CSV table: [seq,t_us,shard] then one ["c.<name>"] column per
    counter and ["g.<name>"] per gauge (sorted union across all
    snapshots; cells empty where a snapshot lacks the metric). *)
