type counter = { mutable n : int }

type gauge = { mutable v : float }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  stats : (string, Metrics.Stats.t) Hashtbl.t;
  histograms : (string, Metrics.Histogram.t) Hashtbl.t;
  series : (string, Series.t) Hashtbl.t;
  mutable meta : (string * string) list;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    stats = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    series = Hashtbl.create 16;
    meta = [];
  }

(* Replace-or-append: later stamps win by key, insertion order kept. *)
let set_meta t bindings =
  List.iter
    (fun (k, v) ->
      if List.mem_assoc k t.meta then
        t.meta <- List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) t.meta
      else t.meta <- t.meta @ [ (k, v) ])
    bindings

let meta t = t.meta

let get_or_create tbl name build =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = build () in
    Hashtbl.replace tbl name v;
    v

let counter t name = get_or_create t.counters name (fun () -> { n = 0 })

let gauge t name = get_or_create t.gauges name (fun () -> { v = 0. })

let stats t name = get_or_create t.stats name Metrics.Stats.create

let histogram t name ~default = get_or_create t.histograms name default

let series t name = get_or_create t.series name Series.create

let incr ?(by = 1) c = c.n <- c.n + by

let counter_value c = c.n

let set g v = g.v <- v

let gauge_value g = g.v

type distribution = {
  count : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  distributions : (string * distribution) list;
  series_lengths : (string * int) list;
}

let sorted_bindings tbl value =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (* lint: allow L3 — the bindings are sorted by the enclosing List.sort *)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let distribution_of_stats s =
  let count = Metrics.Stats.count s in
  {
    count;
    mean = Metrics.Stats.mean s;
    min = (if count = 0 then 0. else Metrics.Stats.min s);
    max = (if count = 0 then 0. else Metrics.Stats.max s);
    total = Metrics.Stats.total s;
  }

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun c -> c.n);
    gauges = sorted_bindings t.gauges (fun g -> g.v);
    distributions = sorted_bindings t.stats distribution_of_stats;
    series_lengths = sorted_bindings t.series Series.length;
  }

(* Full export: unlike [snapshot], which reduces every metric to summary
   numbers, this serialises complete state — histogram buckets with
   percentiles, stats moments, every series point — so a run's metrics
   survive as a machine-readable artifact ([run --metrics-out]). *)
let to_json (t : t) =
  let obj_of fields = Json.Raw (Json.obj fields) in
  let stats_obj s =
    let count = Metrics.Stats.count s in
    obj_of
      [
        ("count", Json.Int count);
        ("mean", Json.Float (Metrics.Stats.mean s));
        ("stddev", Json.Float (Metrics.Stats.stddev s));
        ("min", Json.Float (if count = 0 then 0. else Metrics.Stats.min s));
        ("max", Json.Float (if count = 0 then 0. else Metrics.Stats.max s));
        ("total", Json.Float (Metrics.Stats.total s));
      ]
  in
  let histogram_obj h =
    let buckets =
      Array.to_list (Metrics.Histogram.bucket_counts h)
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (label, n) ->
             Json.Raw (Json.obj [ ("bucket", Json.String label); ("count", Json.Int n) ]))
    in
    obj_of
      [
        ("count", Json.Int (Metrics.Histogram.count h));
        ( "min",
          Json.Int (match Metrics.Histogram.min_value h with Some v -> v | None -> 0) );
        ( "max",
          Json.Int (match Metrics.Histogram.max_value h with Some v -> v | None -> 0) );
        ("p50", Json.Int (Metrics.Histogram.percentile h 0.50));
        ("p90", Json.Int (Metrics.Histogram.percentile h 0.90));
        ("p99", Json.Int (Metrics.Histogram.percentile h 0.99));
        ("buckets", Json.Raw (Json.array buckets));
      ]
  in
  let section bindings value_of =
    obj_of (List.map (fun (k, v) -> (k, value_of v)) bindings)
  in
  Json.obj
    (("schema", Json.String "dsas-metrics/1")
     :: ((if t.meta = [] then []
          else
            [ ( "meta",
                obj_of (List.map (fun (k, v) -> (k, Json.String v)) t.meta) ) ])
         @ [
      ("counters", section (sorted_bindings t.counters Fun.id) (fun c -> Json.Int c.n));
      ("gauges", section (sorted_bindings t.gauges Fun.id) (fun g -> Json.Float g.v));
      ("stats", section (sorted_bindings t.stats Fun.id) stats_obj);
      ("histograms", section (sorted_bindings t.histograms Fun.id) histogram_obj);
      ( "series",
        section (sorted_bindings t.series Fun.id) (fun s -> Json.Raw (Series.to_json s))
      );
    ]))

let snapshot_to_json s =
  let obj_of fields = Json.Raw (Json.obj fields) in
  Json.obj
    [
      ("counters", obj_of (List.map (fun (k, n) -> (k, Json.Int n)) s.counters));
      ("gauges", obj_of (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "distributions",
        obj_of
          (List.map
             (fun (k, d) ->
               ( k,
                 obj_of
                   [
                     ("count", Json.Int d.count);
                     ("mean", Json.Float d.mean);
                     ("min", Json.Float d.min);
                     ("max", Json.Float d.max);
                     ("total", Json.Float d.total);
                   ] ))
             s.distributions) );
      ("series", obj_of (List.map (fun (k, n) -> (k, Json.Int n)) s.series_lengths));
    ]
