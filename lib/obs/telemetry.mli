(** Live telemetry: periodic snapshots of a metrics registry.

    Traces and metrics files are post-mortem artifacts; telemetry is
    the live view.  A channel samples a {!Registry} into a bounded ring
    of timestamped {!snapshot}s on an engine-time cadence (every
    [every_us] simulated microseconds), optionally mirrored as
    append-only JSON lines (schema {!schema}) that [dsas_sim top] can
    tail while the run is still going.

    Determinism contract: cadence is driven by {e engine} time — the
    running max of non-io event timestamps, the same clock
    {!Merge} keys on — so the snapshot sequence is a pure function of
    the event stream.  Per-shard snapshot streams taken on different
    domains merge ({!merge}) into the same sequence at every
    [--domains] width, and {!of_events} recomputes the identical
    sequence from a recovered trace.  A host-time cadence exists only
    when the caller injects a wall clock; the library never reads one
    (lint rule L1). *)

val schema : string
(** ["dsas-telemetry/1"] — stamped on every snapshot line. *)

type snapshot = {
  sn_seq : int;  (** dense per-channel sequence number, from 0 *)
  sn_t_us : int;  (** engine time at capture *)
  sn_shard : int option;  (** producing shard, [None] for whole-run channels *)
  sn_counters : (string * int) list;  (** sorted by name, as in {!Registry.snapshot} *)
  sn_gauges : (string * float) list;
}

type t
(** A telemetry channel: cadence state plus the snapshot ring. *)

val create :
  ?capacity:int ->
  ?shard:int ->
  ?host_every_s:float ->
  ?now:(unit -> float) ->
  every_us:int ->
  unit ->
  t
(** A channel capturing every [every_us] engine-µs, keeping the last
    [capacity] (default 256) snapshots in memory.  [host_every_s] adds
    a host-time fallback cadence — a capture at least every so many
    wall seconds even when engine time stalls — but only takes effect
    when [now] (a wall-clock reading, e.g. [Unix.gettimeofday]) is
    injected by the caller; deterministic users omit both. *)

val every_us : t -> int

val shard : t -> int option

val mirror : t -> out_channel -> unit
(** Also append every subsequent snapshot as one JSON line to the
    channel, flushing each line so live tailers see it immediately.
    The caller owns the [out_channel]. *)

val on_capture : t -> (snapshot -> unit) -> unit
(** Callback invoked after each capture — the hook watchdogs
    ({!Watch}) attach to. *)

val observe : t -> t_us:int -> Registry.t -> unit
(** Advance engine time to [max engine_us t_us] and capture a snapshot
    if the cadence deadline passed.  At most one capture per call: when
    engine time jumps across several [every_us] intervals the skipped
    deadlines collapse into the single capture and the next deadline is
    the first multiple of [every_us] past the new engine time.  Cheap
    when no capture is due: two comparisons. *)

val capture : t -> t_us:int -> Registry.t -> snapshot
(** Unconditional capture, bypassing the cadence (used at run end and
    by external paced callers such as the campaign parent). *)

val snapshots : t -> snapshot array
(** Snapshots still held by the ring, oldest first. *)

val captured : t -> int
(** Total snapshots ever captured (>= length of {!snapshots}). *)

val events_sink : t -> Registry.t -> Sink.t
(** A self-contained tap: fold every event into [reg] (per-kind
    ["ev.<kind>"] counters, ["io.inflight"] and ["t_last_us"] gauges)
    and drive the channel's cadence from non-io event times.  Tee it
    with a recording sink to get telemetry alongside a trace. *)

val of_events : ?shard:int -> every_us:int -> Event.t array -> snapshot array
(** The full snapshot sequence a fresh channel tapping [events] would
    capture — a pure function of the event array, which is how
    per-shard telemetry stays identical whether a shard ran clean or
    was crash-recovered by the supervisor. *)

val merge : snapshot array array -> snapshot array
(** Deterministic k-way merge of per-shard snapshot streams, ordered
    by [(t_us, shard, seq)] (a snapshot with no shard tag uses its
    stream index).  Independent of arrival order, hence of [--domains]
    width. *)

val snapshot_to_json : snapshot -> string
(** One flat JSON line: [{"schema":"dsas-telemetry/1","seq":..,
    "t_us":..,"shard":..,"c.<counter>":..,"g.<gauge>":..}]; the
    ["shard"] field is omitted for whole-run channels. *)

val snapshot_of_json : string -> snapshot option
(** Inverse of {!snapshot_to_json}; [None] on malformed input or a
    wrong/missing schema tag. *)

val parse_lines : string list -> (snapshot list, string) result
(** Strict parse of mirror-file lines (blank and [#] comment lines
    skipped): any malformed line, or an empty stream, is an error. *)

val load : string -> (snapshot list, string) result
(** {!parse_lines} over a file, or over stdin when the name is
    ["-"]. *)

val check : snapshot list -> string list
(** Structural problems in a snapshot stream, in input order: per
    producer (shard tag), sequence numbers must be dense and increasing
    from 0 and timestamps monotone non-decreasing.  Empty list = ok. *)
