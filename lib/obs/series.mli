(** A sampled time series: (simulated time, value) points.

    The bridge between mid-run probes (see {!Sink.sample} and
    {!Registry}) and the plotting substrate — a resident-set-size or
    fragmentation series converts to a {!Metrics.Timeline} for the
    Fig. 3-style silhouettes. *)

type t

val create : unit -> t

val sample : t -> t_us:int -> float -> unit
(** Record one point.  [t_us] must be >= the previous sample's time. *)

val length : t -> int

val points : t -> (int * float) list
(** Chronological. *)

val last : t -> (int * float) option

val to_timeline : t -> Metrics.Timeline.t
(** Each sample becomes an [Active] segment holding [value] words until
    the next sample (the final sample gets the mean preceding gap, or 1
    us for a single point). *)

val to_json : t -> string
(** [[[t_us, value], ...]] — a compact JSON array of pairs. *)
