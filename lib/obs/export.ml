(* Converters from our own artifacts to standard tooling formats.
   Chrome trace-event JSON (Perfetto, chrome://tracing), folded stacks
   -> self-contained flamegraph SVG, telemetry -> CSV.  Pure
   string-to-string transformations; all file handling lives in the
   caller. *)

(* --- Chrome trace events --- *)

(* The mapping (documented in DESIGN §11):
     run segment            -> process (pid = run id)
     shard field            -> thread (tid = shard + 1; 0 = unsharded)
     io_start/io_done/error -> async span "b"/"e", cat "io", id = req
     watchdog fire/clear    -> async span "b"/"e", cat "watchdog", id = rule
     everything else        -> instant "i", scope "t", payload as args
   Timestamps are already microseconds, Chrome's native unit. *)

let json_args fields =
  Json.Raw (Json.obj fields)

let chrome_of_events events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit fields =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf (Json.obj fields)
  in
  (* (pid, tid) pairs already announced with metadata events *)
  let named : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let announce ~pid ~tid =
    if not (Hashtbl.mem named (pid, -1)) then begin
      Hashtbl.replace named (pid, -1) ();
      emit
        [ ("name", Json.String "process_name"); ("ph", Json.String "M");
          ("pid", Json.Int pid); ("tid", Json.Int 0);
          ("args", json_args [ ("name", Json.String (Printf.sprintf "run %d" pid)) ]) ]
    end;
    if not (Hashtbl.mem named (pid, tid)) then begin
      Hashtbl.replace named (pid, tid) ();
      emit
        [ ("name", Json.String "thread_name"); ("ph", Json.String "M");
          ("pid", Json.Int pid); ("tid", Json.Int tid);
          ("args",
           json_args
             [ ("name",
                Json.String
                  (if tid = 0 then "engine" else Printf.sprintf "shard %d" (tid - 1))) ]) ]
    end
  in
  let run = ref 0 in
  List.iter
    (fun (ev : Event.t) ->
      (match ev.kind with Event.Run_start { run = r; _ } -> run := r | _ -> ());
      let pid = !run in
      let fields = Event.fields_of_kind ev.kind in
      let tid =
        match List.assoc_opt "shard" fields with Some (Json.Int s) -> s + 1 | _ -> 0
      in
      announce ~pid ~tid;
      let common =
        [ ("pid", Json.Int pid); ("tid", Json.Int tid); ("ts", Json.Int ev.t_us) ]
      in
      let name = Event.kind_name ev.kind in
      match ev.kind with
      | Event.Io_start { req; page; io } ->
        emit
          (("name", Json.String (Event.io_name io))
           :: ("cat", Json.String "io")
           :: ("ph", Json.String "b")
           :: ("id", Json.Int req)
           :: common
           @ [ ("args", json_args [ ("req", Json.Int req); ("page", Json.Int page) ]) ])
      | Event.Io_done { req; page; io } ->
        emit
          (("name", Json.String (Event.io_name io))
           :: ("cat", Json.String "io")
           :: ("ph", Json.String "e")
           :: ("id", Json.Int req)
           :: common
           @ [ ("args", json_args [ ("req", Json.Int req); ("page", Json.Int page) ]) ])
      | Event.Io_error { req; page; io; attempts } ->
        emit
          (("name", Json.String (Event.io_name io))
           :: ("cat", Json.String "io")
           :: ("ph", Json.String "e")
           :: ("id", Json.Int req)
           :: common
           @ [ ("args",
                json_args
                  [ ("req", Json.Int req); ("page", Json.Int page);
                    ("error", Json.String "terminal"); ("attempts", Json.Int attempts) ]) ])
      | Event.Watchdog_fire { rule; snapshots } ->
        emit
          (("name", Json.String rule)
           :: ("cat", Json.String "watchdog")
           :: ("ph", Json.String "b")
           :: ("id", Json.String rule)
           :: common
           @ [ ("args", json_args [ ("snapshots", Json.Int snapshots) ]) ])
      | Event.Watchdog_clear { rule; snapshots } ->
        emit
          (("name", Json.String rule)
           :: ("cat", Json.String "watchdog")
           :: ("ph", Json.String "e")
           :: ("id", Json.String rule)
           :: common
           @ [ ("args", json_args [ ("snapshots", Json.Int snapshots) ]) ])
      | _ ->
        emit
          (("name", Json.String name)
           :: ("cat", Json.String "engine")
           :: ("ph", Json.String "i")
           :: ("s", Json.String "t")
           :: common
           @ (match fields with [] -> [] | _ -> [ ("args", json_args fields) ])))
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* --- folded stacks -> flamegraph SVG --- *)

type frame = {
  fr_name : string;
  mutable fr_self : float;
  mutable fr_total : float;
  mutable fr_children : frame list;  (* insertion order, reversed *)
}

let fresh_frame name = { fr_name = name; fr_self = 0.; fr_total = 0.; fr_children = [] }

let rec add_stack frame path weight =
  frame.fr_total <- frame.fr_total +. weight;
  match path with
  | [] -> frame.fr_self <- frame.fr_self +. weight
  | head :: rest ->
    let child =
      match List.find_opt (fun f -> f.fr_name = head) frame.fr_children with
      | Some f -> f
      | None ->
        let f = fresh_frame head in
        frame.fr_children <- frame.fr_children @ [ f ];
        f
    in
    add_stack child rest weight

let parse_folded text =
  let root = fresh_frame "" in
  let ok = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> ()
           | Some sp ->
             let stack = String.sub line 0 sp in
             let weight = String.sub line (sp + 1) (String.length line - sp - 1) in
             (match float_of_string_opt weight with
              | Some w when w > 0. && String.trim stack <> "" ->
                incr ok;
                add_stack root (String.split_on_char ';' (String.trim stack)) w
              | _ -> ()));
  if !ok = 0 then None else Some root

let svg_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Deterministic warm palette keyed on the frame name, so reruns (and
   different machines) paint identical SVGs. *)
let color_of name =
  let h = ref 17 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0xffffff) name;
  let r = 205 + (!h mod 50) in
  let g = 60 + (!h / 50 mod 130) in
  let b = 10 + (!h / 6500 mod 45) in
  Printf.sprintf "rgb(%d,%d,%d)" r g b

let rec depth_of frame =
  List.fold_left (fun acc f -> max acc (1 + depth_of f)) 1 frame.fr_children

let flamegraph ?(title = "flamegraph") text =
  match parse_folded text with
  | None -> Error "no valid folded-stack lines (expected \"a;b;c WEIGHT\")"
  | Some root ->
    let width = 1200. in
    let row_h = 17. in
    let top_pad = 36. in
    let depth = depth_of root - 1 in
    (* root itself is synthetic *)
    let height = top_pad +. (float_of_int (max depth 1) *. row_h) +. 12. in
    let buf = Buffer.create 8192 in
    Printf.bprintf buf
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
       viewBox=\"0 0 %.0f %.0f\" font-family=\"monospace\" font-size=\"11\">\n"
      width height width height;
    Printf.bprintf buf
      "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" fill=\"#f8f8f8\"/>\n" width
      height;
    Printf.bprintf buf
      "<text x=\"%.0f\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">%s</text>\n"
      (width /. 2.) (svg_escape title);
    let total = root.fr_total in
    (* Bottom-up: level 0 sits at the bottom of the image. *)
    let rec paint frame ~x ~level =
      let w = frame.fr_total /. total *. width in
      let y = height -. 12. -. (float_of_int (level + 1) *. row_h) in
      if w >= 0.5 && level >= 0 then begin
        Printf.bprintf buf
          "<g><title>%s (%.6g, %.2f%%)</title><rect x=\"%.2f\" y=\"%.2f\" \
           width=\"%.2f\" height=\"%.2f\" fill=\"%s\" stroke=\"#f8f8f8\" \
           stroke-width=\"0.5\"/>"
          (svg_escape frame.fr_name) frame.fr_total
          (frame.fr_total /. total *. 100.)
          x y w (row_h -. 1.) (color_of frame.fr_name);
        if w >= 40. then
          Printf.bprintf buf "<text x=\"%.2f\" y=\"%.2f\">%s</text>" (x +. 3.)
            (y +. 12.)
            (svg_escape
               (let max_chars = int_of_float (w /. 7.) in
                if String.length frame.fr_name > max_chars then
                  String.sub frame.fr_name 0 (max 1 (max_chars - 2)) ^ ".."
                else frame.fr_name));
        Buffer.add_string buf "</g>\n"
      end;
      let child_x = ref x in
      List.iter
        (fun child ->
          paint child ~x:!child_x ~level:(level + 1);
          child_x := !child_x +. (child.fr_total /. total *. width))
        frame.fr_children
    in
    (* paint the root's children at level 0; the synthetic root is skipped *)
    let x = ref 0. in
    List.iter
      (fun child ->
        paint child ~x:!x ~level:0;
        x := !x +. (child.fr_total /. total *. width))
      root.fr_children;
    Buffer.add_string buf "</svg>\n";
    Ok (Buffer.contents buf)

(* --- telemetry -> CSV --- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let telemetry_csv snaps =
  let module SS = Set.Make (String) in
  let counters, gauges =
    List.fold_left
      (fun (cs, gs) (s : Telemetry.snapshot) ->
        ( List.fold_left (fun acc (k, _) -> SS.add k acc) cs s.Telemetry.sn_counters,
          List.fold_left (fun acc (k, _) -> SS.add k acc) gs s.Telemetry.sn_gauges ))
      (SS.empty, SS.empty) snaps
  in
  let counter_cols = SS.elements counters in
  let gauge_cols = SS.elements gauges in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "seq,t_us,shard";
  List.iter (fun c -> Buffer.add_string buf ("," ^ csv_escape ("c." ^ c))) counter_cols;
  List.iter (fun g -> Buffer.add_string buf ("," ^ csv_escape ("g." ^ g))) gauge_cols;
  Buffer.add_char buf '\n';
  List.iter
    (fun (s : Telemetry.snapshot) ->
      Printf.bprintf buf "%d,%d,%s" s.Telemetry.sn_seq s.Telemetry.sn_t_us
        (match s.Telemetry.sn_shard with Some k -> string_of_int k | None -> "");
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          match List.assoc_opt c s.Telemetry.sn_counters with
          | Some v -> Buffer.add_string buf (string_of_int v)
          | None -> ())
        counter_cols;
      List.iter
        (fun g ->
          Buffer.add_char buf ',';
          match List.assoc_opt g s.Telemetry.sn_gauges with
          | Some v -> Buffer.add_string buf (Printf.sprintf "%g" v)
          | None -> ())
        gauge_cols;
      Buffer.add_char buf '\n')
    snaps;
  Buffer.contents buf
