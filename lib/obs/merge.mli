(** Deterministic interleaving of several event streams into one.

    A sharded simulation runs one engine per shard, each over its own
    virtual clock, and buffers each shard's events separately.  This
    module splices those per-stream buffers into a single stream
    ordered by [(engine time, stream index, arrival order)] — a total
    order, so the merged stream is a pure function of the input
    buffers and in particular is bit-stable no matter how many domains
    produced them or in what real-time order they finished.

    A stream's {e engine time} at an event is the running maximum of
    the non-io timestamps up to it — i.e. the producing engine's
    virtual clock.  Io events are keyed at their dispatch point rather
    than their (planned, possibly future) [t_us], mirroring how a
    single engine emits them (see {!Event}); non-io events are keyed
    by their own stamp.  Consequences: the merged stream is monotone
    in [t_us] over non-io events whenever each input is (which
    {!Check}'s clock invariant demands), a stream's own order is never
    altered, and merging a single stream is the identity. *)

val interleave : Event.t array array -> Event.t array
(** [interleave streams] merges [streams.(0) .. streams.(k-1)] into one
    array by [(engine time, stream index, position in stream)]. *)

val emit : into:Sink.t -> Event.t array array -> int
(** [emit ~into streams] feeds the merged stream to a sink in merge
    order and returns the number of events emitted.  With an inactive
    sink nothing is constructed and the count is still returned. *)
