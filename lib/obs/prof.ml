type row = {
  path : string;
  count : int;
  total_ns : int;
  self_ns : int;
  alloc_words : float;
}

type node = {
  mutable n_count : int;
  mutable n_total_ns : int;
  mutable n_self_ns : int;
  mutable n_alloc_words : float;
}

type frame = {
  f_path : string;
  f_start_ns : int;
  f_alloc0 : float;
  mutable f_child_ns : int;
}

let on = ref false

let nodes : (string, node) Hashtbl.t = Hashtbl.create 64

let stack : frame list ref = ref []

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let alloc_words_now () =
  let q = Gc.quick_stat () in
  q.Gc.minor_words +. q.Gc.major_words -. q.Gc.promoted_words

let enable () =
  stack := [];
  on := true

let disable () = on := false

let enabled () = !on

let reset () =
  Hashtbl.reset nodes;
  stack := []

let node_of path =
  match Hashtbl.find_opt nodes path with
  | Some n -> n
  | None ->
    let n = { n_count = 0; n_total_ns = 0; n_self_ns = 0; n_alloc_words = 0. } in
    Hashtbl.replace nodes path n;
    n

let close_frame fr =
  let elapsed = now_ns () - fr.f_start_ns in
  (match !stack with fr' :: rest when fr' == fr -> stack := rest | _ -> ());
  (match !stack with
   | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + elapsed
   | [] -> ());
  let node = node_of fr.f_path in
  node.n_count <- node.n_count + 1;
  node.n_total_ns <- node.n_total_ns + elapsed;
  node.n_self_ns <- node.n_self_ns + (elapsed - fr.f_child_ns);
  node.n_alloc_words <- node.n_alloc_words +. (alloc_words_now () -. fr.f_alloc0)

let span name f =
  if not !on then f ()
  else begin
    let path =
      match !stack with
      | [] -> name
      | parent :: _ -> parent.f_path ^ ";" ^ name
    in
    let fr =
      { f_path = path;
        f_start_ns = now_ns ();
        f_alloc0 = alloc_words_now ();
        f_child_ns = 0 }
    in
    stack := fr :: !stack;
    match f () with
    | v ->
      close_frame fr;
      v
    | exception e ->
      close_frame fr;
      raise e
  end

let all_rows () =
  List.sort
    (fun a b -> compare a.path b.path)
    (* lint: allow L3 — the bindings are sorted by the enclosing List.sort *)
    (Hashtbl.fold
       (fun path n acc ->
         { path;
           count = n.n_count;
           total_ns = n.n_total_ns;
           self_ns = n.n_self_ns;
           alloc_words = n.n_alloc_words }
         :: acc)
       nodes [])

let rows () =
  List.sort (fun a b -> compare b.total_ns a.total_ns) (all_rows ())

let folded () =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" r.path (r.self_ns / 1000)))
    (all_rows ());
  Buffer.contents buf

let to_json () =
  let span_obj r =
    Json.obj
      [
        ("path", Json.String r.path);
        ("count", Json.Int r.count);
        ("total_ns", Json.Int r.total_ns);
        ("self_ns", Json.Int r.self_ns);
        ("alloc_words", Json.Float r.alloc_words);
      ]
  in
  Json.obj
    [
      ( "spans",
        Json.Raw (Json.array (List.map (fun r -> Json.Raw (span_obj r)) (all_rows ())))
      );
    ]

let depth_of path =
  String.fold_left (fun acc c -> if c = ';' then acc + 1 else acc) 0 path

let leaf_of path =
  match String.rindex_opt path ';' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let print oc =
  let rs = all_rows () in
  if rs = [] then output_string oc "profiler: no spans recorded\n"
  else begin
    Printf.fprintf oc "%-40s %10s %12s %12s %14s\n" "span" "count" "total ms"
      "self ms" "alloc kw";
    List.iter
      (fun r ->
        let indent = String.make (2 * depth_of r.path) ' ' in
        Printf.fprintf oc "%-40s %10d %12.3f %12.3f %14.1f\n"
          (indent ^ leaf_of r.path)
          r.count
          (float_of_int r.total_ns /. 1e6)
          (float_of_int r.self_ns /. 1e6)
          (r.alloc_words /. 1e3))
      rs
  end
