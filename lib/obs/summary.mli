(** Machine-readable run summaries, shared by the CLI surfaces
    ([dsas_sim replay --json], [dsas_sim stats]). *)

type replay = {
  policy : string;
  frames : int;
  refs : int;
  faults : int;
  cold : int;
  evictions : int;
}
(** What one fault-simulator replay measured. *)

val replay_fault_rate : replay -> float

val replay_to_json : replay -> string

type trace_stats = {
  events : int;
  t_first_us : int;  (** 0 when the trace is empty *)
  t_last_us : int;
  kinds : (string * int) list;  (** events per kind, sorted by name; zero counts omitted *)
}
(** Offline aggregate of a recorded event stream. *)

val count : trace_stats -> string -> int
(** Events of one kind (by wire name), 0 if absent. *)

val of_events : Event.t list -> trace_stats

val scan_jsonl : string -> (trace_stats, string) result
(** Aggregate a JSONL trace file without holding it in memory.  Blank
    lines and ['#'] comment lines are skipped.  The whole file is
    scanned even when lines are malformed: [Error] then reports the
    total count of bad lines and the line numbers of the first few,
    rather than silently truncating at the first.  [Error] is also
    returned for an unreadable file. *)

val trace_stats_to_json : trace_stats -> string

val print_trace_stats : trace_stats -> unit
(** Human-readable table on stdout. *)
