(** Declarative watchdogs over the telemetry snapshot stream.

    A watchdog rule names a metric (counter or gauge; counters shadow
    gauges of the same name), a condition, and a window measured in
    snapshots.  An evaluator ({!create}) consumes snapshots in order
    ({!feed}) and reports {!alert}s: a [Fire] when a rule enters
    violation, a [Clear] when it leaves.  Alerts map onto the trace
    vocabulary as {!Event.kind.Watchdog_fire} /
    {!Event.kind.Watchdog_clear} ({!alert_events}), which the two
    [watchdog-*] {!Check} invariants audit; rules marked escalating
    ({!rule.escalate}) additionally surface through {!tripped} so a
    supervisor can convert a stuck shard into a
    [Resilience.Failure], the same path chaos takes.

    Evaluation is a pure fold over the snapshots, so — like the
    snapshots themselves — watchdog verdicts are deterministic and
    independent of [--domains] width.

    The textual grammar, one rule per spec string — a metric name, an
    operator with its optional threshold, ["@"], the window, and an
    optional trailing ["!"]:

    {v
    ev.fault>100@3      fire when ev.fault  > 100 for 3 consecutive snapshots
    g<0.25@2            fire when gauge g   < 0.25 for 2 consecutive snapshots
    ev.job_stop=@5      stall: unchanged across 5 consecutive snapshot intervals
    ev.alloc+10@4       delta: advanced by < 10 over the last 4 snapshots
    ev.job_stop=@5!     trailing '!' marks the rule escalating
    v} *)

type op =
  | Above of float  (** newest value > threshold *)
  | Below of float  (** newest value < threshold *)
  | Stall  (** newest value equals the previous snapshot's *)
  | Delta of float  (** advanced by less than the threshold over the window *)

type rule = {
  name : string;  (** the spec string, stamped into watchdog events *)
  source : string;  (** metric name, e.g. ["ev.fault"] *)
  op : op;
  window : int;  (** consecutive snapshots (lookback span for [Delta]) *)
  escalate : bool;
}

val parse : string -> (rule, string) result
(** Parse one spec string (grammar above).  The rule's [name] is the
    trimmed spec itself, so traces identify rules by what the operator
    wrote. *)

val to_string : rule -> string
(** The canonical spec spelling; [parse (to_string r)] is equivalent
    to [r] up to number formatting. *)

type t
(** An evaluator: per-rule streak, episode, and lookback state. *)

type alert =
  | Fire of { rule : rule; snapshots : int }
      (** entered violation; [snapshots] = consecutive violating
          snapshots so far (= the window, except [Delta] which fires on
          its first violating snapshot) *)
  | Clear of { rule : rule; snapshots : int }
      (** left violation; [snapshots] = total violating snapshots in
          the episode (>= the count reported at fire) *)

val create : rule list -> t

val rules : t -> rule list

val feed : t -> Telemetry.snapshot -> alert list
(** Evaluate every rule against the next snapshot; alerts in rule
    order.  A rule whose metric is absent from the snapshot is not
    violating (and its stall/delta lookback restarts). *)

val reset : t -> unit
(** Forget streaks, episodes, and lookback without emitting clears —
    call at run-segment boundaries so episodes never span segments.
    {!tripped} memory survives. *)

val firing : t -> rule list
(** Rules currently in violation (fired, not yet cleared). *)

val tripped : t -> rule list
(** Escalating rules that fired at least once, ever (resets do not
    forget) — the set the caller turns into failures. *)

val alert_events : t_us:int -> alert list -> Event.t list
(** Render alerts as trace events stamped [t_us] (conventionally the
    snapshot's capture time, keeping the stream monotone). *)
