(** The structured event vocabulary.

    Every allocation engine reports what it is doing as a stream of
    these events, stamped with the simulated clock ({!Sim.Clock}) time
    at which they happened.  Untimed engines (e.g.
    [Paging.Fault_sim]) stamp events with the reference index instead;
    either way [t_us] is monotone non-decreasing over a run — with one
    exception: [Io_*] events from a timed device model are stamped with
    the {e planned} service times, which the device computes ahead of
    the engine's clock, so they may interleave out of order with the
    engine's own events.

    The vocabulary maps onto the paper's concepts: [Fault] and the
    waiting intervals of Fig. 3; [Cold_fault] for first-touch
    ("demand") fetches; [Compaction_move] for the block moves behind
    artificial contiguity; [Segment_swap] for whole-segment transfers
    between working and auxiliary storage. *)

type direction = In | Out

type io = Demand | Prefetch | Writeback
(** What a backing-store request is for: a demand fault the program is
    waiting on, an advisory prefetch, or a modified-page write-back.
    [Device.Request.kind] is an alias of this type. *)

val io_name : io -> string
(** ["demand"], ["prefetch"], ["writeback"] — the wire spelling. *)

val io_of_name : string -> io option

type kind =
  | Run_start of { run : int; seed : int option; config : string option }
      (** boundary between the spliced sub-runs of one experiment: the
          engine (and with it the request-id counter and, logically,
          the clock) restarts here.  {!Check} scopes every cross-event
          invariant to the span between two boundaries.  The boundary
          also stamps the run's identity on the wire — the trace schema
          version ({!trace_schema}), and, when the producer supplied
          them, the [seed] and a one-line [config] summary — so a trace
          file identifies the run that produced it *)
  | Fault of { page : int }  (** reference missed working storage *)
  | Cold_fault of { page : int }  (** first-ever touch (emitted with [Fault]) *)
  | Eviction of { page : int }
  | Writeback of { page : int }  (** modified victim copied back *)
  | Tlb_hit of { key : int }
  | Tlb_miss of { key : int }
  | Alloc of { addr : int; size : int }  (** payload address and words granted *)
  | Free of { addr : int; size : int }
  | Split of { addr : int; size : int; remainder : int }
      (** a hole at [addr] was carved: [size] granted, [remainder] left free *)
  | Coalesce of { addr : int; size : int }  (** merged free block *)
  | Compaction_move of { src : int; dst : int; len : int }
  | Segment_swap of { segment : int; words : int; direction : direction }
  | Job_start of { job : int }
  | Job_stop of { job : int }
  | Io_start of { req : int; page : int; io : io }
      (** a device channel began servicing request [req] (positioning
          included); [t_us] is the dispatch instant *)
  | Io_done of { req : int; page : int; io : io }
      (** the transfer completed; [t_us] is the completion time *)
  | Io_retry of { req : int; attempt : int }
      (** attempt [attempt] of request [req] hit a transient read error
          and will be retried (or served degraded, past the bound) *)
  | Io_error of { req : int; page : int; io : io; attempts : int }
      (** terminal failure: the request gave up after [attempts]
          service attempts (a permanent media error, or the retry
          budget exhausted under an escalating fault policy).  Closes
          the request like {!Io_done}; the data never arrived *)
  | Job_abort of { job : int; restarts : int }
      (** recovery: the job hit an unrecoverable fetch failure and was
          aborted and restarted from the beginning — its [restarts]-th
          restart.  The job keeps running; a job that exhausts its
          restart budget emits {!Job_stop} instead and is reported
          failed *)
  | Load_shed of { job : int }
      (** the load controller deactivated (swapped out) [job] because
          the multiprogramming set was thrashing *)
  | Load_admit of { job : int }
      (** the load controller reactivated a previously shed job *)
  | Shard_crash of { shard : int; attempt : int }
      (** supervision: a sharded-engine worker died mid-run — its
          [attempt]-th crash (1-based).  Emitted into the supervision
          stream, never into the engine trace — recovered engine traces
          stay bit-identical to fault-free ones *)
  | Shard_restart of { shard : int; attempt : int }
      (** supervision: the supervisor restarted the shard after its
          [attempt]-th crash (so restart n always follows crash n),
          resuming from the latest checkpoint *)
  | Shard_checkpoint of { shard : int; progress : int; events : int }
      (** supervision: the shard durably captured its state after
          [progress] workload steps with [events] trace events already
          emitted; a restart replays from here *)
  | Watchdog_fire of { rule : string; snapshots : int }
      (** a {!Watch} rule entered violation: the condition named by
          [rule] held for [snapshots] consecutive telemetry snapshots.
          Watchdog events are an observer overlay — they belong to
          every engine vocabulary and never affect engine state *)
  | Watchdog_clear of { rule : string; snapshots : int }
      (** the rule left violation after holding for [snapshots]
          snapshots in total (at least the count reported at fire) *)

type t = { t_us : int; kind : kind }

val make : t_us:int -> kind -> t

val trace_schema : string
(** The wire schema tag every [run_start] event carries
    (["dsas-trace/1"]). *)

val kind_name : kind -> string
(** The wire name: ["run_start"], ["fault"], ["cold_fault"], ["eviction"],
    ["writeback"], ["tlb_hit"], ["tlb_miss"], ["alloc"], ["free"],
    ["split"], ["coalesce"], ["compaction_move"], ["segment_swap"],
    ["job_start"], ["job_stop"], ["io_start"], ["io_done"],
    ["io_retry"], ["io_error"], ["job_abort"], ["load_shed"],
    ["load_admit"], ["shard_crash"], ["shard_restart"],
    ["shard_checkpoint"], ["watchdog_fire"], ["watchdog_clear"]. *)

val all_kind_names : string list
(** Every wire name, in declaration order. *)

val fields_of_kind : kind -> (string * Json.value) list
(** The payload fields exactly as they appear on the wire, e.g.
    [[("page", Int 7)]] for a fault.  The generic accessor behind
    {!Query}'s field-keyed grouping and pairing. *)

val to_json : t -> string
(** One compact JSON object, e.g.
    [{"t_us":1200,"ev":"fault","page":7}]. *)

val of_json : string -> t option
(** Inverse of {!to_json}; [None] on malformed input or an unknown
    event name. *)

val pp : Format.formatter -> t -> unit
