type op =
  | Above of float  (** metric > v *)
  | Below of float  (** metric < v *)
  | Stall  (** metric unchanged since the previous snapshot *)
  | Delta of float  (** metric advanced by < v over the window *)

type rule = {
  name : string;
  source : string;
  op : op;
  window : int;
  escalate : bool;
}

(* --- the rule grammar: METRIC OP [VALUE] @ WINDOW [!] --- *)

let to_string r =
  let body =
    match r.op with
    | Above v -> Printf.sprintf "%s>%g@%d" r.source v r.window
    | Below v -> Printf.sprintf "%s<%g@%d" r.source v r.window
    | Stall -> Printf.sprintf "%s=@%d" r.source r.window
    | Delta v -> Printf.sprintf "%s+%g@%d" r.source v r.window
  in
  if r.escalate then body ^ "!" else body

let parse spec =
  let spec = String.trim spec in
  let fail msg = Error (Printf.sprintf "bad watchdog rule %S: %s" spec msg) in
  let escalate = String.length spec > 0 && spec.[String.length spec - 1] = '!' in
  let body = if escalate then String.sub spec 0 (String.length spec - 1) else spec in
  match String.index_opt body '@' with
  | None -> fail "missing '@WINDOW'"
  | Some at ->
    let window_s = String.sub body (at + 1) (String.length body - at - 1) in
    (match int_of_string_opt window_s with
     | None -> fail "window is not an integer"
     | Some window when window < 1 -> fail "window must be >= 1"
     | Some window ->
       let head = String.sub body 0 at in
       let split_at op_char =
         match String.index_opt head op_char with
         | Some i when i > 0 ->
           Some (String.sub head 0 i, String.sub head (i + 1) (String.length head - i - 1))
         | _ -> None
       in
       let number s =
         match float_of_string_opt (String.trim s) with
         | Some v -> Ok v
         | None -> fail "threshold is not a number"
       in
       let make source op = Ok { name = spec; source = String.trim source; op; window; escalate } in
       (match split_at '>' with
        | Some (source, v) -> Result.bind (number v) (fun v -> make source (Above v))
        | None ->
          (match split_at '<' with
           | Some (source, v) -> Result.bind (number v) (fun v -> make source (Below v))
           | None ->
             (match split_at '+' with
              | Some (source, v) -> Result.bind (number v) (fun v -> make source (Delta v))
              | None ->
                (match split_at '=' with
                 | Some (source, rest) when String.trim rest = "" -> make source Stall
                 | Some _ -> fail "stall rules take no threshold (METRIC=@K)"
                 | None -> fail "missing operator (one of > < + =)")))))

(* --- evaluation over the snapshot stream --- *)

type state = {
  rule : rule;
  mutable streak : int;  (* consecutive violating snapshots *)
  mutable total : int;  (* violating snapshots in the current episode *)
  mutable firing : bool;
  mutable ever_fired : bool;
  mutable history : float list;  (* recent values, newest first, for Stall/Delta *)
}

type t = { states : state list }

type alert = Fire of { rule : rule; snapshots : int } | Clear of { rule : rule; snapshots : int }

let create rules =
  {
    states =
      List.map
        (fun rule ->
          { rule; streak = 0; total = 0; firing = false; ever_fired = false; history = [] })
        rules;
  }

let rules t = List.map (fun s -> s.rule) t.states

let lookup (snapshot : Telemetry.snapshot) name =
  match List.assoc_opt name snapshot.Telemetry.sn_counters with
  | Some n -> Some (float_of_int n)
  | None -> List.assoc_opt name snapshot.Telemetry.sn_gauges

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

(* Whether the newest value violates the rule, updating the lookback
   history on the way.  [None] (metric absent) never violates and
   clears the history; stall/delta need enough lookback before they
   can judge. *)
let violates st value =
  match (value, st.rule.op) with
  | None, _ ->
    st.history <- [];
    false
  | Some v, op ->
    let prev = st.history in
    (* keep window+1 values: delta compares the newest against the
       value window snapshots back *)
    st.history <- take (st.rule.window + 1) (v :: prev);
    (match op with
     | Above threshold -> v > threshold
     | Below threshold -> v < threshold
     | Stall -> (match prev with old :: _ -> v = old | [] -> false)
     | Delta minimum ->
       (match List.nth_opt prev (st.rule.window - 1) with
        | Some old -> v -. old < minimum
        | None -> false))

let feed t snapshot =
  let alerts = ref [] in
  List.iter
    (fun st ->
      let v = lookup snapshot st.rule.source in
      if violates st v then begin
        st.streak <- st.streak + 1;
        st.total <- st.total + 1;
        (* Delta already aggregates its window through the lookback, so
           it fires on the first violating snapshot. *)
        let needed = match st.rule.op with Delta _ -> 1 | _ -> st.rule.window in
        if (not st.firing) && st.streak >= needed then begin
          st.firing <- true;
          st.ever_fired <- true;
          alerts := Fire { rule = st.rule; snapshots = st.streak } :: !alerts
        end
      end
      else begin
        if st.firing then begin
          st.firing <- false;
          alerts := Clear { rule = st.rule; snapshots = st.total } :: !alerts
        end;
        st.streak <- 0;
        st.total <- 0
      end)
    t.states;
  List.rev !alerts

let reset t =
  List.iter
    (fun st ->
      st.streak <- 0;
      st.total <- 0;
      st.firing <- false;
      st.history <- [])
    t.states

let firing t = List.filter_map (fun st -> if st.firing then Some st.rule else None) t.states

let tripped t =
  List.filter_map
    (fun st -> if st.rule.escalate && st.ever_fired then Some st.rule else None)
    t.states

let alert_events ~t_us alerts =
  List.map
    (fun alert ->
      match alert with
      | Fire { rule; snapshots } ->
        Event.make ~t_us (Event.Watchdog_fire { rule = rule.name; snapshots })
      | Clear { rule; snapshots } ->
        Event.make ~t_us (Event.Watchdog_clear { rule = rule.name; snapshots }))
    alerts
