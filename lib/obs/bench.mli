(** Machine-readable benchmark results and regression diffing.

    The bechamel harness in [bench/] measures ns/run by OLS against a
    monotonic clock; this module gives those numbers a stable on-disk
    schema ([dsas-bench/1]) and a comparator, so CI can keep a committed
    baseline and fail when a kernel regresses.

    Thresholds are on ns/run growth in percent.  Host-to-host variance
    is real — a baseline measured on one machine diffed on another needs
    a generous threshold (CI uses one); same-host comparisons can be
    tight. *)

type result = {
  name : string;
  ns_per_run : float;
  r_square : float option;  (** OLS fit quality, when the analysis had it *)
}

type results = {
  clock : string;  (** e.g. ["monotonic"] *)
  quick : bool;  (** measured at reduced scale *)
  results : result list;
}

val to_json : results -> string

val load : string -> (results, string) Stdlib.result
(** Parse a results file written by {!to_json} (schema [dsas-bench/1]).
    [Error] with a diagnostic on unreadable files, malformed JSON, or a
    wrong/missing schema tag. *)

type verdict = {
  v_name : string;
  old_ns : float;
  new_ns : float;
  delta_pct : float;  (** signed growth, [new/old - 1] in percent *)
  regressed : bool;  (** [delta_pct > threshold] *)
}

type comparison = {
  threshold_pct : float;
  verdicts : verdict list;  (** kernels present in both files, by name *)
  only_old : string list;  (** in the baseline but not the new run *)
  only_new : string list;
}

val compare_results : threshold_pct:float -> old_r:results -> new_r:results -> comparison

val regressions : comparison -> verdict list
(** The verdicts over threshold, worst first. *)

val print : out_channel -> comparison -> unit
(** Human-readable table: every common kernel with old/new/delta,
    ordered by regression magnitude (worst first), regressions flagged,
    missing kernels noted. *)

val comparison_to_json : comparison -> string
(** Machine-readable comparison (the [--json] artifact); verdicts in
    the same worst-first order as {!print}. *)
