let schema = "dsas-telemetry/1"

type snapshot = {
  sn_seq : int;
  sn_t_us : int;
  sn_shard : int option;
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
}

type t = {
  every_us : int;
  shard : int option;
  ring : snapshot option array;
  mutable next : int;
  mutable seq : int;
  mutable engine_us : int;  (* running max of non-io event times *)
  mutable due_us : int;
  mutable mirror : out_channel option;
  mutable on_capture : snapshot -> unit;
  host_every_s : float option;
  now : unit -> float;
  mutable host_due : float;
}

let default_capacity = 256

let create ?(capacity = default_capacity) ?shard ?host_every_s ?now ~every_us () =
  if every_us < 1 then invalid_arg "Telemetry.create: every_us must be positive";
  if capacity < 1 then invalid_arg "Telemetry.create: capacity must be positive";
  (match host_every_s with
   | Some s when s <= 0. -> invalid_arg "Telemetry.create: host_every_s must be positive"
   | _ -> ());
  (* The host-time cadence only exists when the caller injects a clock:
     obs itself never reads wall time, so deterministic users simply
     omit [now] and get pure engine-time behaviour. *)
  let now = match now with Some f -> f | None -> fun () -> 0. in
  {
    every_us;
    shard;
    ring = Array.make capacity None;
    next = 0;
    seq = 0;
    engine_us = 0;
    due_us = every_us;
    mirror = None;
    on_capture = ignore;
    host_every_s;
    now;
    host_due =
      (match host_every_s with Some s -> now () +. s | None -> infinity);
  }

let every_us t = t.every_us

let shard t = t.shard

let mirror t oc = t.mirror <- Some oc

let on_capture t f = t.on_capture <- f

(* --- wire format --- *)

let snapshot_to_json s =
  Json.obj
    (("schema", Json.String schema)
     :: ("seq", Json.Int s.sn_seq)
     :: ("t_us", Json.Int s.sn_t_us)
     :: ((match s.sn_shard with Some k -> [ ("shard", Json.Int k) ] | None -> [])
         @ List.map (fun (name, v) -> ("c." ^ name, Json.Int v)) s.sn_counters
         @ List.map (fun (name, v) -> ("g." ^ name, Json.Float v)) s.sn_gauges))

let snapshot_of_json line =
  match Json.parse_obj line with
  | None -> None
  | Some fields ->
    (match
       (Json.mem_string fields "schema", Json.mem_int fields "seq",
        Json.mem_int fields "t_us")
     with
     | Some sc, Some sn_seq, Some sn_t_us when sc = schema && sn_seq >= 0 && sn_t_us >= 0
       ->
       let prefixed prefix =
         List.filter_map
           (fun (k, v) ->
             let n = String.length prefix in
             if String.length k > n && String.sub k 0 n = prefix then
               Some (String.sub k n (String.length k - n), v)
             else None)
           fields
       in
       let sn_counters =
         List.filter_map
           (fun (k, v) -> match v with Json.Int n -> Some (k, n) | _ -> None)
           (prefixed "c.")
       in
       let sn_gauges =
         List.filter_map
           (fun (k, v) ->
             match v with
             | Json.Float f -> Some (k, f)
             | Json.Int n -> Some (k, float_of_int n)
             | _ -> None)
           (prefixed "g.")
       in
       Some { sn_seq; sn_t_us; sn_shard = Json.mem_int fields "shard"; sn_counters; sn_gauges }
     | _ -> None)

(* --- capture --- *)

let capture t ~t_us reg =
  let reg_snap = Registry.snapshot reg in
  let s =
    {
      sn_seq = t.seq;
      sn_t_us = t_us;
      sn_shard = t.shard;
      sn_counters = reg_snap.Registry.counters;
      sn_gauges = reg_snap.Registry.gauges;
    }
  in
  t.seq <- t.seq + 1;
  t.ring.(t.next) <- Some s;
  t.next <- (t.next + 1) mod Array.length t.ring;
  (match t.mirror with
   | Some oc ->
     output_string oc (snapshot_to_json s);
     output_char oc '\n';
     (* Flush per snapshot: the whole point of the mirror is that a
        tailing [dsas_sim top] sees progress while the run is live. *)
     flush oc
   | None -> ());
  t.on_capture s;
  s

let observe t ~t_us reg =
  if t_us > t.engine_us then t.engine_us <- t_us;
  if t.engine_us >= t.due_us then begin
    let (_ : snapshot) = capture t ~t_us:t.engine_us reg in
    t.due_us <- ((t.engine_us / t.every_us) + 1) * t.every_us
  end
  else
    match t.host_every_s with
    | None -> ()
    | Some every_s ->
      let h = t.now () in
      if h >= t.host_due then begin
        let (_ : snapshot) = capture t ~t_us:t.engine_us reg in
        t.host_due <- h +. every_s
      end

let snapshots t =
  let cap = Array.length t.ring in
  let acc = ref [] in
  for i = cap - 1 downto 0 do
    match t.ring.((t.next + i) mod cap) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  Array.of_list !acc

let captured t = t.seq

(* --- event-stream tap --- *)

let events_sink t reg =
  let inflight = ref 0 in
  let io_gauge = Registry.gauge reg "io.inflight" in
  let t_gauge = Registry.gauge reg "t_last_us" in
  let counters : (string, Registry.counter) Hashtbl.t = Hashtbl.create 31 in
  let counter_for name =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = Registry.counter reg ("ev." ^ name) in
      Hashtbl.add counters name c;
      c
  in
  Sink.collect (fun (ev : Event.t) ->
      Registry.incr (counter_for (Event.kind_name ev.kind));
      match ev.kind with
      | Event.Io_start _ ->
        incr inflight;
        Registry.set io_gauge (float_of_int !inflight)
      | Event.Io_done _ | Event.Io_error _ ->
        (* max 0: a spliced or truncated stream may open before our tap *)
        inflight := max 0 (!inflight - 1);
        Registry.set io_gauge (float_of_int !inflight)
      | Event.Io_retry _ ->
        (* io events carry planned device times that run ahead of the
           engine clock; none of them advance telemetry's engine time *)
        ()
      | _ ->
        Registry.set t_gauge (float_of_int ev.t_us);
        observe t ~t_us:ev.t_us reg)

let of_events ?shard ~every_us events =
  let reg = Registry.create () in
  let ch = create ~capacity:1 ?shard ~every_us () in
  let acc = ref [] in
  on_capture ch (fun s -> acc := s :: !acc);
  let sink = events_sink ch reg in
  Array.iter (fun ev -> Sink.emit sink ev) events;
  Array.of_list (List.rev !acc)

(* --- deterministic merge --- *)

let merge streams =
  let tagged =
    List.concat
      (List.mapi
         (fun i arr ->
           Array.to_list
             (Array.map
                (fun s ->
                  ((match s.sn_shard with Some k -> k | None -> i), s))
                arr))
         (Array.to_list streams))
  in
  let ordered =
    List.stable_sort
      (fun (ka, a) (kb, b) ->
        compare (a.sn_t_us, ka, a.sn_seq) (b.sn_t_us, kb, b.sn_seq))
      tagged
  in
  Array.of_list (List.map snd ordered)

(* --- reading back --- *)

let parse_lines lines =
  let snaps = ref [] in
  let bad = ref [] in
  let bad_count = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then
        match snapshot_of_json trimmed with
        | Some s -> snaps := s :: !snaps
        | None ->
          incr bad_count;
          if !bad_count <= 5 then
            bad :=
              Printf.sprintf "line %d: not a telemetry snapshot: %S" lineno
                (if String.length trimmed > 60 then String.sub trimmed 0 60 ^ "..."
                 else trimmed)
              :: !bad)
    lines;
  if !bad_count > 0 then
    Error
      (Printf.sprintf "%d malformed line(s)\n  %s%s" !bad_count
         (String.concat "\n  " (List.rev !bad))
         (if !bad_count > 5 then
            Printf.sprintf "\n  (... %d more not shown)" (!bad_count - 5)
          else ""))
  else if !snaps = [] then Error "contains no telemetry snapshots"
  else Ok (List.rev !snaps)

let read_lines ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  List.rev !lines

let load filename =
  if filename = "-" then
    match parse_lines (read_lines stdin) with
    | Ok snaps -> Ok snaps
    | Error msg -> Error (Printf.sprintf "<stdin>: %s" msg)
  else
    match open_in filename with
    | exception Sys_error msg -> Error msg
    | ic ->
      let lines =
        try
          let ls = read_lines ic in
          close_in ic;
          ls
        with e ->
          close_in_noerr ic;
          raise e
      in
      (match parse_lines lines with
       | Ok snaps -> Ok snaps
       | Error msg -> Error (Printf.sprintf "%s: %s" filename msg))

(* --- stream validation --- *)

let check snaps =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let by_shard : (int option, snapshot) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      (match Hashtbl.find_opt by_shard s.sn_shard with
       | None ->
         if s.sn_seq <> 0 then
           problem "%s: first snapshot has seq %d, expected 0"
             (match s.sn_shard with
              | Some k -> Printf.sprintf "shard %d" k
              | None -> "stream")
             s.sn_seq
       | Some prev ->
         let who =
           match s.sn_shard with
           | Some k -> Printf.sprintf "shard %d" k
           | None -> "stream"
         in
         if s.sn_seq <> prev.sn_seq + 1 then
           problem "%s: seq %d follows seq %d (must be dense and increasing)" who
             s.sn_seq prev.sn_seq;
         if s.sn_t_us < prev.sn_t_us then
           problem "%s: t_us %d after t_us %d (must be monotone)" who s.sn_t_us
             prev.sn_t_us);
      Hashtbl.replace by_shard s.sn_shard s)
    snaps;
  List.rev !problems
