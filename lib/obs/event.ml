type direction = In | Out

type io = Demand | Prefetch | Writeback

let io_name = function
  | Demand -> "demand"
  | Prefetch -> "prefetch"
  | Writeback -> "writeback"

let io_of_name = function
  | "demand" -> Some Demand
  | "prefetch" -> Some Prefetch
  | "writeback" -> Some Writeback
  | _ -> None

type kind =
  | Run_start of { run : int; seed : int option; config : string option }
  | Fault of { page : int }
  | Cold_fault of { page : int }
  | Eviction of { page : int }
  | Writeback of { page : int }
  | Tlb_hit of { key : int }
  | Tlb_miss of { key : int }
  | Alloc of { addr : int; size : int }
  | Free of { addr : int; size : int }
  | Split of { addr : int; size : int; remainder : int }
  | Coalesce of { addr : int; size : int }
  | Compaction_move of { src : int; dst : int; len : int }
  | Segment_swap of { segment : int; words : int; direction : direction }
  | Job_start of { job : int }
  | Job_stop of { job : int }
  | Io_start of { req : int; page : int; io : io }
  | Io_done of { req : int; page : int; io : io }
  | Io_retry of { req : int; attempt : int }
  | Io_error of { req : int; page : int; io : io; attempts : int }
  | Job_abort of { job : int; restarts : int }
  | Load_shed of { job : int }
  | Load_admit of { job : int }
  | Shard_crash of { shard : int; attempt : int }
  | Shard_restart of { shard : int; attempt : int }
  | Shard_checkpoint of { shard : int; progress : int; events : int }
  | Watchdog_fire of { rule : string; snapshots : int }
  | Watchdog_clear of { rule : string; snapshots : int }

type t = { t_us : int; kind : kind }

let make ~t_us kind = { t_us; kind }

let kind_name = function
  | Run_start _ -> "run_start"
  | Fault _ -> "fault"
  | Cold_fault _ -> "cold_fault"
  | Eviction _ -> "eviction"
  | Writeback _ -> "writeback"
  | Tlb_hit _ -> "tlb_hit"
  | Tlb_miss _ -> "tlb_miss"
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Split _ -> "split"
  | Coalesce _ -> "coalesce"
  | Compaction_move _ -> "compaction_move"
  | Segment_swap _ -> "segment_swap"
  | Job_start _ -> "job_start"
  | Job_stop _ -> "job_stop"
  | Io_start _ -> "io_start"
  | Io_done _ -> "io_done"
  | Io_retry _ -> "io_retry"
  | Io_error _ -> "io_error"
  | Job_abort _ -> "job_abort"
  | Load_shed _ -> "load_shed"
  | Load_admit _ -> "load_admit"
  | Shard_crash _ -> "shard_crash"
  | Shard_restart _ -> "shard_restart"
  | Shard_checkpoint _ -> "shard_checkpoint"
  | Watchdog_fire _ -> "watchdog_fire"
  | Watchdog_clear _ -> "watchdog_clear"

let all_kind_names =
  [ "run_start"; "fault"; "cold_fault"; "eviction"; "writeback"; "tlb_hit"; "tlb_miss";
    "alloc"; "free"; "split"; "coalesce"; "compaction_move"; "segment_swap"; "job_start";
    "job_stop"; "io_start"; "io_done"; "io_retry"; "io_error"; "job_abort"; "load_shed";
    "load_admit"; "shard_crash"; "shard_restart"; "shard_checkpoint"; "watchdog_fire";
    "watchdog_clear" ]

let trace_schema = "dsas-trace/1"

let fields_of_kind = function
  | Run_start { run; seed; config } ->
    ("run", Json.Int run)
    :: ("schema", Json.String trace_schema)
    :: ((match seed with Some s -> [ ("seed", Json.Int s) ] | None -> [])
        @ (match config with Some c -> [ ("config", Json.String c) ] | None -> []))
  | Fault { page } | Cold_fault { page } | Eviction { page } | Writeback { page } ->
    [ ("page", Json.Int page) ]
  | Tlb_hit { key } | Tlb_miss { key } -> [ ("key", Json.Int key) ]
  | Alloc { addr; size } | Free { addr; size } | Coalesce { addr; size } ->
    [ ("addr", Json.Int addr); ("size", Json.Int size) ]
  | Split { addr; size; remainder } ->
    [ ("addr", Json.Int addr); ("size", Json.Int size); ("remainder", Json.Int remainder) ]
  | Compaction_move { src; dst; len } ->
    [ ("src", Json.Int src); ("dst", Json.Int dst); ("len", Json.Int len) ]
  | Segment_swap { segment; words; direction } ->
    [ ("segment", Json.Int segment); ("words", Json.Int words);
      ("dir", Json.String (match direction with In -> "in" | Out -> "out")) ]
  | Job_start { job } | Job_stop { job } -> [ ("job", Json.Int job) ]
  | Io_start { req; page; io } | Io_done { req; page; io } ->
    [ ("req", Json.Int req); ("page", Json.Int page); ("io", Json.String (io_name io)) ]
  | Io_retry { req; attempt } -> [ ("req", Json.Int req); ("attempt", Json.Int attempt) ]
  | Io_error { req; page; io; attempts } ->
    [ ("req", Json.Int req); ("page", Json.Int page); ("io", Json.String (io_name io));
      ("attempts", Json.Int attempts) ]
  | Job_abort { job; restarts } -> [ ("job", Json.Int job); ("restarts", Json.Int restarts) ]
  | Load_shed { job } | Load_admit { job } -> [ ("job", Json.Int job) ]
  | Shard_crash { shard; attempt } | Shard_restart { shard; attempt } ->
    [ ("shard", Json.Int shard); ("attempt", Json.Int attempt) ]
  | Shard_checkpoint { shard; progress; events } ->
    [ ("shard", Json.Int shard); ("progress", Json.Int progress);
      ("events", Json.Int events) ]
  | Watchdog_fire { rule; snapshots } | Watchdog_clear { rule; snapshots } ->
    [ ("rule", Json.String rule); ("snapshots", Json.Int snapshots) ]

let to_json t =
  Json.obj
    (("t_us", Json.Int t.t_us)
     :: ("ev", Json.String (kind_name t.kind))
     :: fields_of_kind t.kind)

let of_json line =
  match Json.parse_obj line with
  | None -> None
  | Some fields ->
    let int k = Json.mem_int fields k in
    let kind =
      match Json.mem_string fields "ev" with
      | Some "run_start" ->
        Option.map
          (fun run ->
            Run_start
              { run; seed = int "seed"; config = Json.mem_string fields "config" })
          (int "run")
      | Some "fault" -> Option.map (fun page -> Fault { page }) (int "page")
      | Some "cold_fault" -> Option.map (fun page -> Cold_fault { page }) (int "page")
      | Some "eviction" -> Option.map (fun page -> Eviction { page }) (int "page")
      | Some "writeback" -> Option.map (fun page -> Writeback { page }) (int "page")
      | Some "tlb_hit" -> Option.map (fun key -> Tlb_hit { key }) (int "key")
      | Some "tlb_miss" -> Option.map (fun key -> Tlb_miss { key }) (int "key")
      | Some "alloc" ->
        (match (int "addr", int "size") with
         | Some addr, Some size -> Some (Alloc { addr; size })
         | _ -> None)
      | Some "free" ->
        (match (int "addr", int "size") with
         | Some addr, Some size -> Some (Free { addr; size })
         | _ -> None)
      | Some "split" ->
        (match (int "addr", int "size", int "remainder") with
         | Some addr, Some size, Some remainder -> Some (Split { addr; size; remainder })
         | _ -> None)
      | Some "coalesce" ->
        (match (int "addr", int "size") with
         | Some addr, Some size -> Some (Coalesce { addr; size })
         | _ -> None)
      | Some "compaction_move" ->
        (match (int "src", int "dst", int "len") with
         | Some src, Some dst, Some len -> Some (Compaction_move { src; dst; len })
         | _ -> None)
      | Some "segment_swap" ->
        (match (int "segment", int "words", Json.mem_string fields "dir") with
         | Some segment, Some words, Some dir ->
           (match dir with
            | "in" -> Some (Segment_swap { segment; words; direction = In })
            | "out" -> Some (Segment_swap { segment; words; direction = Out })
            | _ -> None)
         | _ -> None)
      | Some "job_start" -> Option.map (fun job -> Job_start { job }) (int "job")
      | Some "job_stop" -> Option.map (fun job -> Job_stop { job }) (int "job")
      | Some (("io_start" | "io_done") as which) ->
        (match (int "req", int "page", Option.bind (Json.mem_string fields "io") io_of_name) with
         | Some req, Some page, Some io ->
           if which = "io_start" then Some (Io_start { req; page; io })
           else Some (Io_done { req; page; io })
         | _ -> None)
      | Some "io_retry" ->
        (match (int "req", int "attempt") with
         | Some req, Some attempt -> Some (Io_retry { req; attempt })
         | _ -> None)
      | Some "io_error" ->
        (match
           (int "req", int "page", Option.bind (Json.mem_string fields "io") io_of_name,
            int "attempts")
         with
         | Some req, Some page, Some io, Some attempts ->
           Some (Io_error { req; page; io; attempts })
         | _ -> None)
      | Some "job_abort" ->
        (match (int "job", int "restarts") with
         | Some job, Some restarts -> Some (Job_abort { job; restarts })
         | _ -> None)
      | Some "load_shed" -> Option.map (fun job -> Load_shed { job }) (int "job")
      | Some "load_admit" -> Option.map (fun job -> Load_admit { job }) (int "job")
      | Some (("shard_crash" | "shard_restart") as which) ->
        (match (int "shard", int "attempt") with
         | Some shard, Some attempt ->
           if which = "shard_crash" then Some (Shard_crash { shard; attempt })
           else Some (Shard_restart { shard; attempt })
         | _ -> None)
      | Some "shard_checkpoint" ->
        (match (int "shard", int "progress", int "events") with
         | Some shard, Some progress, Some events ->
           Some (Shard_checkpoint { shard; progress; events })
         | _ -> None)
      | Some (("watchdog_fire" | "watchdog_clear") as which) ->
        (match (Json.mem_string fields "rule", int "snapshots") with
         | Some rule, Some snapshots ->
           if which = "watchdog_fire" then Some (Watchdog_fire { rule; snapshots })
           else Some (Watchdog_clear { rule; snapshots })
         | _ -> None)
      | Some _ | None -> None
    in
    (match (kind, int "t_us") with
     | Some kind, Some t_us when t_us >= 0 -> Some { t_us; kind }
     | _ -> None)

let pp fmt t = Format.pp_print_string fmt (to_json t)
