(** A named-metrics registry: counters, gauges, distributions, and time
    series, snapshottable mid-run.

    One registry per run (or per engine) gives instrumentation a place
    to accumulate without threading a record of every metric through
    the code.  Handles returned by the accessors are stable: look a
    metric up once, update it on the hot path for free.  Distributions
    are built over {!Metrics.Stats} (streaming moments) and
    {!Metrics.Histogram}; series over {!Series}. *)

type t

type counter

type gauge

val create : unit -> t

(** {2 Run metadata}

    Key/value stamps identifying the run that filled the registry
    (seed, experiment/cell id, parameter bindings).  {!to_json} writes
    them as a ["meta"] object, so a metrics artifact is
    self-describing — the campaign store depends on this to recover a
    cell's parameters from its metrics file alone. *)

val set_meta : t -> (string * string) list -> unit
(** Add or replace metadata bindings (by key; insertion order kept). *)

val meta : t -> (string * string) list

(** {2 Handles} — get-or-create by name} *)

val counter : t -> string -> counter

val gauge : t -> string -> gauge

val stats : t -> string -> Metrics.Stats.t

val histogram : t -> string -> default:(unit -> Metrics.Histogram.t) -> Metrics.Histogram.t
(** [default] builds the histogram (choosing its bucketing scheme) the
    first time the name is seen. *)

val series : t -> string -> Series.t

(** {2 Updates} *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** {2 Snapshots} *)

type distribution = {
  count : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  distributions : (string * distribution) list;
  series_lengths : (string * int) list;
}

val snapshot : t -> snapshot
(** A consistent view of every registered metric, taken mid-run or at
    the end.  Cheap: proportional to the number of metrics. *)

val snapshot_to_json : snapshot -> string

val to_json : t -> string
(** Full-state export, one JSON document: every counter and gauge,
    stats with moments (count/mean/stddev/min/max/total), histograms
    with their non-empty buckets plus p50/p90/p99 and exact min/max,
    and every series point.  The artifact behind
    [dsas_sim run --metrics-out]. *)
