type t = { mutable rev_points : (int * float) list; mutable len : int }

let create () = { rev_points = []; len = 0 }

let sample t ~t_us v =
  (match t.rev_points with
   | (prev, _) :: _ when t_us < prev ->
     invalid_arg "Series.sample: time went backwards"
   | _ -> ());
  t.rev_points <- (t_us, v) :: t.rev_points;
  t.len <- t.len + 1

let length t = t.len

let points t = List.rev t.rev_points

let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let to_timeline t =
  let tl = Metrics.Timeline.create () in
  let pts = points t in
  (* Mean gap, for the duration of the final (open-ended) sample. *)
  let mean_gap =
    match (pts, t.rev_points) with
    | (first, _) :: _ :: _, (last, _) :: _ -> max 1 ((last - first) / max 1 (t.len - 1))
    | _ -> 1
  in
  let rec record = function
    | (at, v) :: ((at', _) :: _ as rest) ->
      Metrics.Timeline.record tl ~at ~dt:(max 1 (at' - at))
        ~words:(int_of_float (Float.max 0. v))
        Metrics.Space_time.Active;
      record rest
    | [ (at, v) ] ->
      Metrics.Timeline.record tl ~at ~dt:mean_gap
        ~words:(int_of_float (Float.max 0. v))
        Metrics.Space_time.Active
    | [] -> ()
  in
  record pts;
  tl

let to_json t =
  Json.array
    (List.map (fun (at, v) -> Json.Raw (Json.array [ Json.Int at; Json.Float v ])) (points t))
