(** Dynamic validation of recorded event streams.

    [dsas_sim run EXP --trace FILE.jsonl] records what an engine did;
    this module replays such a stream against the typed schema
    ({!Event.of_json}) and a set of cross-event invariants, so a broken
    engine (or a corrupted file) is caught mechanically rather than by
    eyeballing goldens.

    Invariants are scoped to {e run segments}: an experiment that
    splices several engine runs into one stream separates them with
    {!Event.Run_start} boundaries (see {!Sink.segment}), and every
    per-run table — in-flight requests, resident pages, words balance —
    resets at each boundary. *)

type invariant =
  | Schema  (** line parses as a known event with sane field values *)
  | Clock  (** engine timestamps monotone within a run (io_* exempt) *)
  | Io_pair  (** io_start closed by exactly one io_done/io_error *)
  | Queue_depth  (** in-flight request count never negative *)
  | Frames  (** fault/eviction/writeback/cold_fault conserve residency *)
  | Heap  (** freed words never exceed allocated words *)
  | Vocab  (** one engine's vocabulary per run segment *)
  | Retry_bounded  (** retry attempts sequential and bounded per request *)
  | Restart_bounded  (** job restarts count up by one and stay bounded *)
  | No_lost_job  (** every started job stops; shed jobs are re-admitted *)
  | Shard_restart_bounded
      (** shard crashes count up by one, stay bounded, and every
          restart answers a crash already seen *)
  | No_lost_shard_events
      (** per-shard checkpoint (progress, events) never goes backwards *)
  | Watchdog_paired
      (** per rule, fire only when not already firing, clear only
          answers an open fire (an episode open at a run boundary is
          allowed) *)
  | Watchdog_bounded
      (** watchdog snapshot counts are positive and a clear reports at
          least as many snapshots as its fire *)

val all_invariants : invariant list

val invariant_id : invariant -> string
(** Stable wire/CLI id: ["schema"], ["clock"], ["io-pair"],
    ["queue-depth"], ["frames"], ["heap"], ["vocab"],
    ["retry-bounded"], ["restart-bounded"], ["no-lost-job"],
    ["shard-restart-bounded"], ["no-lost-shard-events"],
    ["watchdog-paired"], ["watchdog-bounded"]. *)

val invariant_of_id : string -> invariant option

val invariant_doc : invariant -> string
(** One-sentence description, shown by [dsas_sim check --list-invariants]. *)

type violation = { line : int; invariant : invariant; message : string }
(** [line] is the 1-based JSONL line (or event index for
    {!check_events}). *)

type report = {
  events : int;  (** events parsed (schema failures not included) *)
  runs : int;  (** run segments: 1 + number of [run_start] boundaries *)
  counts : (invariant * int) list;  (** violations per invariant, > 0 only *)
  violations : violation list;  (** the first [limit] violations, in order *)
}

val ok : report -> bool
(** No violations of any invariant. *)

val check_events : ?limit:int -> Event.t list -> report
(** Validate an in-memory stream (e.g. from {!Sink.collect}).  [limit]
    caps the individually-reported violations (default 50); [counts]
    always reflects every violation. *)

val check_lines : ?limit:int -> string list -> report
(** Validate trace lines already in memory (e.g. read from stdin) —
    the same per-line treatment as {!check_jsonl}: blank lines and
    [#] comments skipped, unparsable lines reported as [Schema]
    violations. *)

val check_jsonl : ?limit:int -> string -> (report, string) result
(** Validate a JSONL trace file.  [Error] only for an unreadable file;
    unparsable lines are [Schema] violations in the report.  Blank
    lines and [#] comments are skipped, as in {!Summary.scan_jsonl}. *)

val to_json : report -> string

val print : report -> unit
(** Human-readable summary on stdout: per-invariant totals, then the
    individually-kept violations with line numbers. *)
