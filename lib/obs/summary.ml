type replay = {
  policy : string;
  frames : int;
  refs : int;
  faults : int;
  cold : int;
  evictions : int;
}

let replay_fault_rate r =
  if r.refs = 0 then 0. else float_of_int r.faults /. float_of_int r.refs

let replay_to_json r =
  Json.obj
    [
      ("policy", Json.String r.policy);
      ("frames", Json.Int r.frames);
      ("refs", Json.Int r.refs);
      ("faults", Json.Int r.faults);
      ("fault_rate", Json.Float (replay_fault_rate r));
      ("cold", Json.Int r.cold);
      ("evictions", Json.Int r.evictions);
    ]

type trace_stats = {
  events : int;
  t_first_us : int;
  t_last_us : int;
  kinds : (string * int) list;
}

let count t name = match List.assoc_opt name t.kinds with Some n -> n | None -> 0

(* Fold events into an accumulator keyed by kind name. *)
type acc = {
  mutable n : int;
  mutable first : int;
  mutable last : int;
  table : (string, int ref) Hashtbl.t;
}

let acc_create () = { n = 0; first = 0; last = 0; table = Hashtbl.create 16 }

let acc_add acc ev =
  if acc.n = 0 then acc.first <- ev.Event.t_us;
  acc.last <- ev.Event.t_us;
  acc.n <- acc.n + 1;
  let name = Event.kind_name ev.Event.kind in
  match Hashtbl.find_opt acc.table name with
  | Some r -> incr r
  | None -> Hashtbl.replace acc.table name (ref 1)

let acc_finish acc =
  {
    events = acc.n;
    t_first_us = acc.first;
    t_last_us = acc.last;
    kinds =
      (* lint: allow L3 — the bindings are sorted by the enclosing List.sort *)
      List.sort compare (Hashtbl.fold (fun k r l -> (k, !r) :: l) acc.table []);
  }

let of_events events =
  let acc = acc_create () in
  List.iter (acc_add acc) events;
  acc_finish acc

let scan_jsonl filename =
  match open_in filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let acc = acc_create () in
    let lineno = ref 0 in
    (* Scan the whole file rather than stopping at the first bad line:
       a truncated or interleaved trace usually has more than one, and
       the caller wants them all in one pass. *)
    let bad = ref [] in
    let bad_count = ref 0 in
    (try
       let rec loop () =
         match input_line ic with
         | line ->
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" && trimmed.[0] <> '#' then begin
             match Event.of_json trimmed with
             | Some ev -> acc_add acc ev
             | None ->
               incr bad_count;
               if !bad_count <= 5 then
                 bad :=
                   Printf.sprintf "line %d: not an event: %S" !lineno
                     (if String.length trimmed > 60 then
                        String.sub trimmed 0 60 ^ "..."
                      else trimmed)
                   :: !bad
           end;
           loop ()
         | exception End_of_file -> ()
       in
       loop ();
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    if !bad_count = 0 then Ok (acc_finish acc)
    else
      Error
        (Printf.sprintf "%s: %d malformed line(s)\n  %s%s" filename !bad_count
           (String.concat "\n  " (List.rev !bad))
           (if !bad_count > 5 then
              Printf.sprintf "\n  (... %d more not shown)" (!bad_count - 5)
            else ""))

let trace_stats_to_json t =
  Json.obj
    [
      ("events", Json.Int t.events);
      ("t_first_us", Json.Int t.t_first_us);
      ("t_last_us", Json.Int t.t_last_us);
      ("kinds", Json.Raw (Json.obj (List.map (fun (k, n) -> (k, Json.Int n)) t.kinds)));
    ]

let print_trace_stats t =
  Printf.printf "%d events spanning %d us (t_us %d .. %d)\n" t.events
    (t.t_last_us - t.t_first_us) t.t_first_us t.t_last_us;
  List.iter (fun (k, n) -> Printf.printf "  %-16s %d\n" k n) t.kinds
