(** Pluggable destinations for the event stream.

    Engines accept a sink (defaulting to {!null}) and report through
    it.  The contract for hot paths: guard each emission with
    {!is_active} so that with the {!null} sink the entire observability
    layer costs one branch and no allocation —

    {[
      if Obs.Sink.is_active t.obs then
        Obs.Sink.emit t.obs (Obs.Event.make ~t_us (Fault { page }))
    ]}

    (engines typically cache [is_active] in a [bool] field at creation,
    since a sink's activeness never changes). *)

type t

val null : t
(** Discards everything; {!is_active} is [false]. *)

val ring : capacity:int -> t
(** Keep the last [capacity] events in memory.  [capacity >= 1]. *)

val jsonl : out_channel -> t
(** Write each event as one JSON object per line ({!Event.to_json}).
    The caller owns the channel; {!flush} before closing it. *)

val collect : (Event.t -> unit) -> t
(** Hand every event to a callback (custom aggregation). *)

val tee : t -> t -> t
(** Duplicate the stream into both sinks.  Collapses over {!null}:
    [tee null s] is [s], so wrapping an inactive sink stays inactive. *)

val shift : offset:int -> t -> t
(** Forward events with [offset] added to their timestamp.  Lets a
    multi-engine experiment (each engine owning a fresh clock) splice
    its runs into one monotone stream.  [shift ~offset null] is
    {!null}. *)

val segment : ?seed:int -> ?config:string -> run:int -> offset:int -> t -> t
(** [shift ~offset], announced: emits a {!Event.Run_start} boundary
    (stamped [offset], i.e. the shifted origin) before returning the
    shifted sink.  Experiments that splice several engine runs into one
    stream use one [segment] per run so that {!Check} can scope its
    invariants — request ids and first-touch sets restart at each
    boundary.  [seed] and [config] are stamped into the boundary event
    (with the trace schema version) so the recorded stream identifies
    the run that produced it.  [segment ~run ~offset null] is {!null}
    and emits nothing. *)

val sample : every:int -> (Event.t -> unit) -> t
(** Invoke the callback on every [every]-th event ([every >= 1]) — the
    hook for mid-run probes (resident-set size, fragmentation) feeding
    {!Series} / {!Metrics.Timeline}.  {!Event.Run_start} segment
    boundaries always reach the callback and do not advance the
    sampling counter, so a sampled stream remains scopeable by {!Check}
    and the kept subsequence of ordinary events does not depend on how
    many segments the stream was spliced from.  Events themselves are
    not forwarded anywhere; tee with another sink to also record
    them. *)

val is_active : t -> bool
(** [false] exactly for {!null}.  Hot paths branch on this before
    constructing an event. *)

val emit : t -> Event.t -> unit

val flush : t -> unit
(** Flush any buffered output channels (recursing through tees). *)

val ring_contents : t -> Event.t list
(** Events still held by a {!ring} sink, oldest first.  [[]] for other
    sinks. *)

val ring_seen : t -> int
(** Total events ever emitted to a {!ring} sink (>= length of
    {!ring_contents}).  [0] for other sinks. *)
