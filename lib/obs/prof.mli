(** Hierarchical host-time span profiler.

    Measures where the simulator itself spends wall-clock time — as
    opposed to the event stream, which records *simulated* time.  Spans
    nest: a span entered while another is active becomes its child, and
    aggregation is keyed by the full call path, so the same function
    shows up separately under different callers (flamegraph semantics).

    The profiler is a process-wide singleton, off by default.  When
    disabled, [span] is a single flag test plus a tail call — engines
    keep their instrumentation unconditionally and pay (almost) nothing.
    Timing uses bechamel's monotonic clock, so spans are immune to
    wall-clock adjustments; allocation deltas come from [Gc.quick_stat].

    Not thread-safe: the span stack is global state, matching the
    single-domain simulator. *)

type row = {
  path : string;  (** [";"]-separated span names, root first *)
  count : int;  (** number of completed spans at this path *)
  total_ns : int;  (** wall time inside the span, children included *)
  self_ns : int;  (** wall time minus time spent in child spans *)
  alloc_words : float;
      (** OCaml words allocated during the span (minor + major directly,
          promotions not double-counted), children included *)
}

val enable : unit -> unit
(** Start recording.  Also clears any half-open span stack left from a
    previous enable/disable cycle. *)

val disable : unit -> unit
(** Stop recording.  Accumulated rows survive until [reset]. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated rows and the span stack. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a span called [name].  The span is
    closed even if [f] raises.  When the profiler is disabled this is
    just [f ()]. *)

val rows : unit -> row list
(** Completed spans, sorted by total time descending. *)

val folded : unit -> string
(** Flamegraph "folded stacks" format: one [path self_us] line per row,
    self time in microseconds, sorted by path.  Feed to
    [flamegraph.pl] or speedscope. *)

val to_json : unit -> string
(** The rows as a JSON document [{"spans": [...]}]. *)

val print : out_channel -> unit
(** Human-readable table, indented by call depth. *)
