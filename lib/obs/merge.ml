(* K-way merge over per-stream cursors.  The merge key for a stream is
   its current ENGINE time — the running maximum of the non-io
   timestamps consumed so far (io_* events carry planned service
   times, stamped ahead of the engine's clock, so keying on raw t_us
   would let one stream's engine events leapfrog another's events
   queued behind a planned completion; see Event).  The engine-time
   key is non-decreasing along each stream, which makes the min-head
   scan a true sorted merge: non-io events come out globally monotone,
   io events ride at their dispatch point exactly as they do in a
   single-engine stream, and merging one stream is the identity.

   The streams are small in number (one per memory shard) while the
   events are many, so the cursor scan per output event is a linear
   pass over k cursors — O(n * k) with k in the single digits, and no
   allocation beyond the output array. *)

let is_io (ev : Event.t) =
  match ev.kind with
  | Event.Io_start _ | Event.Io_done _ | Event.Io_retry _ | Event.Io_error _ ->
    true
  | _ -> false

let total streams = Array.fold_left (fun acc s -> acc + Array.length s) 0 streams

let interleave (streams : Event.t array array) : Event.t array =
  let k = Array.length streams in
  let n = total streams in
  if n = 0 then [||]
  else begin
    let cursor = Array.make k 0 in
    (* Engine time of each stream: max non-io t_us consumed so far. *)
    let engine_t = Array.make k 0 in
    let key s =
      let ev = streams.(s).(cursor.(s)) in
      if is_io ev then engine_t.(s) else max engine_t.(s) ev.Event.t_us
    in
    (* Pick the live stream with the smallest (engine time, index);
       strict [<] keeps the lowest stream index on ties, and cursors
       preserve arrival order within a stream. *)
    let pick () =
      let best = ref (-1) in
      let best_t = ref max_int in
      for s = 0 to k - 1 do
        if cursor.(s) < Array.length streams.(s) then begin
          let t = key s in
          if t < !best_t then begin
            best := s;
            best_t := t
          end
        end
      done;
      !best
    in
    let first = pick () in
    let seed = streams.(first).(cursor.(first)) in
    let out = Array.make n seed in
    for i = 0 to n - 1 do
      let s = pick () in
      let ev = streams.(s).(cursor.(s)) in
      out.(i) <- ev;
      if not (is_io ev) then engine_t.(s) <- max engine_t.(s) ev.Event.t_us;
      cursor.(s) <- cursor.(s) + 1
    done;
    out
  end

let emit ~into streams =
  let n = total streams in
  if Sink.is_active into then
    Array.iter (fun ev -> Sink.emit into ev) (interleave streams);
  n
