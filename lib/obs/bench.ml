type result = {
  name : string;
  ns_per_run : float;
  r_square : float option;
}

type results = {
  clock : string;
  quick : bool;
  results : result list;
}

let schema = "dsas-bench/1"

let to_json r =
  let result_obj (res : result) =
    Json.Raw
      (Json.obj
         (("name", Json.String res.name)
          :: ("ns_per_run", Json.Float res.ns_per_run)
          ::
          (match res.r_square with
           | Some r2 -> [ ("r_square", Json.Float r2) ]
           | None -> [])))
  in
  Json.obj
    [
      ("schema", Json.String schema);
      ("clock", Json.String r.clock);
      ("quick", Json.Raw (if r.quick then "true" else "false"));
      ("results", Json.Raw (Json.array (List.map result_obj r.results)));
    ]

let read_file filename =
  match open_in_bin filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let load filename =
  match read_file filename with
  | Error msg -> Error msg
  | Ok text ->
    (match Json.parse_tree text with
     | None -> Error (Printf.sprintf "%s: malformed JSON" filename)
     | Some doc ->
       (match Json.tree_str doc "schema" with
        | Some s when s = schema ->
          let results =
            match Json.tree_mem doc "results" with
            | Some (Json.TArr items) ->
              List.filter_map
                (fun item ->
                  match (Json.tree_str item "name", Json.tree_num item "ns_per_run") with
                  | Some name, Some ns_per_run ->
                    Some { name; ns_per_run; r_square = Json.tree_num item "r_square" }
                  | _ -> None)
                items
            | _ -> []
          in
          let clock =
            match Json.tree_str doc "clock" with Some c -> c | None -> "unknown"
          in
          let quick =
            match Json.tree_mem doc "quick" with
            | Some (Json.TBool b) -> b
            | _ -> false
          in
          Ok { clock; quick; results }
        | Some other ->
          Error (Printf.sprintf "%s: schema %S, expected %S" filename other schema)
        | None -> Error (Printf.sprintf "%s: missing \"schema\" field" filename)))

type verdict = {
  v_name : string;
  old_ns : float;
  new_ns : float;
  delta_pct : float;
  regressed : bool;
}

type comparison = {
  threshold_pct : float;
  verdicts : verdict list;
  only_old : string list;
  only_new : string list;
}

let compare_results ~threshold_pct ~old_r ~new_r =
  let by_name rs =
    List.sort (fun (a : result) b -> compare a.name b.name) rs.results
  in
  let olds = by_name old_r and news = by_name new_r in
  let rec merge olds news verdicts only_old only_new =
    match (olds, news) with
    | [], [] -> (List.rev verdicts, List.rev only_old, List.rev only_new)
    | o :: os, [] -> merge os [] verdicts (o.name :: only_old) only_new
    | [], n :: ns -> merge [] ns verdicts only_old (n.name :: only_new)
    | o :: os, n :: ns ->
      if o.name = n.name then begin
        let delta_pct =
          if o.ns_per_run <= 0. then 0.
          else ((n.ns_per_run /. o.ns_per_run) -. 1.) *. 100.
        in
        let v =
          {
            v_name = o.name;
            old_ns = o.ns_per_run;
            new_ns = n.ns_per_run;
            delta_pct;
            regressed = delta_pct > threshold_pct;
          }
        in
        merge os ns (v :: verdicts) only_old only_new
      end
      else if o.name < n.name then merge os news verdicts (o.name :: only_old) only_new
      else merge olds ns verdicts only_old (n.name :: only_new)
  in
  let verdicts, only_old, only_new = merge olds news [] [] [] in
  { threshold_pct; verdicts; only_old; only_new }

let regressions c =
  List.sort
    (fun a b -> compare b.delta_pct a.delta_pct)
    (List.filter (fun v -> v.regressed) c.verdicts)

(* Reports lead with the worst offender: verdicts ordered by delta
   descending (name breaks ties), so regressions top the table and the
   JSON artifact alike. *)
let by_magnitude verdicts =
  List.sort
    (fun a b ->
      match compare b.delta_pct a.delta_pct with
      | 0 -> compare a.v_name b.v_name
      | c -> c)
    verdicts

let print oc c =
  let c = { c with verdicts = by_magnitude c.verdicts } in
  Printf.fprintf oc "%-44s %12s %12s %9s\n" "kernel" "old ns/run" "new ns/run" "delta";
  List.iter
    (fun v ->
      Printf.fprintf oc "%-44s %12.1f %12.1f %+8.1f%%%s\n" v.v_name v.old_ns v.new_ns
        v.delta_pct
        (if v.regressed then "  REGRESSION" else ""))
    c.verdicts;
  List.iter
    (fun name -> Printf.fprintf oc "%-44s (only in baseline)\n" name)
    c.only_old;
  List.iter
    (fun name -> Printf.fprintf oc "%-44s (only in new run)\n" name)
    c.only_new;
  let regs = regressions c in
  if regs = [] then
    Printf.fprintf oc "no regressions above %.1f%% across %d kernel(s)\n"
      c.threshold_pct (List.length c.verdicts)
  else
    Printf.fprintf oc "%d regression(s) above %.1f%%\n" (List.length regs)
      c.threshold_pct

let comparison_to_json c =
  let verdict_obj v =
    Json.Raw
      (Json.obj
         [
           ("name", Json.String v.v_name);
           ("old_ns", Json.Float v.old_ns);
           ("new_ns", Json.Float v.new_ns);
           ("delta_pct", Json.Float v.delta_pct);
           ("regressed", Json.Raw (if v.regressed then "true" else "false"));
         ])
  in
  Json.obj
    [
      ("threshold_pct", Json.Float c.threshold_pct);
      ( "verdicts",
        Json.Raw (Json.array (List.map verdict_obj (by_magnitude c.verdicts))) );
      ( "only_old",
        Json.Raw (Json.array (List.map (fun s -> Json.String s) c.only_old)) );
      ( "only_new",
        Json.Raw (Json.array (List.map (fun s -> Json.String s) c.only_new)) );
      ( "regressions",
        Json.Int (List.length (regressions c)) );
    ]
