type ring_buffer = {
  buf : Event.t option array;
  mutable next : int;  (* slot for the next event *)
  mutable seen : int;  (* total emitted, including overwritten *)
}

type sampler = { every : int; mutable count : int; probe : Event.t -> unit }

type t =
  | Null
  | Ring of ring_buffer
  | Jsonl of out_channel
  | Collect of (Event.t -> unit)
  | Tee of t * t
  | Shift of int * t
  | Sample of sampler

let null = Null

let ring ~capacity =
  if capacity < 1 then invalid_arg "Sink.ring: capacity must be positive";
  Ring { buf = Array.make capacity None; next = 0; seen = 0 }

let jsonl oc = Jsonl oc

let collect f = Collect f

(* Both combinators collapse over [Null] so that wrapping an inactive
   sink stays inactive: engines given [shift ~offset null] still take
   the zero-cost path. *)
let tee a b = match (a, b) with Null, s | s, Null -> s | _ -> Tee (a, b)

let shift ~offset inner = match inner with Null -> Null | _ -> Shift (offset, inner)

let sample ~every probe =
  if every < 1 then invalid_arg "Sink.sample: every must be positive";
  Sample { every; count = 0; probe }

let is_active = function Null -> false | _ -> true

let rec emit t ev =
  match t with
  | Null -> ()
  | Ring r ->
    r.buf.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod Array.length r.buf;
    r.seen <- r.seen + 1
  | Jsonl oc ->
    output_string oc (Event.to_json ev);
    output_char oc '\n'
  | Collect f -> f ev
  | Tee (a, b) ->
    emit a ev;
    emit b ev
  | Shift (offset, inner) -> emit inner { ev with Event.t_us = ev.Event.t_us + offset }
  | Sample s ->
    (* Segment boundaries always pass: a sampled trace with its
       run_start markers dropped cannot be scoped by Check or Query.
       Boundaries do not advance the sampling counter, so the kept
       subsequence of ordinary events is independent of how many
       segments the stream was spliced from. *)
    (match ev.Event.kind with
     | Event.Run_start _ -> s.probe ev
     | _ ->
       s.count <- s.count + 1;
       if s.count mod s.every = 0 then s.probe ev)

let segment ?seed ?config ~run ~offset inner =
  match inner with
  | Null -> Null
  | _ ->
    let s = Shift (offset, inner) in
    emit s (Event.make ~t_us:0 (Event.Run_start { run; seed; config }));
    s

let rec flush = function
  | Null | Ring _ | Collect _ | Sample _ -> ()
  | Jsonl oc -> Stdlib.flush oc
  | Tee (a, b) ->
    flush a;
    flush b
  | Shift (_, inner) -> flush inner

let ring_contents = function
  | Ring r ->
    (* Oldest first: slots [next..] wrapped around, skipping empties. *)
    let cap = Array.length r.buf in
    let acc = ref [] in
    for i = cap - 1 downto 0 do
      match r.buf.((r.next + i) mod cap) with
      | Some ev -> acc := ev :: !acc
      | None -> ()
    done;
    !acc
  | Null | Jsonl _ | Collect _ | Tee _ | Shift _ | Sample _ -> []

let ring_seen = function
  | Ring r -> r.seen
  | Null | Jsonl _ | Collect _ | Tee _ | Shift _ | Sample _ -> 0
