(** Minimal flat JSON, for the event stream and machine-readable
    summaries.

    Only what the observability layer needs: encoding objects whose
    fields are integers, floats, strings, or pre-encoded fragments, and
    parsing the single-level objects our own encoders emit.  Not a
    general JSON library — nested values parse only via [Raw] fragments
    produced by our own encoders. *)

type value =
  | Int of int
  | Float of float
  | String of string
  | Raw of string  (** pre-encoded JSON, injected verbatim (nesting) *)

val obj : (string * value) list -> string
(** [obj fields] is a compact one-line JSON object, fields in the order
    given. *)

val array : value list -> string
(** A compact JSON array. *)

val parse_obj : string -> (string * value) list option
(** Parse a flat object of int, float, and string fields.  Returns
    [None] on anything else (nesting, malformed input, trailing
    garbage).  Numbers with a ['.'], ['e'] or ['E'] parse as [Float],
    others as [Int]. *)

val mem_int : (string * value) list -> string -> int option

val mem_string : (string * value) list -> string -> string option

(** {1 Full (nested) parsing}

    [parse_obj] above deliberately rejects nesting — the event stream is
    flat and we want that checked.  Bench result files and metric
    snapshots are nested, so they get a proper recursive parser.  All
    numbers come back as floats. *)

type tree =
  | TNull
  | TBool of bool
  | TNum of float
  | TStr of string
  | TArr of tree list
  | TObj of (string * tree) list

val parse_tree : string -> tree option
(** Parse a complete JSON document (any nesting, bool/null included).
    Returns [None] on malformed input or trailing garbage. *)

val tree_mem : tree -> string -> tree option
(** Field lookup on a [TObj]; [None] for other constructors. *)

val tree_num : tree -> string -> float option

val tree_str : tree -> string -> string option
