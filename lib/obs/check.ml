type invariant =
  | Schema
  | Clock
  | Io_pair
  | Queue_depth
  | Frames
  | Heap
  | Vocab
  | Retry_bounded
  | Restart_bounded
  | No_lost_job
  | Shard_restart_bounded
  | No_lost_shard_events
  | Watchdog_paired
  | Watchdog_bounded

let all_invariants =
  [ Schema; Clock; Io_pair; Queue_depth; Frames; Heap; Vocab; Retry_bounded;
    Restart_bounded; No_lost_job; Shard_restart_bounded; No_lost_shard_events;
    Watchdog_paired; Watchdog_bounded ]

(* Sanity caps for the bounded-recovery invariants.  No engine config in
   this repo goes anywhere near them; a trace that does is runaway
   retry/restart machinery, which is exactly what they exist to catch. *)
let retry_cap = 64

let restart_cap = 16

let invariant_id = function
  | Schema -> "schema"
  | Clock -> "clock"
  | Io_pair -> "io-pair"
  | Queue_depth -> "queue-depth"
  | Frames -> "frames"
  | Heap -> "heap"
  | Vocab -> "vocab"
  | Retry_bounded -> "retry-bounded"
  | Restart_bounded -> "restart-bounded"
  | No_lost_job -> "no-lost-job"
  | Shard_restart_bounded -> "shard-restart-bounded"
  | No_lost_shard_events -> "no-lost-shard-events"
  | Watchdog_paired -> "watchdog-paired"
  | Watchdog_bounded -> "watchdog-bounded"

let invariant_of_id s =
  List.find_opt (fun i -> invariant_id i = s) all_invariants

let invariant_doc = function
  | Schema ->
    "every line is a well-formed event object with sane fields (known event \
     name, non-negative ids and timestamps, positive sizes, increasing run ids)"
  | Clock ->
    "within a run segment, the timestamps of engine events are monotone \
     non-decreasing (io_* events are exempt: a device stamps them with planned \
     service times, which may interleave out of order)"
  | Io_pair ->
    "every io_start is answered by exactly one io_done or io_error with the \
     same request id, page and kind; io_retry refers to a request that is in \
     flight; nothing is left in flight at a run boundary"
  | Queue_depth ->
    "the number of in-flight device requests (io_start minus io_done, in \
     stream order) never goes negative"
  | Frames ->
    "frame-count conservation: a fault fetches only an absent page, an \
     eviction or writeback names a resident one, and a cold_fault marks \
     exactly the first fetch of its page in the run"
  | Heap ->
    "words conservation: within a run, the running sum of freed words never \
     exceeds the words allocated so far"
  | Vocab ->
    "each run speaks one engine's event vocabulary (paging, allocator or \
     segmentation) — kinds from different engines never mix in a segment"
  | Retry_bounded ->
    "retries are bounded and well-formed: io_retry attempts per request count \
     1, 2, 3, ... with no gaps, never exceed 64, and an io_error reports at \
     least as many attempts as the retries it follows"
  | Restart_bounded ->
    "job restarts are bounded: job_abort restart counts per job count up by \
     one from 1, never exceed 16, and abort only a running job"
  | No_lost_job ->
    "no job is lost: job_start/job_stop pair exactly per run, a shed job is \
     re-admitted before it runs again or stops, and nothing is left running \
     or shed at a run boundary"
  | Shard_restart_bounded ->
    "shard restarts are bounded and well-formed: shard_crash attempts per \
     shard count 1, 2, 3, ... with no gaps and never exceed 16, and every \
     shard_restart answers a crash already seen (restart n follows crash n)"
  | No_lost_shard_events ->
    "no shard events are lost: per shard, shard_checkpoint (progress, events) \
     pairs are monotone non-decreasing — a recovery never rolls a shard's \
     durable progress or emitted-event count backwards"
  | Watchdog_paired ->
    "watchdog episodes pair up: per rule, watchdog_fire only when the rule is \
     not already firing and watchdog_clear only answers an open fire (an \
     episode still open at a run boundary is fine — the condition may simply \
     persist to the end)"
  | Watchdog_bounded ->
    "watchdog counts are sane: snapshot counts are positive, and a clear \
     reports at least as many violating snapshots as its fire did"

type violation = { line : int; invariant : invariant; message : string }

type report = {
  events : int;
  runs : int;
  counts : (invariant * int) list;
  violations : violation list;
}

let ok r = r.counts = []

(* The event vocabularies engines actually speak.  [run_start] is the
   segment boundary itself and belongs to none. *)
let profiles =
  [
    ( "paging",
      [ "fault"; "cold_fault"; "eviction"; "writeback"; "tlb_hit"; "tlb_miss";
        "job_start"; "job_stop"; "io_start"; "io_done"; "io_retry"; "io_error";
        "job_abort"; "load_shed"; "load_admit" ] );
    ("allocator", [ "alloc"; "free"; "split"; "coalesce"; "compaction_move" ]);
    ( "segmentation",
      [ "segment_swap"; "compaction_move"; "job_start"; "job_stop"; "io_start";
        "io_done"; "io_retry"; "io_error" ] );
    ("supervision", [ "shard_crash"; "shard_restart"; "shard_checkpoint" ]);
  ]

(* Mutable per-run state, reset at every run_start. *)
type run_state = {
  mutable prev_t : int option;  (* last engine (non-io) timestamp *)
  opens : (int, int * int * Event.io) Hashtbl.t;  (* req -> line, page, kind *)
  mutable depth : int;  (* io_start minus io_done/io_error, in stream order *)
  resident : (int, unit) Hashtbl.t;
  fault_count : (int, int) Hashtbl.t;
  mutable balance : int;  (* allocated minus freed words *)
  mutable kinds : string list;  (* distinct kind names, first-seen order *)
  retries : (int, int) Hashtbl.t;  (* req -> highest io_retry attempt seen *)
  jobs : (int, [ `Running | `Shed ]) Hashtbl.t;  (* started, unstopped jobs *)
  restarts : (int, int) Hashtbl.t;  (* job -> highest job_abort restart seen *)
  shard_crashes : (int, int) Hashtbl.t;  (* shard -> highest crash attempt *)
  shard_restarts : (int, int) Hashtbl.t;  (* shard -> highest restart attempt *)
  shard_progress : (int, int * int) Hashtbl.t;  (* shard -> progress, events *)
  watchdogs : (string, int) Hashtbl.t;  (* open fires: rule -> snapshots at fire *)
}

let fresh_run () =
  {
    prev_t = None;
    opens = Hashtbl.create 16;
    depth = 0;
    resident = Hashtbl.create 64;
    fault_count = Hashtbl.create 64;
    balance = 0;
    kinds = [];
    retries = Hashtbl.create 16;
    jobs = Hashtbl.create 16;
    restarts = Hashtbl.create 16;
    shard_crashes = Hashtbl.create 8;
    shard_restarts = Hashtbl.create 8;
    shard_progress = Hashtbl.create 8;
    watchdogs = Hashtbl.create 8;
  }

type checker = {
  limit : int;
  mutable events : int;
  mutable runs : int;
  mutable last_run_id : int option;
  mutable kept : violation list;  (* newest first, capped at [limit] *)
  tally : (invariant, int) Hashtbl.t;
  mutable run : run_state;
}

let create ?(limit = 50) () =
  {
    limit;
    events = 0;
    runs = 1;
    last_run_id = None;
    kept = [];
    tally = Hashtbl.create 8;
    run = fresh_run ();
  }

let report_violation c ~line invariant fmt =
  Printf.ksprintf
    (fun message ->
      let n = match Hashtbl.find_opt c.tally invariant with Some n -> n | None -> 0 in
      Hashtbl.replace c.tally invariant (n + 1);
      if List.length c.kept < c.limit then
        c.kept <- { line; invariant; message } :: c.kept)
    fmt

(* Close out the current segment: dangling requests and the vocabulary
   test only make sense once the segment's events have all been seen. *)
let finish_run c ~line =
  (* lint: allow L3 — diagnostics are sorted by request id below *)
  let dangling = Hashtbl.fold (fun req (l, _, _) acc -> (req, l) :: acc) c.run.opens [] in
  List.iter
    (fun (req, start_line) ->
      report_violation c ~line Io_pair
        "request %d (io_start at line %d) never completed" req start_line)
    (List.sort compare dangling);
  (* lint: allow L3 — diagnostics are sorted by job id below *)
  let live = Hashtbl.fold (fun job state acc -> (job, state) :: acc) c.run.jobs [] in
  List.iter
    (fun (job, state) ->
      report_violation c ~line No_lost_job "job %d left %s at end of run" job
        (match state with `Running -> "running" | `Shed -> "shed"))
    (List.sort compare live);
  (match c.run.kinds with
   | [] -> ()
   | kinds ->
     let fits (_, profile) = List.for_all (fun k -> List.mem k profile) kinds in
     if not (List.exists fits profiles) then
       report_violation c ~line Vocab
         "run mixes event vocabularies: {%s} fits no engine profile (%s)"
         (String.concat ", " (List.sort compare kinds))
         (String.concat ", " (List.map fst profiles)));
  c.run <- fresh_run ()

let non_negative c ~line fields =
  List.iter
    (fun (name, v) ->
      if v < 0 then
        report_violation c ~line Schema "field %S is negative (%d)" name v)
    fields

let positive c ~line fields =
  List.iter
    (fun (name, v) ->
      if v < 1 then
        report_violation c ~line Schema "field %S must be positive (got %d)" name v)
    fields

let check_clock c ~line t_us =
  (match c.run.prev_t with
   | Some prev when t_us < prev ->
     report_violation c ~line Clock "clock went backwards: %d after %d" t_us prev
   | Some _ | None -> ());
  c.run.prev_t <- Some t_us

let feed c ~line (ev : Event.t) =
  c.events <- c.events + 1;
  let r = c.run in
  let name = Event.kind_name ev.kind in
  (match ev.kind with
   | Event.Run_start { run; _ } ->
     finish_run c ~line;
     c.runs <- c.runs + 1;
     non_negative c ~line [ ("run", run) ];
     (match c.last_run_id with
      | Some prev when run <= prev ->
        report_violation c ~line Schema "run id %d not above previous run %d" run prev
      | Some _ | None -> ());
     c.last_run_id <- Some run
   | Event.Io_start { req; page; io } ->
     non_negative c ~line [ ("req", req); ("page", page) ];
     r.depth <- r.depth + 1;
     (match Hashtbl.find_opt r.opens req with
      | Some (l, _, _) ->
        report_violation c ~line Io_pair
          "second io_start for request %d (already open since line %d)" req l
      | None -> Hashtbl.replace r.opens req (line, page, io));
     ignore ev.t_us
   | Event.Io_done { req; page; io } ->
     non_negative c ~line [ ("req", req); ("page", page) ];
     r.depth <- r.depth - 1;
     if r.depth < 0 then
       report_violation c ~line Queue_depth
         "in-flight request count went negative (io_done for request %d)" req;
     (match Hashtbl.find_opt r.opens req with
      | None ->
        report_violation c ~line Io_pair "io_done for request %d never started" req
      | Some (start_line, start_page, start_io) ->
        Hashtbl.remove r.opens req;
        if start_page <> page then
          report_violation c ~line Io_pair
            "request %d done with page %d but started with page %d (line %d)" req
            page start_page start_line;
        if start_io <> io then
          report_violation c ~line Io_pair
            "request %d done as %s but started as %s (line %d)" req
            (Event.io_name io) (Event.io_name start_io) start_line);
     Hashtbl.remove r.retries req
   | Event.Io_error { req; page; io; attempts } ->
     non_negative c ~line [ ("req", req); ("page", page) ];
     positive c ~line [ ("attempts", attempts) ];
     r.depth <- r.depth - 1;
     if r.depth < 0 then
       report_violation c ~line Queue_depth
         "in-flight request count went negative (io_error for request %d)" req;
     (match Hashtbl.find_opt r.opens req with
      | None ->
        report_violation c ~line Io_pair "io_error for request %d never started" req
      | Some (start_line, start_page, start_io) ->
        Hashtbl.remove r.opens req;
        if start_page <> page then
          report_violation c ~line Io_pair
            "request %d failed with page %d but started with page %d (line %d)" req
            page start_page start_line;
        if start_io <> io then
          report_violation c ~line Io_pair
            "request %d failed as %s but started as %s (line %d)" req
            (Event.io_name io) (Event.io_name start_io) start_line);
     (match Hashtbl.find_opt r.retries req with
      | Some seen when attempts < seen ->
        report_violation c ~line Retry_bounded
          "io_error for request %d reports %d attempts, fewer than the %d \
           retries already seen"
          req attempts seen
      | Some _ | None -> ());
     Hashtbl.remove r.retries req
   | Event.Io_retry { req; attempt } ->
     non_negative c ~line [ ("req", req) ];
     positive c ~line [ ("attempt", attempt) ];
     if not (Hashtbl.mem r.opens req) then
       report_violation c ~line Io_pair "io_retry for request %d not in flight" req;
     let prev = match Hashtbl.find_opt r.retries req with Some n -> n | None -> 0 in
     if attempt <> prev + 1 then
       report_violation c ~line Retry_bounded
         "io_retry attempt %d for request %d out of sequence (previous was %d)"
         attempt req prev;
     if attempt > retry_cap then
       report_violation c ~line Retry_bounded
         "request %d retried %d times, above the sanity cap of %d" req attempt
         retry_cap;
     Hashtbl.replace r.retries req (max attempt (prev + 1))
   | Event.Fault { page } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("page", page) ];
     if Hashtbl.mem r.resident page then
       report_violation c ~line Frames "fault fetches page %d, which is resident" page;
     Hashtbl.replace r.resident page ();
     let n = match Hashtbl.find_opt r.fault_count page with Some n -> n | None -> 0 in
     Hashtbl.replace r.fault_count page (n + 1)
   | Event.Cold_fault { page } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("page", page) ];
     if not (Hashtbl.mem r.resident page) then
       report_violation c ~line Frames "cold_fault for absent page %d" page
     else begin
       match Hashtbl.find_opt r.fault_count page with
       | Some 1 -> ()
       | Some n ->
         report_violation c ~line Frames
           "cold_fault for page %d, already fetched %d times this run" page (n - 1)
       | None -> report_violation c ~line Frames "cold_fault for unfetched page %d" page
     end
   | Event.Eviction { page } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("page", page) ];
     if not (Hashtbl.mem r.resident page) then
       report_violation c ~line Frames "eviction of non-resident page %d" page
     else Hashtbl.remove r.resident page
   | Event.Writeback { page } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("page", page) ];
     if not (Hashtbl.mem r.resident page) then
       report_violation c ~line Frames "writeback of non-resident page %d" page
   | Event.Tlb_hit { key } | Event.Tlb_miss { key } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("key", key) ]
   | Event.Alloc { addr; size } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("addr", addr) ];
     positive c ~line [ ("size", size) ];
     r.balance <- r.balance + size
   | Event.Free { addr; size } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("addr", addr) ];
     positive c ~line [ ("size", size) ];
     r.balance <- r.balance - size;
     if r.balance < 0 then
       report_violation c ~line Heap
         "freed words exceed allocated words by %d after free at %d" (-r.balance)
         addr
   | Event.Split { addr; size; remainder } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("addr", addr); ("remainder", remainder) ];
     positive c ~line [ ("size", size) ]
   | Event.Coalesce { addr; size } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("addr", addr) ];
     positive c ~line [ ("size", size) ]
   | Event.Compaction_move { src; dst; len } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("src", src); ("dst", dst) ];
     positive c ~line [ ("len", len) ]
   | Event.Segment_swap { segment; words; direction = _ } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("segment", segment) ];
     positive c ~line [ ("words", words) ]
   | Event.Job_start { job } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("job", job) ];
     if Hashtbl.mem r.jobs job then
       report_violation c ~line No_lost_job
         "job %d started again while still live" job
     else Hashtbl.replace r.jobs job `Running
   | Event.Job_stop { job } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("job", job) ];
     (match Hashtbl.find_opt r.jobs job with
      | Some `Running -> Hashtbl.remove r.jobs job
      | Some `Shed ->
        report_violation c ~line No_lost_job
          "job %d stopped while shed (never re-admitted)" job;
        Hashtbl.remove r.jobs job
      | None ->
        report_violation c ~line No_lost_job "job %d stopped but never started" job)
   | Event.Job_abort { job; restarts } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("job", job) ];
     positive c ~line [ ("restarts", restarts) ];
     (match Hashtbl.find_opt r.jobs job with
      | Some `Running -> ()
      | Some `Shed ->
        report_violation c ~line Restart_bounded "job %d aborted while shed" job
      | None ->
        report_violation c ~line Restart_bounded
          "job %d aborted but never started" job);
     let prev = match Hashtbl.find_opt r.restarts job with Some n -> n | None -> 0 in
     if restarts <> prev + 1 then
       report_violation c ~line Restart_bounded
         "job_abort restart count %d for job %d out of sequence (previous was %d)"
         restarts job prev;
     if restarts > restart_cap then
       report_violation c ~line Restart_bounded
         "job %d restarted %d times, above the sanity cap of %d" job restarts
         restart_cap;
     Hashtbl.replace r.restarts job (max restarts (prev + 1))
   | Event.Load_shed { job } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("job", job) ];
     (match Hashtbl.find_opt r.jobs job with
      | Some `Running -> Hashtbl.replace r.jobs job `Shed
      | Some `Shed ->
        report_violation c ~line No_lost_job "job %d shed twice" job
      | None ->
        report_violation c ~line No_lost_job
          "load_shed for job %d, which never started" job)
   | Event.Load_admit { job } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("job", job) ];
     (match Hashtbl.find_opt r.jobs job with
      | Some `Shed -> Hashtbl.replace r.jobs job `Running
      | Some `Running ->
        report_violation c ~line No_lost_job
          "load_admit for job %d, which is not shed" job
      | None ->
        report_violation c ~line No_lost_job
          "load_admit for job %d, which never started" job)
   | Event.Shard_crash { shard; attempt } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("shard", shard) ];
     positive c ~line [ ("attempt", attempt) ];
     let prev =
       match Hashtbl.find_opt r.shard_crashes shard with Some n -> n | None -> 0
     in
     if attempt <> prev + 1 then
       report_violation c ~line Shard_restart_bounded
         "shard_crash attempt %d for shard %d out of sequence (previous was %d)"
         attempt shard prev;
     if attempt > restart_cap then
       report_violation c ~line Shard_restart_bounded
         "shard %d crashed %d times, above the sanity cap of %d" shard attempt
         restart_cap;
     Hashtbl.replace r.shard_crashes shard (max attempt (prev + 1))
   | Event.Shard_restart { shard; attempt } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line [ ("shard", shard) ];
     positive c ~line [ ("attempt", attempt) ];
     let crashes =
       match Hashtbl.find_opt r.shard_crashes shard with Some n -> n | None -> 0
     in
     let prev =
       match Hashtbl.find_opt r.shard_restarts shard with Some n -> n | None -> 0
     in
     if attempt <> prev + 1 then
       report_violation c ~line Shard_restart_bounded
         "shard_restart attempt %d for shard %d out of sequence (previous was %d)"
         attempt shard prev;
     if attempt > crashes then
       report_violation c ~line Shard_restart_bounded
         "shard_restart %d for shard %d answers no crash (crashes seen: %d)"
         attempt shard crashes;
     Hashtbl.replace r.shard_restarts shard (max attempt (prev + 1))
   | Event.Shard_checkpoint { shard; progress; events } ->
     check_clock c ~line ev.t_us;
     non_negative c ~line
       [ ("shard", shard); ("progress", progress); ("events", events) ];
     (match Hashtbl.find_opt r.shard_progress shard with
      | Some (p, e) when progress < p || events < e ->
        report_violation c ~line No_lost_shard_events
          "shard %d checkpoint went backwards: progress %d after %d, events %d \
           after %d"
          shard progress p events e
      | Some _ | None -> ());
     let p0, e0 =
       match Hashtbl.find_opt r.shard_progress shard with
       | Some (p, e) -> (p, e)
       | None -> (0, 0)
     in
     Hashtbl.replace r.shard_progress shard (max progress p0, max events e0)
   | Event.Watchdog_fire { rule; snapshots } ->
     check_clock c ~line ev.t_us;
     positive c ~line [ ("snapshots", snapshots) ];
     (match Hashtbl.find_opt r.watchdogs rule with
      | Some _ ->
        report_violation c ~line Watchdog_paired
          "watchdog rule %S fired again while already firing" rule
      | None -> ());
     Hashtbl.replace r.watchdogs rule snapshots
   | Event.Watchdog_clear { rule; snapshots } ->
     check_clock c ~line ev.t_us;
     positive c ~line [ ("snapshots", snapshots) ];
     (match Hashtbl.find_opt r.watchdogs rule with
      | None ->
        report_violation c ~line Watchdog_paired
          "watchdog_clear for rule %S answers no open fire" rule
      | Some fired ->
        if snapshots < fired then
          report_violation c ~line Watchdog_bounded
            "watchdog rule %S cleared after %d snapshot(s), fewer than the %d \
             reported at fire"
            rule snapshots fired;
        Hashtbl.remove r.watchdogs rule));
  (match ev.kind with
   (* Watchdog events are an observer overlay, not part of any engine's
      vocabulary — like run_start they are excluded from the profile
      test. *)
   | Event.Run_start _ | Event.Watchdog_fire _ | Event.Watchdog_clear _ -> ()
   | _ -> if not (List.mem name r.kinds) then r.kinds <- name :: r.kinds)

let finish c ~line =
  finish_run c ~line;
  let counts =
    List.filter_map
      (fun i ->
        match Hashtbl.find_opt c.tally i with
        | Some n when n > 0 -> Some (i, n)
        | Some _ | None -> None)
      all_invariants
  in
  {
    events = c.events;
    runs = c.runs;
    counts;
    violations = List.rev c.kept;
  }

let check_events ?limit events =
  let c = create ?limit () in
  List.iteri (fun i ev -> feed c ~line:(i + 1) ev) events;
  finish c ~line:(List.length events)

let feed_text c ~line trimmed =
  match Event.of_json trimmed with
  | Some ev -> feed c ~line ev
  | None ->
    report_violation c ~line Schema "not an event: %s"
      (if String.length trimmed > 60 then String.sub trimmed 0 60 ^ "..."
       else trimmed)

let check_lines ?limit lines =
  let c = create ?limit () in
  let lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then feed_text c ~line:!lineno trimmed)
    lines;
  finish c ~line:!lineno

let check_jsonl ?limit filename =
  match open_in filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let c = create ?limit () in
    let lineno = ref 0 in
    (try
       let rec loop () =
         match input_line ic with
         | line ->
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" && trimmed.[0] <> '#' then feed_text c ~line:!lineno trimmed;
           loop ()
         | exception End_of_file -> ()
       in
       loop ();
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    Ok (finish c ~line:!lineno)

let to_json (r : report) =
  Json.obj
    [
      ("events", Json.Int r.events);
      ("runs", Json.Int r.runs);
      ("ok", Json.Raw (if ok r then "true" else "false"));
      ( "counts",
        Json.Raw
          (Json.obj
             (List.map (fun (i, n) -> (invariant_id i, Json.Int n)) r.counts)) );
      ( "violations",
        Json.Raw
          (Json.array
             (List.map
                (fun v ->
                  Json.Raw
                    (Json.obj
                       [
                         ("line", Json.Int v.line);
                         ("invariant", Json.String (invariant_id v.invariant));
                         ("message", Json.String v.message);
                       ]))
                r.violations)) );
    ]

let print (r : report) =
  Printf.printf "%d events in %d run segment(s)\n" r.events r.runs;
  if ok r then print_endline "all invariants hold"
  else begin
    print_endline "invariant violations:";
    List.iter
      (fun (i, n) -> Printf.printf "  %-12s %d\n" (invariant_id i) n)
      r.counts;
    List.iter
      (fun v ->
        Printf.printf "  line %d [%s]: %s\n" v.line (invariant_id v.invariant)
          v.message)
      r.violations;
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts in
    let shown = List.length r.violations in
    if total > shown then Printf.printf "  (... %d more not shown)\n" (total - shown)
  end
