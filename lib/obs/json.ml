type value =
  | Int of int
  | Float of float
  | String of string
  | Raw of string

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest %g form that still round-trips; %.17g always does. *)
let float_repr f =
  let rec shortest prec =
    if prec > 17 then Printf.sprintf "%.17g" f
    else
      let s = Printf.sprintf "%.*g" prec f in
      if float_of_string s = f then s else shortest (prec + 1)
  in
  shortest 12

let add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | Raw s -> Buffer.add_string buf s

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let array values =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      add_value buf v)
    values;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* --- parsing --- *)

exception Bad

let parse_obj s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then raise Bad;
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           if code > 0xff then raise Bad;  (* we only ever emit control chars *)
           Buffer.add_char buf (Char.chr code);
           pos := !pos + 4
         | _ -> raise Bad);
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let numeric = function
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with Some f -> Float f | None -> raise Bad
    else
      match int_of_string_opt tok with Some i -> Int i | None -> raise Bad
  in
  let parse_value () =
    match peek () with
    | '"' -> String (parse_string ())
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> raise Bad  (* flat objects only: no nesting, no bool/null *)
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = '}' then advance ()
    else begin
      let rec loop () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); loop ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      loop ()
    end;
    skip_ws ();
    if !pos <> n then raise Bad;
    Some (List.rev !fields)
  with Bad | Invalid_argument _ | Failure _ -> None

let mem_int fields k =
  match List.assoc_opt k fields with Some (Int n) -> Some n | _ -> None

let mem_string fields k =
  match List.assoc_opt k fields with Some (String s) -> Some s | _ -> None

(* --- full (nested) parsing --- *)

type tree =
  | TNull
  | TBool of bool
  | TNum of float
  | TStr of string
  | TArr of tree list
  | TObj of (string * tree) list

let parse_tree s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let literal word =
    let l = String.length word in
    if !pos + l > n || String.sub s !pos l <> word then raise Bad;
    pos := !pos + l
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then raise Bad;
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           if code > 0xff then raise Bad;
           Buffer.add_char buf (Char.chr code);
           pos := !pos + 4
         | _ -> raise Bad);
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with Some f -> TNum f | None -> raise Bad
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> TStr (parse_string ())
    | '-' | '0' .. '9' -> parse_number ()
    | 't' -> literal "true"; TBool true
    | 'f' -> literal "false"; TBool false
    | 'n' -> literal "null"; TNull
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); TArr [])
      else begin
        let items = ref [] in
        let rec loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); loop ()
          | ']' -> advance ()
          | _ -> raise Bad
        in
        loop ();
        TArr (List.rev !items)
      end
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); TObj [])
      else begin
        let fields = ref [] in
        let rec loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); loop ()
          | '}' -> advance ()
          | _ -> raise Bad
        in
        loop ();
        TObj (List.rev !fields)
      end
    | _ -> raise Bad
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Bad;
    Some v
  with Bad | Invalid_argument _ | Failure _ -> None

let tree_mem obj k =
  match obj with TObj fields -> List.assoc_opt k fields | _ -> None

let tree_num t k =
  match tree_mem t k with Some (TNum f) -> Some f | _ -> None

let tree_str t k =
  match tree_mem t k with Some (TStr s) -> Some s | _ -> None
