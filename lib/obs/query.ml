type entry = { line : int; run : int; ev : Event.t }

type t = entry list

let tag numbered_events =
  let _, entries =
    List.fold_left
      (fun (prev_run, acc) (line, (ev : Event.t)) ->
        let run =
          match ev.kind with Event.Run_start { run; _ } -> run | _ -> prev_run
        in
        (run, { line; run; ev } :: acc))
      (0, []) numbered_events
  in
  List.rev entries

let of_events events = tag (List.mapi (fun i ev -> (i + 1, ev)) events)

let load_channel ~label ic =
  let lineno = ref 0 in
  let events = ref [] in
  let bad = ref [] in
  let bad_count = ref 0 in
  let rec loop () =
    match input_line ic with
    | line ->
      incr lineno;
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then begin
        match Event.of_json trimmed with
        | Some ev -> events := (!lineno, ev) :: !events
        | None ->
          incr bad_count;
          if !bad_count <= 5 then
            bad :=
              Printf.sprintf "line %d: not an event: %S" !lineno
                (if String.length trimmed > 60 then
                   String.sub trimmed 0 60 ^ "..."
                 else trimmed)
              :: !bad
      end;
      loop ()
    | exception End_of_file -> ()
  in
  loop ();
  if !bad_count > 0 then
    Error
      (Printf.sprintf "%s: %d malformed line(s)\n  %s%s" label !bad_count
         (String.concat "\n  " (List.rev !bad))
         (if !bad_count > 5 then
            Printf.sprintf "\n  (... %d more not shown)" (!bad_count - 5)
          else ""))
  else if !events = [] then Error (Printf.sprintf "%s: contains no events" label)
  else Ok (tag (List.rev !events))

let load filename =
  (* "-" reads the trace from stdin, so checks and queries can sit at
     the end of a pipe without a temp file.  Stdin is not ours to
     close. *)
  if filename = "-" then load_channel ~label:"<stdin>" stdin
  else
    match open_in filename with
    | exception Sys_error msg -> Error msg
    | ic ->
      let result =
        try load_channel ~label:filename ic
        with e ->
          close_in_noerr ic;
          raise e
      in
      close_in ic;
      result

let length t = List.length t

let entries t = t

let events t = List.map (fun e -> e.ev) t

(* --- filtering --- *)

let filter ?kinds ?run ?since_us ?until_us t =
  let keep e =
    (match kinds with
     | None -> true
     | Some ks -> List.mem (Event.kind_name e.ev.Event.kind) ks)
    && (match run with None -> true | Some r -> e.run = r)
    && (match since_us with None -> true | Some s -> e.ev.Event.t_us >= s)
    && (match until_us with None -> true | Some u -> e.ev.Event.t_us <= u)
  in
  List.filter keep t

(* --- grouping --- *)

type group_key = By_kind | By_run | By_field of string

type agg = Count | Sum of string | Mean of string

let field_value fields name =
  match List.assoc_opt name fields with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | Some (Json.String _) | Some (Json.Raw _) | None -> None

let field_label fields name =
  match List.assoc_opt name fields with
  | Some (Json.Int n) -> Some (string_of_int n)
  | Some (Json.Float f) -> Some (string_of_float f)
  | Some (Json.String s) -> Some s
  | Some (Json.Raw _) | None -> None

let group t ~key ~agg =
  let label_of e =
    match key with
    | By_kind -> Some (Event.kind_name e.ev.Event.kind)
    | By_run -> Some (string_of_int e.run)
    | By_field f -> field_label (Event.fields_of_kind e.ev.Event.kind) f
  in
  let table : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match label_of e with
      | None -> ()
      | Some label ->
        let contribution =
          match agg with
          | Count -> Some 1.
          | Sum f | Mean f -> field_value (Event.fields_of_kind e.ev.Event.kind) f
        in
        (match contribution with
         | None -> ()
         | Some v ->
           let sum, n =
             match Hashtbl.find_opt table label with
             | Some cell -> cell
             | None ->
               let cell = (ref 0., ref 0) in
               Hashtbl.replace table label cell;
               cell
           in
           sum := !sum +. v;
           incr n))
    t;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (* lint: allow L3 — the bindings are sorted by the enclosing List.sort *)
    (Hashtbl.fold
       (fun label (sum, n) acc ->
         match agg with
         | Count | Sum _ -> (label, !sum) :: acc
         | Mean _ ->
           if !n = 0 then acc else (label, !sum /. float_of_int !n) :: acc)
       table [])

let top n rows =
  let sorted =
    List.sort
      (fun (la, va) (lb, vb) ->
        match compare vb va with 0 -> compare la lb | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < n) sorted

(* --- pairing --- *)

type pair_row = {
  p_run : int;
  req : int;
  io : string;
  start_us : int;
  finish_us : int;
  latency_us : int;
}

type pairing = {
  rows : pair_row list;
  unmatched_starts : int;
  unmatched_dones : int;
}

let req_of (ev : Event.t) =
  match List.assoc_opt "req" (Event.fields_of_kind ev.kind) with
  | Some (Json.Int r) -> Some r
  | _ -> None

let io_of (ev : Event.t) =
  match List.assoc_opt "io" (Event.fields_of_kind ev.kind) with
  | Some (Json.String s) -> s
  | _ -> ""

let pair t ~start_kind ~done_kind =
  if not (List.mem start_kind Event.all_kind_names) then
    Error (Printf.sprintf "unknown event kind %S" start_kind)
  else if not (List.mem done_kind Event.all_kind_names) then
    Error (Printf.sprintf "unknown event kind %S" done_kind)
  else begin
    let opens : (int, entry) Hashtbl.t = Hashtbl.create 64 in
    let rows = ref [] in
    let unmatched_starts = ref 0 in
    let unmatched_dones = ref 0 in
    let missing_req = ref None in
    let flush_opens () =
      unmatched_starts := !unmatched_starts + Hashtbl.length opens;
      Hashtbl.reset opens
    in
    List.iter
      (fun e ->
        let name = Event.kind_name e.ev.Event.kind in
        if name = "run_start" then flush_opens ()
        else if name = start_kind || name = done_kind then begin
          match req_of e.ev with
          | None -> if !missing_req = None then missing_req := Some name
          | Some req ->
            (* An event kind may be both start and done only if distinct;
               match start first so self-pairing is impossible. *)
            if name = start_kind then begin
              (match Hashtbl.find_opt opens req with
               | Some _ -> incr unmatched_starts  (* duplicate start *)
               | None -> ());
              Hashtbl.replace opens req e
            end
            else begin
              match Hashtbl.find_opt opens req with
              | None -> incr unmatched_dones
              | Some s ->
                Hashtbl.remove opens req;
                rows :=
                  {
                    p_run = s.run;
                    req;
                    io = io_of s.ev;
                    start_us = s.ev.Event.t_us;
                    finish_us = e.ev.Event.t_us;
                    latency_us = e.ev.Event.t_us - s.ev.Event.t_us;
                  }
                  :: !rows
            end
        end)
      t;
    flush_opens ();
    match !missing_req with
    | Some name ->
      Error (Printf.sprintf "event kind %S carries no \"req\" field" name)
    | None ->
      Ok
        {
          rows = List.rev !rows;
          unmatched_starts = !unmatched_starts;
          unmatched_dones = !unmatched_dones;
        }
  end

type latency = {
  samples : int;
  min_us : int;
  max_us : int;
  mean_us : float;
  p50_us : int;
  p90_us : int;
  p99_us : int;
  hist : Metrics.Histogram.t;
}

let latency_of p =
  match p.rows with
  | [] -> None
  | rows ->
    let hist = Metrics.Histogram.log2 ~max_exponent:30 in
    let stats = Metrics.Stats.create () in
    List.iter
      (fun r ->
        Metrics.Histogram.add hist (max 0 r.latency_us);
        Metrics.Stats.add stats (float_of_int r.latency_us))
      rows;
    Some
      {
        samples = Metrics.Histogram.count hist;
        min_us = int_of_float (Metrics.Stats.min stats);
        max_us = int_of_float (Metrics.Stats.max stats);
        mean_us = Metrics.Stats.mean stats;
        p50_us = Metrics.Histogram.percentile hist 0.50;
        p90_us = Metrics.Histogram.percentile hist 0.90;
        p99_us = Metrics.Histogram.percentile hist 0.99;
        hist;
      }

(* Exact percentile: the ceil(p*n)-th smallest sample itself, not the
   lower bound of its power-of-two bucket — the same rank rule as
   [Metrics.Histogram.percentile], minus the bucket rounding (which can
   be off by up to 2x at the tail). *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    sorted.(min (rank - 1) (n - 1))
  end

let exact_latency_of p =
  match latency_of p with
  | None -> None
  | Some l ->
    let sorted = Array.of_list (List.map (fun r -> max 0 r.latency_us) p.rows) in
    Array.sort compare sorted;
    Some
      {
        l with
        p50_us = exact_percentile sorted 0.50;
        p90_us = exact_percentile sorted 0.90;
        p99_us = exact_percentile sorted 0.99;
      }

(* --- bridges --- *)

let to_summary t = Summary.of_events (events t)

let metrics_sink reg =
  let opens : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let feed (ev : Event.t) =
    Registry.incr (Registry.counter reg ("ev." ^ Event.kind_name ev.kind));
    Registry.set (Registry.gauge reg "t_last_us") (float_of_int ev.t_us);
    match ev.kind with
    | Event.Run_start _ -> Hashtbl.reset opens
    | Event.Io_start { req; _ } -> Hashtbl.replace opens req ev.t_us
    | Event.Io_done { req; _ } ->
      (match Hashtbl.find_opt opens req with
       | None -> ()
       | Some start ->
         Hashtbl.remove opens req;
         let lat = max 0 (ev.t_us - start) in
         Metrics.Histogram.add
           (Registry.histogram reg "io_latency_us" ~default:(fun () ->
                Metrics.Histogram.log2 ~max_exponent:30))
           lat;
         Metrics.Stats.add (Registry.stats reg "io_latency_us") (float_of_int lat))
    | _ -> ()
  in
  Sink.collect feed
