type promotion =
  | Always
  | After of int
  | Never

type config = {
  fast_frames : int;
  bulk_frames : int;
  fast_us : int;
  bulk_us : int;
  fetch_us : int;
  promotion : promotion;
  device : Device.Model.t option;
}

(* Per-resident-page state at whichever level holds it. *)
type entry = { mutable last_use : int; mutable touches : int }

type t = {
  cfg : config;
  fast : (int, entry) Hashtbl.t;
  bulk : (int, entry) Hashtbl.t;
  mutable tick : int;
  mutable refs : int;
  mutable faults : int;
  mutable promotions : int;
  mutable fast_hits : int;
  mutable elapsed_us : int;
  mutable hard_failures : int;
}

let create cfg =
  assert (cfg.fast_frames >= 0 && cfg.bulk_frames > 0);
  {
    cfg;
    fast = Hashtbl.create 64;
    bulk = Hashtbl.create 64;
    tick = 0;
    refs = 0;
    faults = 0;
    promotions = 0;
    fast_hits = 0;
    elapsed_us = 0;
    hard_failures = 0;
  }

let lru_victim table =
  let best = ref None in
  (* lint: allow L3 — argmin under the total (last_use, page) order is order-independent *)
  Hashtbl.iter
    (fun page entry ->
      match !best with
      | Some (best_page, e)
        when e.last_use < entry.last_use
             || (e.last_use = entry.last_use && best_page < page) -> ()
      | Some _ | None -> best := Some (page, entry))
    table;
  match !best with
  | Some (page, _) -> page
  | None -> invalid_arg "Hierarchy: eviction from an empty level"

(* Make room in bulk core, pushing the LRU page back to the drum. *)
let ensure_bulk_room t =
  if Hashtbl.length t.bulk >= t.cfg.bulk_frames then
    Hashtbl.remove t.bulk (lru_victim t.bulk)

(* Demote fast core's LRU page into bulk core. *)
let demote t =
  let page = lru_victim t.fast in
  let entry = Hashtbl.find t.fast page in
  Hashtbl.remove t.fast page;
  ensure_bulk_room t;
  entry.touches <- 0;
  Hashtbl.replace t.bulk page entry

let promote t page entry =
  if t.cfg.fast_frames > 0 then begin
    Hashtbl.remove t.bulk page;
    if Hashtbl.length t.fast >= t.cfg.fast_frames then demote t;
    entry.touches <- 0;
    Hashtbl.replace t.fast page entry;
    t.promotions <- t.promotions + 1
  end

let should_promote t entry =
  match t.cfg.promotion with
  | Always -> true
  | After k -> entry.touches >= k
  | Never -> false

(* The hierarchy sits below the layers with a redundant copy to fall
   back on, so its recovery policy is Surface: a terminal drum failure
   leaves the page absent and is handed to the caller, who decides
   (the wall-clock cost of the failed attempts is still charged). *)
let touch_result t ~page =
  t.refs <- t.refs + 1;
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.fast page with
  | Some entry ->
    entry.last_use <- t.tick;
    entry.touches <- entry.touches + 1;
    t.fast_hits <- t.fast_hits + 1;
    t.elapsed_us <- t.elapsed_us + t.cfg.fast_us;
    Ok ()
  | None ->
    (match Hashtbl.find_opt t.bulk page with
     | Some entry ->
       entry.last_use <- t.tick;
       entry.touches <- entry.touches + 1;
       t.elapsed_us <- t.elapsed_us + t.cfg.bulk_us;
       if should_promote t entry then promote t page entry;
       Ok ()
     | None ->
       (* Drum fault: always lands in the bulk level first. *)
       t.faults <- t.faults + 1;
       let fetched =
         match t.cfg.device with
         | None ->
           t.elapsed_us <- t.elapsed_us + t.cfg.fetch_us + t.cfg.bulk_us;
           Ok ()
         | Some m ->
           (match
              Device.Model.fetch_result m ~now:t.elapsed_us
                ~kind:Device.Request.Demand ~page ~words:0
            with
            | Ok fin ->
              t.elapsed_us <- fin + t.cfg.bulk_us;
              Ok ()
            | Error f ->
              t.hard_failures <- t.hard_failures + 1;
              t.elapsed_us <- max t.elapsed_us f.at_us;
              Error (Resilience.Failure.of_device f))
       in
       (match fetched with
        | Error _ as e -> e
        | Ok () ->
          ensure_bulk_room t;
          let entry = { last_use = t.tick; touches = 1 } in
          Hashtbl.replace t.bulk page entry;
          if should_promote t entry then promote t page entry;
          Ok ()))

let touch t ~page =
  match touch_result t ~page with
  | Ok () -> ()
  (* lint: allow L4 — legacy wrapper; unreachable without a Fail-escalation device, documented to raise otherwise *)
  | Error f -> failwith (Resilience.Failure.to_string f)

let run t trace = Array.iter (fun page -> touch t ~page) trace

let refs t = t.refs

let faults t = t.faults

let promotions t = t.promotions

let fast_hits t = t.fast_hits

let hard_failures t = t.hard_failures

let elapsed_us t = t.elapsed_us

let effective_access_us t =
  if t.refs = 0 then 0. else float_of_int t.elapsed_us /. float_of_int t.refs
