(** Associative memory for recently used page locations.

    The paper's "Special Hardware Facilities (vi)": "a small associative
    memory in which recently-used segment and/or page locations are
    kept.  If it were not for such mechanisms, the cost in extra
    addressing time caused by the provision of, say, segmentation and
    artificial name contiguity, would often be unacceptable."

    This models ATLAS's direct-mapping store, the 360/67's 8+1-register
    associative array and the B8500's 44-word scratchpad: a small
    fully-associative cache of (key -> value) translations with FIFO or
    LRU replacement and hit/miss accounting.  Keys are page numbers (or
    packed segment/page keys for two-level mappings). *)

type t

type replacement = Fifo_replacement | Lru_replacement

val create : ?obs:Obs.Sink.t -> ?clock:Sim.Clock.t -> capacity:int -> replacement -> t
(** [capacity] of 0 gives an always-missing TLB (for no-TLB baselines).
    With a sink, every probe emits a [Tlb_hit]/[Tlb_miss] event stamped
    from [clock], or with the probe count when no clock is given.  (The
    {!Demand} engine also reports its TLB's probes itself, on its own
    clock, so a TLB embedded there needs no sink of its own.) *)

val capacity : t -> int

val lookup : t -> int -> int option
(** Probe for a key, recording a hit or a miss. *)

val insert : t -> key:int -> value:int -> unit
(** Install a translation, evicting per the replacement rule if full.
    No-op on a 0-capacity TLB. *)

val invalidate : t -> key:int -> unit
(** Drop one translation (on page eviction). *)

val flush : t -> unit
(** Drop everything (on address-space switch). *)

val hits : t -> int

val misses : t -> int

val hit_ratio : t -> float
(** 0. if never probed. *)
