type t = { occupants : int option array; mutable free_count : int }

let create ~frames =
  assert (frames > 0);
  { occupants = Array.make frames None; free_count = frames }

let frames t = Array.length t.occupants

let check t frame =
  if frame < 0 || frame >= Array.length t.occupants then
    invalid_arg "Frame_table: frame out of range"

let occupant t frame =
  check t frame;
  t.occupants.(frame)

let find_free t =
  let n = Array.length t.occupants in
  let rec loop i = if i >= n then None else if t.occupants.(i) = None then Some i else loop (i + 1) in
  loop 0

let free_count t = t.free_count

let assign t ~frame ~page =
  check t frame;
  (match t.occupants.(frame) with
   | Some _ -> invalid_arg "Frame_table.assign: frame occupied"
   | None -> ());
  t.occupants.(frame) <- Some page;
  t.free_count <- t.free_count - 1

let release t ~frame =
  check t frame;
  (match t.occupants.(frame) with
   | None -> invalid_arg "Frame_table.release: frame already free"
   | Some _ -> ());
  t.occupants.(frame) <- None;
  t.free_count <- t.free_count + 1
