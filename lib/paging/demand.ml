type config = {
  page_size : int;
  frames : int;
  pages : int;
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  policy : Replacement.t;
  tlb : Tlb.t option;
  compute_us_per_ref : int;
}

type recovery = Mirror | Surface

type t = {
  cfg : config;
  device : Device.Model.t option;  (* timed backing store; None = flat latency *)
  recovery : recovery;
  page_table : Page_table.t;
  frame_table : Frame_table.t;
  ready_at : int array;  (* per page: completion time of an in-flight fetch *)
  space_time : Metrics.Space_time.t;
  timeline : Metrics.Timeline.t;
  obs : Obs.Sink.t;
  tracing : bool;
  touched : Bytes.t;  (* cold-fault tracking; empty unless tracing *)
  mutable refs : int;
  mutable next_req : int;  (* request ids for flat-path io events *)
  mutable faults : int;
  mutable writebacks : int;
  mutable prefetches : int;
  mutable advice_releases : int;
  mutable mirror_fetches : int;
  mutable hard_failures : int;
}

let create ?(obs = Obs.Sink.null) ?device ?(recovery = Mirror) cfg =
  assert (cfg.page_size > 0 && cfg.frames > 0 && cfg.pages > 0);
  assert (Memstore.Level.size cfg.core >= cfg.frames * cfg.page_size);
  assert (Memstore.Level.size cfg.backing >= cfg.pages * cfg.page_size);
  let tracing = Obs.Sink.is_active obs in
  {
    cfg;
    device;
    recovery;
    page_table = Page_table.create ~pages:cfg.pages;
    frame_table = Frame_table.create ~frames:cfg.frames;
    ready_at = Array.make cfg.pages 0;
    space_time = Metrics.Space_time.create ();
    timeline = Metrics.Timeline.create ();
    obs;
    tracing;
    touched = (if tracing then Bytes.make cfg.pages '\000' else Bytes.empty);
    refs = 0;
    next_req = 0;
    faults = 0;
    writebacks = 0;
    prefetches = 0;
    advice_releases = 0;
    mirror_fetches = 0;
    hard_failures = 0;
  }

let clock t = Memstore.Level.clock t.cfg.core

let emit t kind = Obs.Sink.emit t.obs (Obs.Event.make ~t_us:(Sim.Clock.now (clock t)) kind)

(* The flat (device-less) path still performs timed transfers; give them
   io_start/io_done pairs so latency queries work on every traced run.
   The device model keeps its own request ids; an engine is flat or
   timed for its whole life, so the two counters never share a trace. *)
let emit_io_pair t ~io ~page ~finish =
  let req = t.next_req in
  t.next_req <- req + 1;
  let start = Sim.Clock.now (clock t) in
  Obs.Sink.emit t.obs (Obs.Event.make ~t_us:start (Obs.Event.Io_start { req; page; io }));
  Obs.Sink.emit t.obs (Obs.Event.make ~t_us:finish (Obs.Event.Io_done { req; page; io }))

let resident_count t = Page_table.resident_count t.page_table

let resident_words t = resident_count t * t.cfg.page_size

(* Run [f] and accrue the simulated time it consumes to the space-time
   product, with the residency held while it ran. *)
let timed t state f =
  let words = resident_words t in
  let before = Sim.Clock.now (clock t) in
  let result = f () in
  let dt = Sim.Clock.now (clock t) - before in
  Metrics.Space_time.accrue t.space_time ~words ~dt state;
  Metrics.Timeline.record t.timeline ~at:before ~dt ~words state;
  result

let candidates t =
  let unlocked =
    List.filter (fun p -> not (Page_table.locked t.page_table ~page:p))
      (Page_table.resident t.page_table)
  in
  Array.of_list unlocked

let evict_page t page =
  let frame =
    match Page_table.frame_of t.page_table page with
    | Some f -> f
    | None -> invalid_arg "Demand: evicting non-resident page"
  in
  (match t.cfg.tlb with Some tlb -> Tlb.invalidate tlb ~key:page | None -> ());
  if Page_table.modified t.page_table ~page then begin
    (* Asynchronous write-back: the program does not wait, but the
       backing device is busy, delaying any fetch queued behind it. *)
    (match t.device with
     | None ->
       let finish =
         Memstore.Level.transfer_async ~src:t.cfg.core
           ~src_off:(frame * t.cfg.page_size) ~dst:t.cfg.backing
           ~dst_off:(page * t.cfg.page_size) ~len:t.cfg.page_size
       in
       if t.tracing then emit_io_pair t ~io:Obs.Event.Writeback ~page ~finish
     | Some m ->
       Memstore.Physical.blit
         ~src:(Memstore.Level.physical t.cfg.core)
         ~src_off:(frame * t.cfg.page_size)
         ~dst:(Memstore.Level.physical t.cfg.backing)
         ~dst_off:(page * t.cfg.page_size) ~len:t.cfg.page_size;
       let (_ : int) =
         Device.Model.submit m ~now:(Sim.Clock.now (clock t))
           ~kind:Device.Request.Writeback ~page ~words:t.cfg.page_size
       in
       ());
    t.writebacks <- t.writebacks + 1;
    if t.tracing then emit t (Writeback { page })
  end;
  Page_table.evict t.page_table ~page;
  Frame_table.release t.frame_table ~frame;
  t.cfg.policy.Replacement.on_evict ~page;
  if t.tracing then emit t (Eviction { page })

let free_a_frame t =
  match Frame_table.find_free t.frame_table with
  | Some frame -> frame
  | None ->
    let pool = candidates t in
    (* lint: allow L4 — all frames locked is a documented fatal misconfiguration *)
    if Array.length pool = 0 then failwith "Demand: every frame is locked";
    let victim =
      Obs.Prof.span "demand.victim" (fun () ->
          t.cfg.policy.Replacement.choose_victim ~candidates:pool)
    in
    evict_page t victim;
    (match Frame_table.find_free t.frame_table with
     | Some frame -> frame
     | None -> assert false)

let install t ~page ~frame ~finish =
  Frame_table.assign t.frame_table ~frame ~page;
  Page_table.install t.page_table ~page ~frame;
  t.ready_at.(page) <- finish;
  t.cfg.policy.Replacement.on_load ~page

(* Start the page moving from backing store into a frame; the recorded
   ready time is when the data is usable.  With a device model the
   completion is forced now: queued traffic the policy puts ahead (an
   earlier write-back under FIFO, say) delays it, exactly the
   contention the flat path approximated with [busy_until].

   A terminal device failure (only possible under a [Fault.Fail]
   escalation policy) is handled per the engine's recovery mode:
   [Mirror] re-reads the page over a fault-immune path — the duplexed
   copy — paying the extra queueing delay but always succeeding;
   [Surface] leaves the page non-resident and hands the typed failure
   to the caller. *)
let start_fetch t ~kind ~page ~frame =
  Obs.Prof.span "demand.fetch" @@ fun () ->
  match t.device with
  | None ->
    let finish =
      Memstore.Level.transfer_async ~src:t.cfg.backing
        ~src_off:(page * t.cfg.page_size) ~dst:t.cfg.core
        ~dst_off:(frame * t.cfg.page_size) ~len:t.cfg.page_size
    in
    if t.tracing then emit_io_pair t ~io:kind ~page ~finish;
    install t ~page ~frame ~finish;
    Ok ()
  | Some m ->
    Memstore.Physical.blit
      ~src:(Memstore.Level.physical t.cfg.backing)
      ~src_off:(page * t.cfg.page_size)
      ~dst:(Memstore.Level.physical t.cfg.core)
      ~dst_off:(frame * t.cfg.page_size) ~len:t.cfg.page_size;
    (match
       Device.Model.fetch_result m ~now:(Sim.Clock.now (clock t)) ~kind ~page
         ~words:t.cfg.page_size
     with
     | Ok finish ->
       install t ~page ~frame ~finish;
       Ok ()
     | Error f ->
       (match t.recovery with
        | Mirror ->
          t.mirror_fetches <- t.mirror_fetches + 1;
          (match
             Device.Model.fetch_result ~immune:true m ~now:f.at_us ~kind ~page
               ~words:t.cfg.page_size
           with
           | Ok finish ->
             install t ~page ~frame ~finish;
             Ok ()
           | Error _ -> assert false (* immune requests never fail *))
        | Surface ->
          t.hard_failures <- t.hard_failures + 1;
          (* The program waited for the failed transfer; charge it, and
             keep later events (the retracting eviction) monotone with
             the io_error the device just emitted. *)
          Sim.Clock.advance_to (clock t) f.at_us;
          Error (Resilience.Failure.of_device f)))

let fault t page =
  Obs.Prof.span "demand.fault" @@ fun () ->
  t.faults <- t.faults + 1;
  if t.tracing then begin
    emit t (Fault { page });
    if Bytes.get t.touched page = '\000' then begin
      Bytes.set t.touched page '\001';
      emit t (Cold_fault { page })
    end
  end;
  let frame = free_a_frame t in
  match start_fetch t ~kind:Device.Request.Demand ~page ~frame with
  | Ok () -> Ok ()
  | Error f ->
    (* The fetch never landed: retract the page so the trace's
       residency stays conserved (the fault above announced it). *)
    if t.tracing then emit t (Eviction { page });
    Error f

(* Wait for an in-flight fetch of a now-resident page to land. *)
let await t page =
  let ready = t.ready_at.(page) in
  if ready > Sim.Clock.now (clock t) then
    timed t Metrics.Space_time.Waiting (fun () ->
        Sim.Clock.advance_to (clock t) ready)

let translate t page =
  (* The mapping consult: free on a TLB hit, one working-storage access
     otherwise (the map lives in core, as on the M44). *)
  let map_cost () =
    timed t Metrics.Space_time.Active (fun () ->
        Sim.Clock.advance (clock t)
          (Memstore.Device.word_access_us (Memstore.Level.device t.cfg.core)))
  in
  match t.cfg.tlb with
  | None ->
    map_cost ();
    Page_table.frame_of t.page_table page
  | Some tlb ->
    (match Tlb.lookup tlb page with
     | Some frame ->
       if t.tracing then emit t (Tlb_hit { key = page });
       Some frame
     | None ->
       if t.tracing then emit t (Tlb_miss { key = page });
       map_cost ();
       (match Page_table.frame_of t.page_table page with
        | Some frame ->
          Tlb.insert tlb ~key:page ~value:frame;
          Some frame
        | None -> None))

let touch_result t name ~write =
  let page = name / t.cfg.page_size and offset = name mod t.cfg.page_size in
  if page < 0 || page >= t.cfg.pages then
    raise
      (Memstore.Physical.Bound_violation
         { store = "name-space"; address = name; extent = t.cfg.pages * t.cfg.page_size });
  t.refs <- t.refs + 1;
  timed t Metrics.Space_time.Active (fun () ->
      Sim.Clock.advance (clock t) t.cfg.compute_us_per_ref);
  t.cfg.policy.Replacement.on_reference ~page ~write;
  let frame =
    match translate t page with
    | Some frame ->
      await t page;
      Ok frame
    | None ->
      (match timed t Metrics.Space_time.Waiting (fun () -> fault t page) with
       | Error _ as e -> e
       | Ok () ->
         await t page;
         (match Page_table.frame_of t.page_table page with
          | Some frame ->
            (match t.cfg.tlb with
             | Some tlb -> Tlb.insert tlb ~key:page ~value:frame
             | None -> ());
            Ok frame
          | None -> assert false))
  in
  match frame with
  | Error _ as e -> e
  | Ok frame ->
    if write then Page_table.mark_modified t.page_table ~page
    else Page_table.mark_used t.page_table ~page;
    Ok ((frame * t.cfg.page_size) + offset)

(* Under the default [Mirror] recovery every fetch succeeds, so the
   raising wrappers below can never actually raise; they exist for the
   engines and experiments that predate typed failures. *)
let touch t name ~write =
  match touch_result t name ~write with
  | Ok addr -> addr
  (* lint: allow L4 — legacy wrapper; unreachable under the default Mirror recovery, documented to raise otherwise *)
  | Error f -> failwith (Resilience.Failure.to_string f)

let read_result t name =
  match touch_result t name ~write:false with
  | Error _ as e -> e
  | Ok core_addr ->
    Ok
      (timed t Metrics.Space_time.Active (fun () ->
           Memstore.Level.read t.cfg.core core_addr))

let read t name =
  let core_addr = touch t name ~write:false in
  timed t Metrics.Space_time.Active (fun () -> Memstore.Level.read t.cfg.core core_addr)

let write_result t name v =
  match touch_result t name ~write:true with
  | Error _ as e -> e
  | Ok core_addr ->
    Ok
      (timed t Metrics.Space_time.Active (fun () ->
           Memstore.Level.write t.cfg.core core_addr v))

let write t name v =
  let core_addr = touch t name ~write:true in
  timed t Metrics.Space_time.Active (fun () -> Memstore.Level.write t.cfg.core core_addr v)

let run t trace =
  Array.iter
    (fun name ->
      let (_ : int64) = read t name in
      ())
    trace

let frame_of t ~page = Page_table.frame_of t.page_table page

let advise_will_need t ~page =
  if page >= 0 && page < t.cfg.pages && frame_of t ~page = None then begin
    match Frame_table.find_free t.frame_table with
    | None -> ()  (* advisory: no free frame, no prefetch *)
    | Some frame ->
      (match start_fetch t ~kind:Device.Request.Prefetch ~page ~frame with
       | Ok () -> t.prefetches <- t.prefetches + 1
       | Error _ -> ()  (* advisory: a failed prefetch is no prefetch *))
  end

let advise_wont_need t ~page =
  if page >= 0 && page < t.cfg.pages then begin
    match frame_of t ~page with
    | Some _ when not (Page_table.locked t.page_table ~page) ->
      evict_page t page;
      t.advice_releases <- t.advice_releases + 1
    | Some _ | None -> ()
  end

let lock t ~page =
  (match frame_of t ~page with
   | None ->
     let frame = free_a_frame t in
     (match start_fetch t ~kind:Device.Request.Prefetch ~page ~frame with
      | Ok () -> ()
      (* lint: allow L4 — unreachable under the default Mirror recovery, documented to raise otherwise *)
      | Error f -> failwith (Resilience.Failure.to_string f));
     await t page
   | Some _ -> ());
  Page_table.lock t.page_table ~page;
  if Array.length (candidates t) = 0 && Frame_table.free_count t.frame_table = 0 then begin
    Page_table.unlock t.page_table ~page;
    invalid_arg "Demand.lock: would leave no evictable frame"
  end

let unlock t ~page = Page_table.unlock t.page_table ~page

let refs t = t.refs

let faults t = t.faults

let writebacks t = t.writebacks

let prefetches t = t.prefetches

let advice_releases t = t.advice_releases

let mirror_fetches t = t.mirror_fetches

let hard_failures t = t.hard_failures

let space_time t = t.space_time

let timeline t = t.timeline

let tlb t = t.cfg.tlb

let page_size t = t.cfg.page_size

let device t = t.device
