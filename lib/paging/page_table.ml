type entry = {
  mutable frame : int;
  mutable present : bool;
  mutable used : bool;
  mutable modified : bool;
  mutable locked : bool;
}

type t = { entries : entry array; mutable resident_count : int }

let create ~pages =
  assert (pages > 0);
  {
    entries =
      Array.init pages (fun _ ->
          { frame = -1; present = false; used = false; modified = false; locked = false });
    resident_count = 0;
  }

let pages t = Array.length t.entries

let entry t page =
  if page < 0 || page >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Page_table: page %d outside name space" page);
  t.entries.(page)

let frame_of t page =
  let e = entry t page in
  if e.present then Some e.frame else None

let install t ~page ~frame =
  let e = entry t page in
  assert (not e.present);
  e.frame <- frame;
  e.present <- true;
  e.used <- false;
  e.modified <- false;
  t.resident_count <- t.resident_count + 1

let evict t ~page =
  let e = entry t page in
  if not e.present then invalid_arg "Page_table.evict: page not resident";
  if e.locked then invalid_arg "Page_table.evict: page is locked";
  e.present <- false;
  e.frame <- -1;
  t.resident_count <- t.resident_count - 1

let mark_used t ~page = (entry t page).used <- true

let mark_modified t ~page =
  let e = entry t page in
  e.used <- true;
  e.modified <- true

let clear_used t ~page = (entry t page).used <- false

let used t ~page = (entry t page).used

let modified t ~page = (entry t page).modified

let lock t ~page = (entry t page).locked <- true

let unlock t ~page = (entry t page).locked <- false

let locked t ~page = (entry t page).locked

let resident t =
  let acc = ref [] in
  for page = Array.length t.entries - 1 downto 0 do
    if t.entries.(page).present then acc := page :: !acc
  done;
  !acc

let resident_count t = t.resident_count
