(** Lifetime curves, working-set measurement, and the space-time
    product as a sizing tool.

    The paper: "a more significant measure of a strategy's effectiveness
    is the space-time product.  A program which is awaiting arrival of a
    further page will ... continue to occupy working storage."  Given a
    reference string, these functions compute the classical curves that
    measure makes possible: faults as a function of allotted frames (the
    lifetime/parachor curve), the working-set size over time, and the
    space-time product of running the program in a fixed allotment —
    whose minimum tells the scheduler how much storage the program is
    {e worth}. *)

val fault_curve :
  Spec.t -> frames:int list -> Workload.Trace.t -> (int * int) list
(** Faults at each allotment (policy instantiated fresh per point). *)

val working_set_sizes : tau:int -> Workload.Trace.t -> int array
(** [working_set_sizes ~tau trace].(i) is |W(i, tau)|: distinct pages
    among references [max 0 (i-tau+1) .. i].  O(n) sliding window. *)

val mean_working_set : tau:int -> Workload.Trace.t -> float

type space_time_point = {
  frames : int;
  faults : int;
  elapsed_us : int;  (** refs * compute + faults * fetch *)
  space_time : float;  (** frames * page_size words x elapsed *)
}

val space_time_curve :
  Spec.t ->
  frames:int list ->
  page_size:int ->
  compute_us_per_ref:int ->
  fetch_us:int ->
  Workload.Trace.t ->
  space_time_point list
(** The space-time product of running the whole trace in each fixed
    allotment: too few frames and fault delays dominate the time term;
    too many and the space term is waste.  *)

val optimal_allotment : space_time_point list -> space_time_point
(** The point with the smallest space-time product.  Raises
    [Invalid_argument] on an empty list. *)

type working_set_run = {
  tau : int;
  ws_faults : int;
  mean_resident : float;  (** time-averaged |W(t, tau)| *)
  ws_elapsed_us : int;
  ws_space_time : float;  (** resident pages x page_size, integrated *)
}

val working_set_run :
  tau:int -> page_size:int -> compute_us_per_ref:int -> fetch_us:int ->
  Workload.Trace.t -> working_set_run
(** A {e variable}-allotment pager: the resident set at each reference
    is exactly the working set W(t, tau) (pages referenced in the last
    [tau] references); touching a page outside it faults.  Holding just
    the working set is the natural competitor to every fixed allotment
    in the space-time race of experiment X6. *)
