(** Replacement strategies.

    The paper: "When it is necessary to make room in working storage for
    some new information, a replacement strategy is used to determine
    which informational units should be overlayed.  The strategy should
    seek to avoid the overlaying of information which may be required
    again in the near future."  The canon evaluated by Belady [1] —
    RANDOM, FIFO, LRU, the unrealizable optimum — is implemented here
    together with the machine-specific strategies of the appendix: the
    ATLAS "learning program" (A.1), the M44's class-random rule (A.2),
    plus CLOCK, NRU, LFU and working-set as the standard points of
    comparison.

    A policy is a record of callbacks driven by the paging engine:
    [on_reference] fires for {e every} reference in trace order (hit or
    fault), [on_load]/[on_evict] on residency changes, and
    [choose_victim] must return one of the [candidates] it is given
    (already filtered for locked pages). *)

type t = {
  name : string;
  on_reference : page:int -> write:bool -> unit;
  on_load : page:int -> unit;
  on_evict : page:int -> unit;
  choose_victim : candidates:int array -> int;
}

val fifo : unit -> t
(** Evict the page resident longest. *)

val lru : unit -> t
(** Evict the page unreferenced longest. *)

val clock_sweep : unit -> t
(** Second chance: a hand sweeps pages in load order, clearing use bits;
    the first page found with its bit clear is the victim. *)

val random : Sim.Rng.t -> t
(** Uniform choice among candidates. *)

val nru : Sim.Rng.t -> t
(** Not-recently-used classes: prefer (unused, unmodified), then
    (unused, modified), then used classes; random within a class.  Use
    bits are cleared after every victim choice, emulating the periodic
    sensor reset. *)

val lfu : unit -> t
(** Evict the page with the fewest references since load. *)

val atlas_learning : unit -> t
(** The ATLAS drum-transfer learning program (Kilburn et al. [14]): for
    each resident page keep [t], the time since last use, and [T], the
    length of its previous period of inactivity.  A page with [t > T + 1]
    is believed out of use and the one with greatest [t] is taken;
    otherwise the page maximising [T - t] (longest expected time until
    next use) is taken.  Time is measured in references. *)

val m44 : Sim.Rng.t -> t
(** The M44/44X rule (appendix A.2, after Belady): select at random from
    the set of equally acceptable candidates, determined on the basis of
    frequency of usage and whether or not the page has been modified —
    i.e. random among the least-frequently-used, preferring unmodified
    pages within that set. *)

val working_set : tau:int -> t
(** Evict a page outside the working-set window of [tau] references
    (the one longest out), falling back to LRU when every candidate is
    inside the window. *)

val opt : Workload.Trace.t -> t
(** Belady's unrealizable optimum for the given page-number trace: evict
    the page whose next use is farthest in the future.  The policy
    counts references via [on_reference] to know its position, so it
    must only be driven by exactly this trace. *)

val all_practical : Sim.Rng.t -> t list
(** The realizable policies compared in experiment C3 (fresh instances):
    FIFO, LRU, CLOCK, RANDOM, NRU, LFU, ATLAS, M44, working-set. *)
