type replacement = Fifo_replacement | Lru_replacement

type slot = { mutable key : int; mutable value : int; mutable stamp : int }

type t = {
  capacity : int;
  policy : replacement;
  slots : slot array;
  mutable filled : int;
  mutable tick : int;  (* insertion counter (FIFO) / access counter (LRU) *)
  mutable hits : int;
  mutable misses : int;
  obs : Obs.Sink.t;
  tracing : bool;
  clock : Sim.Clock.t option;  (* event timestamps; probe count if absent *)
}

let create ?(obs = Obs.Sink.null) ?clock ~capacity policy =
  assert (capacity >= 0);
  {
    capacity;
    policy;
    slots = Array.init capacity (fun _ -> { key = min_int; value = 0; stamp = 0 });
    filled = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    obs;
    tracing = Obs.Sink.is_active obs;
    clock;
  }

let capacity t = t.capacity

let find_slot t key =
  let rec loop i =
    if i >= t.filled then None
    else if t.slots.(i).key = key then Some t.slots.(i)
    else loop (i + 1)
  in
  loop 0

let event_time t =
  match t.clock with
  | Some clock -> Sim.Clock.now clock
  | None -> t.hits + t.misses  (* probe count: monotone by construction *)

let lookup t key =
  match find_slot t key with
  | Some slot ->
    t.hits <- t.hits + 1;
    if t.tracing then
      Obs.Sink.emit t.obs (Obs.Event.make ~t_us:(event_time t) (Tlb_hit { key }));
    (match t.policy with
     | Lru_replacement ->
       t.tick <- t.tick + 1;
       slot.stamp <- t.tick
     | Fifo_replacement -> ());
    Some slot.value
  | None ->
    t.misses <- t.misses + 1;
    if t.tracing then
      Obs.Sink.emit t.obs (Obs.Event.make ~t_us:(event_time t) (Tlb_miss { key }));
    None

let insert t ~key ~value =
  if t.capacity > 0 then begin
    t.tick <- t.tick + 1;
    match find_slot t key with
    | Some slot ->
      slot.value <- value;
      slot.stamp <- t.tick
    | None ->
      if t.filled < t.capacity then begin
        let slot = t.slots.(t.filled) in
        t.filled <- t.filled + 1;
        slot.key <- key;
        slot.value <- value;
        slot.stamp <- t.tick
      end
      else begin
        (* Evict the slot with the oldest stamp: insertion time under
           FIFO, last-access time under LRU. *)
        let victim = ref t.slots.(0) in
        Array.iter (fun s -> if s.stamp < !victim.stamp then victim := s) t.slots;
        !victim.key <- key;
        !victim.value <- value;
        !victim.stamp <- t.tick
      end
  end

let remove_at t i =
  t.slots.(i).key <- t.slots.(t.filled - 1).key;
  t.slots.(i).value <- t.slots.(t.filled - 1).value;
  t.slots.(i).stamp <- t.slots.(t.filled - 1).stamp;
  t.filled <- t.filled - 1

let invalidate t ~key =
  let rec loop i =
    if i < t.filled then
      if t.slots.(i).key = key then remove_at t i else loop (i + 1)
  in
  loop 0

let flush t = t.filled <- 0

let hits t = t.hits

let misses t = t.misses

let hit_ratio t =
  let probes = t.hits + t.misses in
  if probes = 0 then 0. else float_of_int t.hits /. float_of_int probes
