(** The timed demand-paging engine.

    Implements the paper's core fetch strategy: "Demand paging uses the
    address mapping device to deflect reference to a page which is not
    currently in one of the page frames.  A page fetch will then be
    initiated."  Words really move between a backing {!Memstore.Level.t}
    and a core level; fetches and write-backs are charged to the shared
    virtual clock; and the space-time product is accrued, split between
    Active and Waiting exactly as in Fig. 3.

    Predictive directives (paper: M44's two special instructions,
    MULTICS's three provisions) are accepted as {e advice}:
    {!advise_will_need} starts an asynchronous prefetch that overlaps
    with computation, {!advise_wont_need} releases a page early, and
    {!lock}/{!unlock} pin pages into working storage. *)

type config = {
  page_size : int;  (** words per page frame *)
  frames : int;  (** page frames of working storage available *)
  pages : int;  (** extent of the linear name space, in pages *)
  core : Memstore.Level.t;  (** working storage; >= frames * page_size words *)
  backing : Memstore.Level.t;  (** drum/disk; >= pages * page_size words *)
  policy : Replacement.t;  (** freshly created replacement policy *)
  tlb : Tlb.t option;  (** associative mapping memory, if any *)
  compute_us_per_ref : int;  (** program compute time per reference *)
}

type t

type recovery =
  | Mirror
      (** re-read a terminally-failed fetch over a fault-immune path
          (the duplexed copy): always succeeds, costs the extra
          queueing delay.  The default. *)
  | Surface
      (** hand the typed failure to the caller; the page stays
          non-resident *)

val create :
  ?obs:Obs.Sink.t -> ?device:Device.Model.t -> ?recovery:recovery -> config -> t
(** Page [p] of the name space lives at backing offset [p * page_size];
    frame [f] occupies core offset [f * page_size].

    With a sink, the engine reports fault / cold-fault / eviction /
    writeback and (when a TLB is configured) tlb_hit / tlb_miss events,
    stamped with the shared virtual clock.  The default no-op sink
    leaves results bit-identical and costs one branch per emission
    site.

    With a [device], transfer timing comes from the timed backing-store
    model instead of [backing]'s flat {!Memstore.Device.transfer_us}:
    fetches are demand or prefetch requests whose completion reflects
    rotational position, queueing, and scheduling policy, and evictions
    of modified pages enqueue write-back requests that compete with
    later fetches.  Without it (the default) timing is bit-identical to
    the pre-device engine. *)

val read : t -> int -> int64
(** [read t name] references word [name] of the linear name space,
    faulting it in if needed, and returns its value.  Under [Surface]
    recovery a terminal fetch failure raises [Failure]; use
    {!read_result} to handle it. *)

val write : t -> int -> int64 -> unit
(** Write reference; sets the page's modified bit, so eviction will copy
    it back to backing storage. *)

val read_result : t -> int -> (int64, Resilience.Failure.t) result
(** Like {!read}, but a terminal fetch failure (possible only under
    [Surface] recovery with a [Fail]-escalation device) returns
    [Error]: the page is not installed, and the reference can be
    retried or the job aborted by the layer above. *)

val write_result : t -> int -> int64 -> (unit, Resilience.Failure.t) result

val run : t -> Workload.Trace.t -> unit
(** Issue a read for every word address in the trace. *)

val frame_of : t -> page:int -> int option
(** Current mapping, for inspection (no cost, no fault). *)

(** {2 Predictive directives} *)

val advise_will_need : t -> page:int -> unit
(** Start fetching [page] into a free frame, overlapped with execution.
    Ignored if the page is resident, already on its way, or no frame is
    free (the directives are "essentially advisory"). *)

val advise_wont_need : t -> page:int -> unit
(** Release [page]'s frame now (write-back happens asynchronously).
    Ignored if not resident or locked. *)

val lock : t -> page:int -> unit
(** Fetch [page] if absent and pin it; replacement will never choose it.
    Raises [Invalid_argument] if pinning it would leave no evictable
    frame. *)

val unlock : t -> page:int -> unit

(** {2 Measurements} *)

val refs : t -> int

val faults : t -> int
(** Demand faults (references that had to wait for a fetch). *)

val writebacks : t -> int

val prefetches : t -> int
(** Prefetches actually issued from {!advise_will_need}. *)

val advice_releases : t -> int

val mirror_fetches : t -> int
(** Terminal fetch failures recovered by the [Mirror] re-read. *)

val hard_failures : t -> int
(** Terminal fetch failures surfaced to the caller ([Surface] mode). *)

val resident_count : t -> int

val resident_words : t -> int

val space_time : t -> Metrics.Space_time.t

val timeline : t -> Metrics.Timeline.t
(** The Fig. 3 time profile of this run (see {!Metrics.Timeline}). *)

val clock : t -> Sim.Clock.t

val tlb : t -> Tlb.t option

val page_size : t -> int

val device : t -> Device.Model.t option
(** The timed backing-store model, when one was supplied to {!create}
    (for end-of-run {!Device.Model.stats}). *)
