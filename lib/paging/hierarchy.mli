(** Multi-level working storage.

    "An additional complexity in fetch strategies arises when there are
    several levels of working storage, all directly accessible to the
    processor.  In such circumstances there is the problem of whether a
    given item should be fetched to a higher storage level, since this
    will be worthwhile only if the item is going to be used frequently."

    Two directly-addressable levels (fast core over bulk core) back a
    drum.  A drum fault always lands in the bulk level; the {e promotion
    strategy} decides when a bulk-resident page earns a fast-core frame.
    Accesses are charged the device cost of the level that serves them,
    so the experiment (x2) can read off the effective access time per
    strategy. *)

type promotion =
  | Always  (** promote on first touch in the bulk level *)
  | After of int  (** promote once touched this many times since arrival *)
  | Never  (** the bulk-only baseline: the fast level is left unused *)

type config = {
  fast_frames : int;
  bulk_frames : int;
  fast_us : int;  (** access cost when served from fast core *)
  bulk_us : int;  (** access cost when served from bulk core *)
  fetch_us : int;  (** drum fault cost (ignored when [device] is set) *)
  promotion : promotion;
  device : Device.Model.t option;
      (** timed drum/disk model; faults are then charged its actual
          (position- and queue-dependent) completion latency instead of
          the flat [fetch_us] *)
}

type t

val create : config -> t

val touch : t -> page:int -> unit
(** One reference.  Served from fast core if the page is there; else
    from bulk core (possibly triggering promotion); else faulted in
    from the drum.  Demotion/eviction is LRU at each level; a page
    demoted from fast core returns to the bulk level.  A terminal drum
    failure (only under a [Fail]-escalation device) raises [Failure];
    use {!touch_result} to handle it. *)

val touch_result : t -> page:int -> (unit, Resilience.Failure.t) result
(** Like {!touch}, but a terminal drum failure returns [Error]: the
    page is not installed (a later touch faults again), the failed
    attempts' wall-clock cost is still charged, and the caller decides
    — the hierarchy's recovery policy is to surface. *)

val run : t -> Workload.Trace.t -> unit
(** Touch every page number in the trace. *)

val refs : t -> int

val faults : t -> int
(** Drum faults. *)

val promotions : t -> int

val fast_hits : t -> int

val hard_failures : t -> int
(** Terminal drum failures surfaced to the caller. *)

val elapsed_us : t -> int
(** Total access cost charged. *)

val effective_access_us : t -> float
(** [elapsed / refs]. *)
