(** Page-frame bookkeeping for working storage.

    Tracks which page (if any) occupies each frame and hands out free
    frames lowest-numbered-first, which keeps simulations
    deterministic. *)

type t

val create : frames:int -> t

val frames : t -> int

val occupant : t -> int -> int option
(** Page currently in the given frame. *)

val find_free : t -> int option
(** Lowest free frame. *)

val free_count : t -> int

val assign : t -> frame:int -> page:int -> unit
(** Raises [Invalid_argument] if the frame is occupied. *)

val release : t -> frame:int -> unit
(** Raises [Invalid_argument] if the frame is free. *)
