let fault_curve spec ~frames trace =
  List.map
    (fun m ->
      let policy = Spec.instantiate spec ~rng:(Sim.Rng.create 1) ~trace:(Some trace) in
      (m, (Fault_sim.run ~frames:m ~policy trace).Fault_sim.faults))
    frames

let working_set_sizes ~tau trace =
  assert (tau > 0);
  let n = Array.length trace in
  let sizes = Array.make n 0 in
  let counts = Hashtbl.create 64 in
  let distinct = ref 0 in
  let bump page delta =
    let c = match Hashtbl.find_opt counts page with Some c -> c | None -> 0 in
    let c' = c + delta in
    if c = 0 && c' > 0 then incr distinct;
    if c > 0 && c' = 0 then decr distinct;
    if c' = 0 then Hashtbl.remove counts page else Hashtbl.replace counts page c'
  in
  for i = 0 to n - 1 do
    bump trace.(i) 1;
    if i >= tau then bump trace.(i - tau) (-1);
    sizes.(i) <- !distinct
  done;
  sizes

let mean_working_set ~tau trace =
  let sizes = working_set_sizes ~tau trace in
  if Array.length sizes = 0 then 0.
  else
    Array.fold_left (fun acc s -> acc +. float_of_int s) 0. sizes
    /. float_of_int (Array.length sizes)

type space_time_point = {
  frames : int;
  faults : int;
  elapsed_us : int;
  space_time : float;
}

let space_time_curve spec ~frames ~page_size ~compute_us_per_ref ~fetch_us trace =
  assert (page_size > 0 && compute_us_per_ref >= 0 && fetch_us >= 0);
  let refs = Array.length trace in
  List.map
    (fun (m, faults) ->
      let elapsed_us = (refs * compute_us_per_ref) + (faults * fetch_us) in
      {
        frames = m;
        faults;
        elapsed_us;
        space_time = float_of_int (m * page_size) *. float_of_int elapsed_us;
      })
    (fault_curve spec ~frames trace)

type working_set_run = {
  tau : int;
  ws_faults : int;
  mean_resident : float;
  ws_elapsed_us : int;
  ws_space_time : float;
}

let working_set_run ~tau ~page_size ~compute_us_per_ref ~fetch_us trace =
  assert (tau > 0 && page_size > 0);
  let n = Array.length trace in
  (* Sliding window of the last [tau] references: a page faults when its
     count rises from zero. *)
  let counts = Hashtbl.create 64 in
  let resident = ref 0 in
  let faults = ref 0 in
  let resident_integral = ref 0. in
  let bump page delta =
    let c = match Hashtbl.find_opt counts page with Some c -> c | None -> 0 in
    let c' = c + delta in
    if c = 0 && c' > 0 then begin
      incr resident;
      incr faults
    end;
    if c > 0 && c' = 0 then decr resident;
    if c' = 0 then Hashtbl.remove counts page else Hashtbl.replace counts page c'
  in
  for i = 0 to n - 1 do
    bump trace.(i) 1;
    if i >= tau then bump trace.(i - tau) (-1);
    resident_integral := !resident_integral +. float_of_int !resident
  done;
  let elapsed = (n * compute_us_per_ref) + (!faults * fetch_us) in
  let mean_resident = if n = 0 then 0. else !resident_integral /. float_of_int n in
  {
    tau;
    ws_faults = !faults;
    mean_resident;
    ws_elapsed_us = elapsed;
    ws_space_time = mean_resident *. float_of_int page_size *. float_of_int elapsed;
  }

let optimal_allotment = function
  | [] -> invalid_arg "Lifetime.optimal_allotment: no points"
  | first :: rest ->
    List.fold_left (fun best p -> if p.space_time < best.space_time then p else best) first rest
