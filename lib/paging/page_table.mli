(** A page table: the "table of block addresses" of the paper's Fig. 2.

    Maps page numbers of one linear name space to the page frames
    currently holding them, and records the use / modification sensor
    bits that the paper lists under "Special Hardware Facilities (iv)".
    A page may also be locked into working storage (the MULTICS
    keep-permanently-resident directive). *)

type t

val create : pages:int -> t
(** A table for a name space of [pages] pages, all initially absent. *)

val pages : t -> int

val frame_of : t -> int -> int option
(** [frame_of t page] is the frame holding [page], if resident.
    Raises [Invalid_argument] if [page] is outside the name space —
    the paper's bound-violation trap. *)

val install : t -> page:int -> frame:int -> unit
(** Make [page] resident in [frame], clearing its sensor bits. *)

val evict : t -> page:int -> unit
(** Mark [page] absent.  Raises [Invalid_argument] if it was not
    resident or is locked. *)

val mark_used : t -> page:int -> unit

val mark_modified : t -> page:int -> unit

val clear_used : t -> page:int -> unit

val used : t -> page:int -> bool

val modified : t -> page:int -> bool

val lock : t -> page:int -> unit
(** Pin a resident page: {!evict} on it becomes an error, so replacement
    must never choose it. *)

val unlock : t -> page:int -> unit

val locked : t -> page:int -> bool

val resident : t -> int list
(** Resident page numbers, ascending. *)

val resident_count : t -> int
