type t =
  | Fifo
  | Lru
  | Clock
  | Random
  | Nru
  | Lfu
  | Atlas
  | M44
  | Working_set of int
  | Opt

let to_string = function
  | Fifo -> "FIFO"
  | Lru -> "LRU"
  | Clock -> "CLOCK"
  | Random -> "RANDOM"
  | Nru -> "NRU"
  | Lfu -> "LFU"
  | Atlas -> "ATLAS"
  | M44 -> "M44"
  | Working_set tau -> Printf.sprintf "WS(%d)" tau
  | Opt -> "OPT"

let all_practical =
  [ Fifo; Lru; Clock; Random; Nru; Lfu; Atlas; M44; Working_set 64 ]

let instantiate spec ~rng ~trace =
  let rng = Sim.Rng.split rng in
  match spec with
  | Fifo -> Replacement.fifo ()
  | Lru -> Replacement.lru ()
  | Clock -> Replacement.clock_sweep ()
  | Random -> Replacement.random rng
  | Nru -> Replacement.nru rng
  | Lfu -> Replacement.lfu ()
  | Atlas -> Replacement.atlas_learning ()
  | M44 -> Replacement.m44 rng
  | Working_set tau -> Replacement.working_set ~tau
  | Opt ->
    (match trace with
     | Some trace -> Replacement.opt trace
     | None -> invalid_arg "Spec.instantiate: OPT requires the reference trace")
