type t =
  | Fifo
  | Lru
  | Clock
  | Random
  | Nru
  | Lfu
  | Atlas
  | M44
  | Working_set of int
  | Opt

let to_string = function
  | Fifo -> "FIFO"
  | Lru -> "LRU"
  | Clock -> "CLOCK"
  | Random -> "RANDOM"
  | Nru -> "NRU"
  | Lfu -> "LFU"
  | Atlas -> "ATLAS"
  | M44 -> "M44"
  | Working_set tau -> Printf.sprintf "WS(%d)" tau
  | Opt -> "OPT"

let all_practical =
  [ Fifo; Lru; Clock; Random; Nru; Lfu; Atlas; M44; Working_set 64 ]

type engine = {
  e_page_size : int;
  e_frames : int;
  e_pages : int;
  e_device : Memstore.Device.t;
  e_policy : t;
  e_tlb_slots : int option;
  e_compute_us_per_ref : int;
}

let instantiate spec ~rng ~trace =
  let rng = Sim.Rng.split rng in
  match spec with
  | Fifo -> Replacement.fifo ()
  | Lru -> Replacement.lru ()
  | Clock -> Replacement.clock_sweep ()
  | Random -> Replacement.random rng
  | Nru -> Replacement.nru rng
  | Lfu -> Replacement.lfu ()
  | Atlas -> Replacement.atlas_learning ()
  | M44 -> Replacement.m44 rng
  | Working_set tau -> Replacement.working_set ~tau
  | Opt ->
    (match trace with
     | Some trace -> Replacement.opt trace
     | None -> invalid_arg "Spec.instantiate: OPT requires the reference trace")

(* Clocked instantiation of a pure engine description.  Construction
   order (core level, backing level, policy) matches the historical
   hand-written call sites, so rewiring them through [build] leaves
   results bit-identical. *)
let build ?obs ?(core_name = "core") ~clock ~rng ?trace e =
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:core_name
      ~words:(e.e_frames * e.e_page_size)
  in
  let backing =
    Memstore.Level.make clock e.e_device ~name:e.e_device.Memstore.Device.label
      ~words:(e.e_pages * e.e_page_size)
  in
  let policy = instantiate e.e_policy ~rng ~trace in
  let tlb =
    Option.map
      (fun capacity -> Tlb.create ~clock ~capacity Tlb.Lru_replacement)
      e.e_tlb_slots
  in
  Demand.create ?obs
    {
      Demand.page_size = e.e_page_size;
      frames = e.e_frames;
      pages = e.e_pages;
      core;
      backing;
      policy;
      tlb;
      compute_us_per_ref = e.e_compute_us_per_ref;
    }
