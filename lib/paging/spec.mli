(** Declarative replacement-policy specifications.

    {!Replacement.t} values are stateful and single-use; a [Spec.t] is a
    pure description that can be stored in a machine definition or swept
    in an experiment and instantiated fresh for every run. *)

type t =
  | Fifo
  | Lru
  | Clock
  | Random
  | Nru
  | Lfu
  | Atlas
  | M44
  | Working_set of int
  | Opt

val to_string : t -> string

val all_practical : t list
(** Everything except [Opt]. *)

val instantiate : t -> rng:Sim.Rng.t -> trace:Workload.Trace.t option -> Replacement.t
(** Build a fresh policy.  [trace] (the page-number reference string) is
    required by [Opt] and ignored by the rest; [rng] seeds the stochastic
    policies (split off, so the caller's stream is perturbed identically
    regardless of the spec). *)

(** {2 Whole-engine specifications}

    The same split, one level up: an [engine] is a pure description of a
    complete demand-paging configuration — geometry, backing device,
    policy spec — with {e no} clocked state.  {!build} instantiates it
    against a caller-supplied virtual clock (and rng), so several
    engines can be built from one description, each owning an
    independent clock: exactly what a sharded multicore run needs, one
    engine per shard. *)

type engine = {
  e_page_size : int;  (** words per page frame *)
  e_frames : int;  (** page frames of working storage *)
  e_pages : int;  (** extent of the linear name space, in pages *)
  e_device : Memstore.Device.t;  (** backing store timing *)
  e_policy : t;  (** replacement policy, as a pure spec *)
  e_tlb_slots : int option;  (** associative-memory capacity, if any *)
  e_compute_us_per_ref : int;
}

val build :
  ?obs:Obs.Sink.t ->
  ?core_name:string ->
  clock:Sim.Clock.t ->
  rng:Sim.Rng.t ->
  ?trace:Workload.Trace.t ->
  engine ->
  Demand.t
(** Instantiate the description: create the core and backing levels on
    [clock] (core named [core_name], default ["core"]; backing named
    after the device), instantiate the policy from [rng] (and [trace],
    required for [Opt]), and assemble the {!Demand} engine.  Building
    the same description twice with equal clocks and rng states yields
    engines with identical behaviour. *)
