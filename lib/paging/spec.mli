(** Declarative replacement-policy specifications.

    {!Replacement.t} values are stateful and single-use; a [Spec.t] is a
    pure description that can be stored in a machine definition or swept
    in an experiment and instantiated fresh for every run. *)

type t =
  | Fifo
  | Lru
  | Clock
  | Random
  | Nru
  | Lfu
  | Atlas
  | M44
  | Working_set of int
  | Opt

val to_string : t -> string

val all_practical : t list
(** Everything except [Opt]. *)

val instantiate : t -> rng:Sim.Rng.t -> trace:Workload.Trace.t option -> Replacement.t
(** Build a fresh policy.  [trace] (the page-number reference string) is
    required by [Opt] and ignored by the rest; [rng] seeds the stochastic
    policies (split off, so the caller's stream is perturbed identically
    regardless of the spec). *)
