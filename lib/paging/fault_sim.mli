(** Untimed demand-paging fault simulator.

    Runs a replacement policy over a page-number reference string with a
    fixed number of frames and counts faults — the measurement behind
    Belady [1]'s comparisons and our experiment C3.  No data moves and
    no clock advances, so large parameter sweeps are cheap; the timed
    engine ({!Demand}) is used when space-time or device behaviour
    matters.

    When an observability sink is supplied, fault / cold-fault /
    eviction events are emitted with the {e reference index} as their
    timestamp (this engine has no clock); the default no-op sink costs
    one branch per emission site. *)

type result = {
  refs : int;  (** references processed *)
  faults : int;  (** includes cold (first-touch) faults *)
  cold : int;  (** faults on first touch of each page *)
  evictions : int;
}

val run :
  ?obs:Obs.Sink.t -> frames:int -> policy:Replacement.t -> Workload.Trace.t -> result
(** Process the trace with demand fetch.  [frames] must be positive.
    The [policy] must be freshly created (policies carry state). *)

val fault_rate : result -> float
(** faults / refs (0. for an empty trace). *)

val run_writes :
  ?obs:Obs.Sink.t ->
  frames:int ->
  policy:Replacement.t ->
  write:(int -> bool) ->
  Workload.Trace.t ->
  result
(** Like {!run}, with reference [i] treated as a write when [write i]
    holds — feeds the modified-bit-sensitive policies. *)
