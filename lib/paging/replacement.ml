type t = {
  name : string;
  on_reference : page:int -> write:bool -> unit;
  on_load : page:int -> unit;
  on_evict : page:int -> unit;
  choose_victim : candidates:int array -> int;
}

let no_ref ~page:_ ~write:_ = ()

let no_page ~page:_ = ()

let fifo () =
  (* Load order as a queue; the head among the candidates is the victim. *)
  let order = Queue.create () in
  {
    name = "FIFO";
    on_reference = no_ref;
    on_load = (fun ~page -> Queue.add page order);
    on_evict = no_page;
    choose_victim =
      (fun ~candidates ->
        assert (Array.length candidates > 0);
        let is_candidate p = Array.exists (fun q -> q = p) candidates in
        (* Pop until the head is an eligible (e.g. unlocked) page;
           re-queue skipped pages preserving their relative order. *)
        let skipped = Queue.create () in
        let rec pop () =
          let p = Queue.pop order in
          if is_candidate p then p
          else begin
            Queue.add p skipped;
            pop ()
          end
        in
        let victim = pop () in
        Queue.transfer order skipped;
        Queue.transfer skipped order;
        victim);
  }

let lru () =
  let stamp = Hashtbl.create 64 in
  let tick = ref 0 in
  {
    name = "LRU";
    on_reference =
      (fun ~page ~write:_ ->
        incr tick;
        Hashtbl.replace stamp page !tick);
    on_load = (fun ~page -> Hashtbl.replace stamp page !tick);
    on_evict = (fun ~page -> Hashtbl.remove stamp page);
    choose_victim =
      (fun ~candidates ->
        let oldest p = match Hashtbl.find_opt stamp p with Some s -> s | None -> 0 in
        Array.fold_left
          (fun best p -> if oldest p < oldest best then p else best)
          candidates.(0) candidates);
  }

let clock_sweep () =
  (* Pages on a circular list in load order; a use bit per page set on
     reference; the hand clears bits until it finds one clear. *)
  let used = Hashtbl.create 64 in
  let ring = ref [] in  (* reversed load order *)
  let hand = ref [] in
  {
    name = "CLOCK";
    on_reference = (fun ~page ~write:_ -> Hashtbl.replace used page true);
    on_load =
      (fun ~page ->
        ring := !ring @ [ page ];
        Hashtbl.replace used page false);
    on_evict =
      (fun ~page ->
        ring := List.filter (fun p -> p <> page) !ring;
        hand := List.filter (fun p -> p <> page) !hand;
        Hashtbl.remove used page);
    choose_victim =
      (fun ~candidates ->
        let is_candidate p = Array.exists (fun q -> q = p) candidates in
        let rec sweep budget =
          if budget = 0 then candidates.(0)  (* all bits set and ineligible: degrade *)
          else begin
            (match !hand with [] -> hand := !ring | _ :: _ -> ());
            match !hand with
            | [] -> candidates.(0)
            | p :: rest ->
              hand := rest;
              if not (is_candidate p) then sweep (budget - 1)
              else if Hashtbl.find_opt used p = Some true then begin
                Hashtbl.replace used p false;
                sweep (budget - 1)
              end
              else p
          end
        in
        sweep (2 * (List.length !ring + 1)));
  }

let random rng =
  {
    name = "RANDOM";
    on_reference = no_ref;
    on_load = no_page;
    on_evict = no_page;
    choose_victim = (fun ~candidates -> Sim.Rng.pick rng candidates);
  }

(* Shared helper: random choice among the candidates of the best
   (lowest-keyed) class. *)
let pick_best_class rng ~candidates ~class_of =
  let best = Array.fold_left (fun acc p -> min acc (class_of p)) max_int candidates in
  let pool = Array.of_list (List.filter (fun p -> class_of p = best)
                              (Array.to_list candidates)) in
  Sim.Rng.pick rng pool

let nru rng =
  let used = Hashtbl.create 64 and modified = Hashtbl.create 64 in
  let flag table page = Hashtbl.find_opt table page = Some true in
  {
    name = "NRU";
    on_reference =
      (fun ~page ~write ->
        Hashtbl.replace used page true;
        if write then Hashtbl.replace modified page true);
    on_load = no_page;
    on_evict =
      (fun ~page ->
        Hashtbl.remove used page;
        Hashtbl.remove modified page);
    choose_victim =
      (fun ~candidates ->
        let class_of p =
          (if flag used p then 2 else 0) + if flag modified p then 1 else 0
        in
        let victim = pick_best_class rng ~candidates ~class_of in
        (* Periodic sensor reset, modelled as happening at each decision. *)
        Array.iter (fun p -> Hashtbl.replace used p false) candidates;
        victim);
  }

let lfu () =
  let count = Hashtbl.create 64 in
  let freq p = match Hashtbl.find_opt count p with Some n -> n | None -> 0 in
  {
    name = "LFU";
    on_reference = (fun ~page ~write:_ -> Hashtbl.replace count page (freq page + 1));
    on_load = (fun ~page -> Hashtbl.replace count page 0);
    on_evict = (fun ~page -> Hashtbl.remove count page);
    choose_victim =
      (fun ~candidates ->
        Array.fold_left
          (fun best p -> if freq p < freq best then p else best)
          candidates.(0) candidates);
  }

let atlas_learning () =
  let now = ref 0 in
  let last_use = Hashtbl.create 64 in
  let prev_gap = Hashtbl.create 64 in  (* T: previous period of inactivity *)
  let get table page ~default =
    match Hashtbl.find_opt table page with Some v -> v | None -> default
  in
  {
    name = "ATLAS";
    on_reference =
      (fun ~page ~write:_ ->
        incr now;
        let last = get last_use page ~default:!now in
        if last < !now then Hashtbl.replace prev_gap page (!now - last);
        Hashtbl.replace last_use page !now);
    on_load =
      (fun ~page ->
        Hashtbl.replace last_use page !now;
        if not (Hashtbl.mem prev_gap page) then Hashtbl.replace prev_gap page 0);
    on_evict = no_page;
    choose_victim =
      (fun ~candidates ->
        let t_of p = !now - get last_use p ~default:0 in
        let big_t p = get prev_gap p ~default:0 in
        (* Pages believed out of use: idle longer than their previous
           inactive period. *)
        let out_of_use =
          Array.to_list candidates |> List.filter (fun p -> t_of p > big_t p + 1)
        in
        match out_of_use with
        | first :: _ ->
          List.fold_left (fun best p -> if t_of p > t_of best then p else best)
            first out_of_use
        | [] ->
          (* Otherwise: the page that, if the recent pattern holds, will
             be needed last, i.e. maximal T - t. *)
          Array.fold_left
            (fun best p -> if big_t p - t_of p > big_t best - t_of best then p else best)
            candidates.(0) candidates);
  }

let m44 rng =
  let count = Hashtbl.create 64 and modified = Hashtbl.create 64 in
  let freq p = match Hashtbl.find_opt count p with Some n -> n | None -> 0 in
  {
    name = "M44";
    on_reference =
      (fun ~page ~write ->
        Hashtbl.replace count page (freq page + 1);
        if write then Hashtbl.replace modified page true);
    on_load = (fun ~page -> Hashtbl.replace count page 0);
    on_evict =
      (fun ~page ->
        Hashtbl.remove count page;
        Hashtbl.remove modified page);
    choose_victim =
      (fun ~candidates ->
        (* Equally acceptable = least frequently used; unmodified
           preferred within that set (no write-back needed).  Counts age
           exponentially at every decision, so a freshly loaded page is
           not condemned merely for having had no time to accumulate
           references. *)
        let least = Array.fold_left (fun acc p -> min acc (freq p)) max_int candidates in
        let class_of p =
          if freq p > least then 2
          else if Hashtbl.find_opt modified p = Some true then 1
          else 0
        in
        let victim = pick_best_class rng ~candidates ~class_of in
        Array.iter (fun p -> Hashtbl.replace count p ((freq p / 2) + 1)) candidates;
        victim);
  }

let working_set ~tau =
  assert (tau > 0);
  let now = ref 0 in
  let last_use = Hashtbl.create 64 in
  let last p = match Hashtbl.find_opt last_use p with Some v -> v | None -> 0 in
  {
    name = Printf.sprintf "WS(%d)" tau;
    on_reference =
      (fun ~page ~write:_ ->
        incr now;
        Hashtbl.replace last_use page !now);
    on_load = (fun ~page -> Hashtbl.replace last_use page !now);
    on_evict = (fun ~page -> Hashtbl.remove last_use page);
    choose_victim =
      (fun ~candidates ->
        (* Oldest page; if it is outside the window that is a true
           working-set eviction, otherwise it degrades to LRU. *)
        Array.fold_left
          (fun best p -> if last p < last best then p else best)
          candidates.(0) candidates);
  }

let opt trace =
  (* occurrences.(page) = positions of page in the trace, ascending;
     cursor.(page) = index of the first occurrence not yet consumed. *)
  let extent = Workload.Trace.extent trace in
  let occurrences = Array.make extent [] in
  Array.iteri (fun i p -> occurrences.(p) <- i :: occurrences.(p)) trace;
  let occurrences = Array.map (fun l -> Array.of_list (List.rev l)) occurrences in
  let cursor = Array.make extent 0 in
  let position = ref (-1) in
  let next_use p =
    if p >= extent then max_int
    else begin
      let occ = occurrences.(p) in
      while cursor.(p) < Array.length occ && occ.(cursor.(p)) <= !position do
        cursor.(p) <- cursor.(p) + 1
      done;
      if cursor.(p) >= Array.length occ then max_int else occ.(cursor.(p))
    end
  in
  {
    name = "OPT";
    on_reference = (fun ~page:_ ~write:_ -> incr position);
    on_load = no_page;
    on_evict = no_page;
    choose_victim =
      (fun ~candidates ->
        Array.fold_left
          (fun best p -> if next_use p > next_use best then p else best)
          candidates.(0) candidates);
  }

let all_practical rng =
  [
    fifo ();
    lru ();
    clock_sweep ();
    random (Sim.Rng.split rng);
    nru (Sim.Rng.split rng);
    lfu ();
    atlas_learning ();
    m44 (Sim.Rng.split rng);
    working_set ~tau:64;
  ]
