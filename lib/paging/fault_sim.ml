type result = { refs : int; faults : int; cold : int; evictions : int }

let run_writes ?(obs = Obs.Sink.null) ~frames ~policy ~write trace =
  assert (frames > 0);
  let tracing = Obs.Sink.is_active obs in
  let resident = Hashtbl.create frames in
  let touched = Hashtbl.create 64 in
  let faults = ref 0 and cold = ref 0 and evictions = ref 0 in
  let candidates () =
    let a = Array.make (Hashtbl.length resident) 0 in
    let i = ref 0 in
    (* lint: allow L3 — the array is sorted immediately after filling *)
    Hashtbl.iter
      (fun p () ->
        a.(!i) <- p;
        incr i)
      resident;
    Array.sort compare a;
    a
  in
  Array.iteri
    (fun i page ->
      let w = write i in
      policy.Replacement.on_reference ~page ~write:w;
      if not (Hashtbl.mem resident page) then begin
        incr faults;
        if tracing then Obs.Sink.emit obs (Obs.Event.make ~t_us:i (Fault { page }));
        if not (Hashtbl.mem touched page) then begin
          incr cold;
          if tracing then
            Obs.Sink.emit obs (Obs.Event.make ~t_us:i (Cold_fault { page }));
          Hashtbl.replace touched page ()
        end;
        if Hashtbl.length resident >= frames then begin
          let victim = policy.Replacement.choose_victim ~candidates:(candidates ()) in
          assert (Hashtbl.mem resident victim);
          Hashtbl.remove resident victim;
          policy.Replacement.on_evict ~page:victim;
          incr evictions;
          if tracing then
            Obs.Sink.emit obs (Obs.Event.make ~t_us:i (Eviction { page = victim }))
        end;
        Hashtbl.replace resident page ();
        policy.Replacement.on_load ~page
      end)
    trace;
  { refs = Array.length trace; faults = !faults; cold = !cold; evictions = !evictions }

let run ?obs ~frames ~policy trace =
  run_writes ?obs ~frames ~policy ~write:(fun _ -> false) trace

let fault_rate r = if r.refs = 0 then 0. else float_of_int r.faults /. float_of_int r.refs
