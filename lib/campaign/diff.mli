(** Cross-campaign regression diffing.

    Mirrors {!Obs.Bench}'s comparator at campaign granularity: done
    cells matched by id, metrics matched by name, verdicts ordered by
    drift magnitude, cells or metrics present in only one campaign
    reported.  Cells are deterministic given their seed, so drift in
    {e either} direction beyond the threshold is a regression. *)

type row = {
  cell : string;
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;
      (** signed [(new/old - 1)] in percent; [infinity] when a zero
          metric became non-zero *)
  regressed : bool;  (** [|delta_pct| > threshold] *)
}

type comparison = {
  threshold_pct : float;
  rows : row list;  (** every compared metric, worst drift first *)
  only_old : string list;  (** cell ids, or [id#metric] bindings *)
  only_new : string list;
}

val compare_campaigns :
  threshold_pct:float ->
  old_cells:Store.loaded list ->
  new_cells:Store.loaded list ->
  comparison

val regressions : comparison -> row list

val print : out_channel -> comparison -> unit
(** Offending rows plus a summary line; a healthy diff prints only the
    summary. *)

val to_json : comparison -> string
