(* Cross-campaign regression diffing, mirroring Obs.Bench's comparator
   at campaign granularity: cells matched by id, metrics matched by
   name, verdicts ordered worst-first, cells present in only one
   campaign reported.

   Cells are deterministic given their seed, so two campaigns of the
   same grid on the same code agree exactly; the threshold is percent
   drift in either direction — a simulator change that moves any
   recorded metric of any cell beyond it is a regression. *)

type row = {
  cell : string;
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (* signed (new/old - 1) in percent; infinite from zero *)
  regressed : bool;
}

type comparison = {
  threshold_pct : float;
  rows : row list;  (* worst |delta| first *)
  only_old : string list;  (* done cells / metrics absent on the new side *)
  only_new : string list;
}

let near_zero v = abs_float v < 1e-12

let delta_of ~old_v ~new_v =
  if near_zero old_v && near_zero new_v then 0.
  else if near_zero old_v then infinity *. (if new_v > 0. then 1. else -1.)
  else ((new_v /. old_v) -. 1.) *. 100.

let rank r = abs_float r.delta_pct

let by_magnitude rows =
  List.sort
    (fun a b ->
      match compare (rank b) (rank a) with
      | 0 -> compare (a.cell, a.metric) (b.cell, b.metric)
      | c -> c)
    rows

let done_cells cells =
  List.filter
    (fun (c : Store.loaded) -> match c.status with Store.Done -> true | _ -> false)
    cells

let compare_campaigns ~threshold_pct ~old_cells ~new_cells =
  let olds = done_cells old_cells and news = done_cells new_cells in
  let old_ids = List.map (fun (c : Store.loaded) -> c.point.Spec.id) olds in
  let new_ids = List.map (fun (c : Store.loaded) -> c.point.Spec.id) news in
  let only_old = ref [] and only_new = ref [] and rows = ref [] in
  List.iter
    (fun (oc : Store.loaded) ->
      let id = oc.point.Spec.id in
      match
        List.find_opt (fun (nc : Store.loaded) -> nc.point.Spec.id = id) news
      with
      | None -> only_old := id :: !only_old
      | Some nc ->
        List.iter
          (fun (metric, old_v) ->
            match List.assoc_opt metric nc.metrics with
            | None -> only_old := (id ^ "#" ^ metric) :: !only_old
            | Some new_v ->
              let delta_pct = delta_of ~old_v ~new_v in
              rows :=
                {
                  cell = id;
                  metric;
                  old_v;
                  new_v;
                  delta_pct;
                  regressed = abs_float delta_pct > threshold_pct;
                }
                :: !rows)
          oc.metrics;
        List.iter
          (fun (metric, _) ->
            if List.assoc_opt metric oc.metrics = None then
              only_new := (id ^ "#" ^ metric) :: !only_new)
          nc.metrics)
    olds;
  List.iter
    (fun id -> if not (List.mem id old_ids) then only_new := id :: !only_new)
    new_ids;
  {
    threshold_pct;
    rows = by_magnitude !rows;
    only_old = List.sort compare !only_old;
    only_new = List.sort compare !only_new;
  }

let regressions c = List.filter (fun r -> r.regressed) c.rows

let fmt_delta r =
  if Float.is_finite r.delta_pct then Printf.sprintf "%+.2f%%" r.delta_pct
  else if r.delta_pct > 0. then "+inf%"
  else "-inf%"

(* Only the offending rows print — a healthy diff of a large campaign
   is one summary line, not thousands of zero rows. *)
let print oc c =
  let regs = regressions c in
  List.iter
    (fun r ->
      Printf.fprintf oc "%-52s %-28s %14g %14g %10s  REGRESSION\n" r.cell r.metric
        r.old_v r.new_v (fmt_delta r))
    regs;
  List.iter (fun id -> Printf.fprintf oc "%-52s (only in OLD campaign)\n" id) c.only_old;
  List.iter (fun id -> Printf.fprintf oc "%-52s (only in NEW campaign)\n" id) c.only_new;
  if regs = [] then
    Printf.fprintf oc "no regressions above %.2f%% across %d compared metric(s)\n"
      c.threshold_pct (List.length c.rows)
  else
    Printf.fprintf oc "%d regression(s) above %.2f%% across %d compared metric(s)\n"
      (List.length regs) c.threshold_pct (List.length c.rows)

let to_json c =
  let row_obj r =
    Obs.Json.Raw
      (Obs.Json.obj
         [
           ("cell", Obs.Json.String r.cell);
           ("metric", Obs.Json.String r.metric);
           ("old", Obs.Json.Float r.old_v);
           ("new", Obs.Json.Float r.new_v);
           ( "delta_pct",
             if Float.is_finite r.delta_pct then Obs.Json.Float r.delta_pct
             else Obs.Json.String (Printf.sprintf "%g" r.delta_pct) );
           ("regressed", Obs.Json.Raw (if r.regressed then "true" else "false"));
         ])
  in
  let strs items = Obs.Json.Raw (Obs.Json.array (List.map (fun s -> Obs.Json.String s) items)) in
  Obs.Json.obj
    [
      ("threshold_pct", Obs.Json.Float c.threshold_pct);
      ("rows", Obs.Json.Raw (Obs.Json.array (List.map row_obj (regressions c))));
      ("compared", Obs.Json.Int (List.length c.rows));
      ("only_old", strs c.only_old);
      ("only_new", strs c.only_new);
      ("regressions", Obs.Json.Int (List.length (regressions c)));
    ]
