(** The campaign executor: forked worker pool with per-cell
    checkpointing.

    Each grid point runs in its own forked process — a cell that
    diverges or dies takes only its process, and the parent records a
    failed cell and keeps going.  The parent is the only writer of the
    status log, appending one line as each child is reaped; a killed
    campaign therefore resumes by replaying the log, re-running only
    cells that never reached done (failed cells are retried). *)

type runner =
  point:Spec.point ->
  quick:bool ->
  trace_path:string option ->
  metrics_path:string ->
  (unit, string) result
(** Runs in the child process.  Must write the cell's metrics to
    [metrics_path] (atomically — use {!Store.write_atomic}) and, when
    [trace_path] is given, its trace there.  An [Error] (or an
    exception, which is caught) fails the cell. *)

type outcome = {
  total : int;  (** grid points in the spec *)
  skipped : int;  (** already done — or out of retries — at run start *)
  ran : int;
  ok : int;
  failed : int;  (** cells that ended this run failed (budget spent) *)
  timed_out : int;  (** attempts killed at the wall-clock limit *)
  retried : int;  (** retry attempts performed this run *)
}

val run :
  ?jobs:int ->
  ?limit:int ->
  ?timeout_s:float ->
  ?max_retries:int ->
  ?retry_backoff_s:float ->
  ?on_cell:(Spec.point -> Store.status -> unit) ->
  dir:string ->
  spec:Spec.t ->
  runner:runner ->
  unit ->
  outcome
(** Run every pending cell (at most [limit], in grid order) across
    [jobs] workers (default 1).  [on_cell] fires in the parent as each
    attempt completes.  Call {!Store.init} first.  Every spawn appends
    a {!Store.record_start} ["running"] line and every completion is
    stamped with the wall-clock time, so {!Store.timings} can report
    per-cell start/elapsed.

    [timeout_s] bounds each attempt's wall-clock time: an overdue
    child is SIGKILLed and its failure recorded as timed out (the
    parent switches from a blocking wait to a WNOHANG poll only when a
    timeout is set).  [max_retries] (default 0) is the per-cell failed
    attempt budget {e across resumes}: each failure is logged with its
    attempt count, a failing cell is requeued after a linear
    [retry_backoff_s] * attempts delay while budget remains, and a
    resumed campaign skips cells whose recorded retries already
    exhausted the budget.  With [max_retries = 0] failures are never
    retried in-run but are re-attempted by a later invocation — the
    legacy behaviour. *)
