(** The campaign executor: forked worker pool with per-cell
    checkpointing.

    Each grid point runs in its own forked process — a cell that
    diverges or dies takes only its process, and the parent records a
    failed cell and keeps going.  The parent is the only writer of the
    status log, appending one line as each child is reaped; a killed
    campaign therefore resumes by replaying the log, re-running only
    cells that never reached done (failed cells are retried). *)

type runner =
  point:Spec.point ->
  quick:bool ->
  trace_path:string option ->
  metrics_path:string ->
  (unit, string) result
(** Runs in the child process.  Must write the cell's metrics to
    [metrics_path] (atomically — use {!Store.write_atomic}) and, when
    [trace_path] is given, its trace there.  An [Error] (or an
    exception, which is caught) fails the cell. *)

type outcome = {
  total : int;  (** grid points in the spec *)
  skipped : int;  (** already done when the run started *)
  ran : int;
  ok : int;
  failed : int;
}

val run :
  ?jobs:int ->
  ?limit:int ->
  ?on_cell:(Spec.point -> Store.status -> unit) ->
  dir:string ->
  spec:Spec.t ->
  runner:runner ->
  unit ->
  outcome
(** Run every pending cell (at most [limit], in grid order) across
    [jobs] workers (default 1).  [on_cell] fires in the parent as each
    cell completes.  Call {!Store.init} first. *)
