(* The on-disk campaign store.

   Layout, all under one campaign directory:

     spec.json            the sweep spec, verbatim
     manifest.json        identity: name, cell, config hash, git version
     cells.jsonl          append-only status log, one line per attempt
     cells/<id>.metrics.json   one dsas-metrics/1 artifact per done cell
     cells/<id>.trace.jsonl    sampled trace, when the spec asks for one
     cells/<id>.error.txt      diagnostic from a failed attempt

   The status log is the checkpoint: the last line per cell id wins, so
   a killed campaign resumes by replaying the log and re-running only
   cells that never reached "done".  Metrics files are written to a
   temporary name and renamed, so a crash mid-write never leaves a
   half-artifact that parses. *)

type failure = {
  f_msg : string;
  f_timed_out : bool;  (* the attempt was killed at the wall-clock limit *)
  f_retries : int;  (* failed attempts before this one *)
}

type status =
  | Pending
  | Done
  | Failed of failure

let failed ?(timed_out = false) ?(retries = 0) msg =
  Failed { f_msg = msg; f_timed_out = timed_out; f_retries = retries }

let manifest_schema = "dsas-campaign/1"

let spec_path dir = Filename.concat dir "spec.json"

let manifest_path dir = Filename.concat dir "manifest.json"

let log_path dir = Filename.concat dir "cells.jsonl"

let cells_dir dir = Filename.concat dir "cells"

let metrics_path ~dir id = Filename.concat (cells_dir dir) (id ^ ".metrics.json")

let trace_path ~dir id = Filename.concat (cells_dir dir) (id ^ ".trace.jsonl")

let error_path ~dir id = Filename.concat (cells_dir dir) (id ^ ".error.txt")

let read_file filename =
  match open_in_bin filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let mkdir_p path =
  let rec make p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make path

let manifest_json ~spec ~git =
  let points = Spec.points spec in
  Obs.Json.obj
    ([
       ("schema", Obs.Json.String manifest_schema);
       ("name", Obs.Json.String spec.Spec.name);
       ("cell", Obs.Json.String spec.Spec.cell);
       ("config_hash", Obs.Json.String (Spec.config_hash spec));
       ("total_cells", Obs.Json.Int (List.length points));
     ]
     @ match git with None -> [] | Some g -> [ ("git", Obs.Json.String g) ])

(* Create or re-open.  Re-opening an existing directory is the resume
   path: the stored spec must hash identically, otherwise the done/
   pending bookkeeping would silently describe a different grid. *)
let init ~dir ~spec ~git =
  if Sys.file_exists (spec_path dir) then begin
    match Spec.load (spec_path dir) with
    | Error msg -> Error (Printf.sprintf "existing %s: %s" (spec_path dir) msg)
    | Ok existing ->
      if Spec.config_hash existing = Spec.config_hash spec then Ok ()
      else
        Error
          (Printf.sprintf
             "%s already holds campaign %S with a different grid (config %s, \
              asked for %s); use a fresh directory"
             dir existing.Spec.name
             (Spec.config_hash existing) (Spec.config_hash spec))
  end
  else begin
    mkdir_p (cells_dir dir);
    write_atomic (spec_path dir) (Spec.to_json spec ^ "\n");
    write_atomic (manifest_path dir) (manifest_json ~spec ~git ^ "\n");
    Ok ()
  end

let load_spec ~dir = Spec.load (spec_path dir)

let append_log ~dir line =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (log_path dir)
  in
  output_string oc (line ^ "\n");
  close_out oc

(* [t] is an optional wall-clock stamp (Unix epoch seconds, supplied
   by the executor — the store itself never reads a clock); older logs
   without it replay with no timing. *)
let stamp t = match t with Some t -> [ ("t", Obs.Json.Float t) ] | None -> []

let record ?t ~dir id status =
  let line =
    match status with
    | Done ->
      Obs.Json.obj
        ([ ("cell", Obs.Json.String id); ("status", Obs.Json.String "done") ]
         @ stamp t)
    | Failed f ->
      (* [retries] is always written; [timed_out] only when set (an
         int, to stay within the flat parser) — older logs without
         either field replay with the defaults. *)
      Obs.Json.obj
        ([
           ("cell", Obs.Json.String id);
           ("status", Obs.Json.String "failed");
           ("error", Obs.Json.String f.f_msg);
           ("retries", Obs.Json.Int f.f_retries);
         ]
         @ (if f.f_timed_out then [ ("timed_out", Obs.Json.Int 1) ] else [])
         @ stamp t)
    | Pending ->
      Obs.Json.obj
        ([ ("cell", Obs.Json.String id); ("status", Obs.Json.String "pending") ]
         @ stamp t)
  in
  append_log ~dir line

(* A "running" line marks the moment an attempt was spawned.  It never
   changes a cell's resume status — [statuses] replays it as Pending —
   but [timings] mines it for wall-clock start/elapsed, which is how
   [campaign status] and [top] spot stragglers. *)
let record_start ~dir ~t id =
  append_log ~dir
    (Obs.Json.obj
       [ ("cell", Obs.Json.String id); ("status", Obs.Json.String "running");
         ("t", Obs.Json.Float t) ])

(* Last line per cell wins; unknown ids (from an older grid) are
   ignored, lines that fail to parse are skipped — the log is
   append-only and a torn final line from a kill is expected. *)
let statuses ~dir spec =
  let table = Hashtbl.create 64 in
  (match read_file (log_path dir) with
   | Error _ -> ()
   | Ok text ->
     String.split_on_char '\n' text
     |> List.iter (fun line ->
            if String.trim line <> "" then
              match Obs.Json.parse_obj line with
              | None -> ()
              | Some fields ->
                (match
                   (Obs.Json.mem_string fields "cell", Obs.Json.mem_string fields "status")
                 with
                 | Some id, Some "done" -> Hashtbl.replace table id Done
                 | Some id, Some "failed" ->
                   let msg =
                     match Obs.Json.mem_string fields "error" with
                     | Some e -> e
                     | None -> "failed"
                   in
                   let retries =
                     Option.value (Obs.Json.mem_int fields "retries") ~default:0
                   in
                   let timed_out = Obs.Json.mem_int fields "timed_out" = Some 1 in
                   Hashtbl.replace table id
                     (failed ~timed_out ~retries msg)
                 | Some id, Some "pending" -> Hashtbl.replace table id Pending
                 (* a running attempt is not a completion: for resume
                    purposes the cell is still pending *)
                 | Some id, Some "running" -> Hashtbl.replace table id Pending
                 | _ -> ())));
  List.map
    (fun (p : Spec.point) ->
      match Hashtbl.find_opt table p.Spec.id with
      | Some st -> (p, st)
      | None -> (p, Pending))
    (Spec.points spec)

(* --- wall-clock timings --------------------------------------------- *)

type timing = { t_started : float option; t_finished : float option }

(* Replay the log for timestamps: a "running" line opens an attempt
   (clearing any earlier finish), "done"/"failed" closes it, "pending"
   re-queues the cell and forgets both.  Cells appear in first-mention
   order; lines without a "t" field (older logs) contribute [None]. *)
let timings ~dir =
  let table : (string, timing) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  (match read_file (log_path dir) with
   | Error _ -> ()
   | Ok text ->
     String.split_on_char '\n' text
     |> List.iter (fun line ->
            if String.trim line <> "" then
              match Obs.Json.parse_obj line with
              | None -> ()
              | Some fields ->
                (match
                   (Obs.Json.mem_string fields "cell", Obs.Json.mem_string fields "status")
                 with
                 | Some id, Some status ->
                   let t =
                     match List.assoc_opt "t" fields with
                     | Some (Obs.Json.Float f) -> Some f
                     | Some (Obs.Json.Int n) -> Some (float_of_int n)
                     | _ -> None
                   in
                   let prev =
                     match Hashtbl.find_opt table id with
                     | Some tm -> tm
                     | None ->
                       order := id :: !order;
                       { t_started = None; t_finished = None }
                   in
                   let next =
                     match status with
                     | "running" -> { t_started = t; t_finished = None }
                     | "done" | "failed" -> { prev with t_finished = t }
                     | "pending" -> { t_started = None; t_finished = None }
                     | _ -> prev
                   in
                   Hashtbl.replace table id next
                 | _ -> ())));
  List.rev_map (fun id -> (id, Hashtbl.find table id)) !order

(* --- loading results ------------------------------------------------ *)

type loaded = {
  point : Spec.point;
  status : status;
  metrics : (string * float) list;  (* flattened; [] unless Done *)
}

(* Flatten a dsas-metrics/1 document to scalar bindings: counters and
   gauges by name; stats as .mean/.min/.max/.count; histograms as
   .p50/.p90/.p99/.count.  Series are shapes, not scalars — skipped. *)
let flatten_metrics doc =
  let section name f =
    match Obs.Json.tree_mem doc name with
    | Some (Obs.Json.TObj fields) -> List.concat_map f fields
    | _ -> []
  in
  let num v = match v with Obs.Json.TNum f -> Some f | _ -> None in
  let sub keys (k, v) =
    List.filter_map
      (fun key ->
        match v with
        | Obs.Json.TObj _ ->
          (match Obs.Json.tree_num v key with
           | Some f -> Some (k ^ "." ^ key, f)
           | None -> None)
        | _ -> None)
      keys
  in
  section "counters" (fun (k, v) ->
      match num v with Some f -> [ (k, f) ] | None -> [])
  @ section "gauges" (fun (k, v) ->
        match num v with Some f -> [ (k, f) ] | None -> [])
  @ section "stats" (sub [ "mean"; "min"; "max"; "count" ])
  @ section "histograms" (sub [ "p50"; "p90"; "p99"; "count" ])

let load_metrics path =
  match read_file path with
  | Error msg -> Error msg
  | Ok text ->
    (match Obs.Json.parse_tree text with
     | None -> Error (Printf.sprintf "%s: malformed JSON" path)
     | Some doc ->
       (match Obs.Json.tree_str doc "schema" with
        | Some "dsas-metrics/1" -> Ok (flatten_metrics doc)
        | Some other ->
          Error (Printf.sprintf "%s: schema %S, expected \"dsas-metrics/1\"" path other)
        | None -> Error (Printf.sprintf "%s: missing \"schema\" field" path)))

(* Strict on done cells: a cell the log claims done must have a
   readable artifact — a missing or torn metrics file is a store
   corruption worth surfacing, not an empty row. *)
let load ~dir =
  match load_spec ~dir with
  | Error msg -> Error msg
  | Ok spec ->
    let rec walk acc = function
      | [] -> Ok (List.rev acc)
      | ((p : Spec.point), st) :: rest ->
        (match st with
         | Done ->
           (match load_metrics (metrics_path ~dir p.Spec.id) with
            | Ok metrics -> walk ({ point = p; status = st; metrics } :: acc) rest
            | Error msg -> Error msg)
         | _ -> walk ({ point = p; status = st; metrics = [] } :: acc) rest)
    in
    Result.map (fun cells -> (spec, cells)) (walk [] (statuses ~dir spec))
