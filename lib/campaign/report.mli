(** Cross-run analytics over a loaded campaign.

    Three readers of {!Store.load} output: group-by aggregation of one
    metric along one axis, winner tables (for each value of one axis,
    which value of another axis has the best mean metric — the
    crossover frontier), and log-log power-law fits with
    committed-golden regression checking. *)

type group = {
  key : string;  (** the axis value *)
  count : int;
  mean : float;
  stddev : float;
  g_min : float;
  g_max : float;
}

val axis_value : Spec.point -> string -> string option
(** An axis binding by name; ["seed"] reads the point's seed. *)

val metric_value : Store.loaded -> string -> float option

val metric_names : Store.loaded list -> string list

val key_compare : string -> string -> int
(** Numeric when both parse as numbers, lexicographic otherwise. *)

val aggregate :
  Store.loaded list -> metric:string -> by:string -> (group list, string) result
(** Distribution of [metric] over done cells grouped by the [by] axis,
    groups sorted by {!key_compare}.  [Error] when nothing matches. *)

type winner = {
  w_key : string;
  w_winner : string;
  w_value : float;
}

val winners :
  Store.loaded list ->
  metric:string ->
  by:string ->
  contender:string ->
  maximize:bool ->
  (winner list, string) result
(** For every value of [by], the [contender] value with the best
    (lowest, or highest with [maximize]) mean [metric]. *)

(** {2 Power-law fits and goldens} *)

type agg =
  | Mean
  | Std

val agg_of_string : string -> (agg, string) result

val string_of_agg : agg -> string

type fitted = {
  f_metric : string;
  f_x : string;
  f_agg : agg;
  fit : Metrics.Stats.fit;  (** slope = the power-law exponent *)
  points : (float * float) list;  (** x value, aggregated metric *)
}

val fit :
  Store.loaded list ->
  metric:string ->
  x:string ->
  agg:agg ->
  (fitted, string) result
(** Aggregate [metric] within each numeric value of axis [x] (mean or
    across-seed stddev), then OLS on log10/log10.  Non-positive groups
    drop; at least two must survive. *)

type golden = {
  g_metric : string;
  g_x : string;
  g_agg : agg;
  exponent : float;
  tolerance : float;
}

val golden_to_json : golden -> string
(** Schema [dsas-fit-golden/1]. *)

val load_golden : string -> (golden, string) result

val check_golden : golden -> fitted -> (unit, string) result
(** [Error] when the fit is of a different quantity than the golden
    pins, or its exponent drifts beyond [tolerance]. *)
