(* The campaign executor: fan the pending grid points across a pool of
   forked workers, checkpointing one status-log line per completed
   cell.

   Isolation by fork, not threads: a cell that diverges, leaks or dies
   takes its process with it, and the parent records a failed cell and
   keeps going.  The child writes its artifacts (metrics, optional
   trace, error text) and exits; the parent is the only writer of the
   status log, so the log stays line-atomic without locking.

   Resume is free: the runner consults the replayed log and skips
   cells already done; failed cells are retried (their previous
   failure stays in the log — last line wins).  With a retry budget
   ([max_retries > 0]) the per-cell attempt count is itself part of
   the log, so a resumed campaign does not re-run a permanently
   failing cell forever: once a cell's recorded retries reach the
   budget it is skipped like a done cell.

   With [timeout_s] the parent polls (WNOHANG) instead of blocking in
   wait, and SIGKILLs any child past its wall-clock deadline; the
   failure is recorded as timed out.  Without it, the legacy blocking
   reap is kept — no polling overhead on the common path. *)

type runner =
  point:Spec.point ->
  quick:bool ->
  trace_path:string option ->
  metrics_path:string ->
  (unit, string) result

type outcome = {
  total : int;
  skipped : int;  (* already done (or out of retries) at run start *)
  ran : int;
  ok : int;
  failed : int;
  timed_out : int;  (* attempts killed at the wall-clock limit *)
  retried : int;  (* retry attempts performed this run *)
}

let take n items =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] items

let read_error ~dir id =
  match open_in_bin (Store.error_path ~dir id) with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some (String.trim s)

(* Runs in the child.  Any escape — an Error, an exception — lands in
   <id>.error.txt; the exit code tells the parent which way it went. *)
let run_cell ~dir ~spec ~runner (point : Spec.point) =
  let metrics_path = Store.metrics_path ~dir point.Spec.id in
  let trace_path =
    if point.Spec.traced then Some (Store.trace_path ~dir point.Spec.id) else None
  in
  let outcome =
    match runner ~point ~quick:spec.Spec.quick ~trace_path ~metrics_path with
    | r -> r
    | exception e -> Error (Printexc.to_string e)
  in
  match outcome with
  | Ok () -> 0
  | Error msg ->
    Store.write_atomic (Store.error_path ~dir point.Spec.id) (msg ^ "\n");
    1

(* One queued attempt: the grid point, failed attempts so far (across
   resumes — seeded from the log), and the earliest wall-clock time it
   may start (retry backoff). *)
type attempt = {
  at_point : Spec.point;
  at_retries : int;
  at_not_before : float;
}

type running = {
  r_attempt : attempt;
  r_deadline : float option;
  mutable r_timed_out : bool;
}

let run ?(jobs = 1) ?limit ?timeout_s ?(max_retries = 0) ?(retry_backoff_s = 0.)
    ?on_cell ~dir ~spec ~runner () =
  let jobs = if jobs < 1 then 1 else jobs in
  let statuses = Store.statuses ~dir spec in
  let total = List.length statuses in
  let pending =
    List.filter_map
      (fun ((p : Spec.point), st) ->
        match st with
        | Store.Done -> None
        | Store.Failed f when max_retries > 0 && f.Store.f_retries >= max_retries ->
          (* Out of budget on a previous invocation: resuming must not
             grind on a permanently failing cell. *)
          None
        | Store.Failed f ->
          Some { at_point = p; at_retries = f.Store.f_retries; at_not_before = 0. }
        | Store.Pending ->
          Some { at_point = p; at_retries = 0; at_not_before = 0. })
      statuses
  in
  let todo = match limit with Some n -> take n pending | None -> pending in
  let skipped = total - List.length pending in
  let queue = ref todo in
  let active = Hashtbl.create 16 in
  let ok = ref 0 and failed = ref 0 and timed_out = ref 0 and retried = ref 0 in
  let spawn (a : attempt) =
    (* Flush before forking: buffered output would otherwise be
       duplicated into every child. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      let code =
        match run_cell ~dir ~spec ~runner a.at_point with
        | code -> code
        | exception _ -> 1
      in
      (* _exit, not exit: at_exit handlers and channel flushing belong
         to the parent. *)
      Unix._exit code
    | pid ->
      (* lint: allow L1 — the cell timeout bounds host wall-clock time, not simulated time *)
      let now = Unix.gettimeofday () in
      let deadline = Option.map (fun t -> now +. t) timeout_s in
      Store.record_start ~dir ~t:now a.at_point.Spec.id;
      Hashtbl.replace active pid
        { r_attempt = a; r_deadline = deadline; r_timed_out = false }
  in
  let settle pid child_status =
    match Hashtbl.find_opt active pid with
    | None -> ()
    | Some r ->
      Hashtbl.remove active pid;
      let a = r.r_attempt in
      let point = a.at_point in
      let fail ?(timed_out = false) msg =
        Store.failed ~timed_out ~retries:(a.at_retries + 1) msg
      in
      let status =
        match child_status with
        | Unix.WEXITED 0 -> Store.Done
        | Unix.WEXITED code ->
          let msg =
            match read_error ~dir point.Spec.id with
            | Some m when m <> "" -> m
            | _ -> Printf.sprintf "exit code %d" code
          in
          fail msg
        | Unix.WSIGNALED n when r.r_timed_out ->
          fail ~timed_out:true
            (Printf.sprintf "timed out after %.1fs (killed by signal %d)"
               (Option.value timeout_s ~default:0.) n)
        | Unix.WSIGNALED n -> fail (Printf.sprintf "killed by signal %d" n)
        | Unix.WSTOPPED n -> fail (Printf.sprintf "stopped by signal %d" n)
      in
      (match status with
       | Store.Done -> incr ok
       | Store.Failed f ->
         if f.Store.f_timed_out then incr timed_out;
         if f.Store.f_retries < max_retries then begin
           (* Budget left: log the attempt, back off linearly, requeue
              at the tail. *)
           incr retried;
           queue :=
             !queue
             @ [
                 {
                   at_point = point;
                   at_retries = f.Store.f_retries;
                   at_not_before =
                     (* lint: allow L1 — retry backoff is host wall-clock by definition *)
                     Unix.gettimeofday ()
                     +. (retry_backoff_s *. float_of_int f.Store.f_retries);
                 };
               ]
         end
         else incr failed
       | Store.Pending -> ());
      (* lint: allow L1 — completion stamps are host wall-clock by definition *)
      Store.record ~t:(Unix.gettimeofday ()) ~dir point.Spec.id status;
      (match on_cell with Some f -> f point status | None -> ())
  in
  let reap_blocking () =
    match Unix.wait () with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | pid, child_status -> settle pid child_status
  in
  (* Poll mode (used whenever a deadline or a backoff is in play): kill
     overdue children, reap without blocking, sleep a tick if nothing
     moved. *)
  let kill_overdue () =
    (* lint: allow L1 — deadline enforcement reads the host clock on purpose *)
    let now = Unix.gettimeofday () in
    (* lint: allow L3 — every overdue child is killed; visit order cannot matter *)
    Hashtbl.iter
      (fun pid r ->
        match r.r_deadline with
        | Some d when now >= d && not r.r_timed_out ->
          r.r_timed_out <- true;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        | _ -> ())
      active
  in
  let reap_polling () =
    kill_overdue ();
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | 0, _ -> Unix.sleepf 0.02
    | pid, child_status -> settle pid child_status
  in
  let startable () =
    (* First queued attempt whose backoff has elapsed. *)
    (* lint: allow L1 — backoff comparison is against the host clock *)
    let now = Unix.gettimeofday () in
    let rec pick acc = function
      | [] -> None
      | a :: rest when a.at_not_before <= now ->
        queue := List.rev_append acc rest;
        Some a
      | a :: rest -> pick (a :: acc) rest
    in
    pick [] !queue
  in
  let all_backing_off () =
    !queue <> [] && Hashtbl.length active = 0 && startable () = None
  in
  while !queue <> [] || Hashtbl.length active > 0 do
    let spawned = ref true in
    while !spawned && Hashtbl.length active < jobs do
      match startable () with
      | Some a -> spawn a
      | None -> spawned := false
    done;
    if Hashtbl.length active > 0 then begin
      if timeout_s = None then reap_blocking () else reap_polling ()
    end
    else if all_backing_off () then Unix.sleepf 0.02
  done;
  {
    total;
    skipped;
    ran = !ok + !failed;
    ok = !ok;
    failed = !failed;
    timed_out = !timed_out;
    retried = !retried;
  }
