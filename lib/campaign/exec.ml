(* The campaign executor: fan the pending grid points across a pool of
   forked workers, checkpointing one status-log line per completed
   cell.

   Isolation by fork, not threads: a cell that diverges, leaks or dies
   takes its process with it, and the parent records a failed cell and
   keeps going.  The child writes its artifacts (metrics, optional
   trace, error text) and exits; the parent is the only writer of the
   status log, so the log stays line-atomic without locking.

   Resume is free: the runner consults the replayed log and skips
   cells already done; failed cells are retried (their previous
   failure stays in the log — last line wins). *)

type runner =
  point:Spec.point ->
  quick:bool ->
  trace_path:string option ->
  metrics_path:string ->
  (unit, string) result

type outcome = {
  total : int;
  skipped : int;  (* already done when the run started *)
  ran : int;
  ok : int;
  failed : int;
}

let take n items =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] items

let read_error ~dir id =
  match open_in_bin (Store.error_path ~dir id) with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some (String.trim s)

(* Runs in the child.  Any escape — an Error, an exception — lands in
   <id>.error.txt; the exit code tells the parent which way it went. *)
let run_cell ~dir ~spec ~runner (point : Spec.point) =
  let metrics_path = Store.metrics_path ~dir point.Spec.id in
  let trace_path =
    if point.Spec.traced then Some (Store.trace_path ~dir point.Spec.id) else None
  in
  let outcome =
    match runner ~point ~quick:spec.Spec.quick ~trace_path ~metrics_path with
    | r -> r
    | exception e -> Error (Printexc.to_string e)
  in
  match outcome with
  | Ok () -> 0
  | Error msg ->
    Store.write_atomic (Store.error_path ~dir point.Spec.id) (msg ^ "\n");
    1

let run ?(jobs = 1) ?limit ?on_cell ~dir ~spec ~runner () =
  let jobs = if jobs < 1 then 1 else jobs in
  let statuses = Store.statuses ~dir spec in
  let total = List.length statuses in
  let pending =
    List.filter_map
      (fun ((p : Spec.point), st) ->
        match st with Store.Done -> None | _ -> Some p)
      statuses
  in
  let todo = match limit with Some n -> take n pending | None -> pending in
  let skipped = total - List.length pending in
  let queue = ref todo in
  let active = Hashtbl.create 16 in
  let ok = ref 0 and failed = ref 0 in
  let spawn (point : Spec.point) =
    (* Flush before forking: buffered output would otherwise be
       duplicated into every child. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      let code =
        match run_cell ~dir ~spec ~runner point with
        | code -> code
        | exception _ -> 1
      in
      (* _exit, not exit: at_exit handlers and channel flushing belong
         to the parent. *)
      Unix._exit code
    | pid -> Hashtbl.replace active pid point
  in
  let reap () =
    match Unix.wait () with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | pid, child_status ->
      (match Hashtbl.find_opt active pid with
       | None -> ()
       | Some point ->
         Hashtbl.remove active pid;
         let status =
           match child_status with
           | Unix.WEXITED 0 -> Store.Done
           | Unix.WEXITED code ->
             let msg =
               match read_error ~dir point.Spec.id with
               | Some m when m <> "" -> m
               | _ -> Printf.sprintf "exit code %d" code
             in
             Store.Failed msg
           | Unix.WSIGNALED n -> Store.Failed (Printf.sprintf "killed by signal %d" n)
           | Unix.WSTOPPED n -> Store.Failed (Printf.sprintf "stopped by signal %d" n)
         in
         (match status with
          | Store.Done -> incr ok
          | Store.Failed _ -> incr failed
          | Store.Pending -> ());
         Store.record ~dir point.Spec.id status;
         (match on_cell with Some f -> f point status | None -> ()))
  in
  while !queue <> [] || Hashtbl.length active > 0 do
    while !queue <> [] && Hashtbl.length active < jobs do
      match !queue with
      | [] -> ()
      | p :: rest ->
        queue := rest;
        spawn p
    done;
    if Hashtbl.length active > 0 then reap ()
  done;
  { total; skipped; ran = !ok + !failed; ok = !ok; failed = !failed }
