(* Cross-run analytics over a loaded campaign: group-by aggregation
   (who wins where), winner tables (crossover frontiers), and log-log
   power-law fits with committed-golden checking (finite-size
   scaling). *)

type group = {
  key : string;
  count : int;
  mean : float;
  stddev : float;
  g_min : float;
  g_max : float;
}

let done_cells cells =
  List.filter (fun (c : Store.loaded) -> match c.status with Store.Done -> true | _ -> false) cells

let axis_value (p : Spec.point) name =
  if name = "seed" then Some (string_of_int p.Spec.seed)
  else List.assoc_opt name p.Spec.params

let metric_value (c : Store.loaded) name = List.assoc_opt name c.metrics

let metric_names cells =
  List.sort_uniq compare
    (List.concat_map (fun (c : Store.loaded) -> List.map fst c.metrics) (done_cells cells))

(* Axis values are strings but usually numbers; sort numerically when
   both sides parse, so "words" groups come out 1024, 4096, ... *)
let key_compare a b =
  match (float_of_string_opt a, float_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> compare a b

let grouped cells ~metric ~by =
  let table = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun (c : Store.loaded) ->
      match (axis_value c.point by, metric_value c metric) with
      | Some key, Some v ->
        let st =
          match Hashtbl.find_opt table key with
          | Some st -> st
          | None ->
            let st = Metrics.Stats.create () in
            Hashtbl.replace table key st;
            keys := key :: !keys;
            st
        in
        Metrics.Stats.add st v
      | _ -> ())
    (done_cells cells);
  List.sort key_compare (List.sort_uniq compare !keys)
  |> List.map (fun key ->
         match Hashtbl.find_opt table key with
         | Some st ->
           {
             key;
             count = Metrics.Stats.count st;
             mean = Metrics.Stats.mean st;
             stddev = Metrics.Stats.stddev st;
             g_min = Metrics.Stats.min st;
             g_max = Metrics.Stats.max st;
           }
         | None -> { key; count = 0; mean = 0.; stddev = 0.; g_min = 0.; g_max = 0. })

let aggregate cells ~metric ~by =
  match grouped cells ~metric ~by with
  | [] ->
    Error
      (Printf.sprintf "no done cell carries metric %S with axis %S" metric by)
  | groups -> Ok groups

(* For every value of [by], the [contender] value with the best mean
   metric — the crossover table (e.g. which policy wins at each store
   size). *)
type winner = {
  w_key : string;  (* the [by] value *)
  w_winner : string;  (* the winning [contender] value *)
  w_value : float;  (* its mean metric *)
}

let winners cells ~metric ~by ~contender ~maximize =
  let pairs = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun (c : Store.loaded) ->
      match
        (axis_value c.point by, axis_value c.point contender, metric_value c metric)
      with
      | Some key, Some cont, Some v ->
        let slot = (key, cont) in
        let st =
          match Hashtbl.find_opt pairs slot with
          | Some st -> st
          | None ->
            let st = Metrics.Stats.create () in
            Hashtbl.replace pairs slot st;
            keys := slot :: !keys;
            st
        in
        Metrics.Stats.add st v
      | _ -> ())
    (done_cells cells);
  let slots = List.sort_uniq compare !keys in
  let by_values = List.sort key_compare (List.sort_uniq compare (List.map fst slots)) in
  match by_values with
  | [] ->
    Error
      (Printf.sprintf
         "no done cell carries metric %S with axes %S and %S" metric by contender)
  | _ ->
    Ok
      (List.map
         (fun key ->
           let best =
             List.fold_left
               (fun best (k, cont) ->
                 if k <> key then best
                 else
                   match Hashtbl.find_opt pairs (k, cont) with
                   | None -> best
                   | Some st ->
                     let v = Metrics.Stats.mean st in
                     (match best with
                      | None -> Some (cont, v)
                      | Some (_, bv) ->
                        if (maximize && v > bv) || ((not maximize) && v < bv) then
                          Some (cont, v)
                        else best))
               None slots
           in
           match best with
           | Some (cont, v) -> { w_key = key; w_winner = cont; w_value = v }
           | None -> { w_key = key; w_winner = "-"; w_value = 0. })
         by_values)

(* --- power-law fits ------------------------------------------------- *)

type agg =
  | Mean
  | Std

let agg_of_string = function
  | "mean" -> Ok Mean
  | "std" -> Ok Std
  | other -> Error (Printf.sprintf "unknown aggregation %S (mean | std)" other)

let string_of_agg = function Mean -> "mean" | Std -> "std"

type fitted = {
  f_metric : string;
  f_x : string;
  f_agg : agg;
  fit : Metrics.Stats.fit;
  points : (float * float) list;  (* x value, aggregated metric *)
}

(* Group by the numeric [x] axis, aggregate the metric within each
   group (across seeds and any other axes), then OLS on log10/log10.
   Non-positive aggregates cannot be logged and are dropped — a fit
   needs at least two surviving groups. *)
let fit cells ~metric ~x ~agg =
  match aggregate cells ~metric ~by:x with
  | Error e -> Error e
  | Ok groups ->
    let points =
      List.filter_map
        (fun g ->
          match float_of_string_opt g.key with
          | None -> None
          | Some xv ->
            let yv = match agg with Mean -> g.mean | Std -> g.stddev in
            if xv > 0. && yv > 0. then Some (xv, yv) else None)
        groups
    in
    (match
       Metrics.Stats.linfit
         (List.map (fun (xv, yv) -> (log10 xv, log10 yv)) points)
     with
     | Some f -> Ok { f_metric = metric; f_x = x; f_agg = agg; fit = f; points }
     | None ->
       Error
         (Printf.sprintf
            "fit of %s(%s) vs %s needs at least two positive groups" (string_of_agg agg)
            metric x))

(* --- committed goldens ---------------------------------------------- *)

type golden = {
  g_metric : string;
  g_x : string;
  g_agg : agg;
  exponent : float;
  tolerance : float;
}

let golden_schema = "dsas-fit-golden/1"

let golden_to_json g =
  Obs.Json.obj
    [
      ("schema", Obs.Json.String golden_schema);
      ("metric", Obs.Json.String g.g_metric);
      ("x", Obs.Json.String g.g_x);
      ("agg", Obs.Json.String (string_of_agg g.g_agg));
      ("exponent", Obs.Json.Float g.exponent);
      ("tolerance", Obs.Json.Float g.tolerance);
    ]

let read_file filename =
  match open_in_bin filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let load_golden filename =
  let ( let* ) = Result.bind in
  let* text = read_file filename in
  match Obs.Json.parse_tree text with
  | None -> Error (Printf.sprintf "%s: malformed JSON" filename)
  | Some doc ->
    let* () =
      match Obs.Json.tree_str doc "schema" with
      | Some s when s = golden_schema -> Ok ()
      | Some other ->
        Error (Printf.sprintf "%s: schema %S, expected %S" filename other golden_schema)
      | None -> Error (Printf.sprintf "%s: missing \"schema\" field" filename)
    in
    let str name =
      match Obs.Json.tree_str doc name with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "%s: missing %S field" filename name)
    in
    let num name =
      match Obs.Json.tree_num doc name with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: missing %S field" filename name)
    in
    let* g_metric = str "metric" in
    let* g_x = str "x" in
    let* agg_s = str "agg" in
    let* g_agg = agg_of_string agg_s in
    let* exponent = num "exponent" in
    let* tolerance = num "tolerance" in
    Ok { g_metric; g_x; g_agg; exponent; tolerance }

(* The golden pins the fit's identity (metric, axis, aggregation) as
   well as its exponent: comparing a fresh fit of the wrong quantity
   against a matching number would be a silent false pass. *)
let check_golden g (f : fitted) =
  if g.g_metric <> f.f_metric || g.g_x <> f.f_x || g.g_agg <> f.f_agg then
    Error
      (Printf.sprintf
         "golden is for %s(%s) vs %s, fit is %s(%s) vs %s"
         (string_of_agg g.g_agg) g.g_metric g.g_x (string_of_agg f.f_agg) f.f_metric
         f.f_x)
  else begin
    let delta = abs_float (f.fit.Metrics.Stats.slope -. g.exponent) in
    if delta <= g.tolerance then Ok ()
    else
      Error
        (Printf.sprintf
           "exponent %+.4f differs from golden %+.4f by %.4f (tolerance %.4f)"
           f.fit.Metrics.Stats.slope g.exponent delta g.tolerance)
  end
