(* Declarative sweep specification: a cell kind, an ordered list of
   parameter axes, and a list of seeds.  The cartesian product of axis
   values times seeds is the campaign's cell grid; every grid point has
   a deterministic id built from its bindings, so a campaign directory
   can be resumed, diffed and joined across runs by id alone. *)

type axis = {
  axis_name : string;
  values : string list;
}

type t = {
  name : string;
  cell : string;
  seeds : int list;
  quick : bool;
  trace_every : int;  (* 0 = no traces; else every Nth grid point *)
  axes : axis list;
}

type point = {
  id : string;
  params : (string * string) list;
  seed : int;
  traced : bool;
}

let schema = "dsas-campaign-spec/1"

(* Ids become file names and diff keys: restrict every token to a
   filesystem- and separator-safe alphabet. *)
let token_ok s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       s

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (token_ok t.name) "campaign name must be a [A-Za-z0-9._-]+ token" in
  let* () = check (token_ok t.cell) "cell kind must be a [A-Za-z0-9._-]+ token" in
  let* () = check (t.seeds <> []) "seeds must be non-empty" in
  let* () = check (t.trace_every >= 0) "trace_every must be >= 0" in
  let rec check_axes seen = function
    | [] -> Ok ()
    | a :: rest ->
      if not (token_ok a.axis_name) then
        Error (Printf.sprintf "axis name %S must be a [A-Za-z0-9._-]+ token" a.axis_name)
      else if a.axis_name = "seed" then
        Error "axis name \"seed\" is reserved (use the seeds list)"
      else if List.mem a.axis_name seen then
        Error (Printf.sprintf "duplicate axis %S" a.axis_name)
      else if a.values = [] then
        Error (Printf.sprintf "axis %S has no values" a.axis_name)
      else begin
        match List.find_opt (fun v -> not (token_ok v)) a.values with
        | Some v ->
          Error
            (Printf.sprintf "axis %S value %S must be a [A-Za-z0-9._-]+ token"
               a.axis_name v)
        | None -> check_axes (a.axis_name :: seen) rest
      end
  in
  check_axes [] t.axes

let id_of ~params ~seed =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=" ^ v) params @ [ Printf.sprintf "seed=%d" seed ])

let points t =
  let combos =
    List.fold_left
      (fun acc axis ->
        List.concat_map
          (fun params -> List.map (fun v -> params @ [ (axis.axis_name, v) ]) axis.values)
          acc)
      [ [] ] t.axes
  in
  let flat =
    List.concat_map
      (fun params -> List.map (fun seed -> (params, seed)) t.seeds)
      combos
  in
  List.mapi
    (fun i (params, seed) ->
      {
        id = id_of ~params ~seed;
        params;
        seed;
        traced = t.trace_every > 0 && i mod t.trace_every = 0;
      })
    flat

let to_json t =
  let axis_obj a =
    Obs.Json.Raw
      (Obs.Json.obj
         [
           ("name", Obs.Json.String a.axis_name);
           ( "values",
             Obs.Json.Raw
               (Obs.Json.array (List.map (fun v -> Obs.Json.String v) a.values)) );
         ])
  in
  Obs.Json.obj
    [
      ("schema", Obs.Json.String schema);
      ("name", Obs.Json.String t.name);
      ("cell", Obs.Json.String t.cell);
      ( "seeds",
        Obs.Json.Raw (Obs.Json.array (List.map (fun s -> Obs.Json.Int s) t.seeds)) );
      ("quick", Obs.Json.Raw (if t.quick then "true" else "false"));
      ("trace_every", Obs.Json.Int t.trace_every);
      ("axes", Obs.Json.Raw (Obs.Json.array (List.map axis_obj t.axes)));
    ]

(* The hash is over the canonical serialisation, so any change to the
   grid — name, cell, an axis value, a seed — re-keys the campaign and
   a resume into a stale directory is refused. *)
let config_hash t = Digest.to_hex (Digest.string (to_json t))

let string_of_num f =
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let of_json text =
  let ( let* ) = Result.bind in
  match Obs.Json.parse_tree text with
  | None -> Error "malformed JSON"
  | Some doc ->
    let* () =
      match Obs.Json.tree_str doc "schema" with
      | Some s when s = schema -> Ok ()
      | Some other -> Error (Printf.sprintf "schema %S, expected %S" other schema)
      | None -> Error "missing \"schema\" field"
    in
    let* name =
      match Obs.Json.tree_str doc "name" with
      | Some n -> Ok n
      | None -> Error "missing \"name\" field"
    in
    let* cell =
      match Obs.Json.tree_str doc "cell" with
      | Some c -> Ok c
      | None -> Error "missing \"cell\" field"
    in
    let* seeds =
      match Obs.Json.tree_mem doc "seeds" with
      | None -> Ok [ 0 ]
      | Some (Obs.Json.TArr items) ->
        let rec ints acc = function
          | [] -> Ok (List.rev acc)
          | Obs.Json.TNum f :: rest -> ints (int_of_float f :: acc) rest
          | _ -> Error "\"seeds\" must be an array of integers"
        in
        ints [] items
      | Some _ -> Error "\"seeds\" must be an array of integers"
    in
    let quick =
      match Obs.Json.tree_mem doc "quick" with
      | Some (Obs.Json.TBool b) -> b
      | _ -> false
    in
    let trace_every =
      match Obs.Json.tree_num doc "trace_every" with
      | Some f -> int_of_float f
      | None -> 0
    in
    let* axes =
      match Obs.Json.tree_mem doc "axes" with
      | None -> Ok []
      | Some (Obs.Json.TArr items) ->
        let axis_of item =
          match Obs.Json.tree_str item "name" with
          | None -> Error "axis missing \"name\""
          | Some axis_name ->
            (match Obs.Json.tree_mem item "values" with
             | Some (Obs.Json.TArr vs) ->
               let value_of = function
                 | Obs.Json.TStr s -> Ok s
                 | Obs.Json.TNum f -> Ok (string_of_num f)
                 | _ ->
                   Error
                     (Printf.sprintf "axis %S values must be strings or numbers"
                        axis_name)
               in
               let rec all acc = function
                 | [] -> Ok (List.rev acc)
                 | v :: rest ->
                   (match value_of v with
                    | Ok s -> all (s :: acc) rest
                    | Error e -> Error e)
               in
               Result.map (fun values -> { axis_name; values }) (all [] vs)
             | _ -> Error (Printf.sprintf "axis %S missing \"values\" array" axis_name))
        in
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
            (match axis_of item with
             | Ok a -> all (a :: acc) rest
             | Error e -> Error e)
        in
        all [] items
      | Some _ -> Error "\"axes\" must be an array"
    in
    let t = { name; cell; seeds; quick; trace_every; axes } in
    let* () = validate t in
    Ok t

let read_file filename =
  match open_in_bin filename with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let load filename =
  match read_file filename with
  | Error msg -> Error msg
  | Ok text ->
    (match of_json text with
     | Ok t -> Ok t
     | Error msg -> Error (Printf.sprintf "%s: %s" filename msg))
