(** The on-disk campaign store (schema [dsas-campaign/1]).

    One directory per campaign: the spec and manifest at the top, an
    append-only [cells.jsonl] status log (the checkpoint — last line
    per cell id wins), and one [dsas-metrics/1] artifact per completed
    cell under [cells/].  Metrics are written atomically (temp file +
    rename), so a kill mid-write never leaves a half-artifact that
    parses; a torn final log line is skipped on replay. *)

type failure = {
  f_msg : string;
  f_timed_out : bool;
      (** the attempt was killed at the executor's wall-clock limit *)
  f_retries : int;  (** failed attempts before this one *)
}

type status =
  | Pending
  | Done
  | Failed of failure

val failed : ?timed_out:bool -> ?retries:int -> string -> status
(** [Failed] with defaults: not a timeout, no prior attempts. *)

val spec_path : string -> string

val manifest_path : string -> string

val log_path : string -> string

val metrics_path : dir:string -> string -> string
(** [cells/<id>.metrics.json] *)

val trace_path : dir:string -> string -> string

val error_path : dir:string -> string -> string

val init : dir:string -> spec:Spec.t -> git:string option -> (unit, string) result
(** Create the directory, [spec.json] and [manifest.json] — or, when
    the directory already holds a spec, verify it hashes identically
    (the resume path) and touch nothing.  [Error] when the directory
    holds a different grid. *)

val load_spec : dir:string -> (Spec.t, string) result

val record : ?t:float -> dir:string -> string -> status -> unit
(** Append one status line for a cell id and flush — the per-cell
    checkpoint.  [t] optionally stamps the line with a wall-clock time
    (Unix epoch seconds; the executor supplies it — the store never
    reads a clock) for {!timings}. *)

val record_start : dir:string -> t:float -> string -> unit
(** Append a ["running"] line marking the moment an attempt spawned.
    Purely informational for {!timings} / [campaign status]:
    {!statuses} replays it as [Pending], so resume semantics are
    unchanged. *)

val statuses : dir:string -> Spec.t -> (Spec.point * status) list
(** Replay the log over the spec's grid, in grid order.  Unknown ids
    and unparseable lines are ignored; cells never mentioned are
    [Pending]; ["running"] lines replay as [Pending]. *)

type timing = {
  t_started : float option;  (** last attempt's spawn time *)
  t_finished : float option;  (** its completion time, [None] while running *)
}

val timings : dir:string -> (string * timing) list
(** Wall-clock bookkeeping mined from the log's ["t"] stamps, one
    entry per cell ever mentioned, in first-mention order.  A
    ["running"] line opens an attempt (clearing any earlier finish), a
    done/failed line closes it, a ["pending"] line forgets both.
    Lines from older logs without stamps contribute [None]s. *)

type loaded = {
  point : Spec.point;
  status : status;
  metrics : (string * float) list;
      (** flattened scalars: counters and gauges by name, stats as
          [.mean]/[.min]/[.max]/[.count], histograms as
          [.p50]/[.p90]/[.p99]/[.count]; [[]] unless [Done] *)
}

val load_metrics : string -> ((string * float) list, string) result

val load : dir:string -> (Spec.t * loaded list, string) result
(** Spec plus every grid point with its status and (for done cells)
    flattened metrics.  Strict: a cell the log claims done must have a
    readable artifact. *)

val write_atomic : string -> string -> unit

val mkdir_p : string -> unit
