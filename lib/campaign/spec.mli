(** Declarative sweep specification (schema [dsas-campaign-spec/1]).

    A campaign is the cartesian product of ordered parameter axes times
    a list of seeds, all running one cell kind.  Every grid point has a
    deterministic id ([axis=value,...,seed=N]) built from its bindings,
    so a campaign directory can be resumed, diffed and joined across
    runs by id alone.  All tokens (names, axis names, values) are
    restricted to [[A-Za-z0-9._-]+] — ids double as file names. *)

type axis = {
  axis_name : string;
  values : string list;
}

type t = {
  name : string;
  cell : string;  (** cell kind the executor runs at every point *)
  seeds : int list;
  quick : bool;  (** run cells at reduced scale *)
  trace_every : int;  (** 0 = no traces; else every Nth grid point *)
  axes : axis list;  (** ordered; first axis varies slowest *)
}

type point = {
  id : string;
  params : (string * string) list;  (** axis bindings, in axis order *)
  seed : int;
  traced : bool;
}

val validate : t -> (unit, string) result
(** Token alphabet, unique axis names, non-empty values and seeds.
    The axis name ["seed"] is reserved. *)

val points : t -> point list
(** The full grid, in deterministic order: axes outer-to-inner, seeds
    innermost. *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** Parse and {!validate}.  [seeds] defaults to [[0]], [quick] to
    [false], [trace_every] to [0], [axes] to [[]] (a single point per
    seed).  Numeric axis values are stringified. *)

val load : string -> (t, string) result

val config_hash : t -> string
(** MD5 of the canonical serialisation: any change to the grid re-keys
    the campaign, so a resume into a stale directory is refused. *)
