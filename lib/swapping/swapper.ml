type config = {
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  placement : Freelist.Policy.t;
  compact_on_failure : bool;
  device : Device.Model.t option;
}

type program = {
  prog_name : string;
  size : int;
  registers : Relocation.t;
  backing_addr : int;
  mutable resident : bool;
  mutable modified : bool;
  mutable last_used : int;
}

type id = int

type t = {
  cfg : config;
  allocator : Freelist.Allocator.t;
  channel : Memstore.Channel.t;
  mutable programs : program array;
  mutable count : int;
  mutable backing_frontier : int;
  mutable tick : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable words_swapped : int;
  mutable compactions : int;
  mutable mirror_writes : int;
  mutable swap_in_failures : int;
}

let create cfg =
  let core_words = Memstore.Level.size cfg.core in
  {
    cfg;
    allocator =
      Freelist.Allocator.create
        (Memstore.Level.physical cfg.core)
        ~base:0 ~len:core_words ~policy:cfg.placement;
    channel = Memstore.Channel.create (Memstore.Level.clock cfg.core) ~word_ns:500;
    programs = [||];
    count = 0;
    backing_frontier = 0;
    tick = 0;
    swap_ins = 0;
    swap_outs = 0;
    words_swapped = 0;
    compactions = 0;
    mirror_writes = 0;
    swap_in_failures = 0;
  }

let program t id =
  if id < 0 || id >= t.count then invalid_arg "Swapper: unknown program";
  t.programs.(id)

(* A whole-program transfer: the blit always happens; timing comes from
   the device model when one is configured (the swap waits for the
   timed completion), else from the flat [Level.transfer] charge.
   [Error] carries the terminal device failure (only under a
   [Fault.Fail] escalation policy); the clock has still advanced to the
   moment the device gave up. *)
let timed_transfer t ~kind ~id ~src ~src_off ~dst ~dst_off ~len =
  match t.cfg.device with
  | None ->
    Memstore.Level.transfer ~src ~src_off ~dst ~dst_off ~len;
    Ok ()
  | Some m ->
    Memstore.Physical.blit
      ~src:(Memstore.Level.physical src)
      ~src_off
      ~dst:(Memstore.Level.physical dst)
      ~dst_off ~len;
    let clock = Memstore.Level.clock t.cfg.core in
    (match Device.Model.fetch_result m ~now:(Sim.Clock.now clock) ~kind ~page:id ~words:len with
     | Ok fin ->
       Sim.Clock.advance_to clock fin;
       Ok ()
     | Error f ->
       Sim.Clock.advance_to clock f.at_us;
       Error f)

let add_program t ~name ~size =
  assert (size > 0);
  if t.backing_frontier + size > Memstore.Level.size t.cfg.backing then
    (* lint: allow L4 — backing exhaustion is a documented fatal misconfiguration *)
    failwith "Swapper: backing storage exhausted";
  if t.count >= Array.length t.programs then begin
    let dummy =
      {
        prog_name = "";
        size = 0;
        registers = Relocation.create ~base:0 ~limit:0;
        backing_addr = 0;
        resident = false;
        modified = false;
        last_used = 0;
      }
    in
    let grown = Array.make (max 8 (2 * Array.length t.programs)) dummy in
    Array.blit t.programs 0 grown 0 t.count;
    t.programs <- grown
  end;
  let id = t.count in
  t.count <- t.count + 1;
  t.programs.(id) <-
    {
      prog_name = name;
      size;
      registers = Relocation.create ~base:0 ~limit:size;
      backing_addr = t.backing_frontier;
      resident = false;
      modified = false;
      last_used = 0;
    };
  t.backing_frontier <- t.backing_frontier + size;
  id

(* A write-out that terminally fails would strand the only current copy
   of a modified program in core, so the swapper never surfaces it:
   the image is re-written over the fault-immune (duplexed) path,
   paying the extra device time. *)
let write_back t id (p : program) =
  (match
     timed_transfer t ~kind:Device.Request.Writeback ~id ~src:t.cfg.core
       ~src_off:(Relocation.base p.registers) ~dst:t.cfg.backing
       ~dst_off:p.backing_addr ~len:p.size
   with
   | Ok () -> ()
   | Error _ ->
     t.mirror_writes <- t.mirror_writes + 1;
     (match t.cfg.device with
      | None -> assert false (* only the device path can fail *)
      | Some m ->
        let clock = Memstore.Level.clock t.cfg.core in
        (match
           Device.Model.fetch_result ~immune:true m ~now:(Sim.Clock.now clock)
             ~kind:Device.Request.Writeback ~page:id ~words:p.size
         with
         | Ok fin -> Sim.Clock.advance_to clock fin
         | Error _ -> assert false (* immune requests never fail *))));
  t.words_swapped <- t.words_swapped + p.size;
  p.modified <- false

let swap_out t id =
  let p = program t id in
  if p.resident then begin
    if p.modified then write_back t id p;
    Freelist.Allocator.free t.allocator (Relocation.base p.registers);
    p.resident <- false;
    t.swap_outs <- t.swap_outs + 1
  end

(* The least recently used resident program other than [keep]. *)
let lru_resident t ~keep =
  let best = ref None in
  for id = 0 to t.count - 1 do
    let p = t.programs.(id) in
    if p.resident && id <> keep then
      match !best with
      | Some b when t.programs.(b).last_used <= p.last_used -> ()
      | Some _ | None -> best := Some id
  done;
  !best

let compact t =
  Obs.Prof.span "swap.compact" @@ fun () ->
  t.compactions <- t.compactions + 1;
  (* The relocation registers are the only stored absolute addresses:
     retarget the register whose base matches each moved block. *)
  let by_base = Hashtbl.create 16 in
  for id = 0 to t.count - 1 do
    let p = t.programs.(id) in
    if p.resident then Hashtbl.replace by_base (Relocation.base p.registers) id
  done;
  Freelist.Allocator.compact t.allocator t.channel ~relocate:(fun old_addr new_addr ->
      match Hashtbl.find_opt by_base old_addr with
      | Some id ->
        Relocation.relocate t.programs.(id).registers ~base:new_addr;
        Hashtbl.remove by_base old_addr;
        Hashtbl.replace by_base new_addr id
      | None -> invalid_arg "Swapper.compact: moved block owned by no program")

let swap_in t id =
  Obs.Prof.span "swap.swap_in" @@ fun () ->
  let p = program t id in
  assert (not p.resident);
  let rec place () =
    match Freelist.Allocator.alloc t.allocator p.size with
    | Some addr -> addr
    | None ->
      if
        t.cfg.compact_on_failure
        && Freelist.Allocator.free_words t.allocator > p.size + 8
      then begin
        (* Enough total space exists; only its shattering is in the way. *)
        compact t;
        match Freelist.Allocator.alloc t.allocator p.size with
        | Some addr -> addr
        | None -> evict_and_retry ()
      end
      else evict_and_retry ()
  and evict_and_retry () =
    match lru_resident t ~keep:id with
    | Some victim ->
      swap_out t victim;
      place ()
    (* lint: allow L4 — a program larger than working storage is a documented fatal misconfiguration *)
    | None -> failwith "Swapper: program larger than working storage"
  in
  let addr = place () in
  match
    timed_transfer t ~kind:Device.Request.Demand ~id ~src:t.cfg.backing
      ~src_off:p.backing_addr ~dst:t.cfg.core ~dst_off:addr ~len:p.size
  with
  | Ok () ->
    t.words_swapped <- t.words_swapped + p.size;
    Relocation.relocate p.registers ~base:addr;
    p.resident <- true;
    t.swap_ins <- t.swap_ins + 1;
    Ok ()
  | Error f ->
    (* The image never arrived: release the placement and surface.
       The backing copy is intact, so a later touch simply retries. *)
    Freelist.Allocator.free t.allocator addr;
    t.swap_in_failures <- t.swap_in_failures + 1;
    Error
      (Resilience.Failure.Swap_in_failed
         { segment = id; words = p.size; attempts = f.attempts; at_us = f.at_us })

let touch_result t id name ~write =
  let p = program t id in
  (match if p.resident then Ok () else swap_in t id with
   | Error _ as e -> e
   | Ok () ->
     t.tick <- t.tick + 1;
     p.last_used <- t.tick;
     if write then p.modified <- true;
     Ok (Relocation.translate p.registers name))

let touch t id name ~write =
  match touch_result t id name ~write with
  | Ok addr -> addr
  (* lint: allow L4 — legacy wrapper; unreachable without a Fail-escalation device, documented to raise otherwise *)
  | Error f -> failwith (Resilience.Failure.to_string f)

let read_result t id name =
  match touch_result t id name ~write:false with
  | Error _ as e -> e
  | Ok addr -> Ok (Memstore.Level.read t.cfg.core addr)

let read t id name = Memstore.Level.read t.cfg.core (touch t id name ~write:false)

let write_result t id name v =
  match touch_result t id name ~write:true with
  | Error _ as e -> e
  | Ok addr -> Ok (Memstore.Level.write t.cfg.core addr v)

let write t id name v = Memstore.Level.write t.cfg.core (touch t id name ~write:true) v

let in_core t id = (program t id).resident

let base_of t id =
  let p = program t id in
  if p.resident then Some (Relocation.base p.registers) else None

let swap_ins t = t.swap_ins

let swap_outs t = t.swap_outs

let words_swapped t = t.words_swapped

let compactions t = t.compactions

let mirror_writes t = t.mirror_writes

let swap_in_failures t = t.swap_in_failures

let external_fragmentation t =
  Metrics.Fragmentation.external_of_free_blocks
    (Freelist.Allocator.free_block_sizes t.allocator)
