type config = {
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  placement : Freelist.Policy.t;
  compact_on_failure : bool;
  device : Device.Model.t option;
}

type program = {
  prog_name : string;
  size : int;
  registers : Relocation.t;
  backing_addr : int;
  mutable resident : bool;
  mutable modified : bool;
  mutable last_used : int;
}

type id = int

type t = {
  cfg : config;
  allocator : Freelist.Allocator.t;
  channel : Memstore.Channel.t;
  mutable programs : program array;
  mutable count : int;
  mutable backing_frontier : int;
  mutable tick : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable words_swapped : int;
  mutable compactions : int;
}

let create cfg =
  let core_words = Memstore.Level.size cfg.core in
  {
    cfg;
    allocator =
      Freelist.Allocator.create
        (Memstore.Level.physical cfg.core)
        ~base:0 ~len:core_words ~policy:cfg.placement;
    channel = Memstore.Channel.create (Memstore.Level.clock cfg.core) ~word_ns:500;
    programs = [||];
    count = 0;
    backing_frontier = 0;
    tick = 0;
    swap_ins = 0;
    swap_outs = 0;
    words_swapped = 0;
    compactions = 0;
  }

let program t id =
  if id < 0 || id >= t.count then invalid_arg "Swapper: unknown program";
  t.programs.(id)

(* A whole-program transfer: the blit always happens; timing comes from
   the device model when one is configured (the swap waits for the
   timed completion), else from the flat [Level.transfer] charge. *)
let timed_transfer t ~kind ~id ~src ~src_off ~dst ~dst_off ~len =
  match t.cfg.device with
  | None -> Memstore.Level.transfer ~src ~src_off ~dst ~dst_off ~len
  | Some m ->
    Memstore.Physical.blit
      ~src:(Memstore.Level.physical src)
      ~src_off
      ~dst:(Memstore.Level.physical dst)
      ~dst_off ~len;
    let clock = Memstore.Level.clock t.cfg.core in
    let fin = Device.Model.fetch m ~now:(Sim.Clock.now clock) ~kind ~page:id ~words:len in
    Sim.Clock.advance_to clock fin

let add_program t ~name ~size =
  assert (size > 0);
  if t.backing_frontier + size > Memstore.Level.size t.cfg.backing then
    (* lint: allow L4 — backing exhaustion is a documented fatal misconfiguration *)
    failwith "Swapper: backing storage exhausted";
  if t.count >= Array.length t.programs then begin
    let dummy =
      {
        prog_name = "";
        size = 0;
        registers = Relocation.create ~base:0 ~limit:0;
        backing_addr = 0;
        resident = false;
        modified = false;
        last_used = 0;
      }
    in
    let grown = Array.make (max 8 (2 * Array.length t.programs)) dummy in
    Array.blit t.programs 0 grown 0 t.count;
    t.programs <- grown
  end;
  let id = t.count in
  t.count <- t.count + 1;
  t.programs.(id) <-
    {
      prog_name = name;
      size;
      registers = Relocation.create ~base:0 ~limit:size;
      backing_addr = t.backing_frontier;
      resident = false;
      modified = false;
      last_used = 0;
    };
  t.backing_frontier <- t.backing_frontier + size;
  id

let swap_out t id =
  let p = program t id in
  if p.resident then begin
    if p.modified then begin
      timed_transfer t ~kind:Device.Request.Writeback ~id ~src:t.cfg.core
        ~src_off:(Relocation.base p.registers) ~dst:t.cfg.backing
        ~dst_off:p.backing_addr ~len:p.size;
      t.words_swapped <- t.words_swapped + p.size;
      p.modified <- false
    end;
    Freelist.Allocator.free t.allocator (Relocation.base p.registers);
    p.resident <- false;
    t.swap_outs <- t.swap_outs + 1
  end

(* The least recently used resident program other than [keep]. *)
let lru_resident t ~keep =
  let best = ref None in
  for id = 0 to t.count - 1 do
    let p = t.programs.(id) in
    if p.resident && id <> keep then
      match !best with
      | Some b when t.programs.(b).last_used <= p.last_used -> ()
      | Some _ | None -> best := Some id
  done;
  !best

let compact t =
  t.compactions <- t.compactions + 1;
  (* The relocation registers are the only stored absolute addresses:
     retarget the register whose base matches each moved block. *)
  let by_base = Hashtbl.create 16 in
  for id = 0 to t.count - 1 do
    let p = t.programs.(id) in
    if p.resident then Hashtbl.replace by_base (Relocation.base p.registers) id
  done;
  Freelist.Allocator.compact t.allocator t.channel ~relocate:(fun old_addr new_addr ->
      match Hashtbl.find_opt by_base old_addr with
      | Some id ->
        Relocation.relocate t.programs.(id).registers ~base:new_addr;
        Hashtbl.remove by_base old_addr;
        Hashtbl.replace by_base new_addr id
      | None -> invalid_arg "Swapper.compact: moved block owned by no program")

let swap_in t id =
  let p = program t id in
  assert (not p.resident);
  let rec place () =
    match Freelist.Allocator.alloc t.allocator p.size with
    | Some addr -> addr
    | None ->
      if
        t.cfg.compact_on_failure
        && Freelist.Allocator.free_words t.allocator > p.size + 8
      then begin
        (* Enough total space exists; only its shattering is in the way. *)
        compact t;
        match Freelist.Allocator.alloc t.allocator p.size with
        | Some addr -> addr
        | None -> evict_and_retry ()
      end
      else evict_and_retry ()
  and evict_and_retry () =
    match lru_resident t ~keep:id with
    | Some victim ->
      swap_out t victim;
      place ()
    (* lint: allow L4 — a program larger than working storage is a documented fatal misconfiguration *)
    | None -> failwith "Swapper: program larger than working storage"
  in
  let addr = place () in
  timed_transfer t ~kind:Device.Request.Demand ~id ~src:t.cfg.backing
    ~src_off:p.backing_addr ~dst:t.cfg.core ~dst_off:addr ~len:p.size;
  t.words_swapped <- t.words_swapped + p.size;
  Relocation.relocate p.registers ~base:addr;
  p.resident <- true;
  t.swap_ins <- t.swap_ins + 1

let touch t id name ~write =
  let p = program t id in
  if not p.resident then swap_in t id;
  t.tick <- t.tick + 1;
  p.last_used <- t.tick;
  if write then p.modified <- true;
  Relocation.translate p.registers name

let read t id name = Memstore.Level.read t.cfg.core (touch t id name ~write:false)

let write t id name v = Memstore.Level.write t.cfg.core (touch t id name ~write:true) v

let in_core t id = (program t id).resident

let base_of t id =
  let p = program t id in
  if p.resident then Some (Relocation.base p.registers) else None

let swap_ins t = t.swap_ins

let swap_outs t = t.swap_outs

let words_swapped t = t.words_swapped

let compactions t = t.compactions

let external_fragmentation t =
  Metrics.Fragmentation.external_of_free_blocks
    (Freelist.Allocator.free_block_sizes t.allocator)
