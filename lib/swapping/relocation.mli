(** The relocation register / limit register pair.

    The paper's "next level in sophistication" above absolute
    addressing: "All name representations are checked against the
    contents of the limit register and then have the contents of the
    relocation register added to them, in order to produce an absolute
    address.  Thus a linear name space, whose size can be smaller than
    that provided by the absolute address representation, can be used to
    access items starting at an arbitrary address in storage."

    Because every access goes through the pair, a program can be moved
    (swapped out and back to a different address, or slid by
    compaction) by updating one register — the relocation problem
    solved by construction. *)

type t

exception Limit_violation of { name : int; limit : int }

val create : base:int -> limit:int -> t

val base : t -> int

val limit : t -> int

val translate : t -> int -> int
(** [translate t name] checks [0 <= name < limit] and returns
    [base + name].  Raises {!Limit_violation} otherwise. *)

val relocate : t -> base:int -> unit
(** Point the pair at the program's new location. *)

val resize : t -> limit:int -> unit
(** Change the accessible extent (e.g. after the program grows). *)
