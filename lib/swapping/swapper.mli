(** Whole-program swapping: time-sharing before paging.

    The paper's introduction: coexistence in working storage is wanted
    for throughput and response time, and "the storage resources
    provided for an individual program must vary from run to run".  The
    pre-paging answer was to keep each program contiguous, address it
    through a relocation/limit pair, and swap {e entire programs}
    between core and drum as the scheduler demanded.  Variable-size
    contiguous allocation brings external fragmentation, so the swapper
    can optionally compact core (updating the relocation registers —
    the point of having them) when a swap-in cannot be placed.

    Experiment X4 compares this discipline against demand paging. *)

type config = {
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  placement : Freelist.Policy.t;
  compact_on_failure : bool;
  device : Device.Model.t option;
      (** timed drum/disk model for whole-program transfers; [None]
          keeps the flat [Level.transfer] charge, bit-identical to the
          pre-device engine *)
}

type t

type id = int

val create : config -> t

val add_program : t -> name:string -> size:int -> id
(** Declare a program of [size] words, initially swapped out with a
    zero-filled backing image. *)

val read : t -> id -> int -> int64
(** [read t prog name] translates [name] through the program's
    relocation/limit pair, swapping the program in first if needed. *)

val write : t -> id -> int -> int64 -> unit

val in_core : t -> id -> bool

val base_of : t -> id -> int option
(** Current core base, for observing relocation at work. *)

val swap_out : t -> id -> unit
(** Explicitly release a program's core (write-back if modified). *)

(** {2 Measurements} *)

val swap_ins : t -> int

val swap_outs : t -> int

val words_swapped : t -> int

val compactions : t -> int

val external_fragmentation : t -> float
