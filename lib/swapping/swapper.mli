(** Whole-program swapping: time-sharing before paging.

    The paper's introduction: coexistence in working storage is wanted
    for throughput and response time, and "the storage resources
    provided for an individual program must vary from run to run".  The
    pre-paging answer was to keep each program contiguous, address it
    through a relocation/limit pair, and swap {e entire programs}
    between core and drum as the scheduler demanded.  Variable-size
    contiguous allocation brings external fragmentation, so the swapper
    can optionally compact core (updating the relocation registers —
    the point of having them) when a swap-in cannot be placed.

    Experiment X4 compares this discipline against demand paging. *)

type config = {
  core : Memstore.Level.t;
  backing : Memstore.Level.t;
  placement : Freelist.Policy.t;
  compact_on_failure : bool;
  device : Device.Model.t option;
      (** timed drum/disk model for whole-program transfers; [None]
          keeps the flat [Level.transfer] charge, bit-identical to the
          pre-device engine *)
}

type t

type id = int

val create : config -> t

val add_program : t -> name:string -> size:int -> id
(** Declare a program of [size] words, initially swapped out with a
    zero-filled backing image. *)

val read : t -> id -> int -> int64
(** [read t prog name] translates [name] through the program's
    relocation/limit pair, swapping the program in first if needed.
    A terminal swap-in failure (only under a [Fail]-escalation device)
    raises [Failure]; use {!read_result} to handle it. *)

val write : t -> id -> int -> int64 -> unit

val read_result : t -> id -> int -> (int64, Resilience.Failure.t) result
(** Like {!read}, but a terminal swap-in failure returns
    [Error (Swap_in_failed _)]: the placement is released, the program
    stays swapped out (its backing image intact), and the caller
    decides — retry, or abort the program.  Failed {e write-outs} are
    never surfaced: the modified image is the only current copy, so the
    swapper re-writes it over the fault-immune duplexed path (counted
    by {!mirror_writes}).  Compaction-on-failure remains the recovery
    for placement (fragmentation) trouble, counted by
    {!compactions}. *)

val write_result : t -> id -> int -> int64 -> (unit, Resilience.Failure.t) result

val in_core : t -> id -> bool

val base_of : t -> id -> int option
(** Current core base, for observing relocation at work. *)

val swap_out : t -> id -> unit
(** Explicitly release a program's core (write-back if modified). *)

(** {2 Measurements} *)

val swap_ins : t -> int

val swap_outs : t -> int

val words_swapped : t -> int

val compactions : t -> int

val mirror_writes : t -> int
(** Failed write-outs rescued over the fault-immune path. *)

val swap_in_failures : t -> int
(** Terminal swap-in failures surfaced to the caller. *)

val external_fragmentation : t -> float
