type t = { mutable base : int; mutable limit : int }

exception Limit_violation of { name : int; limit : int }

let create ~base ~limit =
  assert (base >= 0 && limit >= 0);
  { base; limit }

let base t = t.base

let limit t = t.limit

let translate t name =
  if name < 0 || name >= t.limit then raise (Limit_violation { name; limit = t.limit });
  t.base + name

let relocate t ~base =
  assert (base >= 0);
  t.base <- base

let resize t ~limit =
  assert (limit >= 0);
  t.limit <- limit
