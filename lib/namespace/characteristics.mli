(** The paper's four basic characteristics of dynamic storage
    allocation systems, as a value that classifies a whole design.

    "1. Name space.  2. Predictive information.  3. Artificial
    contiguity.  4. Uniformity of units of storage allocation. ...
    collectively they have the advantage of being, to a large degree,
    mutually independent."  Every machine in {!Machines} carries one of
    these records, and the survey experiment prints them side by
    side. *)

type predictive =
  | No_predictions
  | Programmer_directives  (** e.g. the M44's two special instructions *)
  | Compiler_supplied
  | Program_descriptions  (** ACSI-MATIC-style dynamic descriptions *)

type allocation_unit =
  | Uniform of int  (** page frames of a fixed size *)
  | Mixed of int list  (** several frame sizes (MULTICS: 64 and 1024) *)
  | Variable  (** the unit reflects the request (B5000, Rice) *)

type t = {
  name_space : Name_space.t;
  predictive : predictive;
  artificial_contiguity : bool;
  allocation_unit : allocation_unit;
}

val recommended : t
(** The authors' favoured combination: symbolically segmented names,
    predictions accepted, artificial contiguity only where essential,
    nonuniform units sized to small segments. *)

val uniform_unit : t -> bool
(** True when fragmentation is internal (within frames) rather than
    external. *)

val describe : t -> (string * string) list
(** Field/value rows for the survey table. *)

val predictive_to_string : predictive -> string

val allocation_unit_to_string : allocation_unit -> string
