type t =
  | Linear of { bits : int }
  | Linearly_segmented of { segment_bits : int; offset_bits : int }
  | Symbolically_segmented of { max_extent : int }

exception Name_violation of { name_space : string; name : int }

let describe = function
  | Linear { bits } -> Printf.sprintf "linear (%d-bit)" bits
  | Linearly_segmented { segment_bits; offset_bits } ->
    Printf.sprintf "linearly segmented (%d-bit segment, %d-bit offset)" segment_bits
      offset_bits
  | Symbolically_segmented { max_extent } ->
    Printf.sprintf "symbolically segmented (segments <= %d words)" max_extent

let extent = function
  | Linear { bits } -> Some (1 lsl bits)
  | Linearly_segmented { segment_bits; offset_bits } -> Some (1 lsl (segment_bits + offset_bits))
  | Symbolically_segmented _ -> None

let max_segment_extent = function
  | Linear { bits } -> 1 lsl bits
  | Linearly_segmented { offset_bits; _ } -> 1 lsl offset_bits
  | Symbolically_segmented { max_extent } -> max_extent

let violation t name = raise (Name_violation { name_space = describe t; name })

let split t name =
  match t with
  | Linear { bits } ->
    if name < 0 || name >= 1 lsl bits then violation t name;
    (0, name)
  | Linearly_segmented { segment_bits; offset_bits } ->
    if name < 0 || name >= 1 lsl (segment_bits + offset_bits) then violation t name;
    (name lsr offset_bits, name land ((1 lsl offset_bits) - 1))
  | Symbolically_segmented _ ->
    invalid_arg "Name_space.split: symbolic segment names are not integers"

let compose t ~segment ~offset =
  match t with
  | Linear { bits } ->
    if segment <> 0 then invalid_arg "Name_space.compose: linear name space has no segments";
    if offset < 0 || offset >= 1 lsl bits then violation t offset;
    offset
  | Linearly_segmented { segment_bits; offset_bits } ->
    if segment < 0 || segment >= 1 lsl segment_bits then violation t segment;
    if offset < 0 || offset >= 1 lsl offset_bits then violation t offset;
    (segment lsl offset_bits) lor offset
  | Symbolically_segmented _ ->
    invalid_arg "Name_space.compose: symbolic segment names are not integers"

let segment_names_orderable = function
  | Linear _ | Linearly_segmented _ -> true
  | Symbolically_segmented _ -> false
