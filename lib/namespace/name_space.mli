(** Name spaces: "the set of names which can be used by a program to
    refer to informational items".

    The paper's first basic characteristic.  Three structures are
    distinguished: the {e linear} name space (names are the integers
    0..n, as on the 7094 and ATLAS); the {e linearly segmented} name
    space (a sequence of most-significant bits is the segment name, as
    on the 360/67 and, formally, MULTICS); and the {e symbolically
    segmented} name space (segment names are unordered and cannot be
    manipulated arithmetically, as on the B5000).

    The key structural difference the paper stresses: only in the
    symbolic case is there no segment-name contiguity, hence no
    dictionary fragmentation and no segment-name reallocation
    problem. *)

type t =
  | Linear of { bits : int }
      (** names are 0 .. 2^bits - 1 *)
  | Linearly_segmented of { segment_bits : int; offset_bits : int }
      (** one packed representation: high bits name the segment *)
  | Symbolically_segmented of { max_extent : int }
      (** unordered segment names; item names 0 .. extent-1 within each
          segment, extent bounded by [max_extent] *)

exception Name_violation of { name_space : string; name : int }

val describe : t -> string

val extent : t -> int option
(** Total nameable items for the linear cases; [None] for symbolic
    segmentation (unbounded segment dictionary). *)

val max_segment_extent : t -> int
(** Largest contiguously nameable run of items. *)

val segment_names_orderable : t -> bool
(** Whether address arithmetic across segment names is possible — the
    property that drags in dictionary fragmentation. *)

val split : t -> int -> int * int
(** [split t name] decomposes a packed name into (segment, offset).
    For a linear name space the segment is 0.  Raises
    {!Name_violation} if the name is unrepresentable, and
    [Invalid_argument] for symbolic name spaces (their names are not
    integers). *)

val compose : t -> segment:int -> offset:int -> int
(** Inverse of {!split}, with the same bound checks. *)
