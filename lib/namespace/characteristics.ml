type predictive =
  | No_predictions
  | Programmer_directives
  | Compiler_supplied
  | Program_descriptions

type allocation_unit =
  | Uniform of int
  | Mixed of int list
  | Variable

type t = {
  name_space : Name_space.t;
  predictive : predictive;
  artificial_contiguity : bool;
  allocation_unit : allocation_unit;
}

let recommended =
  {
    name_space = Name_space.Symbolically_segmented { max_extent = 1 lsl 24 };
    predictive = Programmer_directives;
    artificial_contiguity = true;
    allocation_unit = Variable;
  }

let uniform_unit t = match t.allocation_unit with Uniform _ -> true | Mixed _ | Variable -> false

let predictive_to_string = function
  | No_predictions -> "none"
  | Programmer_directives -> "programmer directives"
  | Compiler_supplied -> "compiler supplied"
  | Program_descriptions -> "program descriptions"

let allocation_unit_to_string = function
  | Uniform size -> Printf.sprintf "uniform (%d-word pages)" size
  | Mixed sizes ->
    Printf.sprintf "mixed (%s-word pages)"
      (String.concat "/" (List.map string_of_int sizes))
  | Variable -> "variable (fits request)"

let describe t =
  [
    ("name space", Name_space.describe t.name_space);
    ("predictive information", predictive_to_string t.predictive);
    ("artificial contiguity", if t.artificial_contiguity then "yes" else "no");
    ("unit of allocation", allocation_unit_to_string t.allocation_unit);
  ]
