type scope = Line | File

type t = { line : int; scope : scope; rule : Rule.t }

type scan_result = { pragmas : t list; malformed : (int * string) list }

let marker = "lint:"

let is_space c = c = ' ' || c = '\t'

(* Only a marker opening a comment counts, i.e. "lint:" immediately
   preceded by the comment opener; the bare word can legitimately
   appear in string literals or prose (this very file contains both). *)
let opens_comment line i =
  let rec back j = if j >= 0 && is_space line.[j] then back (j - 1) else j in
  let j = back (i - 1) in
  j >= 1 && line.[j] = '*' && line.[j - 1] = '('

(* Offsets just past every comment-opening [marker] in [line]. *)
let marker_positions line =
  let ml = String.length marker in
  let n = String.length line in
  let rec loop i acc =
    if i + ml > n then List.rev acc
    else if String.sub line i ml = marker && opens_comment line i then
      loop (i + ml) ((i + ml) :: acc)
    else loop (i + 1) acc
  in
  loop 0 []

(* The next whitespace-delimited word of [s] at or after [i]. *)
let next_word s i =
  let n = String.length s in
  let rec skip i = if i < n && is_space s.[i] then skip (i + 1) else i in
  let start = skip i in
  let rec stop i = if i < n && not (is_space s.[i]) then stop (i + 1) else i in
  let fin = stop start in
  if fin = start then None else Some (String.sub s start (fin - start), fin)

(* Parse one pragma starting right after its "lint:" marker.  The shape
   is `allow RULE — reason` or `allow-file RULE — reason`; the reason is
   mandatory (an allowlist entry without a why is itself a defect). *)
let parse_at ~lineno rest =
  match next_word rest 0 with
  | None -> Error (lineno, "empty lint pragma: expected `allow RULE — reason`")
  | Some (keyword, after_kw) ->
    let scope =
      match keyword with
      | "allow" -> Ok Line
      | "allow-file" -> Ok File
      | other ->
        Error
          (lineno, Printf.sprintf "unknown lint pragma keyword %S (allow, allow-file)" other)
    in
    (match scope with
     | Error _ as e -> e
     | Ok scope ->
       (match next_word rest after_kw with
        | None -> Error (lineno, "lint pragma names no rule (L1..L6)")
        | Some (rule_word, after_rule) ->
          (match Rule.of_string rule_word with
           | None ->
             Error
               ( lineno,
                 Printf.sprintf "lint pragma names unknown rule %S (L1..L6)" rule_word )
           | Some rule ->
             (* Anything substantive after the rule id is the reason;
                the comment closer alone does not count. *)
             let tail = String.sub rest after_rule (String.length rest - after_rule) in
             let has_reason =
               match next_word tail 0 with
               | None -> false
               | Some (w, after) ->
                 let w = if w = "—" || w = "-" || w = "--" then
                     (match next_word tail after with Some (w', _) -> w' | None -> "")
                   else w
                 in
                 w <> "" && w <> "*)"
             in
             if has_reason then Ok { line = lineno; scope; rule }
             else Error (lineno, "lint pragma gives no reason (allow RULE — reason)"))))

let scan source =
  let pragmas = ref [] in
  let malformed = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' source
  |> List.iter (fun line ->
         incr lineno;
         List.iter
           (fun start ->
             let rest = String.sub line start (String.length line - start) in
             match parse_at ~lineno:!lineno rest with
             | Ok p -> pragmas := p :: !pragmas
             | Error e -> malformed := e :: !malformed)
           (marker_positions line));
  { pragmas = List.rev !pragmas; malformed = List.rev !malformed }
