type code = Rule of Rule.t | Parse_error | Bad_pragma

type t = { file : string; line : int; col : int; code : code; message : string }

let code_id = function
  | Rule r -> Rule.id r
  | Parse_error -> "parse"
  | Bad_pragma -> "pragma"

let code_slug = function
  | Rule r -> Rule.slug r
  | Parse_error -> "parse-error"
  | Bad_pragma -> "bad-pragma"

let compare a b =
  match Stdlib.compare a.file b.file with
  | 0 ->
    (match Stdlib.compare a.line b.line with
     | 0 ->
       (match Stdlib.compare a.col b.col with
        | 0 -> Stdlib.compare (code_id a.code) (code_id b.code)
        | c -> c)
     | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" d.file d.line d.col (code_id d.code)
    (code_slug d.code) d.message

let to_json d =
  Obs.Json.obj
    [
      ("file", Obs.Json.String d.file);
      ("line", Obs.Json.Int d.line);
      ("col", Obs.Json.Int d.col);
      ("rule", Obs.Json.String (code_id d.code));
      ("name", Obs.Json.String (code_slug d.code));
      ("message", Obs.Json.String d.message);
    ]
