(** The static-analysis pass behind [dsas_lint].

    Parses OCaml sources with the compiler's own parser
    ([compiler-libs]) and walks the untyped AST enforcing the
    repo-specific rules {!Rule.t}.  Everything is syntactic — rules fire
    on the spelling of identifiers ([Random.int], [Hashtbl.fold],
    [failwith], float literals under [=]), which is exactly the
    discipline the repo wants: the blessed alternatives ([Sim.Rng],
    sorted iteration, typed errors) spell differently. *)

type config = { boundary_dirs : string list }
(** Path components (directory basenames) under which L4 does not
    apply: boundary modules are allowed to crash with a message. *)

val default_config : config
(** [experiments], [bin], [test], [bench]. *)

val is_boundary : config -> string -> bool

val lint_source : ?config:config -> file:string -> string -> Diagnostic.t list
(** Lint source text as [file] (the name decides boundary status and
    appears in diagnostics).  A file that fails to parse yields exactly
    one [Parse_error] diagnostic.  Otherwise: rule violations not
    suppressed by {!Pragma} allowlisting, plus a [Bad_pragma] for every
    malformed or suppression-free pragma.  Sorted by position. *)

val lint_file : ?config:config -> string -> Diagnostic.t list

val ml_files_under : string -> string list
(** Every [.ml] file under a directory (or the file itself), sorted;
    skips dot- and underscore-prefixed directories ([_build], [.git]). *)

val lint_paths : ?config:config -> string list -> string list * Diagnostic.t list
(** Lint every [.ml] under the given paths; returns (files seen,
    diagnostics). *)
