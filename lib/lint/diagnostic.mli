(** One linter finding, pointing into a source file. *)

type code =
  | Rule of Rule.t
  | Parse_error  (** the file did not parse — nothing else was checked *)
  | Bad_pragma  (** malformed, unknown or suppression-free allow pragma *)

type t = { file : string; line : int; col : int; code : code; message : string }

val code_id : code -> string
(** ["L1"].. ["L6"], ["parse"], ["pragma"]. *)

val code_slug : code -> string

val compare : t -> t -> int
(** Order by file, then line, then column — the emission order. *)

val to_string : t -> string
(** [file:line:col: [L4 partial-function] message] — one line, the
    human-facing form. *)

val to_json : t -> string
(** One flat JSON object with [file]/[line]/[col]/[rule]/[name]/[message]. *)
