(** The repo-specific source rules `dsas_lint` enforces. *)

type t =
  | L1  (** nondeterminism sources (global Random, wall clock) *)
  | L2  (** [Obj.magic] *)
  | L3  (** polymorphic [Hashtbl.iter]/[Hashtbl.fold] (iteration order) *)
  | L4  (** bare [failwith]/[List.hd]/[Option.get] outside boundary modules *)
  | L5  (** float equality comparison *)
  | L6  (** ignore of a function application (invisible discarded type) *)

val all : t list

val id : t -> string
(** ["L1"] .. ["L6"] — what pragmas name. *)

val slug : t -> string
(** Human-readable short name, e.g. ["hashtbl-order"]. *)

val summary : t -> string
(** What the rule enforces and how to satisfy it; shown by
    [dsas_lint --list-rules]. *)

val of_string : string -> t option
(** Accepts either the {!id} or the {!slug}. *)
