type config = { boundary_dirs : string list }

let default_config = { boundary_dirs = [ "experiments"; "bin"; "test"; "bench" ] }

(* A file under a boundary directory (CLI, experiment drivers, tests) is
   exempt from L4: those modules are where partiality is allowed to
   surface as a crash with a message. *)
let is_boundary config file =
  String.split_on_char '/' file
  |> List.exists (fun part -> List.mem part config.boundary_dirs)

(* --- the AST pass --- *)

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

let is_float_shaped (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    (match Longident.flatten txt with
     | [ op ] when List.mem op float_ops -> true
     | [ "float_of_int" ] | [ "Float"; "of_int" ] -> true
     | _ -> false)
  | _ -> false

let is_ignore lid =
  match Longident.flatten lid with
  | [ "ignore" ] | [ "Stdlib"; "ignore" ] -> true
  | _ -> false

(* Only applications: [ignore (f x)] hides what [f] returns, while
   [ignore x] names a value whose binding is in plain sight. *)
let is_application (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_apply _ -> true | _ -> false

let is_equality lid =
  match Longident.flatten lid with
  | [ ("=" | "<>" | "==" | "!=") ] | [ "Stdlib"; ("=" | "<>" | "==" | "!=") ] -> true
  | _ -> false

let check_ident add txt (loc : Location.t) =
  match Longident.flatten txt with
  | "Random" :: f :: _ when f <> "State" ->
    add Rule.L1 loc
      (Printf.sprintf
         "Random.%s uses the shared global PRNG: thread a seeded Sim.Rng or \
          Random.State through the engine instead" f)
  | [ "Unix"; (("gettimeofday" | "time") as f) ] ->
    add Rule.L1 loc
      (Printf.sprintf "Unix.%s reads the wall clock; use the simulated Sim.Clock" f)
  | [ "Sys"; "time" ] ->
    add Rule.L1 loc "Sys.time reads the process clock; use the simulated Sim.Clock"
  | [ "Obj"; "magic" ] -> add Rule.L2 loc "Obj.magic defeats the type checker"
  | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
    add Rule.L3 loc
      (Printf.sprintf
         "Hashtbl.%s visits bindings in hash order: sort the keys first, or \
          pragma-allow with the reason the result is order-independent" f)
  | [ "failwith" ] | [ "Stdlib"; "failwith" ] ->
    add Rule.L4 loc
      "bare failwith raises untyped Failure from library code: return a typed \
       result or raise a documented exception"
  | [ "List"; (("hd" | "tl") as f) ] ->
    add Rule.L4 loc
      (Printf.sprintf "List.%s is partial: match on the list shape instead" f)
  | [ "Option"; "get" ] ->
    add Rule.L4 loc "Option.get is partial: match on the option instead"
  | _ -> ()

let collect_violations structure =
  let found = ref [] in
  let add rule (loc : Location.t) message =
    found :=
      ( rule,
        loc.loc_start.Lexing.pos_lnum,
        loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol,
        message )
      :: !found
  in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> check_ident add txt loc
     | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ])
       when is_equality txt && (is_float_shaped a || is_float_shaped b) ->
       add Rule.L5 e.pexp_loc
         "float equality comparison: representation noise makes exact \
          comparison fragile; compare with a tolerance"
     | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ])
       when is_ignore txt && is_application arg ->
       add Rule.L6 e.pexp_loc
         "ignore of a function application hides the discarded type (a \
          result carrying a typed failure would vanish): discard with a \
          type ascription (let (_ : t) = ...) or handle the value"
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator structure;
  List.rev !found

(* --- parsing --- *)

let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    Error
      ( loc.loc_start.Lexing.pos_lnum,
        loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol,
        "syntax error" )
  | exception Lexer.Error (_, loc) ->
    Error
      ( loc.loc_start.Lexing.pos_lnum,
        loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol,
        "lexer error" )
  | exception _ -> Error (1, 0, "does not parse")

(* --- pragma application --- *)

let lint_source ?(config = default_config) ~file source =
  match parse_structure ~file source with
  | Error (line, col, message) ->
    [ { Diagnostic.file; line; col; code = Diagnostic.Parse_error; message } ]
  | Ok structure ->
    let scan = Pragma.scan source in
    let boundary = is_boundary config file in
    let violations =
      collect_violations structure
      |> List.filter (fun (rule, _, _, _) ->
             not (boundary && (rule = Rule.L4 || rule = Rule.L6)))
    in
    let used = Hashtbl.create 8 in
    let suppressed (rule, line, _, _) =
      let matching (p : Pragma.t) =
        p.rule = rule
        && (match p.scope with
            | Pragma.File -> true
            | Pragma.Line -> p.line = line || p.line = line - 1)
      in
      match List.find_opt matching scan.pragmas with
      | Some p ->
        Hashtbl.replace used (p.line, p.rule) ();
        true
      | None -> false
    in
    let live = List.filter (fun v -> not (suppressed v)) violations in
    let diagnostics =
      List.map
        (fun (rule, line, col, message) ->
          { Diagnostic.file; line; col; code = Diagnostic.Rule rule; message })
        live
    in
    let pragma_problems =
      List.map
        (fun (line, message) ->
          { Diagnostic.file; line; col = 0; code = Diagnostic.Bad_pragma; message })
        scan.malformed
      @ List.filter_map
          (fun (p : Pragma.t) ->
            if Hashtbl.mem used (p.line, p.rule) then None
            else
              Some
                {
                  Diagnostic.file;
                  line = p.line;
                  col = 0;
                  code = Diagnostic.Bad_pragma;
                  message =
                    Printf.sprintf
                      "allow %s pragma suppresses nothing: remove it (stale \
                       allowlists hide future violations)"
                      (Rule.id p.rule);
                })
          scan.pragmas
    in
    List.sort Diagnostic.compare (diagnostics @ pragma_problems)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    Ok content

let lint_file ?config path =
  match read_file path with
  | Error msg ->
    [ { Diagnostic.file = path; line = 1; col = 0; code = Diagnostic.Parse_error;
        message = msg } ]
  | Ok source -> lint_source ?config ~file:path source

let rec walk path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc (* broken symlink, permission — not ours *)
  | true ->
    (match Sys.readdir path with
     | exception Sys_error _ -> acc
     | entries ->
       Array.to_list entries |> List.sort compare
       |> List.fold_left
            (fun acc name ->
              (* _build, .git and friends are not source. *)
              if name = "" || name.[0] = '.' || name.[0] = '_' then acc
              else walk (Filename.concat path name) acc)
            acc)
  | false -> if Filename.check_suffix path ".ml" then path :: acc else acc

let ml_files_under path = List.sort compare (walk path [])

let lint_paths ?config paths =
  let files = List.concat_map ml_files_under paths in
  (files, List.concat_map (fun f -> lint_file ?config f) files)
