type t = L1 | L2 | L3 | L4 | L5 | L6

let all = [ L1; L2; L3; L4; L5; L6 ]

let id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"

let slug = function
  | L1 -> "nondeterminism"
  | L2 -> "unsafe-cast"
  | L3 -> "hashtbl-order"
  | L4 -> "partial-function"
  | L5 -> "float-equality"
  | L6 -> "ignored-result"

let summary = function
  | L1 ->
    "no nondeterminism sources in simulation code: Random.self_init, the \
     global Random state, Unix.gettimeofday, Unix.time or Sys.time.  Every \
     run must be a pure function of its config; thread a seeded Sim.Rng or \
     Random.State instead"
  | L2 -> "no Obj.magic: it defeats the type system that the goldens rely on"
  | L3 ->
    "no polymorphic Hashtbl.iter/Hashtbl.fold: iteration order is \
     hash-dependent and silently perturbs any output derived from it.  Sort \
     the keys first, or pragma-allow a fold that is provably \
     order-independent (commutative, or sorted afterwards)"
  | L4 ->
    "no bare failwith, List.hd or Option.get in library code: return a typed \
     result, match explicitly, or keep the partiality behind a boundary \
     module (bin/, lib/experiments).  Pragma-allow documented invariants"
  | L5 ->
    "no float equality (=, <>, ==, != on float operands): representation \
     noise makes exact comparison fragile; compare with a tolerance or \
     restructure"
  | L6 ->
    "no ignore of a function application in library code: the discarded \
     type is invisible, so a result carrying a typed failure vanishes \
     silently.  Discard with a type ascription (let (_ : t) = ... ) so the \
     reader sees what is dropped, or handle the result"

let of_string s =
  let s = String.trim s in
  List.find_opt (fun r -> id r = s || slug r = s) all
