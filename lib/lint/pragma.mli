(** Inline allowlist pragmas.

    A violation is suppressed by a comment on the same line or the line
    directly above it:

    {[
      (* lint: allow L4 — validate is a test-only invariant checker *)
      if bad then failwith "corrupt"
    ]}

    [allow-file] at any line suppresses the rule for the whole file:

    {[
      (* lint: allow-file L3 — every fold in here is order-independent *)
    ]}

    The reason after the rule id is mandatory: an allowlist entry
    without a why is reported as a [pragma] diagnostic, and so is a
    pragma that suppresses nothing (stale allowlists rot). *)

type scope = Line | File

type t = { line : int; scope : scope; rule : Rule.t }

type scan_result = {
  pragmas : t list;  (** well-formed pragmas, in line order *)
  malformed : (int * string) list  (** line and complaint, in line order *)
}

val scan : string -> scan_result
(** Scan raw source text line by line.  Only a [lint:] marker that
    opens a comment is recognised — the bare word inside a string
    literal or mid-comment prose is ignored. *)
