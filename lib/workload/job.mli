(** Multiprogramming job descriptions.

    A job is a page-reference trace plus the compute time spent per
    reference; the multiprogramming simulator (experiment C7) interleaves
    several of these, overlapping one job's page fetches with another's
    execution, as ATLAS and the M44/44X did. *)

type t = {
  name : string;
  refs : Trace.t;  (** page-number reference string *)
  compute_us_per_ref : int;  (** processor time consumed per reference *)
}

val make : name:string -> refs:Trace.t -> compute_us_per_ref:int -> t

val pages_touched : t -> int
(** Number of distinct pages the job references. *)

val mix :
  Sim.Rng.t ->
  jobs:int -> refs_per_job:int -> pages_per_job:int -> locality:float ->
  compute_us_per_ref:int -> t list
(** A homogeneous mix of [jobs] working-set-phased jobs, each over its
    own [pages_per_job]-page name space. *)
