type t = int array

let sequential ~length ~extent =
  assert (extent > 0);
  Array.init length (fun i -> i mod extent)

let uniform rng ~length ~extent =
  assert (extent > 0);
  Array.init length (fun _ -> Sim.Rng.int rng extent)

let loop ~length ~extent ~working_set =
  assert (working_set > 0 && working_set <= extent);
  Array.init length (fun i -> i mod working_set)

let zipf rng ~length ~extent ~skew =
  assert (extent > 0 && skew >= 0.);
  let weights = Array.init extent (fun i -> 1. /. ((float_of_int (i + 1)) ** skew)) in
  let cdf = Array.make extent 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  let total = !acc in
  let sample () =
    let u = Sim.Rng.float rng total in
    (* Binary search for the first cdf entry >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (extent - 1)
  in
  Array.init length (fun _ -> sample ())

let working_set_phases rng ~length ~extent ~set_size ~phase_length ~locality =
  assert (set_size > 0 && set_size <= extent);
  assert (phase_length > 0);
  assert (locality >= 0. && locality <= 1.);
  let draw_set () =
    (* Sample [set_size] distinct addresses by shuffling a candidate pool. *)
    let pool = Array.init extent (fun i -> i) in
    Sim.Rng.shuffle rng pool;
    Array.sub pool 0 set_size
  in
  let current = ref (draw_set ()) in
  Array.init length (fun i ->
      if i > 0 && i mod phase_length = 0 then current := draw_set ();
      if Sim.Rng.float rng 1. < locality then Sim.Rng.pick rng !current
      else Sim.Rng.int rng extent)

let matrix_row_major ~rows ~cols ~base =
  assert (rows > 0 && cols > 0);
  Array.init (rows * cols) (fun i -> base + i)

let matrix_col_major ~rows ~cols ~base =
  assert (rows > 0 && cols > 0);
  Array.init (rows * cols) (fun i ->
      let c = i / rows and r = i mod rows in
      base + (r * cols) + c)

let belady_anomaly_trace = [| 1; 2; 3; 4; 1; 2; 5; 1; 2; 3; 4; 5 |]

let to_pages ~page_size trace =
  assert (page_size > 0);
  Array.map (fun a -> a / page_size) trace

let extent trace = Array.fold_left (fun m a -> max m (a + 1)) 0 trace
