type t = { name : string; refs : Trace.t; compute_us_per_ref : int }

let make ~name ~refs ~compute_us_per_ref =
  assert (compute_us_per_ref >= 0);
  { name; refs; compute_us_per_ref }

let pages_touched t =
  let seen = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace seen p ()) t.refs;
  Hashtbl.length seen

let mix rng ~jobs ~refs_per_job ~pages_per_job ~locality ~compute_us_per_ref =
  assert (jobs > 0);
  List.init jobs (fun i ->
      let refs =
        Trace.working_set_phases rng ~length:refs_per_job ~extent:pages_per_job
          ~set_size:(max 1 (pages_per_job / 4))
          ~phase_length:(max 1 (refs_per_job / 8))
          ~locality
      in
      make ~name:(Printf.sprintf "job%d" i) ~refs ~compute_us_per_ref)
