(** Plain-text trace files.

    Reference traces and allocation streams can be saved and reloaded,
    so experiments can run over externally captured traces (the
    Belady-era methodology) and `bin/tracegen` can materialize any of
    the built-in generators for other tools.

    Formats: a reference trace is one decimal address per line; an
    allocation stream is ["a <id> <size>"] or ["f <id>"] per line.
    Blank lines and lines starting with ['#'] are ignored in both. *)

val save_trace : string -> Trace.t -> unit

val load_trace : string -> Trace.t
(** Raises [Failure] naming the line on malformed input. *)

val write_trace : out_channel -> Trace.t -> unit

val save_events : string -> Alloc_stream.event list -> unit

val load_events : string -> Alloc_stream.event list

val write_events : out_channel -> Alloc_stream.event list -> unit
