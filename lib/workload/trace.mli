(** Synthetic reference traces.

    A trace is an array of addresses (word numbers or page numbers,
    depending on how the consumer interprets them).  The generators cover
    the locality structures the 1960s literature used to evaluate
    replacement strategies: pure sequence, uniform random, tight loops,
    phase-structured working sets, and skewed (Zipf) popularity, plus
    matrix traversals whose row/column order makes paging behave well or
    catastrophically. *)

type t = int array

val sequential : length:int -> extent:int -> t
(** 0, 1, ..., extent-1, 0, 1, ... *)

val uniform : Sim.Rng.t -> length:int -> extent:int -> t
(** Independent uniform references over [0, extent). *)

val loop : length:int -> extent:int -> working_set:int -> t
(** Cyclic sweep over the first [working_set] addresses of the extent —
    the access pattern for which FIFO and LRU behave worst when memory is
    one frame short.  Requires [working_set <= extent]. *)

val zipf : Sim.Rng.t -> length:int -> extent:int -> skew:float -> t
(** Zipf-distributed popularity with exponent [skew] (1.0 is classic);
    address [i] has probability proportional to [1/(i+1)^skew]. *)

val working_set_phases :
  Sim.Rng.t ->
  length:int -> extent:int -> set_size:int -> phase_length:int -> locality:float -> t
(** Phase/transition behaviour: during each phase of [phase_length]
    references a random set of [set_size] addresses receives fraction
    [locality] of the references, the rest going anywhere in the extent;
    a new set is drawn each phase. *)

val matrix_row_major : rows:int -> cols:int -> base:int -> t
(** Word addresses of a row-by-row sweep of a [rows] x [cols] matrix of
    one-word elements stored row-major starting at [base]. *)

val matrix_col_major : rows:int -> cols:int -> base:int -> t
(** Column-by-column sweep of the same row-major matrix: the classic
    pattern that touches a different page every reference. *)

val belady_anomaly_trace : t
(** The canonical 12-reference string 1 2 3 4 1 2 5 1 2 3 4 5 for which
    FIFO faults more with 4 frames than with 3. *)

val to_pages : page_size:int -> t -> t
(** Map a word-address trace to its page-number trace. *)

val extent : t -> int
(** 1 + the largest address in the trace (0 for an empty trace). *)
