let with_out filename f =
  let oc = open_out filename in
  match f oc with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    raise e

(* Apply [parse] to every meaningful line, with 1-based line numbers in
   errors. *)
let fold_lines filename parse =
  let ic = open_in filename in
  let acc = ref [] in
  let lineno = ref 0 in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           match parse line with
           | Some v -> acc := v :: !acc
           | None ->
             (* lint: allow L4 — file-format errors surface as Failure with file:line context; tests rely on it *)
             failwith
               (Printf.sprintf "%s: line %d: cannot parse %S" filename !lineno line)
         end;
         loop ()
       | exception End_of_file -> ()
     in
     loop ();
     close_in ic
   with e ->
     close_in_noerr ic;
     raise e);
  List.rev !acc

let write_trace oc trace =
  output_string oc "# dsas reference trace: one address per line\n";
  Array.iter (fun a -> Printf.fprintf oc "%d\n" a) trace

let save_trace filename trace = with_out filename (fun oc -> write_trace oc trace)

let load_trace filename =
  Array.of_list (fold_lines filename (fun line -> int_of_string_opt line))

let event_line = function
  | Alloc_stream.Alloc { id; size } -> Printf.sprintf "a %d %d" id size
  | Alloc_stream.Free { id } -> Printf.sprintf "f %d" id

let parse_event line =
  match String.split_on_char ' ' line with
  | [ "a"; id; size ] ->
    (match int_of_string_opt id, int_of_string_opt size with
     | Some id, Some size when size > 0 -> Some (Alloc_stream.Alloc { id; size })
     | _, _ -> None)
  | [ "f"; id ] ->
    (match int_of_string_opt id with
     | Some id -> Some (Alloc_stream.Free { id })
     | None -> None)
  | _ -> None

let write_events oc events =
  output_string oc "# dsas allocation stream: 'a <id> <size>' or 'f <id>' per line\n";
  List.iter (fun e -> output_string oc (event_line e ^ "\n")) events

let save_events filename events = with_out filename (fun oc -> write_events oc events)

let load_events filename = fold_lines filename parse_event
