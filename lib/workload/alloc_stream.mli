(** Allocation-request streams for the variable-unit allocators.

    The classic allocator benchmark shape: objects are born in sequence,
    each with a size drawn from a distribution and a lifetime measured in
    subsequent births; the stream interleaves the resulting [Alloc] and
    [Free] events.  Experiment C2 feeds these to each placement policy. *)

type event =
  | Alloc of { id : int; size : int }
  | Free of { id : int }

type size_dist =
  | Exact of int
  | Uniform of int * int  (** inclusive bounds *)
  | Geometric of { mean : float; min_size : int }
      (** heavily small-skewed, as real allocation mixes are *)
  | Bimodal of { small : int; large : int; large_fraction : float }
      (** the paper's "place large blocks at one end, small at the other"
          scenario *)

val sample_size : Sim.Rng.t -> size_dist -> int

val generate :
  Sim.Rng.t -> objects:int -> size:size_dist -> mean_lifetime:float -> event list
(** [generate rng ~objects ~size ~mean_lifetime] births [objects]
    objects; object [i]'s [Free] is emitted just before birth
    [i + lifetime] where lifetime is geometric with the given mean.
    Objects outliving the stream are freed at the end, so every [Alloc]
    has a matching [Free]. *)

val live_stream :
  Sim.Rng.t -> steps:int -> size:size_dist -> target_live:int -> event list
(** Steady-state stream: at each step allocate if fewer than
    [target_live] objects are live (or with probability 1/2 when at
    target), else free a uniformly random live object.  No final frees
    are appended: the stream ends with ~[target_live] objects live,
    which is the state in which fragmentation is measured. *)

val peak_live_words : event list -> int
(** Maximum over time of the total words live, a lower bound on the
    store size any allocator needs. *)
