type event =
  | Alloc of { id : int; size : int }
  | Free of { id : int }

type size_dist =
  | Exact of int
  | Uniform of int * int
  | Geometric of { mean : float; min_size : int }
  | Bimodal of { small : int; large : int; large_fraction : float }

let sample_size rng = function
  | Exact n ->
    assert (n > 0);
    n
  | Uniform (lo, hi) ->
    assert (0 < lo && lo <= hi);
    Sim.Rng.int_in rng lo hi
  | Geometric { mean; min_size } ->
    assert (mean > 0. && min_size > 0);
    let p = 1. /. (mean +. 1.) in
    min_size + Sim.Rng.geometric rng p
  | Bimodal { small; large; large_fraction } ->
    assert (small > 0 && large > 0);
    assert (large_fraction >= 0. && large_fraction <= 1.);
    if Sim.Rng.float rng 1. < large_fraction then large else small

let generate rng ~objects ~size ~mean_lifetime =
  assert (objects > 0 && mean_lifetime > 0.);
  let p = 1. /. (mean_lifetime +. 1.) in
  (* deaths.(i) = ids of objects freed just before birth i. *)
  let deaths = Array.make (objects + 1) [] in
  let sizes = Array.make objects 0 in
  for i = 0 to objects - 1 do
    sizes.(i) <- sample_size rng size;
    let lifetime = 1 + Sim.Rng.geometric rng p in
    let death = min objects (i + lifetime) in
    deaths.(death) <- i :: deaths.(death)
  done;
  let events = ref [] in
  for i = 0 to objects do
    List.iter (fun id -> events := Free { id } :: !events) (List.rev deaths.(i));
    if i < objects then events := Alloc { id = i; size = sizes.(i) } :: !events
  done;
  List.rev !events

let live_stream rng ~steps ~size ~target_live =
  assert (steps > 0 && target_live > 0);
  let live = ref [||] in
  let live_count = ref 0 in
  let next_id = ref 0 in
  let events = ref [] in
  let push_live id =
    if !live_count >= Array.length !live then begin
      let grown = Array.make (max 8 (2 * Array.length !live)) 0 in
      Array.blit !live 0 grown 0 !live_count;
      live := grown
    end;
    !live.(!live_count) <- id;
    incr live_count
  in
  let alloc () =
    let id = !next_id in
    incr next_id;
    events := Alloc { id; size = sample_size rng size } :: !events;
    push_live id
  in
  let free () =
    let k = Sim.Rng.int rng !live_count in
    let id = !live.(k) in
    !live.(k) <- !live.(!live_count - 1);
    decr live_count;
    events := Free { id } :: !events
  in
  for _ = 1 to steps do
    if !live_count = 0 then alloc ()
    else if !live_count < target_live then alloc ()
    else if !live_count > target_live then free ()
    else if Sim.Rng.bool rng then alloc ()
    else free ()
  done;
  List.rev !events

let peak_live_words events =
  let sizes = Hashtbl.create 64 in
  let live = ref 0 and peak = ref 0 in
  let step = function
    | Alloc { id; size } ->
      Hashtbl.replace sizes id size;
      live := !live + size;
      if !live > !peak then peak := !live
    | Free { id } ->
      (match Hashtbl.find_opt sizes id with
       | Some size ->
         live := !live - size;
         Hashtbl.remove sizes id
       | None -> invalid_arg "peak_live_words: free of unknown id")
  in
  List.iter step events;
  !peak
