type t = { label : string; latency_us : int; word_ns : int }

let ceil_div a b = (a + b - 1) / b

let word_access_us t =
  let ns = (t.latency_us * 1000) + t.word_ns in
  if ns = 0 then 0 else max 1 (ceil_div ns 1000)

let transfer_us t ~words =
  assert (words >= 0);
  let transfer_ns = words * t.word_ns in
  t.latency_us + ceil_div transfer_ns 1000

let core = { label = "core"; latency_us = 2; word_ns = 0 }

let fast_core = { label = "fast-core"; latency_us = 0; word_ns = 200 }

let slow_core = { label = "slow-core"; latency_us = 8; word_ns = 0 }

let drum = { label = "drum"; latency_us = 6_000; word_ns = 4_000 }

let disk = { label = "disk"; latency_us = 165_000; word_ns = 11_000 }

let custom ~label ~latency_us ~word_ns =
  assert (latency_us >= 0 && word_ns >= 0);
  { label; latency_us; word_ns }
