type policy =
  | Fifo_order
  | Shortest_access

type request = {
  id : int;
  arrival_us : int;
  sector : int;
}

type completion = {
  request : request;
  start_us : int;
  finish_us : int;
}

type t = { sectors : int; rotation_us : int; sector_us : int; policy : policy }

let create ~sectors ~rotation_us policy =
  assert (sectors > 0 && rotation_us > 0 && rotation_us mod sectors = 0);
  { sectors; rotation_us; sector_us = rotation_us / sectors; policy }

let sector_us t = t.sector_us

(* Earliest time >= [now] at which [sector] begins passing the heads. *)
let next_pass t ~now ~sector =
  let slot = now / t.sector_us in
  let phase = slot mod t.sectors in
  let delta = (sector - phase + t.sectors) mod t.sectors in
  let candidate = (slot + delta) * t.sector_us in
  if candidate >= now then candidate else candidate + t.rotation_us

let serve t requests =
  List.iter (fun r -> assert (r.sector >= 0 && r.sector < t.sectors)) requests;
  let pending = ref requests in
  let completions = ref [] in
  let now = ref 0 in
  while !pending <> [] do
    let arrived, future = List.partition (fun r -> r.arrival_us <= !now) !pending in
    match arrived with
    | [] ->
      (* Idle until the next arrival. *)
      now := List.fold_left (fun m r -> min m r.arrival_us) max_int future
    | first :: rest ->
      let better a b =
        match t.policy with
        | Fifo_order ->
          a.arrival_us < b.arrival_us || (a.arrival_us = b.arrival_us && a.id < b.id)
        | Shortest_access ->
          let pa = next_pass t ~now:!now ~sector:a.sector in
          let pb = next_pass t ~now:!now ~sector:b.sector in
          pa < pb || (pa = pb && a.id < b.id)
      in
      let chosen =
        List.fold_left (fun best r -> if better r best then r else best) first rest
      in
      let start_us = next_pass t ~now:!now ~sector:chosen.sector in
      let finish_us = start_us + t.sector_us in
      completions := { request = chosen; start_us; finish_us } :: !completions;
      now := finish_us;
      pending := List.filter (fun r -> r.id <> chosen.id) future
        @ List.filter (fun r -> r.id <> chosen.id) arrived
  done;
  List.rev !completions

let mean_latency_us completions =
  match completions with
  | [] -> 0.
  | _ :: _ ->
    let total =
      List.fold_left
        (fun acc c -> acc +. float_of_int (c.finish_us - c.request.arrival_us))
        0. completions
    in
    total /. float_of_int (List.length completions)
