type t = {
  clock : Sim.Clock.t;
  device : Device.t;
  physical : Physical.t;
  mutable busy_until : int;
}

let create clock device physical = { clock; device; physical; busy_until = 0 }

let make clock device ~name ~words = create clock device (Physical.create ~name ~words)

let physical t = t.physical

let device t = t.device

let clock t = t.clock

let size t = Physical.size t.physical

let read t address =
  Sim.Clock.advance t.clock (Device.word_access_us t.device);
  Physical.read t.physical address

let write t address v =
  Sim.Clock.advance t.clock (Device.word_access_us t.device);
  Physical.write t.physical address v

let read_free t address = Physical.read t.physical address

let slower_cost a b ~len =
  max (Device.transfer_us a.device ~words:len) (Device.transfer_us b.device ~words:len)

let transfer ~src ~src_off ~dst ~dst_off ~len =
  Physical.blit ~src:src.physical ~src_off ~dst:dst.physical ~dst_off ~len;
  Sim.Clock.advance src.clock (slower_cost src dst ~len)

let busy_until t = t.busy_until

let transfer_async ~src ~src_off ~dst ~dst_off ~len =
  Physical.blit ~src:src.physical ~src_off ~dst:dst.physical ~dst_off ~len;
  let now = Sim.Clock.now src.clock in
  let start = max now (max src.busy_until dst.busy_until) in
  let finish = start + slower_cost src dst ~len in
  src.busy_until <- finish;
  dst.busy_until <- finish;
  finish
