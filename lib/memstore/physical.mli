(** A word-addressed physical store, backed by [Bytes].

    This is the simulation's ground truth: every store in the hierarchy
    (core, drum, disk) is one of these.  Words are 64-bit; addresses are
    word offsets from 0.  Out-of-range accesses raise {!Bound_violation},
    modelling the paper's "address bound violation detection" hardware
    facility (Special Hardware Facilities, ii). *)

type t

exception Bound_violation of { store : string; address : int; extent : int }
(** Raised on any access outside [0, extent). *)

val create : name:string -> words:int -> t
(** A zero-filled store of [words] 64-bit words. *)

val name : t -> string

val size : t -> int
(** Extent in words. *)

val read : t -> int -> int64

val write : t -> int -> int64 -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Copy [len] words.  Handles overlapping ranges within one store
    correctly (like [Bytes.blit]). *)

val fill : t -> off:int -> len:int -> int64 -> unit

val reads : t -> int
(** Number of word reads performed, for access accounting. *)

val writes : t -> int
(** Number of word writes performed ([blit]/[fill] count per word). *)
