(** Timing models for the storage devices of the paper's era.

    A device access costs a fixed latency (core cycle time, drum
    rotational delay, disk seek + rotation) plus a per-word transfer
    time.  All times are in microseconds; per-word time is kept in
    nanoseconds so that slow-core/fast-drum ratios stay representable. *)

type t = {
  label : string;
  latency_us : int;  (** fixed cost per access (seek / rotational delay) *)
  word_ns : int;  (** transfer time per word, nanoseconds *)
}

val word_access_us : t -> int
(** Time to access a single word, in whole microseconds (>= 1 whenever
    the device has any cost at all). *)

val transfer_us : t -> words:int -> int
(** Time for one access moving [words] words: latency + transfer. *)

(** {2 Presets}

    Rounded from the machines in the paper's appendix; the experiments
    sweep around these values, so only the ratios matter. *)

val core : t
(** ~2 us cycle core storage (ATLAS/7044-class). *)

val fast_core : t
(** ~0.2 us large-system core (B8500-class). *)

val slow_core : t
(** ~8 us bulk core (M44's added 8-microsecond memory). *)

val drum : t
(** Paging drum: ~6 ms average rotational delay, ~4 us/word transfer. *)

val disk : t
(** IBM 1301-class disk: ~165 ms average access, ~11 us/word. *)

val custom : label:string -> latency_us:int -> word_ns:int -> t
