(** One level of a storage hierarchy: a physical store with a device
    timing model and a clock that accesses are charged to.

    Reading or writing through a level both performs the access on the
    underlying {!Physical.t} and advances the shared virtual clock by the
    device's cost, so higher-level simulators get timing for free. *)

type t

val create : Sim.Clock.t -> Device.t -> Physical.t -> t

val make : Sim.Clock.t -> Device.t -> name:string -> words:int -> t
(** Convenience: create the physical store too. *)

val physical : t -> Physical.t

val device : t -> Device.t

val clock : t -> Sim.Clock.t

val size : t -> int

val read : t -> int -> int64
(** Timed word read. *)

val write : t -> int -> int64 -> unit
(** Timed word write. *)

val read_free : t -> int -> int64
(** Untimed read, for inspection by tests and debuggers. *)

val transfer : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Move [len] words between levels (or within one), charging the clock
    the slower device's {!Device.transfer_us} for the block.  This is the
    page/segment transfer primitive. *)

val busy_until : t -> int
(** Absolute time at which the device's last initiated transfer
    completes; used by multiprogramming simulations that overlap fetches
    with computation instead of blocking the clock. *)

val transfer_async : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> int
(** Like {!transfer} but instead of advancing the clock, performs the
    copy immediately (data is available for simulation purposes) and
    returns the completion time, queueing behind the device's previous
    transfers.  Updates {!busy_until} on both levels. *)
