type t = {
  name : string;
  words : int;
  bytes : Bytes.t;
  mutable reads : int;
  mutable writes : int;
}

exception Bound_violation of { store : string; address : int; extent : int }

let create ~name ~words =
  assert (words > 0);
  { name; words; bytes = Bytes.make (words * 8) '\000'; reads = 0; writes = 0 }

let name t = t.name

let size t = t.words

let check t address =
  if address < 0 || address >= t.words then
    raise (Bound_violation { store = t.name; address; extent = t.words })

let check_range t off len =
  if len < 0 then raise (Bound_violation { store = t.name; address = off; extent = t.words });
  if len > 0 then begin
    check t off;
    check t (off + len - 1)
  end

let read t address =
  check t address;
  t.reads <- t.reads + 1;
  Bytes.get_int64_le t.bytes (address * 8)

let write t address v =
  check t address;
  t.writes <- t.writes + 1;
  Bytes.set_int64_le t.bytes (address * 8) v

let blit ~src ~src_off ~dst ~dst_off ~len =
  check_range src src_off len;
  check_range dst dst_off len;
  Bytes.blit src.bytes (src_off * 8) dst.bytes (dst_off * 8) (len * 8);
  src.reads <- src.reads + len;
  dst.writes <- dst.writes + len

let fill t ~off ~len v =
  check_range t off len;
  for i = off to off + len - 1 do
    Bytes.set_int64_le t.bytes (i * 8) v
  done;
  t.writes <- t.writes + len

let reads t = t.reads

let writes t = t.writes
