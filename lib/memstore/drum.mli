(** A sectored paging drum with request scheduling.

    The paper makes fetch-strategy quality hinge on "the performance of
    the storage medium on which pages that cannot be held in working
    storage are kept".  For the drums of the era that performance was
    made or broken by {e request scheduling}: a drum stores one page per
    angular sector, so serving requests in arrival order (FIFO) pays
    about half a revolution of rotational latency each, while picking
    whichever queued request's sector passes under the heads next
    (shortest access time first) approaches one sector time per page
    under load.  Experiment X8 measures the difference and its effect
    on effective page-fetch time. *)

type policy =
  | Fifo_order  (** serve strictly in arrival order *)
  | Shortest_access  (** serve the queued sector that arrives next *)

type request = {
  id : int;
  arrival_us : int;
  sector : int;
}

type completion = {
  request : request;
  start_us : int;  (** when the sector began passing the heads *)
  finish_us : int;
}

type t

val create : sectors:int -> rotation_us:int -> policy -> t
(** [rotation_us] must be divisible by [sectors]. *)

val sector_us : t -> int
(** Transfer time of one page (one sector passing the heads). *)

val serve : t -> request list -> completion list
(** Simulate serving the whole batch (arrivals need not be sorted).
    One request is served at a time; between services the drum keeps
    rotating.  Completions are returned in service order. *)

val mean_latency_us : completion list -> float
(** Mean of finish - arrival. *)
