(** Autonomous storage-to-storage channel.

    The paper's "Special Hardware Facilities (iii)": fast channel
    operations provided specifically to speed up storage packing
    (compaction).  A channel moves words within one store at its own
    rate, cheaper than a word-at-a-time processor copy, and counts the
    words moved so compaction cost can be reported. *)

type t

val create : Sim.Clock.t -> word_ns:int -> t
(** A channel moving one word per [word_ns] nanoseconds. *)

val processor_copy : Sim.Clock.t -> t
(** A pseudo-channel modelling a plain processor copy loop at core speed
    (~2 us/word): the baseline the hardware facility improves on. *)

val move : t -> Physical.t -> src:int -> dst:int -> len:int -> unit
(** Move [len] words within the store (overlap-safe), advancing the
    clock by the channel cost. *)

val words_moved : t -> int
(** Total words moved through this channel. *)

val time_spent_us : t -> int
(** Total simulated time spent moving. *)
