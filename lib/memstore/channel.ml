type t = {
  clock : Sim.Clock.t;
  word_ns : int;
  mutable words_moved : int;
  mutable time_spent_us : int;
}

let create clock ~word_ns =
  assert (word_ns >= 0);
  { clock; word_ns; words_moved = 0; time_spent_us = 0 }

let processor_copy clock = create clock ~word_ns:2_000

let move t physical ~src ~dst ~len =
  Physical.blit ~src:physical ~src_off:src ~dst:physical ~dst_off:dst ~len;
  let cost_us = (len * t.word_ns + 999) / 1000 in
  Sim.Clock.advance t.clock cost_us;
  t.words_moved <- t.words_moved + len;
  t.time_spent_us <- t.time_spent_us + cost_us

let words_moved t = t.words_moved

let time_spent_us t = t.time_spent_us
