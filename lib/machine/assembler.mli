(** A symbolic assembler for the word machine.

    {!Programs} builds instruction arrays with hand-counted jump
    targets; this assembler resolves labels instead, so programs can be
    written the way 1960s assembly was: named branch targets and
    symbolic data names, assigned to concrete names at assembly time —
    the paper's observation that "assembly programs could be used to
    permit a programmer to refer to storage locations symbolically.
    The actual assignment of specific addresses ... would then be
    performed during the assembly process".

    A source item is a label definition or an instruction whose jump
    targets are label names and whose operands may name data symbols
    declared with {!val-symbol}. *)

type operand =
  | At of { seg : int; off : int; indexed : bool }  (** concrete name *)
  | Sym of { name : string; disp : int; indexed : bool }
      (** data symbol + displacement *)

type item =
  | Label of string
  | Load of operand
  | Store of operand
  | Add of operand
  | Sub of operand
  | Loadi of int
  | Addi of int
  | Setx of int
  | Ldx of operand
  | Addx of int
  | Jmp of string
  | Jnz of string
  | Jlt of string
  | Jxlt of string
  | Advise_will of operand
  | Advise_wont of operand
  | Halt

exception Assembly_error of string

val direct : ?seg:int -> int -> operand

val indexed : ?seg:int -> int -> operand

val sym : ?disp:int -> string -> operand

val sym_x : ?disp:int -> string -> operand
(** Indexed symbol reference. *)

val assemble : ?symbols:(string * (int * int)) list -> item list -> Isa.instr array
(** [assemble ~symbols items] resolves every label to its instruction
    index and every symbol to its [(seg, off)] binding.  Raises
    {!Assembly_error} on duplicate labels, undefined labels or
    symbols. *)
