(** Pluggable addressing units: the path from name to location.

    One CPU ({!Cpu}) runs the same encoded program through any of
    these, so the taxonomy's name-space rows become directly
    comparable:

    - {!absolute}: names are absolute core addresses (early machines);
    - {!relocated}: a relocation/limit register pair;
    - {!paged}: a large linear name space over a demand pager (ATLAS);
    - {!segmented}: two-part names through a segment store (B5000).

    All variants present the same record of operations; units that have
    no segments reject a non-zero segment name. *)

type access = { segment : int; offset : int }

exception No_segments of access
(** Raised by linear units when [segment <> 0]. *)

type t = {
  label : string;
  read : access -> int64;
  write : access -> int64 -> unit;
  advise_will : access -> unit;  (** no-op where unsupported *)
  advise_wont : access -> unit;
}

val absolute : Memstore.Level.t -> t

val relocated : Memstore.Level.t -> Swapping.Relocation.t -> t

val paged : Paging.Demand.t -> t
(** Advice maps to the pager's will-need / wont-need. *)

val segmented : Segmentation.Segment_store.t -> segments:Segmentation.Segment_store.id array -> t
(** [segments.(i)] is the store segment behind segment name [i].
    Unknown segment names raise [Invalid_argument]. *)
