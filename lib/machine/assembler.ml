type operand =
  | At of { seg : int; off : int; indexed : bool }
  | Sym of { name : string; disp : int; indexed : bool }

type item =
  | Label of string
  | Load of operand
  | Store of operand
  | Add of operand
  | Sub of operand
  | Loadi of int
  | Addi of int
  | Setx of int
  | Ldx of operand
  | Addx of int
  | Jmp of string
  | Jnz of string
  | Jlt of string
  | Jxlt of string
  | Advise_will of operand
  | Advise_wont of operand
  | Halt

exception Assembly_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Assembly_error s)) fmt

let direct ?(seg = 0) off = At { seg; off; indexed = false }

let indexed ?(seg = 0) off = At { seg; off; indexed = true }

let sym ?(disp = 0) name = Sym { name; disp; indexed = false }

let sym_x ?(disp = 0) name = Sym { name; disp; indexed = true }

let assemble ?(symbols = []) items =
  (* Pass 1: label addresses (instruction indices). *)
  let labels = Hashtbl.create 16 in
  let count =
    List.fold_left
      (fun index item ->
        match item with
        | Label name ->
          if Hashtbl.mem labels name then error "duplicate label %S" name;
          Hashtbl.replace labels name index;
          index
        | Load _ | Store _ | Add _ | Sub _ | Loadi _ | Addi _ | Setx _ | Ldx _
        | Addx _ | Jmp _ | Jnz _ | Jlt _ | Jxlt _ | Advise_will _ | Advise_wont _
        | Halt ->
          index + 1)
      0 items
  in
  ignore count;
  let target name =
    match Hashtbl.find_opt labels name with
    | Some index -> index
    | None -> error "undefined label %S" name
  in
  let bindings = Hashtbl.create 16 in
  List.iter (fun (name, binding) -> Hashtbl.replace bindings name binding) symbols;
  let operand = function
    | At { seg; off; indexed } -> { Isa.seg; off; indexed }
    | Sym { name; disp; indexed } ->
      (match Hashtbl.find_opt bindings name with
       | Some (seg, off) -> { Isa.seg; off = off + disp; indexed }
       | None -> error "undefined symbol %S" name)
  in
  (* Pass 2: emit. *)
  let emit = function
    | Label _ -> None
    | Load o -> Some (Isa.Load (operand o))
    | Store o -> Some (Isa.Store (operand o))
    | Add o -> Some (Isa.Add (operand o))
    | Sub o -> Some (Isa.Sub (operand o))
    | Loadi n -> Some (Isa.Loadi n)
    | Addi n -> Some (Isa.Addi n)
    | Setx n -> Some (Isa.Setx n)
    | Ldx o -> Some (Isa.Ldx (operand o))
    | Addx n -> Some (Isa.Addx n)
    | Jmp l -> Some (Isa.Jmp (target l))
    | Jnz l -> Some (Isa.Jnz (target l))
    | Jlt l -> Some (Isa.Jlt (target l))
    | Jxlt l -> Some (Isa.Jxlt (target l))
    | Advise_will o -> Some (Isa.Advise_will (operand o))
    | Advise_wont o -> Some (Isa.Advise_wont (operand o))
    | Halt -> Some Isa.Halt
  in
  Array.of_list (List.filter_map emit items)
