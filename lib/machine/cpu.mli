(** The processor: fetch, decode, execute — all through one addressing
    unit.

    Instructions live in simulated storage and are fetched through the
    same {!Addressing.t} as data ("instruction fetching on a 1-address
    computer is a special case" of needing contiguity, as the paper
    notes), so a paged CPU takes page faults on its own code and a
    segmented CPU keeps code in its own segment. *)

exception Out_of_fuel of int
(** Raised by {!run} when the step budget is exhausted (runaway
    program). *)

type t

val create : Addressing.t -> code_at:(int -> Addressing.access) -> t
(** [code_at pc] names the word holding instruction [pc] — e.g.
    [fun pc -> { segment = 0; offset = code_base + pc }] for a linear
    name space, or [{ segment = code_seg; offset = pc }] for a
    segmented one. *)

val load_program : t -> Isa.instr array -> unit
(** Encode and write the program through the addressing unit.  Raises
    [Invalid_argument] if an instruction's fields do not fit. *)

val reset : t -> unit
(** Clear the processor state (acc, X, instruction counter, halt flag,
    step count); storage contents are untouched, so a second program
    loaded over the first can run against the data the first left. *)

val step : t -> unit
(** Execute one instruction.  No-op when halted. *)

val run : ?fuel:int -> t -> unit
(** Step until [Halt] (default fuel 1_000_000). *)

val halted : t -> bool

val acc : t -> int64

val x : t -> int

val pc : t -> int

val steps : t -> int
(** Instructions executed. *)

val read_data : t -> Addressing.access -> int64
(** Read a word through the unit without executing (for inspecting
    results). *)

val write_data : t -> Addressing.access -> int64 -> unit
