exception Out_of_fuel of int

type t = {
  unit : Addressing.t;
  code_at : int -> Addressing.access;
  mutable acc : int64;
  mutable x : int;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;
}

let create unit ~code_at =
  { unit; code_at; acc = 0L; x = 0; pc = 0; halted = false; steps = 0 }

let load_program t program =
  Array.iteri (fun i instr -> t.unit.Addressing.write (t.code_at i) (Isa.encode instr)) program

let reset t =
  t.acc <- 0L;
  t.x <- 0;
  t.pc <- 0;
  t.halted <- false;
  t.steps <- 0

let effective t (o : Isa.operand) =
  let offset = if o.Isa.indexed then o.Isa.off + t.x else o.Isa.off in
  { Addressing.segment = o.Isa.seg; offset }

let step t =
  if not t.halted then begin
    let instr = Isa.decode (t.unit.Addressing.read (t.code_at t.pc)) in
    t.steps <- t.steps + 1;
    t.pc <- t.pc + 1;
    match instr with
    | Isa.Load o -> t.acc <- t.unit.Addressing.read (effective t o)
    | Isa.Store o -> t.unit.Addressing.write (effective t o) t.acc
    | Isa.Add o ->
      t.acc <- Int64.add t.acc (t.unit.Addressing.read (effective t o))
    | Isa.Sub o ->
      t.acc <- Int64.sub t.acc (t.unit.Addressing.read (effective t o))
    | Isa.Loadi n -> t.acc <- Int64.of_int n
    | Isa.Addi n -> t.acc <- Int64.add t.acc (Int64.of_int n)
    | Isa.Setx n -> t.x <- n
    | Isa.Ldx o -> t.x <- Int64.to_int (t.unit.Addressing.read (effective t o))
    | Isa.Addx n -> t.x <- t.x + n
    | Isa.Jmp target -> t.pc <- target
    | Isa.Jnz target -> if t.acc <> 0L then t.pc <- target
    | Isa.Jlt target -> if Int64.compare t.acc 0L < 0 then t.pc <- target
    | Isa.Jxlt target -> if t.x < 0 then t.pc <- target
    | Isa.Advise_will o -> t.unit.Addressing.advise_will (effective t o)
    | Isa.Advise_wont o -> t.unit.Addressing.advise_wont (effective t o)
    | Isa.Halt -> t.halted <- true
  end

let run ?(fuel = 1_000_000) t =
  let remaining = ref fuel in
  while not t.halted do
    if !remaining <= 0 then raise (Out_of_fuel t.steps);
    decr remaining;
    step t
  done

let halted t = t.halted

let acc t = t.acc

let x t = t.x

let pc t = t.pc

let steps t = t.steps

let read_data t access = t.unit.Addressing.read access

let write_data t access v = t.unit.Addressing.write access v
