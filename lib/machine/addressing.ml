type access = { segment : int; offset : int }

exception No_segments of access

type t = {
  label : string;
  read : access -> int64;
  write : access -> int64 -> unit;
  advise_will : access -> unit;
  advise_wont : access -> unit;
}

let linear_only a = if a.segment <> 0 then raise (No_segments a)

let no_advice (_ : access) = ()

let absolute level =
  {
    label = "absolute";
    read =
      (fun a ->
        linear_only a;
        Memstore.Level.read level a.offset);
    write =
      (fun a v ->
        linear_only a;
        Memstore.Level.write level a.offset v);
    advise_will = no_advice;
    advise_wont = no_advice;
  }

let relocated level registers =
  {
    label = "relocation+limit";
    read =
      (fun a ->
        linear_only a;
        Memstore.Level.read level (Swapping.Relocation.translate registers a.offset));
    write =
      (fun a v ->
        linear_only a;
        Memstore.Level.write level (Swapping.Relocation.translate registers a.offset) v);
    advise_will = no_advice;
    advise_wont = no_advice;
  }

let paged engine =
  (* The pager's name space is word-addressed; advice talks pages. *)
  let page_of a = a.offset / Paging.Demand.page_size engine in
  {
    label = "paged";
    read =
      (fun a ->
        linear_only a;
        Paging.Demand.read engine a.offset);
    write =
      (fun a v ->
        linear_only a;
        Paging.Demand.write engine a.offset v);
    advise_will =
      (fun a ->
        linear_only a;
        Paging.Demand.advise_will_need engine ~page:(page_of a));
    advise_wont =
      (fun a ->
        linear_only a;
        Paging.Demand.advise_wont_need engine ~page:(page_of a));
  }

let segmented store ~segments =
  let id a =
    if a.segment < 0 || a.segment >= Array.length segments then
      invalid_arg (Printf.sprintf "Addressing.segmented: unknown segment %d" a.segment);
    segments.(a.segment)
  in
  {
    label = "segmented";
    read = (fun a -> Segmentation.Segment_store.read store (id a) a.offset);
    write = (fun a v -> Segmentation.Segment_store.write store (id a) a.offset v);
    advise_will = no_advice;
    advise_wont = no_advice;
  }
