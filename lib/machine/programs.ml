let sum_array ?(seg = 0) ~data ~n ~scratch () =
  assert (n >= 1);
  [|
    Isa.Setx (n - 1);
    Isa.Loadi 0;
    Isa.Store (Isa.direct ~seg scratch);
    (* loop: *)
    Isa.Load (Isa.direct ~seg scratch);
    Isa.Add (Isa.indexed ~seg data);
    Isa.Store (Isa.direct ~seg scratch);
    Isa.Addx (-1);
    Isa.Jxlt 9;
    Isa.Jmp 3;
    (* done: *)
    Isa.Load (Isa.direct ~seg scratch);
    Isa.Halt;
  |]

let fill_array ?(seg = 0) ~data ~n ~scratch () =
  assert (n >= 1);
  [|
    Isa.Setx (n - 1);
    Isa.Loadi (n - 1);
    Isa.Store (Isa.direct ~seg scratch);
    (* loop: *)
    Isa.Load (Isa.direct ~seg scratch);
    Isa.Store (Isa.indexed ~seg data);
    Isa.Addi (-1);
    Isa.Store (Isa.direct ~seg scratch);
    Isa.Addx (-1);
    Isa.Jxlt 10;
    Isa.Jmp 3;
    Isa.Halt;
  |]

let copy_array ?(seg = 0) ?dst_seg ~src ~dst ~n () =
  assert (n >= 1);
  let dst_seg = match dst_seg with Some s -> s | None -> seg in
  [|
    Isa.Setx (n - 1);
    (* loop: *)
    Isa.Load (Isa.indexed ~seg src);
    Isa.Store (Isa.indexed ~seg:dst_seg dst);
    Isa.Addx (-1);
    Isa.Jxlt 6;
    Isa.Jmp 1;
    Isa.Halt;
  |]

let stride_sum ?(seg = 0) ~data ~terms ~stride ~scratch () =
  assert (terms >= 1 && stride >= 1);
  [|
    Isa.Setx ((terms - 1) * stride);
    Isa.Loadi 0;
    Isa.Store (Isa.direct ~seg scratch);
    (* loop: *)
    Isa.Load (Isa.direct ~seg scratch);
    Isa.Add (Isa.indexed ~seg data);
    Isa.Store (Isa.direct ~seg scratch);
    Isa.Addx (-stride);
    Isa.Jxlt 9;
    Isa.Jmp 3;
    (* done: *)
    Isa.Load (Isa.direct ~seg scratch);
    Isa.Halt;
  |]

let gather_sum ?(seg = 0) ~idx ~data ~n ~scratch () =
  assert (n >= 1);
  let total = scratch and counter = scratch + 1 and tmp = scratch + 2 in
  [|
    Isa.Loadi (n - 1);
    Isa.Store (Isa.direct ~seg counter);
    Isa.Loadi 0;
    Isa.Store (Isa.direct ~seg total);
    (* loop: *)
    Isa.Ldx (Isa.direct ~seg counter);
    Isa.Load (Isa.indexed ~seg idx);
    Isa.Store (Isa.direct ~seg tmp);
    Isa.Ldx (Isa.direct ~seg tmp);
    Isa.Load (Isa.direct ~seg total);
    Isa.Add (Isa.indexed ~seg data);
    Isa.Store (Isa.direct ~seg total);
    Isa.Load (Isa.direct ~seg counter);
    Isa.Addi (-1);
    Isa.Store (Isa.direct ~seg counter);
    Isa.Jlt 16;
    Isa.Jmp 4;
    (* done: *)
    Isa.Load (Isa.direct ~seg total);
    Isa.Halt;
  |]

let advised_sweep ?(seg = 0) ~data ~chunk_words ~chunks ~scratch ~advice () =
  assert (chunks >= 1 && chunk_words >= 1);
  let code = ref [] in
  let len = ref 0 in
  let emit instr =
    code := instr :: !code;
    incr len
  in
  emit (Isa.Loadi 0);
  emit (Isa.Store (Isa.direct ~seg scratch));
  for c = 0 to chunks - 1 do
    let base = data + (c * chunk_words) in
    if advice then begin
      if c + 1 < chunks then
        emit (Isa.Advise_will (Isa.direct ~seg (base + chunk_words)));
      if c > 0 then emit (Isa.Advise_wont (Isa.direct ~seg (base - chunk_words)))
    end;
    emit (Isa.Setx (chunk_words - 1));
    let loop = !len in
    emit (Isa.Load (Isa.direct ~seg scratch));
    emit (Isa.Add (Isa.indexed ~seg base));
    emit (Isa.Store (Isa.direct ~seg scratch));
    emit (Isa.Addx (-1));
    emit (Isa.Jxlt (loop + 6));
    emit (Isa.Jmp loop)
  done;
  emit (Isa.Load (Isa.direct ~seg scratch));
  emit Isa.Halt;
  Array.of_list (List.rev !code)
