type operand = {
  seg : int;
  off : int;
  indexed : bool;
}

type instr =
  | Load of operand
  | Store of operand
  | Add of operand
  | Sub of operand
  | Loadi of int
  | Addi of int
  | Setx of int
  | Ldx of operand
  | Addx of int
  | Jmp of int
  | Jnz of int
  | Jlt of int
  | Jxlt of int
  | Advise_will of operand
  | Advise_wont of operand
  | Halt

let direct ?(seg = 0) off = { seg; off; indexed = false }

let indexed ?(seg = 0) off = { seg; off; indexed = true }

(* Word layout (low to high bits):
     bits 0-5   opcode
     bit  6     indexed flag
     bits 7-18  segment name (12 bits)
     bits 19-58 offset / immediate / target (40 bits)
   Negative immediates (Addx) store magnitude with a sign in bit 59. *)

let seg_bits = 12

let off_bits = 40

let max_seg = (1 lsl seg_bits) - 1

let max_off = (1 lsl off_bits) - 1

let opcode_of = function
  | Load _ -> 1
  | Store _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Loadi _ -> 5
  | Addi _ -> 6
  | Setx _ -> 7
  | Ldx _ -> 16
  | Addx _ -> 8
  | Jmp _ -> 9
  | Jnz _ -> 10
  | Jlt _ -> 11
  | Jxlt _ -> 15
  | Advise_will _ -> 12
  | Advise_wont _ -> 13
  | Halt -> 14

let operand_of = function
  | Load o | Store o | Add o | Sub o | Ldx o | Advise_will o | Advise_wont o -> Some o
  | Loadi _ | Addi _ | Setx _ | Addx _ | Jmp _ | Jnz _ | Jlt _ | Jxlt _ | Halt -> None

let immediate_of = function
  | Loadi n | Addi n | Setx n | Addx n | Jmp n | Jnz n | Jlt n | Jxlt n -> Some n
  | Load _ | Store _ | Add _ | Sub _ | Ldx _ | Advise_will _ | Advise_wont _ | Halt -> None

let is_jump = function
  | Jmp _ | Jnz _ | Jlt _ | Jxlt _ -> true
  | Load _ | Store _ | Add _ | Sub _ | Loadi _ | Addi _ | Setx _ | Ldx _ | Addx _
  | Advise_will _ | Advise_wont _ | Halt -> false

let fields_fit instr =
  (match operand_of instr with
   | Some o -> o.seg >= 0 && o.seg <= max_seg && o.off >= 0 && o.off <= max_off
   | None -> true)
  &&
  match immediate_of instr with
  | Some n -> abs n <= max_off && (n >= 0 || not (is_jump instr))
  | None -> true

let encode instr =
  if not (fields_fit instr) then invalid_arg "Isa.encode: fields do not fit";
  let opcode = opcode_of instr in
  let indexed, seg, off, negative =
    match operand_of instr, immediate_of instr with
    | Some o, None -> ((if o.indexed then 1 else 0), o.seg, o.off, 0)
    | None, Some n -> (0, 0, abs n, if n < 0 then 1 else 0)
    | None, None -> (0, 0, 0, 0)
    | Some _, Some _ -> assert false
  in
  let low =
    opcode lor (indexed lsl 6) lor (seg lsl 7) lor (off lsl (7 + seg_bits))
  in
  Int64.logor (Int64.of_int low) (Int64.shift_left (Int64.of_int negative) 59)

let decode word =
  let low = Int64.to_int (Int64.logand word 0x07FF_FFFF_FFFF_FFFFL) in
  let negative = Int64.logand (Int64.shift_right_logical word 59) 1L = 1L in
  let opcode = low land 0x3F in
  let indexed = low land 0x40 <> 0 in
  let seg = (low lsr 7) land max_seg in
  let off = (low lsr (7 + seg_bits)) land max_off in
  let operand = { seg; off; indexed } in
  let imm = if negative then -off else off in
  match opcode with
  | 1 -> Load operand
  | 2 -> Store operand
  | 3 -> Add operand
  | 4 -> Sub operand
  | 5 -> Loadi imm
  | 6 -> Addi imm
  | 7 -> Setx imm
  | 8 -> Addx imm
  | 9 -> Jmp imm
  | 10 -> Jnz imm
  | 11 -> Jlt imm
  | 12 -> Advise_will operand
  | 13 -> Advise_wont operand
  | 14 -> Halt
  | 15 -> Jxlt imm
  | 16 -> Ldx operand
  | n -> invalid_arg (Printf.sprintf "Isa.decode: invalid opcode %d" n)
