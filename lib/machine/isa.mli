(** A small word-machine instruction set, encodable into 64-bit words.

    The paper's "Storage Addressing" section is about the path between
    the {e name} in an instruction and the {e address} of a location.
    To exercise that path for real, programs here are sequences of
    encoded words living in simulated storage; every operand carries a
    (segment, offset) name pair — a linear addressing unit simply
    requires the segment to be 0, a B5000-style unit treats it as "part
    of an instruction [that] cannot be manipulated".

    The machine: a 64-bit accumulator, one index register X (the Rice
    codeword add is the hardware version of [indexed]), an instruction
    counter, and the M44/44X's two predictive instructions. *)

type operand = {
  seg : int;  (** segment name; 0 for linear name spaces *)
  off : int;  (** item name within the segment *)
  indexed : bool;  (** add X to [off] at execution *)
}

type instr =
  | Load of operand  (** acc := mem[operand] *)
  | Store of operand  (** mem[operand] := acc *)
  | Add of operand
  | Sub of operand
  | Loadi of int  (** acc := immediate *)
  | Addi of int  (** acc := acc + immediate *)
  | Setx of int  (** X := immediate *)
  | Ldx of operand  (** X := mem[operand] — index registers loadable from
                        storage, as on the Rice machine and B8500 *)
  | Addx of int  (** X := X + immediate (may be negative) *)
  | Jmp of int  (** instruction counter := target *)
  | Jnz of int  (** if acc <> 0 *)
  | Jlt of int  (** if acc < 0 *)
  | Jxlt of int  (** if X < 0 — the counting-loop test *)
  | Advise_will of operand  (** M44: this storage will be needed shortly *)
  | Advise_wont of operand  (** M44: this storage is not needed for a while *)
  | Halt

val direct : ?seg:int -> int -> operand

val indexed : ?seg:int -> int -> operand

val encode : instr -> int64

val decode : int64 -> instr
(** Raises [Invalid_argument] on a word that is not a valid
    instruction. *)

val fields_fit : instr -> bool
(** Whether the instruction's fields fit the encoding: segments < 2^12,
    operand offsets and jump targets in [0, 2^40), immediates in
    (-2^40, 2^40). *)
