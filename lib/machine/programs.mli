(** Canned programs for the word machine.

    Each builder returns an instruction array positioned at instruction
    0; data placement is given by the caller in whatever name space the
    CPU's addressing unit provides ([seg] defaults to 0 for linear
    units).  [scratch] is one working cell the program may clobber.
    All loops count down in X and exit through [Jxlt]. *)

val sum_array : ?seg:int -> data:int -> n:int -> scratch:int -> unit -> Isa.instr array
(** Leaves the sum of [data..data+n-1] in the accumulator ([n >= 1]). *)

val fill_array : ?seg:int -> data:int -> n:int -> scratch:int -> unit -> Isa.instr array
(** Writes value [i] into [data+i] for each [i < n]. *)

val copy_array :
  ?seg:int -> ?dst_seg:int -> src:int -> dst:int -> n:int -> unit -> Isa.instr array

val stride_sum :
  ?seg:int -> data:int -> terms:int -> stride:int -> scratch:int -> unit -> Isa.instr array
(** Sums [data], [data+stride], ... ([terms] terms) — the column-major
    pattern that stresses a paged addressing unit. *)

val gather_sum :
  ?seg:int -> idx:int -> data:int -> n:int -> scratch:int -> unit -> Isa.instr array
(** Sums [data[idx[0]] .. data[idx[n-1]]] — data-dependent indexing
    through [Ldx], the access pattern only a loadable index register can
    express.  Uses three working cells at [scratch..scratch+2]. *)

val advised_sweep :
  ?seg:int ->
  data:int -> chunk_words:int -> chunks:int -> scratch:int -> advice:bool -> unit ->
  Isa.instr array
(** Sums [chunks * chunk_words] words chunk by chunk.  With [advice]
    the program issues the M44's predictive instructions: will-need for
    the next chunk before working the current one, wont-need for the
    previous chunk after leaving it.  Without, the reference string is
    identical but unannotated. *)
