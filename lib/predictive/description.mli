(** ACSI-MATIC-style program descriptions.

    "Pioneering work on the concepts of segmentation and the use of
    predictive information ... was done in connection with Project
    ACSI-MATIC.  In this system programs were accompanied by 'program
    descriptions', which could be varied dynamically, and which
    specified, for example, (i) which storage medium a particular
    segment was to be in when it was used, and (ii) permissions and
    restrictions on the overlaying of groups of segments.  Storage
    allocation strategies were then based on the analysis of these
    descriptions."

    Here a description names, per group of pages, the medium it should
    occupy when in use and whether the group may be overlaid; analysing
    a description yields the directive stream the allocator acts on. *)

type medium =
  | Working_storage  (** must be in core when used *)
  | Backing_storage  (** may live on the drum until demanded *)

type entry = {
  pages : int list;  (** the group of pages described *)
  medium : medium;
  overlayable : bool;  (** whether the group may be overlaid once in core *)
}

type t = entry list

val analyse : t -> Directive.t list
(** The allocation actions implied at the moment the description comes
    into force: working-storage groups that must not be overlaid are
    pinned; overlayable working-storage groups are prefetched; backing
    groups imply nothing until demanded. *)

val revise : t -> entry -> t
(** "Program descriptions ... could be varied dynamically": replace the
    entry describing the same page group (by head page), or add it. *)
