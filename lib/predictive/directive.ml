type t =
  | Will_need of int
  | Wont_need of int
  | Keep_resident of int
  | Release_resident of int

type step =
  | Reference of int
  | Advice of t

let apply engine = function
  | Will_need page -> Paging.Demand.advise_will_need engine ~page
  | Wont_need page -> Paging.Demand.advise_wont_need engine ~page
  | Keep_resident page -> Paging.Demand.lock engine ~page
  | Release_resident page -> Paging.Demand.unlock engine ~page

let run_annotated engine steps =
  Array.iter
    (function
      | Reference addr ->
        let (_ : int64) = Paging.Demand.read engine addr in
        ()
      | Advice directive -> apply engine directive)
    steps

let strip steps =
  Array.of_list
    (List.filter_map
       (function Reference addr -> Some addr | Advice _ -> None)
       (Array.to_list steps))
