(** Predictive-information directives.

    The paper's second basic characteristic: "directives predicting the
    probable uses of storage over the next short time interval. ...
    the directives are essentially advisory."  The concrete vocabulary
    is taken from the appendix — the M44's two special instructions
    (A.2) and MULTICS's three provisions (A.6):

    - certain information will be accessed shortly ([Will_need]);
    - certain information will not be accessed again soon ([Wont_need]);
    - certain procedures or data are to be kept permanently in working
      storage ([Keep_resident] / [Release_resident]). *)

type t =
  | Will_need of int  (** page number *)
  | Wont_need of int
  | Keep_resident of int
  | Release_resident of int

(** One step of an annotated program: a word reference or advice. *)
type step =
  | Reference of int  (** word address in the linear name space *)
  | Advice of t

val apply : Paging.Demand.t -> t -> unit
(** Map a directive onto the demand engine's advisory interface. *)

val run_annotated : Paging.Demand.t -> step array -> unit
(** Execute a program: references become timed reads, advice is
    applied where it appears. *)

val strip : step array -> Workload.Trace.t
(** The bare reference string, for a no-advice baseline run. *)
