type t = {
  steps : Directive.step array;
  phases : int array array;
}

let generate rng ~page_size ~phases ~refs_per_phase ~pages_per_phase ~total_pages ~lead =
  assert (phases > 0 && refs_per_phase > 0);
  assert (pages_per_phase > 0 && pages_per_phase <= total_pages);
  assert (lead >= 0 && lead < refs_per_phase);
  let draw_set () =
    let pool = Array.init total_pages (fun i -> i) in
    Sim.Rng.shuffle rng pool;
    Array.sub pool 0 pages_per_phase
  in
  let sets = Array.init phases (fun _ -> draw_set ()) in
  let steps = ref [] in
  let reference phase =
    let page = Sim.Rng.pick rng sets.(phase) in
    let offset = Sim.Rng.int rng page_size in
    steps := Directive.Reference ((page * page_size) + offset) :: !steps
  in
  for phase = 0 to phases - 1 do
    for r = 0 to refs_per_phase - 1 do
      if phase > 0 && r = 0 then
        (* The old phase's pages will not be needed again. *)
        Array.iter
          (fun page ->
            if not (Array.mem page sets.(phase)) then
              steps := Directive.Advice (Directive.Wont_need page) :: !steps)
          sets.(phase - 1);
      reference phase;
      if phase < phases - 1 && r = refs_per_phase - 1 - lead then
        (* Advance notice: the next phase's pages will be needed. *)
        Array.iter
          (fun page -> steps := Directive.Advice (Directive.Will_need page) :: !steps)
          sets.(phase + 1)
    done
  done;
  { steps = Array.of_list (List.rev !steps); phases = sets }
