(** Phase-structured programs with advance notice of phase changes.

    Experiment C4's workload: the program computes in phases, each
    phase working over its own small set of pages.  The annotated
    variant issues [Will_need] for the next phase's pages [lead]
    references before the switch — early enough for prefetches to
    overlap with the tail of the current phase — and [Wont_need] for
    the old pages right after the switch.  Stripping the advice gives
    the identical reference string for the demand-only baseline. *)

type t = {
  steps : Directive.step array;  (** the annotated program *)
  phases : int array array;  (** the page set of each phase *)
}

val generate :
  Sim.Rng.t ->
  page_size:int ->
  phases:int ->
  refs_per_phase:int ->
  pages_per_phase:int ->
  total_pages:int ->
  lead:int ->
  t
(** [lead] is how many references before a phase boundary the advice for
    the next phase is issued; it must be < [refs_per_phase].  Word
    addresses are uniform within each phase's page set. *)
