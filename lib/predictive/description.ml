type medium =
  | Working_storage
  | Backing_storage

type entry = {
  pages : int list;
  medium : medium;
  overlayable : bool;
}

type t = entry list

let analyse entries =
  List.concat_map
    (fun e ->
      match e.medium, e.overlayable with
      | Working_storage, false -> List.map (fun p -> Directive.Keep_resident p) e.pages
      | Working_storage, true -> List.map (fun p -> Directive.Will_need p) e.pages
      | Backing_storage, _ -> [])
    entries

let same_group a b =
  match a.pages, b.pages with
  | p :: _, q :: _ -> p = q
  | [], _ | _, [] -> false

let revise entries entry =
  let replaced = ref false in
  let updated =
    List.map
      (fun e ->
        if same_group e entry then begin
          replaced := true;
          entry
        end
        else e)
      entries
  in
  if !replaced then updated else updated @ [ entry ]
