type row = {
  system : string;
  regime : string;
  faults : int;
  elapsed_us : int option;
  map_accesses : int option;
  external_frag : float option;
  note : string;
}

(* Mixed population: many small procedure/data segments plus a few
   large arrays — the case clause (iii)/(iv) of the recommendation is
   about. *)
let make_segments rng =
  Array.init 52 (fun i ->
      if i < 48 then 16 + Sim.Rng.int rng 112 else 4_000 + Sim.Rng.int rng 2_000)

let make_refs ~quick rng segments =
  let refs = if quick then 4_000 else 40_000 in
  let n = Array.length segments in
  let popularity = Workload.Trace.zipf rng ~length:refs ~extent:n ~skew:0.9 in
  Array.map
    (fun s ->
      (* Locality within a segment; large segments get swept regions. *)
      let region = max 16 (segments.(s) / 4) in
      let base = Sim.Rng.int rng (segments.(s) - region + 1) in
      (s, base + Sim.Rng.int rng region))
    popularity

(* The B5000 cannot hold a segment over 1024 words: chop the large ones
   into row-segments the way its compilers did. *)
let chop_for_b5000 segments refs =
  let limit = 1024 in
  let chunk_base = Array.make (Array.length segments) 0 in
  let chopped = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i len ->
      chunk_base.(i) <- !count;
      let rec pieces remaining =
        if remaining > 0 then begin
          chopped := min limit remaining :: !chopped;
          incr count;
          pieces (remaining - limit)
        end
      in
      pieces len)
    segments;
  let segments' = Array.of_list (List.rev !chopped) in
  let refs' =
    Array.map (fun (s, off) -> (chunk_base.(s) + (off / limit), off mod limit)) refs
  in
  (segments', refs')

let row_of_report (r : Dsas.System.report) ~regime ~note =
  {
    system = r.Dsas.System.system;
    regime;
    faults = r.Dsas.System.faults;
    elapsed_us = r.Dsas.System.elapsed_us;
    map_accesses = r.Dsas.System.map_accesses;
    external_frag = r.Dsas.System.external_fragmentation;
    note;
  }

let regime_rows ~core_words ~regime ~segments ~refs =
  let recommended =
    Dsas.System.run_segmented
      { Machines.Recommended.system with Dsas.System.core_words }
      ~segments refs
  in
  let b5000 =
    let segments', refs' = chop_for_b5000 segments refs in
    Dsas.System.run_segmented
      { Machines.B5000.system with Dsas.System.core_words }
      ~segments:segments' refs'
  in
  let multics_style =
    Dsas.System.run_segmented
      {
        Machines.Multics.system with
        Dsas.System.name = "uniform pager";
        core_words;
        mechanism =
          Dsas.System.Segmented_paged
            {
              page_size = 1024;
              frames = core_words / 1024;
              policy = Paging.Spec.Lru;
              tlb_capacity = 16;
            };
      }
      ~segments refs
  in
  [
    row_of_report recommended ~regime ~note:"large segments fetched whole";
    row_of_report b5000 ~regime ~note:"large structures chopped at 1024";
    row_of_report multics_style ~regime ~note:"uniform 1024-word frames, two-level map";
  ]

let measure ?(quick = false) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 1914 in
  let segments = make_segments (Sim.Rng.split rng) in
  let refs = make_refs ~quick (Sim.Rng.split rng) segments in
  regime_rows ~core_words:28_672 ~regime:"ample core" ~segments ~refs
  @ regime_rows ~core_words:16_384 ~regime:"tight core" ~segments ~refs

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== X7 (extension): the authors' recommendation, raced ==";
  print_endline "(48 small + 4 large segments, zipf popularity; two core sizes)\n";
  Metrics.Table.print
    ~headers:
      [ "regime"; "system"; "faults"; "elapsed (us)"; "map accesses"; "ext frag"; "note" ]
    (List.map
       (fun r ->
         [
           r.regime;
           r.system;
           string_of_int r.faults;
           (match r.elapsed_us with Some e -> string_of_int e | None -> "-");
           (match r.map_accesses with Some m -> string_of_int m | None -> "-");
           (match r.external_frag with Some f -> Metrics.Table.fmt_pct f | None -> "-");
           r.note;
         ])
       rows);
  print_endline
    "(tight core: fetching large segments whole thrashes -- the reason the\n\
    \ recommendation's own clause (iv) wants large segments 'allocated using\n\
    \ a set of separate blocks', i.e. paged)";
  print_newline ()
