(** Parameterizable experiment entry points ("cells") for campaign
    sweeps.

    Where {!Registry.entry}'s [run] prints a fixed report, a cell is a
    machine-facing entry point: the campaign executor hands it string
    parameter bindings (one grid point of a sweep spec), a seed, and a
    metrics registry to fill; the registry is then exported as the
    cell's [dsas-metrics/1] artifact.  Parameter parsing is strict —
    unknown or malformed bindings fail the cell with a diagnostic
    rather than silently running defaults. *)

type ctx = {
  params : (string * string) list;  (** axis bindings from the spec *)
  seed : int;
  quick : bool;
  reg : Obs.Registry.t;  (** fill with the cell's metrics *)
  obs : Obs.Sink.t;  (** event sink (null unless the spec asks for traces) *)
}

type spec = {
  id : string;  (** cell kind, named by sweep specs (e.g. ["fss"]) *)
  doc : string;
  params : (string * string) list;  (** parameter name, doc with default *)
  run : ctx -> (unit, string) result;
}

(** {2 Strict parameter access} *)

val check_known : ctx -> string list -> (unit, string) result
(** [Error] if the spec supplied a parameter this cell does not
    understand. *)

val get : ctx -> string -> default:string -> string

val get_int : ctx -> string -> default:int -> (int, string) result

val get_float : ctx -> string -> default:float -> (float, string) result

val get_enum :
  ctx -> string -> default:string -> values:string list -> (string, string) result

val require_positive : string -> int -> (int, string) result

(** {2 Registry shorthands} *)

val gauge : ctx -> string -> float -> unit

val count : ctx -> string -> int -> unit

(** {2 Identity stamps} *)

val config_summary : cell:string -> ctx -> string
(** One-line ["cell=... k=v ... seed=N quick=B"] summary for the trace
    [run_start] boundary. *)

val stamp : cell:string -> ctx -> unit
(** Write cell id, seed, quick, and every parameter binding into the
    registry's metadata, making the metrics artifact self-describing. *)
