type row = {
  policy : string;
  mix : string;
  external_frag : float;
  holes : int;
  mean_search : float;
  failures : int;
  largest_free : int;
}

let mixes ~steps =
  [
    ( "small-skewed",
      fun rng ->
        Workload.Alloc_stream.live_stream rng ~steps
          ~size:(Workload.Alloc_stream.Geometric { mean = 40.; min_size = 1 })
          ~target_live:400 );
    ( "bimodal 16/2048",
      fun rng ->
        Workload.Alloc_stream.live_stream rng ~steps
          ~size:(Workload.Alloc_stream.Bimodal { small = 16; large = 2048; large_fraction = 0.05 })
          ~target_live:400 );
  ]

let serve ?(obs = Obs.Sink.null) policy events =
  let words = 1 lsl 16 in
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a = Freelist.Allocator.create ~obs mem ~base:0 ~len:words ~policy in
  let table = Hashtbl.create 512 in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match Freelist.Allocator.alloc a size with
         | Some addr -> Hashtbl.replace table id addr
         | None -> ())
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt table id with
         | Some addr ->
           Freelist.Allocator.free a addr;
           Hashtbl.remove table id
         | None -> ()))
    events;
  a

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let steps = if quick then 2_000 else 25_000 in
  (* A clockless allocator stamps events with its operation counter
     (at most one per stream event); shifting each policy's run by the
     events already served keeps the spliced stream monotone; segment
     boundaries mark where each policy's fresh store begins. *)
  let t_base = ref 0 in
  let runs = ref 0 in
  let seg ~config =
    let s = Obs.Sink.segment ?seed ~config ~run:!runs ~offset:!t_base obs in
    incr runs;
    s
  in
  List.concat_map
    (fun (mix_name, make_events) ->
      List.map
        (fun policy ->
          (* Same stream for every policy: same seed. *)
          let events = make_events (Sim.Rng.derive ?override:seed 77) in
          let a =
            serve
              ~obs:
                (seg
                   ~config:
                     (Printf.sprintf "c2 mix=%s policy=%s" mix_name
                        (Freelist.Policy.to_string policy)))
              policy events
          in
          t_base := !t_base + List.length events;
          let sizes = Freelist.Allocator.free_block_sizes a in
          {
            policy = Freelist.Policy.to_string policy;
            mix = mix_name;
            external_frag = Metrics.Fragmentation.external_of_free_blocks sizes;
            holes = List.length sizes;
            mean_search = Metrics.Stats.mean (Freelist.Allocator.search_stats a);
            failures = Freelist.Allocator.failures a;
            largest_free = Freelist.Allocator.largest_free a;
          })
        Freelist.Policy.all_standard)
    (mixes ~steps)

let run ?quick ?obs ?seed () =
  let rows = measure ?quick ?obs ?seed () in
  print_endline "== C2: placement strategies (variable unit of allocation) ==";
  print_endline "(same request stream to every policy; fixed 64K-word store)\n";
  Metrics.Table.print
    ~headers:[ "mix"; "policy"; "ext frag"; "holes"; "mean search"; "failures"; "largest hole" ]
    (List.map
       (fun r ->
         [
           r.mix;
           r.policy;
           Metrics.Table.fmt_pct r.external_frag;
           string_of_int r.holes;
           Metrics.Table.fmt_float r.mean_search;
           string_of_int r.failures;
           string_of_int r.largest_free;
         ])
       rows);
  print_newline ()
