type row = {
  page_size : int;
  faults : int;
  elapsed_us : int;
  table_entries : int;
  internal_waste : int;
  combined_cost : float;
}

(* A population of objects (segment-sized pieces of a program) whose
   tails produce internal fragmentation. *)
let object_population ?(mean = 300.) rng =
  List.init 200 (fun _ ->
      Workload.Alloc_stream.sample_size rng
        (Workload.Alloc_stream.Geometric { mean; min_size = 1 }))

let measure ?(quick = false) ?seed () =
  let refs = if quick then 1_000 else 20_000 in
  let rng = Sim.Rng.derive ?override:seed 4242 in
  let objects = object_population (Sim.Rng.split rng) in
  let name_space_words = 1 lsl 17 in
  let trace =
    Workload.Trace.working_set_phases rng ~length:refs ~extent:name_space_words
      ~set_size:8_192 ~phase_length:(refs / 8) ~locality:0.95
  in
  List.map
    (fun page_size ->
      let system = Machines.M44.with_page_size page_size in
      let r =
        Dsas.System.run_linear system
          ~seed:(match seed with None -> 5 | Some s -> s lxor 5)
          trace
      in
      let table_entries = name_space_words / page_size in
      let waste = Machines.Multics.single_page_waste ~page:page_size ~object_words:objects in
      {
        page_size;
        faults = r.Dsas.System.faults;
        elapsed_us = (match r.Dsas.System.elapsed_us with Some e -> e | None -> 0);
        table_entries;
        internal_waste = waste;
        (* Normalize both cost terms to the worst case in the sweep so
           they are commensurable; the optimum is interior. *)
        combined_cost = 0.;
      })
    Machines.M44.page_size_variants
  |> fun rows ->
  let max_entries = List.fold_left (fun m r -> max m r.table_entries) 1 rows in
  let max_waste = List.fold_left (fun m r -> max m r.internal_waste) 1 rows in
  List.map
    (fun r ->
      {
        r with
        combined_cost =
          (float_of_int r.table_entries /. float_of_int max_entries)
          +. (float_of_int r.internal_waste /. float_of_int max_waste);
      })
    rows

let dual_rows ?seed () =
  let rng = Sim.Rng.derive ?override:seed 4242 in
  (* MULTICS's dual sizes pay off on multi-page segments: bodies get
     1024-word pages (few table entries), tails get 64-word pages
     (little waste). *)
  let objects = object_population ~mean:2_000. (Sim.Rng.split rng) in
  let uniform_entries page =
    List.fold_left (fun acc w -> acc + ((w + page - 1) / page)) 0 objects
  in
  let dual_entries =
    List.fold_left
      (fun acc w ->
        let body = w / 1024 and tail = w mod 1024 in
        acc + body + ((tail + 63) / 64))
      0 objects
  in
  ( "dual 64+1024 (MULTICS)",
    Machines.Multics.dual_page_waste ~object_words:objects,
    dual_entries )
  :: List.map
       (fun page ->
         ( Printf.sprintf "uniform %d" page,
           Machines.Multics.single_page_waste ~page ~object_words:objects,
           uniform_entries page ))
       [ 64; 256; 1024; 4096 ]

type operational_row = {
  scheme : string;
  faults : int;
  core_budget : int;
  resident_utilization : float;
  table_cost : int;
}

(* A mixed segment population and a locality-bearing (segment, offset)
   reference string over it. *)
let segment_workload ~quick rng =
  let segments =
    Array.init 40 (fun i ->
        if i mod 10 = 0 then 3_000 + Sim.Rng.int rng 2_000 else 20 + Sim.Rng.int rng 200)
  in
  let refs = if quick then 4_000 else 30_000 in
  let popularity = Workload.Trace.zipf rng ~length:refs ~extent:(Array.length segments) ~skew:0.9 in
  let pairs =
    Array.map
      (fun s ->
        let region = max 16 (segments.(s) / 4) in
        let base = Sim.Rng.int rng (segments.(s) - region + 1) in
        (s, base + Sim.Rng.int rng region))
      popularity
  in
  (segments, pairs)

let table_entries_for ~small ~large segments =
  Array.fold_left
    (fun acc len ->
      let body = len / large in
      let tail = len - (body * large) in
      acc + body + ((tail + small - 1) / small))
    0 segments

let measure_operational ?(quick = false) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 808 in
  let segments, pairs = segment_workload ~quick rng in
  let budget = 16_384 in
  let dual =
    let engine =
      Segmentation.Dual_pager.create
        {
          Segmentation.Dual_pager.small_page = 64;
          large_page = 1024;
          small_frames = 128;  (* 8K words *)
          large_frames = 8;  (* 8K words *)
        }
    in
    let ids = Array.map (fun len -> Segmentation.Dual_pager.add_segment engine ~length:len) segments in
    Array.iter
      (fun (s, off) -> Segmentation.Dual_pager.touch engine ~segment:ids.(s) ~offset:off ~write:false)
      pairs;
    {
      scheme = "dual 64+1024 (operational)";
      faults = Segmentation.Dual_pager.faults engine;
      core_budget = Segmentation.Dual_pager.core_words engine;
      resident_utilization =
        (let held = Segmentation.Dual_pager.resident_words engine in
         if held = 0 then 0.
         else
           float_of_int (Segmentation.Dual_pager.resident_useful_words engine)
           /. float_of_int held);
      table_cost = table_entries_for ~small:64 ~large:1024 segments;
    }
  in
  let uniform page =
    let engine =
      Segmentation.Two_level.create
        {
          Segmentation.Two_level.page_size = page;
          frames = budget / page;
          tlb = None;
          policy = Paging.Replacement.lru ();
        }
    in
    let ids = Array.map (fun len -> Segmentation.Two_level.add_segment engine ~length:len) segments in
    Array.iter
      (fun (s, off) -> Segmentation.Two_level.touch engine ~segment:ids.(s) ~offset:off ~write:false)
      pairs;
    (* Useful fraction of a full pool: mean useful words of the pages the
       segments can offer per frame at this size. *)
    let utilization =
      let useful = ref 0 and held = ref 0 in
      (* Approximate: the resident set is dominated by hot segments;
         report the population-wide per-page utilisation instead. *)
      Array.iter
        (fun len ->
          let pages = (len + page - 1) / page in
          useful := !useful + len;
          held := !held + (pages * page))
        segments;
      float_of_int !useful /. float_of_int !held
    in
    {
      scheme = Printf.sprintf "uniform %d" page;
      faults = Segmentation.Two_level.faults engine;
      core_budget = budget;
      resident_utilization = utilization;
      table_cost = table_entries_for ~small:page ~large:page segments;
    }
  in
  [ dual; uniform 64; uniform 1024 ]

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== C8: choosing the page size ==";
  print_endline "(M44 page-size sweep: small pages cost table overhead, large pages waste space)\n";
  Metrics.Table.print
    ~headers:
      [ "page size"; "faults"; "elapsed (us)"; "table entries"; "internal waste (words)";
        "overhead+waste (norm.)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.page_size;
           string_of_int r.faults;
           string_of_int r.elapsed_us;
           string_of_int r.table_entries;
           string_of_int r.internal_waste;
           Metrics.Table.fmt_float r.combined_cost;
         ])
       rows);
  print_endline "\n--- MULTICS dual page size: waste and table cost on multi-page segments ---\n";
  Metrics.Table.print ~headers:[ "scheme"; "wasted words"; "table entries" ]
    (List.map
       (fun (name, waste, entries) ->
         [ name; string_of_int waste; string_of_int entries ])
       (dual_rows ?seed ()));
  print_endline "\n--- the dual mechanism, operational (same 16K-word core budget) ---\n";
  Metrics.Table.print
    ~headers:[ "scheme"; "faults"; "core budget"; "resident utilization"; "table entries" ]
    (List.map
       (fun r ->
         [
           r.scheme;
           string_of_int r.faults;
           string_of_int r.core_budget;
           Metrics.Table.fmt_pct r.resident_utilization;
           string_of_int r.table_cost;
         ])
       (measure_operational ?quick ?seed ()));
  print_newline ()
