(** Experiment F3 — storage utilization with demand paging (Fig. 3).

    One program runs a locality trace under demand paging while the
    page-fetch time is swept from fast-drum to slow-disk values.  For
    each fetch speed the space-time product is split into the Active
    part (program executing) and the Waiting part (program suspended,
    still occupying its frames, awaiting a page) — the shaded regions of
    the paper's figure.  The paper's claim: "If page fetching is a slow
    process, a large part of the space-time product for a program may
    well be due to space occupied while the program is inactive awaiting
    further pages." *)

type row = {
  device : string;
  fetch_us : int;  (** cost of one page transfer *)
  active : float;
  waiting : float;
  waiting_fraction : float;
  profile : string;  (** the rendered Fig. 3 silhouette of this run *)
}

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> row list
(** With a sink, every device run reports its paging events; successive
    runs (each on a fresh clock) are spliced with {!Obs.Sink.shift} so
    timestamps stay monotone across the whole sweep. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
