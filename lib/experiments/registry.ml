type entry = {
  id : string;
  title : string;
  paper_source : string;
  run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit;
}

let all =
  [
    {
      id = "fig1_2";
      title = "artificial contiguity via a block-address table";
      paper_source = "Figures 1 and 2";
      run = Fig1_2.run;
    };
    {
      id = "fig3";
      title = "space-time product under demand paging";
      paper_source = "Figure 3; Fetch Strategies";
      run = Fig3.run;
    };
    {
      id = "fig4";
      title = "two-level mapping and the associative memory";
      paper_source = "Figure 4; Special Hardware Facilities (vi)";
      run = Fig4.run;
    };
    {
      id = "c1";
      title = "paging obscures fragmentation";
      paper_source = "Uniformity of Unit of Storage Allocation; Conclusions (v)";
      run = C1_fragmentation.run;
    };
    {
      id = "c2";
      title = "placement strategies";
      paper_source = "Placement Strategies";
      run = C2_placement.run;
    };
    {
      id = "c3";
      title = "replacement strategies";
      paper_source = "Replacement Strategies; Belady [1]";
      run = C3_replacement.run;
    };
    {
      id = "c4";
      title = "predictive information";
      paper_source = "Predictive Information; appendices A.2, A.6";
      run = C4_predictive.run;
    };
    {
      id = "c5";
      title = "unit of allocation: segments vs pages";
      paper_source = "Uniformity of Unit of Storage Allocation; A.3";
      run = C5_unit.run;
    };
    {
      id = "c6";
      title = "Rice inactive-block chain";
      paper_source = "appendix A.4";
      run = C6_rice.run;
    };
    {
      id = "c7";
      title = "multiprogramming hides fetch latency";
      paper_source = "Fetch Strategies; appendices A.1, A.2";
      run = C7_multiprog.run;
    };
    {
      id = "c8";
      title = "choosing the page size; MULTICS dual sizes";
      paper_source = "Uniformity of Unit of Storage Allocation; A.2, A.6";
      run = C8_page_size.run;
    };
    {
      id = "x1";
      title = "compaction ablation (extension)";
      paper_source = "Uniformity of Unit...; Special Hardware Facilities (iii)";
      run = X1_compaction.run;
    };
    {
      id = "x2";
      title = "several levels of working storage (extension)";
      paper_source = "Fetch Strategies, final paragraph";
      run = X2_hierarchy.run;
    };
    {
      id = "x3";
      title = "static overlays vs dynamic allocation (extension)";
      paper_source = "Introduction";
      run = X3_overlay.run;
    };
    {
      id = "x4";
      title = "whole-program swapping vs paging (extension)";
      paper_source = "Introduction; Storage Addressing (relocation register)";
      run = X4_swapping.run;
    };
    {
      id = "x5";
      title = "one program, every addressing mechanism (extension)";
      paper_source = "Storage Addressing";
      run = X5_addressing.run;
    };
    {
      id = "x6";
      title = "sizing storage by the space-time product (extension)";
      paper_source = "Fetch Strategies (space-time product)";
      run = X6_allotment.run;
    };
    {
      id = "x7";
      title = "the authors' recommendation, raced (extension)";
      paper_source = "Basic Characteristics -- Summary";
      run = X7_recommended.run;
    };
    {
      id = "x8";
      title = "scheduling the paging drum (extension)";
      paper_source = "Fetch Strategies (storage-medium performance)";
      run = X8_drum.run;
    };
    {
      id = "x8_devices";
      title = "timed backing-store devices: geometry x scheduling x channels (extension)";
      paper_source = "Fetch Strategies (storage-medium performance); A.1 drum";
      run = X8_devices.run;
    };
    {
      id = "x9_resilience";
      title = "failure semantics and load control (extension)";
      paper_source = "Fetch Strategies (space-time product); Conclusions";
      run = X9_resilience.run;
    };
    {
      id = "x10_fss";
      title = "finite-size scaling of fragmentation (extension)";
      paper_source = "Placement Strategies; Conclusions (v)";
      run = X10_fss.run;
    };
    {
      id = "x11_parallel";
      title = "sharded multicore execution with a deterministic merge (extension)";
      paper_source = "Basic Characteristics (one supervisor, several processors)";
      run =
        (fun ?quick ?obs ?seed () ->
          ignore (X11_parallel.run ?quick ?obs ?seed () : bool));
    };
    {
      id = "survey";
      title = "the appendix machines, measured";
      paper_source = "appendix A.1-A.7";
      run = A_survey.run;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all

let run_all ?quick ?seed () =
  List.iter
    (fun e ->
      e.run ?quick ?seed ();
      print_newline ())
    all

let traced =
  [ "fig3"; "c2"; "c3"; "c7"; "x1"; "x8_devices"; "x9_resilience"; "x11_parallel" ]

let is_traced id = List.mem (String.lowercase_ascii id) traced
