type row = {
  scheme : string;
  touched : string;
  transfers : int;
  words_moved : int;
  elapsed_us : int;
}

let programs = 6

let program_size = 4096

let core_words = 2 * program_size  (* two programs fit at once *)

let page_size = 256

(* The interactive schedule: rounds of (program, word-offsets touched).
   [touch_fraction] picks how much of the program one interaction
   uses. *)
let schedule ~quick ~touch_fraction ?override seed =
  let rounds = if quick then 6 else 30 in
  let refs_per_interaction = if quick then 200 else 1_000 in
  let rng = Sim.Rng.derive ?override seed in
  let region = max page_size (int_of_float (touch_fraction *. float_of_int program_size)) in
  List.concat
    (List.init rounds (fun _ ->
         List.init programs (fun p ->
             let base = Sim.Rng.int rng (program_size - region + 1) in
             ( p,
               Array.init refs_per_interaction (fun _ ->
                   base + Sim.Rng.int rng region) ))))

let swapping_run ~touched schedule =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:core_words in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"drum"
      ~words:(programs * program_size)
  in
  let swapper =
    Swapping.Swapper.create
      {
        Swapping.Swapper.core;
        backing;
        placement = Freelist.Policy.First_fit;
        compact_on_failure = true;
        device = None;
      }
  in
  let ids =
    (* Leave a little slack for allocator tags: programs are declared
       slightly under their nominal size. *)
    Array.init programs (fun i ->
        Swapping.Swapper.add_program swapper
          ~name:(Printf.sprintf "prog%d" i)
          ~size:(program_size - 8))
  in
  List.iter
    (fun (p, refs) ->
      Array.iter
        (fun name ->
          let name = min name (program_size - 9) in
          ignore (Swapping.Swapper.read swapper ids.(p) name))
        refs)
    schedule;
  {
    scheme = "whole-program swapping";
    touched;
    transfers = Swapping.Swapper.swap_ins swapper;
    words_moved = Swapping.Swapper.words_swapped swapper;
    elapsed_us = Sim.Clock.now clock;
  }

let paging_run ~touched schedule =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:core_words in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"drum"
      ~words:(programs * program_size)
  in
  let engine =
    Paging.Demand.create
      {
        Paging.Demand.page_size;
        frames = core_words / page_size;
        pages = programs * program_size / page_size;
        core;
        backing;
        policy = Paging.Replacement.lru ();
        tlb = Some (Paging.Tlb.create ~capacity:16 Paging.Tlb.Lru_replacement);
        compute_us_per_ref = 0;
      }
  in
  List.iter
    (fun (p, refs) ->
      Array.iter (fun name -> ignore (Paging.Demand.read engine ((p * program_size) + name))) refs)
    schedule;
  {
    scheme = "demand paging";
    touched;
    transfers = Paging.Demand.faults engine;
    words_moved = Paging.Demand.faults engine * page_size;
    elapsed_us = Sim.Clock.now clock;
  }

let measure ?(quick = false) ?seed () =
  let dense = schedule ~quick ~touch_fraction:0.9 ?override:seed 11 in
  let sparse = schedule ~quick ~touch_fraction:0.08 ?override:seed 11 in
  [
    swapping_run ~touched:"~90% of program" dense;
    paging_run ~touched:"~90% of program" dense;
    swapping_run ~touched:"~8% of program" sparse;
    paging_run ~touched:"~8% of program" sparse;
  ]

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== X4 (extension): whole-program swapping vs demand paging ==";
  print_endline
    "(6 programs x 4K words over 8K words of core, drum-backed, round-robin)\n";
  Metrics.Table.print
    ~headers:[ "interaction touches"; "scheme"; "transfers"; "words moved"; "elapsed (us)" ]
    (List.map
       (fun r ->
         [
           r.touched;
           r.scheme;
           string_of_int r.transfers;
           string_of_int r.words_moved;
           string_of_int r.elapsed_us;
         ])
       rows);
  print_newline ()
