(** Experiment F4 — two-level mapping and the associative memory (Fig. 4).

    A segmented reference string is translated through segment and page
    tables while the associative-memory capacity sweeps from 0 (every
    reference pays two table accesses) upward.  The measured effective
    access time shows the paper's point that without the associative
    memory "the cost in extra addressing time caused by the provision
    of, say, segmentation and artificial name contiguity, would often be
    unacceptable" — and that a very small one recovers almost all of
    it. *)

type row = {
  tlb_capacity : int;
  hit_ratio : float;
  map_accesses_per_ref : float;
  effective_access_us : float;  (** at 2 us core *)
  overhead_vs_raw : float;  (** effective / raw single-access cost *)
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
