type curve = {
  trace_name : string;
  policy : string;
  points : (int * float) list;
}

let traces ~quick rng =
  let length = if quick then 2_000 else 30_000 in
  [
    ("loop(40 of 64)", Workload.Trace.loop ~length ~extent:64 ~working_set:40);
    ( "working-set phases",
      Workload.Trace.working_set_phases rng ~length ~extent:128 ~set_size:24
        ~phase_length:(length / 10) ~locality:0.9 );
    ("zipf(1.0)", Workload.Trace.zipf rng ~length ~extent:128 ~skew:1.0);
  ]

let frame_points ~quick =
  if quick then [ 16; 32 ] else [ 8; 16; 24; 32; 40; 48; 56; 64 ]

let specs = Paging.Spec.all_practical @ [ Paging.Spec.Opt ]

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 555 in
  (* Fault_sim stamps events with the reference index; shifting each run
     by the references already replayed keeps the stream monotone;
     segment boundaries mark where each policy/frame run restarts. *)
  let t_base = ref 0 in
  let runs = ref 0 in
  let seg ~config =
    let s = Obs.Sink.segment ?seed ~config ~run:!runs ~offset:!t_base obs in
    incr runs;
    s
  in
  List.concat_map
    (fun (trace_name, trace) ->
      List.map
        (fun spec ->
          let points =
            List.map
              (fun frames ->
                let policy =
                  Paging.Spec.instantiate spec ~rng:(Sim.Rng.derive ?override:seed 9) ~trace:(Some trace)
                in
                let r =
                  Paging.Fault_sim.run
                    ~obs:
                      (seg
                         ~config:
                           (Printf.sprintf "c3 trace=%s policy=%s frames=%d"
                              trace_name (Paging.Spec.to_string spec) frames))
                    ~frames ~policy trace
                in
                t_base := !t_base + Array.length trace;
                (frames, Paging.Fault_sim.fault_rate r))
              (frame_points ~quick)
          in
          { trace_name; policy = Paging.Spec.to_string spec; points })
        specs)
    (traces ~quick rng)

let anomaly_rows () =
  let trace = Workload.Trace.belady_anomaly_trace in
  List.map
    (fun frames ->
      let fifo = Paging.Fault_sim.run ~frames ~policy:(Paging.Replacement.fifo ()) trace in
      let lru = Paging.Fault_sim.run ~frames ~policy:(Paging.Replacement.lru ()) trace in
      (frames, fifo.Paging.Fault_sim.faults, lru.Paging.Fault_sim.faults))
    [ 1; 2; 3; 4; 5 ]

let run ?quick ?obs ?seed () =
  let curves = measure ?quick ?obs ?seed () in
  print_endline "== C3: replacement strategies — fault rate vs memory size ==";
  let by_trace =
    List.sort_uniq compare (List.map (fun c -> c.trace_name) curves)
  in
  List.iter
    (fun trace_name ->
      let group = List.filter (fun c -> c.trace_name = trace_name) curves in
      Printf.printf "\n--- trace: %s ---\n" trace_name;
      let frames = List.map fst (List.hd group).points in
      Metrics.Table.print
        ~headers:("policy" :: List.map (fun f -> Printf.sprintf "%d frames" f) frames)
        (List.map
           (fun c ->
             c.policy :: List.map (fun (_, rate) -> Metrics.Table.fmt_pct rate) c.points)
           group);
      let interesting p = List.mem p [ "FIFO"; "LRU"; "RANDOM"; "ATLAS"; "OPT" ] in
      print_string
        (Metrics.Chart.series ~x_label:"frames" ~y_label:"fault rate"
           (List.filter_map
              (fun c ->
                if interesting c.policy then
                  Some (c.policy, List.map (fun (f, r) -> (float_of_int f, r)) c.points)
                else None)
              group)))
    by_trace;
  print_endline "\n--- Belady's anomaly (reference string 1 2 3 4 1 2 5 1 2 3 4 5) ---\n";
  Metrics.Table.print ~headers:[ "frames"; "FIFO faults"; "LRU faults" ]
    (List.map
       (fun (f, fifo, lru) -> [ string_of_int f; string_of_int fifo; string_of_int lru ])
       (anomaly_rows ()));
  print_endline "(note FIFO: 4 frames fault MORE than 3 frames; LRU is monotone)\n"
