(** Extension X8 — scheduling the paging drum.

    F3 and C7 take the page-fetch time as a device constant; in reality
    it was a queueing outcome.  The paper: the space-time product "will
    be affected by the time taken to fetch pages, which will depend on
    the performance of the storage medium".  This experiment loads a
    sectored drum with page-request streams of rising intensity and
    measures the mean fetch latency under arrival-order service versus
    shortest-access-time-first — the scheduling trick that made paging
    drums viable, and the difference between the "demand paging can be
    quite effective, when the time taken to fetch a page is very small"
    regime and the Fig. 3 regime. *)

type row = {
  policy : string;
  load : float;  (** requests per revolution *)
  mean_latency_us : float;
  revolutions_per_page : float;  (** mean latency / rotation time *)
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
