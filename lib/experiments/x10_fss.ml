(* X10 (extension): finite-size scaling of fragmentation.

   The microscopic parameters of a steady-state allocation mix are held
   fixed (geometric object sizes, target occupancy, churn per object)
   while the store size M sweeps three decades.  Two finite-size laws
   are then fitted on log-log axes:

   - hole count grows as a clean sub-extensive power holes(M) ~ M^0.73
     (r^2 ~ 1.0): best fit prefers the smallest workable hole, so
     churn recycles existing holes and the untouched wilderness block
     absorbs growth that would otherwise mint new ones;
   - seed-to-seed fluctuation of external fragmentation averages over
     the O(M^0.73) holes, so its standard deviation decays near the
     central-limit rate, sigma(M) ~ M^(-0.4).

   The fitted exponents are the campaign's committed goldens: a change
   to allocator coalescing or the workload generator that bends either
   law shows up as an exponent shift, not just a level shift. *)

type row = {
  words : int;
  rep : int;
  live_words : int;
  external_frag : float;
  largest_free_share : float;
  holes : int;
  mean_search : float;
}

let default_mean_size = 64.

let default_occupancy = 0.5

let default_churn = 12

let target_live ~mean_size ~occupancy words =
  Stdlib.max 4 (int_of_float (float_of_int words *. occupancy /. mean_size))

let point ?seed ?(rep = 0) ?(mean_size = default_mean_size)
    ?(occupancy = default_occupancy) ?(churn = default_churn)
    ~policy ~words () =
  let rng = Sim.Rng.derive ?override:seed (1010 + (rep * 7919)) in
  let live = target_live ~mean_size ~occupancy words in
  let steps = churn * live in
  let events =
    Workload.Alloc_stream.live_stream rng ~steps
      ~size:(Workload.Alloc_stream.Geometric { mean = mean_size; min_size = 1 })
      ~target_live:live
  in
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a =
    Freelist.Allocator.build mem
      { Freelist.Allocator.s_base = 0; s_len = words; s_policy = policy }
  in
  let table = Hashtbl.create 512 in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match Freelist.Allocator.alloc a size with
         | Some addr -> Hashtbl.replace table id addr
         | None -> ())
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt table id with
         | Some addr ->
           Freelist.Allocator.free a addr;
           Hashtbl.remove table id
         | None -> ()))
    events;
  let sizes = Freelist.Allocator.free_block_sizes a in
  let free = Freelist.Allocator.free_words a in
  {
    words;
    rep;
    live_words = Freelist.Allocator.live_words a;
    external_frag = Metrics.Fragmentation.external_of_free_blocks sizes;
    largest_free_share =
      (if free = 0 then 0.
       else float_of_int (Freelist.Allocator.largest_free a) /. float_of_int free);
    holes = List.length sizes;
    mean_search = Metrics.Stats.mean (Freelist.Allocator.search_stats a);
  }

let sizes ~quick =
  if quick then [ 1_024; 8_192; 65_536 ]
  else [ 1_024; 4_096; 16_384; 65_536; 262_144; 1_048_576 ]

let reps ~quick = if quick then 2 else 5

let measure ?(quick = false) ?seed () =
  List.concat_map
    (fun words ->
      List.init (reps ~quick) (fun rep ->
          point ?seed ~rep ~policy:Freelist.Policy.Best_fit ~words ()))
    (sizes ~quick)

type fits = {
  holes_exponent : Metrics.Stats.fit option;  (** log holes vs log M *)
  sigma_exponent : Metrics.Stats.fit option;
      (** log stddev(external frag) vs log M *)
}

(* Per-size aggregation: mean hole count and the across-rep standard
   deviation of external fragmentation, both on log10 axes. *)
let fit_rows rows =
  let sizes = List.sort_uniq compare (List.map (fun r -> r.words) rows) in
  let agg stat_of f =
    List.filter_map
      (fun words ->
        let st = Metrics.Stats.create () in
        List.iter (fun r -> if r.words = words then Metrics.Stats.add st (f r)) rows;
        let v = stat_of st in
        if v > 0. then Some (log10 (float_of_int words), log10 v) else None)
      sizes
  in
  {
    holes_exponent =
      Metrics.Stats.linfit (agg Metrics.Stats.mean (fun r -> float_of_int r.holes));
    sigma_exponent =
      Metrics.Stats.linfit (agg Metrics.Stats.stddev (fun r -> r.external_frag));
  }

let run ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  ignore obs;
  let rows = measure ~quick ?seed () in
  print_endline "== X10: finite-size scaling of fragmentation ==";
  print_endline
    "(fixed mix — geometric sizes, best fit, 50% occupancy — store size swept)\n";
  let sizes = List.sort_uniq compare (List.map (fun r -> r.words) rows) in
  Metrics.Table.print
    ~headers:
      [ "store (words)"; "live"; "holes"; "ext frag"; "sigma(ext frag)"; "largest share" ]
    (List.map
       (fun words ->
         let of_reps f =
           let st = Metrics.Stats.create () in
           List.iter (fun r -> if r.words = words then Metrics.Stats.add st (f r)) rows;
           st
         in
         let holes = of_reps (fun r -> float_of_int r.holes) in
         let frag = of_reps (fun r -> r.external_frag) in
         let share = of_reps (fun r -> r.largest_free_share) in
         let live = of_reps (fun r -> float_of_int r.live_words) in
         [
           string_of_int words;
           Printf.sprintf "%.0f" (Metrics.Stats.mean live);
           Printf.sprintf "%.1f" (Metrics.Stats.mean holes);
           Metrics.Table.fmt_pct (Metrics.Stats.mean frag);
           Printf.sprintf "%.4f" (Metrics.Stats.stddev frag);
           Printf.sprintf "%.3f" (Metrics.Stats.mean share);
         ])
       sizes);
  print_newline ();
  let fits = fit_rows rows in
  let show name = function
    | Some (f : Metrics.Stats.fit) ->
      Printf.printf "%-28s exponent %+.3f  (r^2 %.3f)\n" name f.slope f.r_square
    | None -> Printf.printf "%-28s (not enough points to fit)\n" name
  in
  show "holes ~ M^a:" fits.holes_exponent;
  show "sigma(ext frag) ~ M^a:" fits.sigma_exponent;
  print_newline ()
