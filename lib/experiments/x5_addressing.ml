type row = {
  unit_label : string;
  answer : int64;
  instructions : int;
  elapsed_us : int;
  faults : int;
  traps : string;
}

let n_of quick = if quick then 40 else 200

let access segment offset = { Machine.Addressing.segment; offset }

let linear_code pc = access 0 pc

(* Fill then sum through the given unit; return what the run cost. *)
let execute ~quick cpu ~clock ~seg ~data ~scratch ~faults ~unit_label ~traps =
  let n = n_of quick in
  Machine.Cpu.load_program cpu (Machine.Programs.fill_array ~seg ~data ~n ~scratch ());
  Machine.Cpu.run cpu;
  Machine.Cpu.reset cpu;
  Machine.Cpu.load_program cpu (Machine.Programs.sum_array ~seg ~data ~n ~scratch ());
  Machine.Cpu.run cpu;
  {
    unit_label;
    answer = Machine.Cpu.acc cpu;
    instructions = Machine.Cpu.steps cpu;
    elapsed_us = Sim.Clock.now clock;
    faults = faults ();
    traps;
  }

let absolute_row ~quick =
  let clock = Sim.Clock.create () in
  let level = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:2048 in
  let cpu = Machine.Cpu.create (Machine.Addressing.absolute level) ~code_at:linear_code in
  execute ~quick cpu ~clock ~seg:0 ~data:1024 ~scratch:1500 ~faults:(fun () -> 0)
    ~unit_label:"absolute" ~traps:"physical bound only"

let relocated_row ~quick =
  let clock = Sim.Clock.create () in
  let level = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:4096 in
  let registers = Swapping.Relocation.create ~base:2048 ~limit:1600 in
  let cpu =
    Machine.Cpu.create (Machine.Addressing.relocated level registers) ~code_at:linear_code
  in
  execute ~quick cpu ~clock ~seg:0 ~data:1024 ~scratch:1500 ~faults:(fun () -> 0)
    ~unit_label:"relocation+limit" ~traps:"limit register"

let paged_row ~quick =
  let page_size = 64 and frames = 8 and pages = 64 in
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:(frames * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"drum" ~words:(pages * page_size)
  in
  let engine =
    Paging.Demand.create
      {
        Paging.Demand.page_size;
        frames;
        pages;
        core;
        backing;
        policy = Paging.Replacement.lru ();
        tlb = Some (Paging.Tlb.create ~capacity:8 Paging.Tlb.Lru_replacement);
        compute_us_per_ref = 1;
      }
  in
  let cpu = Machine.Cpu.create (Machine.Addressing.paged engine) ~code_at:linear_code in
  execute ~quick cpu ~clock ~seg:0 ~data:1024 ~scratch:1500
    ~faults:(fun () -> Paging.Demand.faults engine)
    ~unit_label:"demand paged" ~traps:"name-space bound"

let segmented_row ~quick =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:2048 in
  let backing = Memstore.Level.make clock Memstore.Device.drum ~name:"drum" ~words:8192 in
  let store =
    Segmentation.Segment_store.create
      {
        Segmentation.Segment_store.core;
        backing;
        placement = Freelist.Policy.Best_fit;
        replacement = Segmentation.Segment_store.Cyclic;
        max_segment = Some 1024;
      }
  in
  let code_seg = Segmentation.Segment_store.define store ~name:"code" ~length:256 () in
  let data_seg = Segmentation.Segment_store.define store ~name:"data" ~length:512 () in
  let unit = Machine.Addressing.segmented store ~segments:[| code_seg; data_seg |] in
  let cpu = Machine.Cpu.create unit ~code_at:linear_code in
  execute ~quick cpu ~clock ~seg:1 ~data:0 ~scratch:400
    ~faults:(fun () -> Segmentation.Segment_store.segment_faults store)
    ~unit_label:"segmented (PRT)" ~traps:"per-segment subscript check"

let measure ?(quick = false) () =
  [ absolute_row ~quick; relocated_row ~quick; paged_row ~quick; segmented_row ~quick ]

let run ?quick ?obs:_ ?seed:_ () =
  let rows = measure ?quick () in
  print_endline "== X5 (extension): one program, every addressing mechanism ==";
  print_endline "(fill an array then sum it; identical encoded program throughout)\n";
  Metrics.Table.print
    ~headers:[ "addressing unit"; "answer"; "instructions"; "elapsed (us)"; "faults"; "what traps" ]
    (List.map
       (fun r ->
         [
           r.unit_label;
           Int64.to_string r.answer;
           string_of_int r.instructions;
           string_of_int r.elapsed_us;
           string_of_int r.faults;
           r.traps;
         ])
       rows);
  print_newline ()
