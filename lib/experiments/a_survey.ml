let run ?(quick = false) ?obs:_ ?seed:_ () =
  print_endline "== A: the appendix, as a measured survey ==\n";
  print_endline "--- the four basic characteristics ---\n";
  print_string (Machines.Survey.characteristics_table ());
  print_endline "\n--- survey notes ---\n";
  List.iter
    (fun (s, notes) ->
      Printf.printf "%s:\n" s.Dsas.System.name;
      List.iter (fun n -> Printf.printf "  - %s\n" n) notes)
    Machines.Survey.all;
  print_endline "\n--- signature runs (working-set trace over 3x working storage) ---\n";
  let reports = Machines.Survey.run ~refs:(if quick then 2_000 else 20_000) () in
  print_string (Machines.Survey.render reports);
  print_newline ()
