type row = {
  program : string;
  frames : int;
  faults : int;
  elapsed_us : int;
  space_time : float;
  optimal : bool;
}

let page_size = 512

let fetch_us = 8_000

let compute_us_per_ref = 5

let programs ~quick rng =
  let length = if quick then 4_000 else 40_000 in
  [
    ( "tight (WS~12)",
      Workload.Trace.working_set_phases rng ~length ~extent:96 ~set_size:12
        ~phase_length:(length / 6) ~locality:1.0 );
    ( "loose (WS~36)",
      Workload.Trace.working_set_phases rng ~length ~extent:96 ~set_size:36
        ~phase_length:(length / 6) ~locality:1.0 );
    ("scattered (zipf)", Workload.Trace.zipf rng ~length ~extent:96 ~skew:0.8);
  ]

let frames_swept = [ 4; 8; 16; 24; 32; 48; 64; 96 ]

let measure ?(quick = false) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 2121 in
  List.concat_map
    (fun (program, trace) ->
      let points =
        Paging.Lifetime.space_time_curve Paging.Spec.Lru ~frames:frames_swept ~page_size
          ~compute_us_per_ref ~fetch_us trace
      in
      let best = Paging.Lifetime.optimal_allotment points in
      List.map
        (fun (p : Paging.Lifetime.space_time_point) ->
          {
            program;
            frames = p.Paging.Lifetime.frames;
            faults = p.Paging.Lifetime.faults;
            elapsed_us = p.Paging.Lifetime.elapsed_us;
            space_time = p.Paging.Lifetime.space_time;
            optimal = p.Paging.Lifetime.frames = best.Paging.Lifetime.frames;
          })
        points)
    (programs ~quick rng)

let run ?(quick = false) ?obs:_ ?seed () =
  let rows = measure ~quick ?seed () in
  print_endline "== X6 (extension): sizing storage by the space-time product ==";
  print_endline
    "(LRU; ST = allotment x elapsed; the minimum marks the allotment the program is worth)\n";
  let by_program = List.sort_uniq compare (List.map (fun r -> r.program) rows) in
  List.iter
    (fun program ->
      let group = List.filter (fun r -> r.program = program) rows in
      Printf.printf "--- program: %s ---\n" program;
      Metrics.Table.print
        ~headers:[ "frames"; "faults"; "elapsed (us)"; "space-time (word-us)"; "" ]
        (List.map
           (fun r ->
             [
               string_of_int r.frames;
               string_of_int r.faults;
               string_of_int r.elapsed_us;
               Printf.sprintf "%.3g" r.space_time;
               (if r.optimal then "<- optimum" else "");
             ])
           group);
      print_newline ())
    by_program;
  (* The variable-allotment alternative: hold exactly the working set. *)
  let rng = Sim.Rng.derive ?override:seed 2121 in
  print_endline
    "--- variable allotment: hold exactly W(t, tau=200) (working-set policy) ---\n";
  Metrics.Table.print
    ~headers:[ "program"; "mean resident"; "faults"; "space-time (word-us)" ]
    (List.map
       (fun (name, trace) ->
         let r =
           Paging.Lifetime.working_set_run ~tau:200 ~page_size ~compute_us_per_ref
             ~fetch_us trace
         in
         [
           name;
           Printf.sprintf "%.1f pages" r.Paging.Lifetime.mean_resident;
           string_of_int r.Paging.Lifetime.ws_faults;
           Printf.sprintf "%.3g" r.Paging.Lifetime.ws_space_time;
         ])
       (programs ~quick rng));
  print_newline ()
