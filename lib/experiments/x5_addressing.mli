(** Extension X5 — one program, every addressing mechanism.

    The paper's "Storage Addressing" section distinguishes the name a
    program uses from the address the system accesses.  Here the {e same
    encoded program} (fill an array, then sum it) executes on the word
    machine through each addressing unit of the taxonomy — absolute,
    relocation/limit, demand-paged, and segmented — and the measured
    cost of each mechanism (elapsed virtual time, faults taken, words of
    mapping overhead) is reported side by side.  The program's answer is
    identical in every row; what changes is everything the taxonomy is
    about. *)

type row = {
  unit_label : string;
  answer : int64;
  instructions : int;
  elapsed_us : int;
  faults : int;  (** page or segment faults taken *)
  traps : string;  (** what an out-of-bounds name does here *)
}

val measure : ?quick:bool -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
