type row = {
  jobs : int;
  fetch_us : int;
  regime : string;
  cpu_utilization : float;
  total_faults : int;
  elapsed_us : int;
}

let pages_per_job = 24

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let refs_per_job = if quick then 300 else 2_000 in
  let ks = if quick then [ 1; 4 ] else [ 1; 2; 3; 4; 6; 8 ] in
  let fetches = [ 500; 5_000 ] in
  (* Each scheduler run has its own simulated clock from 0; shifting by
     the accumulated elapsed time keeps the spliced stream monotone;
     segment boundaries mark where each scheduler run restarts. *)
  let t_base = ref 0 in
  let runs = ref 0 in
  let seg ~config =
    let s = Obs.Sink.segment ?seed ~config ~run:!runs ~offset:!t_base obs in
    incr runs;
    s
  in
  let one ~regime ~frames k fetch_us =
    let rng = Sim.Rng.derive ?override:seed (k + (fetch_us * 7)) in
    let jobs =
      Workload.Job.mix rng ~jobs:k ~refs_per_job ~pages_per_job ~locality:0.9
        ~compute_us_per_ref:15
    in
    let report =
      Dsas.Multiprog.run
        ~obs:
          (seg
             ~config:
               (Printf.sprintf "c7 regime=%s jobs=%d fetch_us=%d" regime k fetch_us))
        ~frames
        ~policy:(Paging.Replacement.lru ()) ~fetch_us jobs
    in
    t_base := !t_base + report.Dsas.Multiprog.elapsed_us;
    {
      jobs = k;
      fetch_us;
      regime;
      cpu_utilization = report.Dsas.Multiprog.cpu_utilization;
      total_faults = report.Dsas.Multiprog.total_faults;
      elapsed_us = report.Dsas.Multiprog.elapsed_us;
    }
  in
  List.concat_map
    (fun fetch_us ->
      List.concat_map
        (fun k ->
          [
            one ~regime:"ample store" ~frames:(pages_per_job * k) k fetch_us;
            one ~regime:"fixed 32 frames" ~frames:32 k fetch_us;
          ])
        ks)
    fetches

let run ?quick ?obs ?seed () =
  let rows = measure ?quick ?obs ?seed () in
  print_endline "== C7: multiprogramming vs processor utilization ==";
  print_endline "(one processor, one backing-store channel, LRU over a shared pool)\n";
  Metrics.Table.print
    ~headers:[ "fetch (us)"; "regime"; "jobs"; "cpu utilization"; "faults"; "elapsed (us)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.fetch_us;
           r.regime;
           string_of_int r.jobs;
           Metrics.Table.fmt_pct r.cpu_utilization;
           string_of_int r.total_faults;
           string_of_int r.elapsed_us;
         ])
       rows);
  print_newline ();
  let series regime fetch_us =
    ( Printf.sprintf "%s, fetch=%dus" regime fetch_us,
      List.filter_map
        (fun r ->
          if r.regime = regime && r.fetch_us = fetch_us then
            Some (float_of_int r.jobs, r.cpu_utilization)
          else None)
        rows )
  in
  print_string
    (Metrics.Chart.series ~x_label:"degree of multiprogramming"
       ~y_label:"cpu utilization"
       [
         series "ample store" 5_000;
         series "fixed 32 frames" 5_000;
         series "ample store" 500;
       ]);
  print_newline ()
