(** Experiment C8 — choosing the unit of allocation size.

    "If it is too small, there will be an unacceptable amount of
    overhead.  If it is too large, too much space will be wasted."
    The M44's boot-time-variable page size is swept over one workload,
    reporting faults, fetch traffic, page-table size (the overhead term)
    and internal waste for a realistic object population (the waste
    term); a combined cost column exposes the interior optimum.
    MULTICS's answer — two page sizes at once — is evaluated on the same
    object population. *)

type row = {
  page_size : int;
  faults : int;
  elapsed_us : int;
  table_entries : int;
  internal_waste : int;  (** words wasted by the object population *)
  combined_cost : float;  (** normalized overhead + waste *)
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val dual_rows : ?seed:int -> unit -> (string * int * int) list
(** (scheme, wasted words, page-table entries) for MULTICS's dual sizes
    vs each uniform size on the same objects: the dual scheme matches
    the small page's waste at close to the large page's table cost. *)

type operational_row = {
  scheme : string;
  faults : int;
  core_budget : int;  (** words of working storage given to the scheme *)
  resident_utilization : float;  (** useful fraction of resident core *)
  table_cost : int;  (** page-table entries for the whole segment set *)
}

val measure_operational : ?quick:bool -> ?seed:int -> unit -> operational_row list
(** The dual mechanism actually running ({!Segmentation.Dual_pager}),
    against uniform pagers at each size, all given the same words of
    core on a mixed small/large segment workload. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
