let page_size = 64

let pages = 8

let frames = 8

(* Build an engine and touch pages in an interleaved order so that
   consecutive pages land in non-consecutive frames. *)
let build () =
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:(frames * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"drum" ~words:(pages * page_size)
  in
  (* A recognizable pattern per word of backing store. *)
  for w = 0 to (pages * page_size) - 1 do
    Memstore.Physical.write (Memstore.Level.physical backing) w (Int64.of_int (w * 7))
  done;
  let engine =
    Paging.Demand.create
      {
        Paging.Demand.page_size;
        frames;
        pages;
        core;
        backing;
        policy = Paging.Replacement.lru ();
        tlb = None;
        compute_us_per_ref = 1;
      }
  in
  (* Scatter: 0, 4, 1, 5, 2, 6, 3, 7 claim frames in touch order. *)
  List.iter
    (fun p -> ignore (Paging.Demand.read engine (p * page_size)))
    [ 0; 4; 1; 5; 2; 6; 3; 7 ];
  engine

let mapping engine =
  List.init pages (fun p ->
      match Paging.Demand.frame_of engine ~page:p with
      | Some f -> (p, f)
      | None -> assert false)

let scattered_fraction () =
  let m = mapping (build ()) in
  let frame_of p = List.assoc p m in
  let adjacent_pairs = pages - 1 in
  let physically_adjacent =
    List.length
      (List.filter (fun p -> frame_of (p + 1) = frame_of p + 1) (List.init adjacent_pairs Fun.id))
  in
  1. -. (float_of_int physically_adjacent /. float_of_int adjacent_pairs)

let run ?(quick = false) ?obs:_ ?seed:_ () =
  ignore quick;
  let engine = build () in
  print_endline "== F1/F2: artificial contiguity via a table of block addresses ==";
  print_endline "contiguous names (pages) mapped onto scattered page frames:\n";
  Metrics.Table.print
    ~headers:[ "page (name bits)"; "frame (address bits)"; "core word of name 0" ]
    (List.map
       (fun (p, f) ->
         [ string_of_int p; string_of_int f; string_of_int (f * page_size) ])
       (mapping engine));
  (* Verify: a contiguous name sweep returns the backing pattern. *)
  let ok = ref true in
  for name = 0 to (pages * page_size) - 1 do
    if Paging.Demand.read engine name <> Int64.of_int (name * 7) then ok := false
  done;
  Printf.printf "\ncontiguous name sweep reads correct data: %b\n" !ok;
  Printf.printf "adjacent name pairs with non-adjacent frames: %s\n\n"
    (Metrics.Table.fmt_pct (scattered_fraction ()))
