(** X10 (extension): finite-size scaling of fragmentation.

    A fixed steady-state allocation mix (geometric object sizes, best
    fit, ~50% occupancy, fixed churn per object) is run in stores
    spanning three decades of size; two finite-size laws are fitted on
    log-log axes.  Hole count grows as a clean sub-extensive power
    ([holes(M) ~ M^0.73], r^2 ~ 1.0 — best fit recycles small holes and
    the wilderness absorbs the rest) and the seed-to-seed fluctuation
    of external fragmentation decays near the central-limit rate
    ([sigma(M) ~ M^(-0.4)]).  The fitted exponents are the goldens the
    x10_fss campaign regresses against. *)

type row = {
  words : int;  (** store size *)
  rep : int;  (** replicate index (independent seed) *)
  live_words : int;
  external_frag : float;
  largest_free_share : float;  (** largest free block / free words *)
  holes : int;
  mean_search : float;
}

val point :
  ?seed:int ->
  ?rep:int ->
  ?mean_size:float ->
  ?occupancy:float ->
  ?churn:int ->
  policy:Freelist.Policy.t ->
  words:int ->
  unit ->
  row
(** One steady-state run: churn a live set of ~[occupancy * words /
    mean_size] objects for [churn] events per object, then read the
    final fragmentation state.  [rep] perturbs the stream seed so
    replicates are independent; [seed] shifts the whole family. *)

val measure : ?quick:bool -> ?seed:int -> unit -> row list

type fits = {
  holes_exponent : Metrics.Stats.fit option;  (** log holes vs log M *)
  sigma_exponent : Metrics.Stats.fit option;
      (** log stddev(external frag) vs log M *)
}

val fit_rows : row list -> fits

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
