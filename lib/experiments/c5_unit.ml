type row = {
  system : string;
  faults : int;
  words_transferred : int;
  elapsed_us : int;
  waste : string;
}

let core_words = 8192

(* Segment sizes like a compiled ALGOL program: many small procedure
   segments, a few large data segments. *)
let segment_sizes rng =
  Array.init 64 (fun i ->
      if i mod 16 = 0 then 512 + Sim.Rng.int rng 512 else 16 + Sim.Rng.int rng 112)

let workload ~quick rng segments =
  let refs = if quick then 3_000 else 30_000 in
  let n = Array.length segments in
  (* Working-set locality over segments: phases of 8 hot segments. *)
  let hot = ref (Array.init 8 (fun i -> i)) in
  Array.init refs (fun i ->
      if i mod (refs / 10) = 0 then
        hot := Array.init 8 (fun _ -> Sim.Rng.int rng n);
      let s = if Sim.Rng.float rng 1. < 0.95 then Sim.Rng.pick rng !hot else Sim.Rng.int rng n in
      (s, Sim.Rng.int rng segments.(s)))

let base_system name mechanism =
  {
    Dsas.System.name;
    characteristics = Namespace.Characteristics.recommended;
    core_words;
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 16;
    backing_device = Memstore.Device.drum;
    mechanism;
    compute_us_per_ref = 2;
  }

let segment_machine =
  base_system "segment-unit (B5000-style)"
    (Dsas.System.Segmented
       {
         placement = Freelist.Policy.Best_fit;
         replacement = Segmentation.Segment_store.Cyclic;
         max_segment = Some 1024;
       })

let page_machine page_size =
  base_system
    (Printf.sprintf "paged %d (ATLAS-style)" page_size)
    (Dsas.System.Paged
       {
         page_size;
         frames = core_words / page_size;
         policy = Paging.Spec.Lru;
         tlb_capacity = core_words / page_size;
         device = Device.Spec.legacy;
       })

let measure ?(quick = false) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 808 in
  let segments = segment_sizes rng in
  let refs = workload ~quick rng segments in
  let row_of_report (r : Dsas.System.report) ~words_per_fault ~waste =
    {
      system = r.Dsas.System.system;
      faults = r.Dsas.System.faults;
      words_transferred = words_per_fault;
      elapsed_us = (match r.Dsas.System.elapsed_us with Some e -> e | None -> 0);
      waste;
    }
  in
  let seg_report = Dsas.System.run_segmented segment_machine ~segments refs in
  let mean_seg = Array.fold_left ( + ) 0 segments / Array.length segments in
  let seg_row =
    row_of_report seg_report
      ~words_per_fault:(seg_report.Dsas.System.faults * mean_seg)
      ~waste:
        (Printf.sprintf "external frag %s"
           (match seg_report.Dsas.System.external_fragmentation with
            | Some f -> Metrics.Table.fmt_pct f
            | None -> "-"))
  in
  let page_rows =
    List.map
      (fun page_size ->
        let r = Dsas.System.run_segmented (page_machine page_size) ~segments refs in
        let internal =
          Array.fold_left
            (fun acc len -> acc + ((len + page_size - 1) / page_size * page_size) - len)
            0 segments
        in
        row_of_report r
          ~words_per_fault:(r.Dsas.System.faults * page_size)
          ~waste:
            (Printf.sprintf "internal %d words if all live" internal))
      [ 128; 512 ]
  in
  seg_row :: page_rows

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== C5: unit of allocation — whole segments vs page frames ==";
  print_endline "(same segment-structured workload, same core size)\n";
  Metrics.Table.print
    ~headers:[ "system"; "faults"; "~words fetched"; "elapsed (us)"; "waste" ]
    (List.map
       (fun r ->
         [
           r.system;
           string_of_int r.faults;
           string_of_int r.words_transferred;
           string_of_int r.elapsed_us;
           r.waste;
         ])
       rows);
  print_newline ()
