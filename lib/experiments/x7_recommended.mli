(** Extension X7 — racing the authors' recommendation.

    "Not all of the more promising choices of a set of characteristics
    have been tried."  The paper's favourite combination
    ({!Machines.Recommended}) runs a mixed small-and-large-segment
    workload against the designs it was arguing with: the B5000, whose
    1024-word ceiling forces large structures to be chopped (its
    compiler's matrix-by-rows trick), and a MULTICS-style uniform
    pager, which maps every access through two table levels.  Two
    regimes are run: with ample core the recommendation wins outright;
    under tight core, fetching large segments {e whole} thrashes —
    demonstrating why the recommendation's own clause (iv) insists that
    large segments be "allocated using a set of separate blocks". *)

type row = {
  system : string;
  regime : string;  (** "ample core" or "tight core" *)
  faults : int;
  elapsed_us : int option;
  map_accesses : int option;
  external_frag : float option;
  note : string;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
