(** Extension X4 — whole-program swapping vs demand paging.

    The historical step the paper's introduction narrates: time-sharing
    first ran on contiguous programs addressed through relocation/limit
    registers and swapped whole, then moved to paging so that only the
    storage a program actually touches need move.  The same interactive
    schedule (k programs served round-robin, each interaction touching a
    fraction of its program) is executed by the {!Swapping.Swapper} and
    by the paging engine over the same devices.  Dense interactions suit
    the swapper's single batched transfer; sparse interactions are where
    paging wins — the M44's "significant portion of each user's program
    remains in core" argument. *)

type row = {
  scheme : string;
  touched : string;  (** fraction of the program each interaction uses *)
  transfers : int;  (** swap-ins or page faults *)
  words_moved : int;
  elapsed_us : int;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
