(** Experiment C6 — the Rice inactive-block chain (appendix A.4).

    Drives the Rice allocator through steady-state segment churn at
    several store pressures and reports what its distinctive mechanisms
    actually do: how often the sequential frontier, the chain, and
    adjacent-block combination each supply a request, the chain search
    lengths, and how fragmentation builds up compared with the
    boundary-tag allocator's immediate coalescing on the same stream. *)

type row = {
  allocator : string;
  pressure : string;  (** live store / capacity aimed for *)
  placed : int;
  unplaced : int;
  mean_search : float;
  combines : int;
  final_holes : int;
  external_frag : float;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
