(** Experiment F1/F2 — artificial contiguity (paper Figures 1 and 2).

    A contiguous run of names is mapped, through a table of block
    addresses, onto page frames scattered through physical storage.
    The experiment loads pages in an order that scatters them, prints
    the resulting name-to-frame table (Fig. 2's "table of block
    addresses"), and verifies that a sweep over contiguous names reads
    back exactly the data placed at discontiguous physical addresses. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit

val scattered_fraction : unit -> float
(** Fraction of adjacent name-space page pairs whose frames are {e not}
    physically adjacent after the scatter load (the measured claim:
    name contiguity without address contiguity). *)
