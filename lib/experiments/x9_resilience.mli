(** X9 (extension): end-to-end failure semantics and load control.

    The multiprogrammed set of C7/X8d run over a faulty drum with
    [Fail] escalation: a fault-rate x controller-policy table showing
    bounded abort-and-restart recovery and space-time-product load
    shedding, plus the demand engine's write-side fault accounting
    ([write_rolls_skipped]).  Also home of the {!scenarios} the chaos
    harness ([dsas_sim chaos]) drives. *)

type row = {
  error_prob : float;
  policy : string;  (** "none" or "space-time" *)
  cpu_utilization : float;
  elapsed_us : int;
  total_faults : int;
  restarts : int;
  jobs_failed : int;
  sheds : int;
  admits : int;
  injected : int;
  failed : int;  (** terminal device failures surfaced *)
}

type write_row = {
  write_error_prob : float;
  writebacks : int;
  write_injected : int;
  write_rolls_skipped : int;
  mirror_fetches : int;
  terminal_failures : int;
}

val one :
  ?seed:int ->
  obs:Obs.Sink.t ->
  refs_per_job:int ->
  error_prob:float ->
  policy:string ->
  unit ->
  row
(** One multiprogrammed run over the faulty drum — the grid point
    behind {!measure} and the campaign [resilience] cell.  [policy] is
    ["none"] or ["space-time"]. *)

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> row list

val measure_writes : ?quick:bool -> ?seed:int -> unit -> write_row list

val scenarios : ?quick:bool -> unit -> Resilience.Chaos.scenario list
(** The four chaos scenarios: demand paging under [Mirror] and
    [Surface] recovery, the swapper's mirrored write-outs and surfaced
    swap-in failures, and the multiprogrammed scheduler's bounded
    abort-and-restart under load control. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
