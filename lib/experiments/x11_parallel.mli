(** X11 (extension): supervised sharded multicore execution of the
    simulator.

    The workload is partitioned into shards — each with its own virtual
    clock, RNG stream, arena and event buffer — and run across OCaml
    domains by {!Parallel.Sharded}; the per-shard event streams are
    then merged deterministically by (virtual time, shard).  The
    subject run always goes through {!Parallel.Supervisor}: bounded
    per-shard restarts over crash-consistent {!Parallel.Checkpoint}
    state, optionally under an injected [kills] schedule.  The
    experiment drives both sharded engines (the lock-free fixed-size
    allocator and demand paging), prints per-shard accounting with
    fault columns, and {e verifies the determinism contract
    in-process}: the recovered merged trace produced at the requested
    execution width is compared byte-for-byte against a width-1
    unsupervised reference.  Every number printed is a pure function
    of (config, seed, kills) — never of [domains].

    The trace sink receives the engine streams as runs 0-1 and the
    supervision streams (crash / restart / checkpoint events on the
    simulated wall timeline) as runs 2-3.  If a shard escalates, the
    experiment prints a greppable [ESCALATED] verdict, emits nothing,
    and returns [false]. *)

val run :
  ?quick:bool ->
  ?obs:Obs.Sink.t ->
  ?seed:int ->
  ?domains:int ->
  ?kills:Parallel.Supervisor.kill list ->
  unit ->
  bool
(** [domains] (default 1) is the execution width to exercise; the
    CLI's [--domains] flag lands here, and [--kill-shard] supplies
    [kills] (default none).  Returns [false] iff a shard exhausted its
    restart budget and escalated.  Raises [Invalid_argument] if
    [domains < 1]. *)
