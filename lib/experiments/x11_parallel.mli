(** X11 (extension): sharded multicore execution of the simulator.

    The workload is partitioned into shards — each with its own virtual
    clock, RNG stream, arena and event buffer — and run across OCaml
    domains by {!Parallel.Sharded}; the per-shard event streams are
    then merged deterministically by (virtual time, shard).  The
    experiment drives both sharded engines (the lock-free fixed-size
    allocator and demand paging), prints per-shard accounting, and
    {e verifies the determinism contract in-process}: the merged trace
    produced at the requested execution width is compared byte-for-byte
    against the width-1 trace.  Every number printed is a pure function
    of (config, seed) — never of [domains]. *)

val run :
  ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> ?domains:int -> unit -> unit
(** [domains] (default 1) is the execution width to exercise and to
    check against the width-1 reference; the CLI's [--domains] flag
    lands here.  Raises [Invalid_argument] if [domains < 1]. *)
