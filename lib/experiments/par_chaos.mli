(** Multicore chaos scenarios: the supervised sharded engines under
    seeded shard-kill schedules, for {!Resilience.Chaos.run_sharded}.

    Each round runs the workload fault-free at width 1 as a reference,
    then supervised at the requested width under the harness's kill
    schedule.  The supervised engine trace must come out byte-identical
    to the reference — recovery is invisible in the observable record —
    and the counters expose the verdict:

    - ["crashes"] / ["restarts"] / ["checkpoints"]: summed supervisor
      outcomes across shards;
    - ["escalated"]: 1 if a shard exhausted its restart budget (the
      drawn schedules never should — at most 2 kills per shard against
      a budget of 3);
    - ["diverged"]: 1 if the recovered trace differed from the
      reference.  CI gates on this being 0. *)

val shards : int
(** Shard count every scenario uses — pass to
    {!Resilience.Chaos.run_sharded} so drawn kill schedules target
    real shards. *)

val steps : quick:bool -> int
(** Workload steps per shard (ops for alloc, refs for paging) — pass
    to {!Resilience.Chaos.run_sharded} so drawn kill points land
    inside the run. *)

val to_kills :
  Resilience.Chaos.shard_kill list -> Parallel.Supervisor.kill list
(** Convert the chaos layer's pure-data kills into supervisor kills. *)

val scenarios :
  ?quick:bool -> ?domains:int -> unit -> Resilience.Chaos.shard_scenario list
(** The two scenarios (supervised alloc, supervised paging).
    [domains] (default 2) is the execution width of the supervised
    subject run; the reference always runs at width 1. *)
