(** The campaign cell catalogue.

    One {!Cell.spec} per simulation family: paging (F3), placement
    (C2), replacement (C3), multiprog (C7), device (X8d), resilience
    (X9), frag_unit (C1), fss (X10), and the sharded multicore pair
    par_alloc / par_paging (X11, whose [domains] parameter is an
    execution width that never changes results).  A sweep spec names a
    cell and grids its parameters; the executor runs one cell per grid
    point. *)

val all : Cell.spec list

val find : string -> Cell.spec option

val ids : string list
