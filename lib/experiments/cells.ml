(* The campaign cell catalogue: one parameterizable grid point per
   simulation family.  Each cell validates its parameters strictly,
   runs the simulation the corresponding experiment runs (same
   generators, same derive constants where it shares a family), and
   records its results as gauges/counters in the cell's registry —
   exported by the executor as one dsas-metrics/1 file per grid
   point. *)

let ( let* ) = Result.bind

let policy_of_string = function
  | "first-fit" -> Ok Freelist.Policy.First_fit
  | "next-fit" -> Ok Freelist.Policy.Next_fit
  | "best-fit" -> Ok Freelist.Policy.Best_fit
  | "worst-fit" -> Ok Freelist.Policy.Worst_fit
  | "two-ends" -> Ok (Freelist.Policy.Two_ends { small_max = 64 })
  | other -> Error (Printf.sprintf "unknown placement policy %S" other)

let policy_names = [ "first-fit"; "next-fit"; "best-fit"; "worst-fit"; "two-ends" ]

let spec_of_string ~frames = function
  | "fifo" -> Ok Paging.Spec.Fifo
  | "lru" -> Ok Paging.Spec.Lru
  | "clock" -> Ok Paging.Spec.Clock
  | "random" -> Ok Paging.Spec.Random
  | "nru" -> Ok Paging.Spec.Nru
  | "lfu" -> Ok Paging.Spec.Lfu
  | "atlas" -> Ok Paging.Spec.Atlas
  | "m44" -> Ok Paging.Spec.M44
  | "working-set" -> Ok (Paging.Spec.Working_set (2 * frames))
  | "opt" -> Ok Paging.Spec.Opt
  | other -> Error (Printf.sprintf "unknown replacement policy %S" other)

let spec_names =
  [ "fifo"; "lru"; "clock"; "random"; "nru"; "lfu"; "atlas"; "m44"; "working-set"; "opt" ]

(* --- paging: F3's one-program demand-paging run, device swept ------- *)

let paging_devices =
  [
    ("fast-drum", Memstore.Device.custom ~label:"fast-drum" ~latency_us:1_000 ~word_ns:2_000);
    ("drum", Memstore.Device.drum);
    ("slow-drum", Memstore.Device.custom ~label:"slow-drum" ~latency_us:20_000 ~word_ns:8_000);
    ("disk", Memstore.Device.disk);
  ]

let paging_cell =
  let run (ctx : Cell.ctx) =
    let* () =
      Cell.check_known ctx [ "device"; "frames"; "refs"; "policy" ]
    in
    let* device_name =
      Cell.get_enum ctx "device" ~default:"drum"
        ~values:(List.map fst paging_devices)
    in
    let* frames = Cell.get_int ctx "frames" ~default:12 in
    let* frames = Cell.require_positive "frames" frames in
    let* refs =
      Cell.get_int ctx "refs" ~default:(if ctx.quick then 2_000 else 20_000)
    in
    let* refs = Cell.require_positive "refs" refs in
    let* spec = Cell.get_enum ctx "policy" ~default:"lru" ~values:spec_names in
    let device = List.assoc device_name paging_devices in
    let page_size = 256 in
    let pages = 24 in
    let rng = Sim.Rng.derive ~override:ctx.seed 42 in
    let page_trace =
      Workload.Trace.working_set_phases rng ~length:refs ~extent:pages ~set_size:6
        ~phase_length:(refs / 8) ~locality:0.98
    in
    let trace =
      Array.map (fun p -> (p * page_size) + Sim.Rng.int rng page_size) page_trace
    in
    let* policy_spec = spec_of_string ~frames spec in
    let clock = Sim.Clock.create () in
    let page_numbers = Workload.Trace.to_pages ~page_size trace in
    let engine =
      Paging.Spec.build ~obs:ctx.obs ~clock
        ~rng:(Sim.Rng.derive ~override:ctx.seed 9)
        ~trace:page_numbers
        { Paging.Spec.e_page_size = page_size; e_frames = frames;
          e_pages = pages; e_device = device; e_policy = policy_spec;
          e_tlb_slots = None; e_compute_us_per_ref = 50 }
    in
    Paging.Demand.run engine trace;
    let st = Paging.Demand.space_time engine in
    Cell.gauge ctx "st.active" (Metrics.Space_time.active st);
    Cell.gauge ctx "st.waiting" (Metrics.Space_time.waiting st);
    Cell.gauge ctx "st.waiting_fraction" (Metrics.Space_time.waiting_fraction st);
    Cell.count ctx "faults" (Paging.Demand.faults engine);
    Cell.count ctx "refs" (Paging.Demand.refs engine);
    Cell.count ctx "elapsed_us" (Sim.Clock.now clock);
    Ok ()
  in
  {
    Cell.id = "paging";
    doc = "one program under timed demand paging (F3's family): space-time split";
    params =
      [
        ("device", "backing store: fast-drum | drum | slow-drum | disk (drum)");
        ("frames", "core frames (12)");
        ("refs", "trace length (20000; 2000 quick)");
        ("policy", "replacement policy (lru)");
      ];
    run;
  }

(* --- placement: C2's steady-state allocator run ---------------------- *)

let placement_cell =
  let run (ctx : Cell.ctx) =
    let* () =
      Cell.check_known ctx [ "policy"; "mix"; "steps"; "words"; "target_live" ]
    in
    let* policy_name =
      Cell.get_enum ctx "policy" ~default:"best-fit" ~values:policy_names
    in
    let* policy = policy_of_string policy_name in
    let* mix =
      Cell.get_enum ctx "mix" ~default:"small-skewed"
        ~values:[ "small-skewed"; "bimodal" ]
    in
    let* steps =
      Cell.get_int ctx "steps" ~default:(if ctx.quick then 2_000 else 25_000)
    in
    let* steps = Cell.require_positive "steps" steps in
    let* words = Cell.get_int ctx "words" ~default:(1 lsl 16) in
    let* words = Cell.require_positive "words" words in
    let* target_live = Cell.get_int ctx "target_live" ~default:400 in
    let* target_live = Cell.require_positive "target_live" target_live in
    let size =
      match mix with
      | "bimodal" ->
        Workload.Alloc_stream.Bimodal { small = 16; large = 2048; large_fraction = 0.05 }
      | _ -> Workload.Alloc_stream.Geometric { mean = 40.; min_size = 1 }
    in
    let rng = Sim.Rng.derive ~override:ctx.seed 77 in
    let events = Workload.Alloc_stream.live_stream rng ~steps ~size ~target_live in
    let mem = Memstore.Physical.create ~name:"core" ~words in
    let a =
      Freelist.Allocator.build ~obs:ctx.obs mem
        { Freelist.Allocator.s_base = 0; s_len = words; s_policy = policy }
    in
    let table = Hashtbl.create 512 in
    List.iter
      (function
        | Workload.Alloc_stream.Alloc { id; size } ->
          (match Freelist.Allocator.alloc a size with
           | Some addr -> Hashtbl.replace table id addr
           | None -> ())
        | Workload.Alloc_stream.Free { id } ->
          (match Hashtbl.find_opt table id with
           | Some addr ->
             Freelist.Allocator.free a addr;
             Hashtbl.remove table id
           | None -> ()))
      events;
    let sizes = Freelist.Allocator.free_block_sizes a in
    Cell.gauge ctx "frag.external"
      (Metrics.Fragmentation.external_of_free_blocks sizes);
    Cell.gauge ctx "frag.holes" (float_of_int (List.length sizes));
    Cell.gauge ctx "alloc.mean_search"
      (Metrics.Stats.mean (Freelist.Allocator.search_stats a));
    Cell.gauge ctx "alloc.largest_free"
      (float_of_int (Freelist.Allocator.largest_free a));
    Cell.count ctx "alloc.failures" (Freelist.Allocator.failures a);
    Cell.count ctx "live_words" (Freelist.Allocator.live_words a);
    Ok ()
  in
  {
    Cell.id = "placement";
    doc = "steady-state placement run (C2's family): fragmentation and search cost";
    params =
      [
        ("policy", "first-fit | next-fit | best-fit | worst-fit | two-ends (best-fit)");
        ("mix", "small-skewed | bimodal (small-skewed)");
        ("steps", "stream events (25000; 2000 quick)");
        ("words", "store size in words (65536)");
        ("target_live", "steady-state live objects (400)");
      ];
    run;
  }

(* --- replacement: C3's untimed fault-rate measurement ---------------- *)

let replacement_cell =
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "policy"; "trace"; "frames"; "refs" ] in
    let* frames = Cell.get_int ctx "frames" ~default:32 in
    let* frames = Cell.require_positive "frames" frames in
    let* refs =
      Cell.get_int ctx "refs" ~default:(if ctx.quick then 2_000 else 30_000)
    in
    let* refs = Cell.require_positive "refs" refs in
    let* spec_name = Cell.get_enum ctx "policy" ~default:"lru" ~values:spec_names in
    let* spec = spec_of_string ~frames spec_name in
    let* trace_name =
      Cell.get_enum ctx "trace" ~default:"loop"
        ~values:[ "loop"; "phases"; "zipf" ]
    in
    let rng = Sim.Rng.derive ~override:ctx.seed 555 in
    let trace =
      match trace_name with
      | "phases" ->
        Workload.Trace.working_set_phases rng ~length:refs ~extent:128 ~set_size:24
          ~phase_length:(refs / 10) ~locality:0.9
      | "zipf" -> Workload.Trace.zipf rng ~length:refs ~extent:128 ~skew:1.0
      | _ -> Workload.Trace.loop ~length:refs ~extent:64 ~working_set:40
    in
    let policy =
      Paging.Spec.instantiate spec
        ~rng:(Sim.Rng.derive ~override:ctx.seed 9)
        ~trace:(Some trace)
    in
    let r = Paging.Fault_sim.run ~obs:ctx.obs ~frames ~policy trace in
    Cell.gauge ctx "fault_rate" (Paging.Fault_sim.fault_rate r);
    Cell.count ctx "faults" r.Paging.Fault_sim.faults;
    Cell.count ctx "cold_faults" r.Paging.Fault_sim.cold;
    Cell.count ctx "evictions" r.Paging.Fault_sim.evictions;
    Cell.count ctx "refs" r.Paging.Fault_sim.refs;
    Ok ()
  in
  {
    Cell.id = "replacement";
    doc = "untimed fault-rate run (C3's family): one policy, one trace, one size";
    params =
      [
        ("policy", String.concat " | " spec_names ^ " (lru)");
        ("trace", "loop | phases | zipf (loop)");
        ("frames", "core frames (32)");
        ("refs", "trace length (30000; 2000 quick)");
      ];
    run;
  }

(* --- multiprog: C7's utilization-vs-k grid point --------------------- *)

let multiprog_cell =
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "jobs"; "fetch_us"; "frames"; "refs_per_job" ] in
    let* jobs = Cell.get_int ctx "jobs" ~default:4 in
    let* jobs = Cell.require_positive "jobs" jobs in
    let* fetch_us = Cell.get_int ctx "fetch_us" ~default:5_000 in
    let* fetch_us = Cell.require_positive "fetch_us" fetch_us in
    let* frames = Cell.get_int ctx "frames" ~default:32 in
    let* frames = Cell.require_positive "frames" frames in
    let* refs_per_job =
      Cell.get_int ctx "refs_per_job" ~default:(if ctx.quick then 300 else 2_000)
    in
    let* refs_per_job = Cell.require_positive "refs_per_job" refs_per_job in
    let rng = Sim.Rng.derive ~override:ctx.seed (jobs + (fetch_us * 7)) in
    let mix =
      Workload.Job.mix rng ~jobs ~refs_per_job ~pages_per_job:24 ~locality:0.9
        ~compute_us_per_ref:15
    in
    let report =
      Dsas.Multiprog.run ~obs:ctx.obs ~frames
        ~policy:(Paging.Replacement.lru ()) ~fetch_us mix
    in
    Cell.gauge ctx "cpu_utilization" report.Dsas.Multiprog.cpu_utilization;
    Cell.count ctx "total_faults" report.Dsas.Multiprog.total_faults;
    Cell.count ctx "elapsed_us" report.Dsas.Multiprog.elapsed_us;
    Ok ()
  in
  {
    Cell.id = "multiprog";
    doc = "multiprogrammed utilization run (C7's family)";
    params =
      [
        ("jobs", "degree of multiprogramming (4)");
        ("fetch_us", "page fetch time (5000)");
        ("frames", "shared frame pool (32)");
        ("refs_per_job", "references per job (2000; 300 quick)");
      ];
    run;
  }

(* --- device: X8d's geometry x scheduler x channels grid point -------- *)

let device_cell =
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "device"; "sched"; "channels" ] in
    let* device =
      Cell.get_enum ctx "device" ~default:"drum" ~values:[ "fixed"; "drum"; "disk" ]
    in
    let* sched =
      Cell.get_enum ctx "sched" ~default:"fifo"
        ~values:[ "fifo"; "satf"; "priority" ]
    in
    let* channels = Cell.get_int ctx "channels" ~default:1 in
    let* channels = Cell.require_positive "channels" channels in
    let r =
      X8_devices.run_multiprog ~quick:ctx.quick ~seed:ctx.seed ~device ~sched
        ~channels ()
    in
    Cell.gauge ctx "cpu_utilization" r.X8_devices.cpu_utilization;
    Cell.gauge ctx "mean_latency_us" r.X8_devices.mean_latency_us;
    Cell.gauge ctx "mean_depth" r.X8_devices.mean_depth;
    Cell.count ctx "max_depth" r.X8_devices.max_depth;
    Cell.count ctx "elapsed_us" r.X8_devices.elapsed_us;
    Ok ()
  in
  {
    Cell.id = "device";
    doc = "timed backing store under multiprogramming (X8d's family)";
    params =
      [
        ("device", "fixed | drum | disk (drum)");
        ("sched", "fifo | satf | priority (fifo)");
        ("channels", "transfer channels (1)");
      ];
    run;
  }

(* --- resilience: X9's fault-rate x controller grid point ------------- *)

let resilience_cell =
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "error_prob"; "policy"; "refs_per_job" ] in
    let* error_prob = Cell.get_float ctx "error_prob" ~default:0.15 in
    let* policy =
      Cell.get_enum ctx "policy" ~default:"space-time"
        ~values:[ "none"; "space-time" ]
    in
    let* refs_per_job =
      Cell.get_int ctx "refs_per_job" ~default:(if ctx.quick then 250 else 1_200)
    in
    let* refs_per_job = Cell.require_positive "refs_per_job" refs_per_job in
    if error_prob < 0. || error_prob > 1. then
      Error "parameter \"error_prob\" must be in [0, 1]"
    else begin
      let r =
        X9_resilience.one ~seed:ctx.seed ~obs:ctx.obs ~refs_per_job ~error_prob
          ~policy ()
      in
      Cell.gauge ctx "cpu_utilization" r.X9_resilience.cpu_utilization;
      Cell.count ctx "total_faults" r.X9_resilience.total_faults;
      Cell.count ctx "restarts" r.X9_resilience.restarts;
      Cell.count ctx "jobs_failed" r.X9_resilience.jobs_failed;
      Cell.count ctx "sheds" r.X9_resilience.sheds;
      Cell.count ctx "admits" r.X9_resilience.admits;
      Cell.count ctx "injected" r.X9_resilience.injected;
      Cell.count ctx "device_failed" r.X9_resilience.failed;
      Cell.count ctx "elapsed_us" r.X9_resilience.elapsed_us;
      Ok ()
    end
  in
  {
    Cell.id = "resilience";
    doc = "faulty drum with Fail escalation and load control (X9's family)";
    params =
      [
        ("error_prob", "transient read-error probability (0.15)");
        ("policy", "none | space-time (space-time)");
        ("refs_per_job", "references per job (1200; 250 quick)");
      ];
    run;
  }

(* --- frag_unit: C1's wasted-fraction comparison, one discipline ------ *)

let frag_unit_cell =
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "policy"; "steps"; "words" ] in
    let* policy_name =
      Cell.get_enum ctx "policy" ~default:"best-fit" ~values:policy_names
    in
    let* policy = policy_of_string policy_name in
    let* steps =
      Cell.get_int ctx "steps" ~default:(if ctx.quick then 2_000 else 20_000)
    in
    let* steps = Cell.require_positive "steps" steps in
    let* words = Cell.get_int ctx "words" ~default:(1 lsl 17) in
    let* words = Cell.require_positive "words" words in
    let rng = Sim.Rng.derive ~override:ctx.seed 31 in
    let events =
      Workload.Alloc_stream.live_stream rng ~steps
        ~size:(Workload.Alloc_stream.Geometric { mean = 90.; min_size = 1 })
        ~target_live:300
    in
    let mem = Memstore.Physical.create ~name:"core" ~words in
    let a =
      Freelist.Allocator.build ~obs:ctx.obs mem
        { Freelist.Allocator.s_base = 0; s_len = words; s_policy = policy }
    in
    let table = Hashtbl.create 512 in
    List.iter
      (function
        | Workload.Alloc_stream.Alloc { id; size } ->
          (match Freelist.Allocator.alloc a size with
           | Some addr -> Hashtbl.replace table id addr
           | None -> ())
        | Workload.Alloc_stream.Free { id } ->
          (match Hashtbl.find_opt table id with
           | Some addr ->
             Freelist.Allocator.free a addr;
             Hashtbl.remove table id
           | None -> ()))
      events;
    let sizes = Freelist.Allocator.free_block_sizes a in
    Cell.gauge ctx "frag.external"
      (Metrics.Fragmentation.external_of_free_blocks sizes);
    Cell.gauge ctx "frag.holes" (float_of_int (List.length sizes));
    Cell.count ctx "live_words" (Freelist.Allocator.live_words a);
    Cell.count ctx "free_words" (Freelist.Allocator.free_words a);
    Cell.count ctx "alloc.failures" (Freelist.Allocator.failures a);
    Ok ()
  in
  {
    Cell.id = "frag_unit";
    doc = "variable-unit fragmentation run (C1's family)";
    params =
      [
        ("policy", "placement policy (best-fit)");
        ("steps", "stream events (20000; 2000 quick)");
        ("words", "store size in words (131072)");
      ];
    run;
  }

(* --- fss: the finite-size-scaling grid point (X10's family) ---------- *)

let fss_cell =
  let run (ctx : Cell.ctx) =
    let* () =
      Cell.check_known ctx [ "words"; "policy"; "mean_size"; "occupancy"; "churn" ]
    in
    let* words = Cell.get_int ctx "words" ~default:65_536 in
    let* words = Cell.require_positive "words" words in
    let* policy_name =
      Cell.get_enum ctx "policy" ~default:"best-fit" ~values:policy_names
    in
    let* policy = policy_of_string policy_name in
    let* mean_size = Cell.get_float ctx "mean_size" ~default:64. in
    let* occupancy = Cell.get_float ctx "occupancy" ~default:0.5 in
    let* churn = Cell.get_int ctx "churn" ~default:12 in
    let* churn = Cell.require_positive "churn" churn in
    if mean_size < 1. then Error "parameter \"mean_size\" must be >= 1"
    else if occupancy <= 0. || occupancy >= 1. then
      Error "parameter \"occupancy\" must be in (0, 1)"
    else begin
      let r =
        X10_fss.point ~seed:ctx.seed ~mean_size ~occupancy ~churn ~policy ~words ()
      in
      Cell.gauge ctx "frag.external" r.X10_fss.external_frag;
      Cell.gauge ctx "frag.holes" (float_of_int r.X10_fss.holes);
      Cell.gauge ctx "frag.largest_free_share" r.X10_fss.largest_free_share;
      Cell.gauge ctx "alloc.mean_search" r.X10_fss.mean_search;
      Cell.count ctx "live_words" r.X10_fss.live_words;
      Ok ()
    end
  in
  {
    Cell.id = "fss";
    doc = "finite-size-scaling point (X10's family): fixed mix, store size swept";
    params =
      [
        ("words", "store size in words (65536)");
        ("policy", "placement policy (best-fit)");
        ("mean_size", "geometric mean object size (64)");
        ("occupancy", "target live fraction of the store (0.5)");
        ("churn", "stream events per live object (12)");
      ];
    run;
  }

(* --- par_alloc: X11's sharded lock-free fixed-size engine ------------ *)

let par_alloc_cell =
  let run (ctx : Cell.ctx) =
    let* () =
      Cell.check_known ctx
        [ "shards"; "ops_per_shard"; "slots_per_shard"; "slot_words"; "domains" ]
    in
    let* shards = Cell.get_int ctx "shards" ~default:4 in
    let* shards = Cell.require_positive "shards" shards in
    let* ops =
      Cell.get_int ctx "ops_per_shard"
        ~default:(if ctx.quick then 4_000 else 20_000)
    in
    let* ops = Cell.require_positive "ops_per_shard" ops in
    let* slots = Cell.get_int ctx "slots_per_shard" ~default:512 in
    let* slots = Cell.require_positive "slots_per_shard" slots in
    let* slot_words = Cell.get_int ctx "slot_words" ~default:16 in
    let* slot_words = Cell.require_positive "slot_words" slot_words in
    let* domains = Cell.get_int ctx "domains" ~default:1 in
    let* domains = Cell.require_positive "domains" domains in
    let cfg =
      Parallel.Sharded.alloc_config ~shards ~ops_per_shard:ops
        ~slots_per_shard:slots ~slot_words ~seed:ctx.seed ()
    in
    let r = Parallel.Sharded.run_alloc ~obs:ctx.obs ~domains cfg in
    let sum f =
      Array.fold_left
        (fun acc (s : Parallel.Sharded.shard_alloc) -> acc + f s)
        0 r.Parallel.Sharded.ar_shards
    in
    let elapsed =
      Array.fold_left
        (fun acc (s : Parallel.Sharded.shard_alloc) -> max acc s.sa_elapsed_us)
        0 r.Parallel.Sharded.ar_shards
    in
    Cell.count ctx "allocs" (sum (fun s -> s.sa_allocs));
    Cell.count ctx "frees" (sum (fun s -> s.sa_frees));
    Cell.count ctx "denied" (sum (fun s -> s.sa_failures));
    Cell.count ctx "refills" (sum (fun s -> s.sa_refills));
    Cell.count ctx "flushes" (sum (fun s -> s.sa_flushes));
    Cell.count ctx "live" (sum (fun s -> s.sa_live));
    Cell.count ctx "elapsed_us" elapsed;
    Ok ()
  in
  {
    Cell.id = "par_alloc";
    doc =
      "sharded lock-free fixed-size allocation (X11's family); results \
       independent of domains";
    params =
      [
        ("shards", "workload partitions (4)");
        ("ops_per_shard", "alloc/free ops per shard (20000; 4000 quick)");
        ("slots_per_shard", "fixed-size blocks per shard arena (512)");
        ("slot_words", "words per block (16)");
        ("domains", "execution width; never changes results (1)");
      ];
    run;
  }

(* --- par_paging: X11's sharded demand-paging engines ----------------- *)

let par_paging_cell =
  let run (ctx : Cell.ctx) =
    let* () =
      Cell.check_known ctx
        [ "shards"; "refs_per_shard"; "frames"; "pages"; "policy"; "domains" ]
    in
    let* shards = Cell.get_int ctx "shards" ~default:4 in
    let* shards = Cell.require_positive "shards" shards in
    let* refs =
      Cell.get_int ctx "refs_per_shard"
        ~default:(if ctx.quick then 2_000 else 8_000)
    in
    let* refs = Cell.require_positive "refs_per_shard" refs in
    let* frames = Cell.get_int ctx "frames" ~default:12 in
    let* frames = Cell.require_positive "frames" frames in
    let* pages = Cell.get_int ctx "pages" ~default:24 in
    let* pages = Cell.require_positive "pages" pages in
    let* spec_name = Cell.get_enum ctx "policy" ~default:"lru" ~values:spec_names in
    let* spec = spec_of_string ~frames spec_name in
    let* domains = Cell.get_int ctx "domains" ~default:1 in
    let* domains = Cell.require_positive "domains" domains in
    if pages < frames then Error "parameter \"pages\" must be >= \"frames\""
    else begin
      let cfg =
        Parallel.Sharded.paging_config ~shards ~refs_per_shard:refs
          ~frames_per_shard:frames ~pages_per_shard:pages ~policy:spec
          ~seed:ctx.seed ()
      in
      let r = Parallel.Sharded.run_paging ~obs:ctx.obs ~domains cfg in
      let sum f =
        Array.fold_left
          (fun acc (s : Parallel.Sharded.shard_paging) -> acc + f s)
          0 r.Parallel.Sharded.pr_shards
      in
      let elapsed =
        Array.fold_left
          (fun acc (s : Parallel.Sharded.shard_paging) -> max acc s.sp_elapsed_us)
          0 r.Parallel.Sharded.pr_shards
      in
      Cell.count ctx "refs" (sum (fun s -> s.sp_refs));
      Cell.count ctx "faults" (sum (fun s -> s.sp_faults));
      Cell.count ctx "writebacks" (sum (fun s -> s.sp_writebacks));
      Cell.count ctx "elapsed_us" elapsed;
      Ok ()
    end
  in
  {
    Cell.id = "par_paging";
    doc =
      "sharded demand paging, one engine per shard (X11's family); results \
       independent of domains";
    params =
      [
        ("shards", "workload partitions (4)");
        ("refs_per_shard", "references per shard (8000; 2000 quick)");
        ("frames", "core frames per shard (12)");
        ("pages", "name-space pages per shard (24)");
        ("policy", String.concat " | " spec_names ^ " (lru)");
        ("domains", "execution width; never changes results (1)");
      ];
    run;
  }

(* --- par_chaos: supervised sharded engines under drawn kills --------- *)

let par_chaos_cell =
  let traces_equal a b =
    Array.length a = Array.length b
    && begin
      let ok = ref true in
      Array.iteri
        (fun i ev ->
          if
            not
              (String.equal (Obs.Event.to_json ev) (Obs.Event.to_json b.(i)))
          then ok := false)
        a;
      !ok
    end
  in
  let collector () =
    let buf = ref [] in
    let sink = Obs.Sink.collect (fun ev -> buf := ev :: !buf) in
    (sink, fun () -> Array.of_list (List.rev !buf))
  in
  let run (ctx : Cell.ctx) =
    let* () = Cell.check_known ctx [ "fault_rate"; "domains"; "shards"; "steps" ] in
    let* fault_rate = Cell.get_float ctx "fault_rate" ~default:0.5 in
    let* domains = Cell.get_int ctx "domains" ~default:1 in
    let* domains = Cell.require_positive "domains" domains in
    let* shards = Cell.get_int ctx "shards" ~default:4 in
    let* shards = Cell.require_positive "shards" shards in
    let* steps =
      Cell.get_int ctx "steps" ~default:(if ctx.quick then 150 else 600)
    in
    let* steps = Cell.require_positive "steps" steps in
    if fault_rate < 0. || fault_rate > 1. then
      Error "parameter \"fault_rate\" must be in [0, 1]"
    else begin
      (* Up to two kills per shard, each fired with [fault_rate] — two
         stays inside the default restart budget, so escalation never
         muddies the grid.  The schedule is a pure function of the
         cell's seed. *)
      let rng = Sim.Rng.derive ~override:ctx.seed 0xC4A05 in
      let kills =
        List.concat
          (List.init shards (fun shard ->
               List.filter_map Fun.id
                 (List.init 2 (fun attempt ->
                      let fires = Sim.Rng.float rng 1. < fault_rate in
                      let progress = Sim.Rng.int_in rng 1 steps in
                      let stall = Sim.Rng.int rng 5 = 0 in
                      if fires then
                        Some
                          {
                            Parallel.Supervisor.k_shard = shard;
                            k_attempt = attempt;
                            k_progress = progress;
                            k_stall = stall;
                          }
                      else None))))
      in
      let crashes = ref 0
      and restarts = ref 0
      and checkpoints = ref 0
      and escalated = ref 0
      and diverged = ref [] in
      let tally name reference = function
        | Error (_ : Resilience.Failure.t) -> incr escalated
        | Ok ((), outcomes, events) ->
          Array.iter
            (fun (o : Parallel.Supervisor.outcome) ->
              crashes := !crashes + o.o_crashes;
              restarts := !restarts + o.o_restarts;
              checkpoints := !checkpoints + o.o_checkpoints)
            outcomes;
          if not (traces_equal reference events) then
            diverged := name :: !diverged
      in
      let supervised runner =
        let sink, contents = collector () in
        match runner ~obs:sink with
        | Error f -> Error f
        | Ok (_, outcomes) -> Ok ((), outcomes, contents ())
      in
      let acfg =
        Parallel.Sharded.alloc_config ~shards ~ops_per_shard:steps
          ~slots_per_shard:64 ~slot_words:8 ~seed:ctx.seed ()
      in
      let pcfg =
        Parallel.Sharded.paging_config ~shards ~refs_per_shard:steps
          ~frames_per_shard:6 ~pages_per_shard:12 ~seed:ctx.seed ()
      in
      let a_sink, a_ref = collector () in
      let (_ : Parallel.Sharded.alloc_report) =
        Parallel.Sharded.run_alloc ~obs:a_sink ~domains:1 acfg
      in
      let p_sink, p_ref = collector () in
      let (_ : Parallel.Sharded.paging_report) =
        Parallel.Sharded.run_paging ~obs:p_sink ~domains:1 pcfg
      in
      tally "alloc" (a_ref ())
        (supervised (fun ~obs ->
             Parallel.Sharded.run_alloc_supervised ~obs ~kills
               ~checkpoint_every:32 ~domains acfg));
      tally "paging" (p_ref ())
        (supervised (fun ~obs ->
             Parallel.Sharded.run_paging_supervised ~obs ~kills
               ~checkpoint_every:32 ~domains pcfg));
      Cell.count ctx "kills" (List.length kills);
      Cell.count ctx "crashes" !crashes;
      Cell.count ctx "restarts" !restarts;
      Cell.count ctx "checkpoints" !checkpoints;
      Cell.count ctx "escalated" !escalated;
      Cell.count ctx "diverged" (List.length !diverged);
      if !diverged <> [] then
        Error
          (Printf.sprintf
             "recovered %s trace diverged from the fault-free reference"
             (String.concat "+" (List.rev !diverged)))
      else Ok ()
    end
  in
  {
    Cell.id = "par_chaos";
    doc =
      "supervised sharded engines under a seeded kill schedule (X11's \
       family): recovery must reproduce the fault-free trace";
    params =
      [
        ("fault_rate", "probability of each potential shard kill (0.5)");
        ("domains", "execution width; never changes results (1)");
        ("shards", "workload partitions (4)");
        ("steps", "workload steps per shard (600; 150 quick)");
      ];
    run;
  }

let all =
  [
    paging_cell;
    placement_cell;
    replacement_cell;
    multiprog_cell;
    device_cell;
    resilience_cell;
    frag_unit_cell;
    fss_cell;
    par_alloc_cell;
    par_paging_cell;
    par_chaos_cell;
  ]

let find id = List.find_opt (fun (c : Cell.spec) -> c.id = id) all

let ids = List.map (fun (c : Cell.spec) -> c.id) all
