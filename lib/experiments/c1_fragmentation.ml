type row = {
  discipline : string;
  claimed : int;
  live : int;
  wasted_fraction : float;
  detail : string;
}

let page_sizes = [ 64; 256; 1024; 4096 ]

let mix rng ~steps =
  Workload.Alloc_stream.live_stream rng ~steps
    ~size:(Workload.Alloc_stream.Geometric { mean = 90.; min_size = 1 })
    ~target_live:300

(* The live set at the end of the stream, as (id, size). *)
let replay events ~on_alloc ~on_free =
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } -> on_alloc ~id ~size
      | Workload.Alloc_stream.Free { id } -> on_free ~id)
    events

let boundary_tag_row events =
  let words = 1 lsl 17 in
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a = Freelist.Allocator.create mem ~base:0 ~len:words ~policy:Freelist.Policy.Best_fit in
  let table = Hashtbl.create 512 in
  let requested = Hashtbl.create 512 in
  let live = ref 0 in
  replay events
    ~on_alloc:(fun ~id ~size ->
      match Freelist.Allocator.alloc a size with
      | Some addr ->
        Hashtbl.replace table id addr;
        Hashtbl.replace requested id size;
        live := !live + size
      | None -> ())
    ~on_free:(fun ~id ->
      match Hashtbl.find_opt table id with
      | Some addr ->
        Freelist.Allocator.free a addr;
        live := !live - Hashtbl.find requested id;
        Hashtbl.remove table id;
        Hashtbl.remove requested id
      | None -> ());
  let free_sizes = Freelist.Allocator.free_block_sizes a in
  let external_frag = Metrics.Fragmentation.external_of_free_blocks free_sizes in
  (* Claimed = live payloads + tag overhead; waste = claimed - requested,
     plus the shattering of what remains free. *)
  let claimed = words - Freelist.Allocator.free_words a in
  {
    discipline = "variable (best-fit)";
    claimed;
    live = !live;
    wasted_fraction = float_of_int (claimed - !live) /. float_of_int claimed;
    detail =
      Printf.sprintf "external frag %s over %d holes"
        (Metrics.Table.fmt_pct external_frag) (List.length free_sizes);
  }

let buddy_row events =
  let b = Freelist.Buddy.create ~words:(1 lsl 17) in
  let table = Hashtbl.create 512 in
  replay events
    ~on_alloc:(fun ~id ~size ->
      match Freelist.Buddy.alloc b size with
      | Some off -> Hashtbl.replace table id off
      | None -> ())
    ~on_free:(fun ~id ->
      match Hashtbl.find_opt table id with
      | Some off ->
        Freelist.Buddy.free b off;
        Hashtbl.remove table id
      | None -> ());
  let claimed = Freelist.Buddy.live_granted b in
  let live = Freelist.Buddy.live_requested b in
  {
    discipline = "buddy";
    claimed;
    live;
    wasted_fraction =
      (if claimed = 0 then 0. else float_of_int (claimed - live) /. float_of_int claimed);
    detail = "power-of-two rounding";
  }

let paged_row events page_size =
  let internal = Metrics.Fragmentation.Internal.create ~page_size in
  let requested = Hashtbl.create 512 in
  replay events
    ~on_alloc:(fun ~id ~size ->
      Hashtbl.replace requested id size;
      Metrics.Fragmentation.Internal.record internal ~requested:size)
    ~on_free:(fun ~id ->
      match Hashtbl.find_opt requested id with
      | Some size ->
        Metrics.Fragmentation.Internal.release internal ~requested:size;
        Hashtbl.remove requested id
      | None -> ());
  {
    discipline = Printf.sprintf "paged (%d-word frames)" page_size;
    claimed = Metrics.Fragmentation.Internal.granted_live internal;
    live = Metrics.Fragmentation.Internal.requested_live internal;
    wasted_fraction = Metrics.Fragmentation.Internal.waste_fraction internal;
    detail = "internal (within pages)";
  }

let measure ?(quick = false) ?seed () =
  let rng = Sim.Rng.derive ?override:seed 2024 in
  let events = mix rng ~steps:(if quick then 2_000 else 20_000) in
  (boundary_tag_row events :: buddy_row events
   :: List.map (paged_row events) page_sizes)

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== C1: fragmentation is obscured, not prevented, by paging ==";
  print_endline "(one allocation mix; waste as a fraction of storage claimed)\n";
  Metrics.Table.print
    ~headers:[ "discipline"; "claimed (words)"; "live (words)"; "wasted"; "where the waste lives" ]
    (List.map
       (fun r ->
         [
           r.discipline;
           string_of_int r.claimed;
           string_of_int r.live;
           Metrics.Table.fmt_pct r.wasted_fraction;
           r.detail;
         ])
       rows);
  print_newline ();
  print_string
    (Metrics.Chart.bars (List.map (fun r -> (r.discipline, 100. *. r.wasted_fraction)) rows));
  print_newline ()
