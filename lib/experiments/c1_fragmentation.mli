(** Experiment C1 — paging obscures, not prevents, fragmentation
    (conclusions, v).

    One allocation mix (small-skewed object sizes under steady-state
    churn) is served three ways: by the variable-unit boundary-tag
    allocator (waste appears as {e external} fragmentation — shattered
    holes), by the buddy system (rounding waste), and by paging at
    several frame sizes (waste appears as {e internal} fragmentation —
    partly-used frames).  Reported as wasted fraction of the storage
    actually claimed, so the disciplines are directly comparable. *)

type row = {
  discipline : string;
  claimed : int;  (** words of store claimed from the system *)
  live : int;  (** words actually requested and live *)
  wasted_fraction : float;
  detail : string;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
