(* X11 (extension): sharded multicore execution, supervised.

   The paper's systems serialized the supervisor; this extension asks
   what the simulator itself can say when the machine has several
   processors.  The answer implemented here: shard the workload, give
   every shard its own clocked state, and make the merged observable
   record a pure function of the workload — so the domain count is an
   execution width, never an input.  The subject run always goes
   through the supervisor (bounded restarts over crash-consistent
   checkpoints), optionally under an injected kill schedule; the
   experiment proves the contract on the spot by comparing the
   subject's merged trace against an unsupervised width-1 reference,
   byte for byte.  Recovery must be invisible in the engine trace —
   crashes, restarts and checkpoints appear only in the separate
   supervision stream. *)

let collector () =
  let buf = ref [] in
  let sink = Obs.Sink.collect (fun ev -> buf := ev :: !buf) in
  (sink, fun () -> Array.of_list (List.rev !buf))

let collect_alloc ~domains cfg =
  let sink, contents = collector () in
  let report = Parallel.Sharded.run_alloc ~obs:sink ~domains cfg in
  (report, contents ())

let collect_paging ~domains cfg =
  let sink, contents = collector () in
  let report = Parallel.Sharded.run_paging ~obs:sink ~domains cfg in
  (report, contents ())

let supervised_alloc ~domains ~kills cfg =
  let sink, contents = collector () in
  let sup, sup_contents = collector () in
  match
    Parallel.Sharded.run_alloc_supervised ~obs:sink ~supervision:sup ~kills
      ~checkpoint_every:256 ~domains cfg
  with
  | Ok (_, outcomes) -> Ok (contents (), outcomes, sup_contents ())
  | Error f -> Error f

let supervised_paging ~domains ~kills cfg =
  let sink, contents = collector () in
  let sup, sup_contents = collector () in
  match
    Parallel.Sharded.run_paging_supervised ~obs:sink ~supervision:sup ~kills
      ~checkpoint_every:256 ~domains cfg
  with
  | Ok (_, outcomes) -> Ok (contents (), outcomes, sup_contents ())
  | Error f -> Error f

(* The determinism check is byte-for-byte on the wire encoding — the
   same bytes a --trace file would hold. *)
let traces_equal a b =
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri
      (fun i ev ->
        if not (String.equal (Obs.Event.to_json ev) (Obs.Event.to_json b.(i)))
        then ok := false)
      a;
    !ok
  end

let emit_segment ?seed ~config ~run ~offset obs events =
  if Obs.Sink.is_active obs then begin
    let s = Obs.Sink.segment ?seed ~config ~run ~offset obs in
    Array.iter (fun ev -> Obs.Sink.emit s ev) events
  end

let max_t events =
  Array.fold_left (fun acc (ev : Obs.Event.t) -> max acc ev.t_us) 0 events

(* One of the two subject runs: either the recovered streams and
   per-shard outcomes, or the typed failure a shard escalated with. *)
type 'r subject = ('r, Resilience.Failure.t) result

let fault_columns (subject : _ subject) shard =
  match subject with
  | Error _ -> [ "-"; "-"; "-" ]
  | Ok (_, outcomes, _) ->
    let o : Parallel.Supervisor.outcome = outcomes.(shard) in
    [
      string_of_int o.o_crashes;
      string_of_int o.o_restarts;
      string_of_int o.o_checkpoints;
    ]

let verdict name (subject : _ subject) ~reference =
  match subject with
  | Error f ->
    Printf.printf "%-44s ESCALATED: %s\n" name (Resilience.Failure.to_string f)
  | Ok (events, _, _) ->
    Printf.printf "%-44s %s (%d events)\n" name
      (if traces_equal reference events then "identical" else "DIVERGED")
      (Array.length reference)

let supervision_line name (subject : _ subject) =
  match subject with
  | Error _ -> Printf.printf "%-8s escalated\n" name
  | Ok (_, outcomes, sup) ->
    let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outcomes in
    Printf.printf "%-8s crashes %d, restarts %d, checkpoints %d (%d supervision events)\n"
      name
      (sum (fun (o : Parallel.Supervisor.outcome) -> o.o_crashes))
      (sum (fun (o : Parallel.Supervisor.outcome) -> o.o_restarts))
      (sum (fun (o : Parallel.Supervisor.outcome) -> o.o_checkpoints))
      (Array.length sup)

let run ?(quick = false) ?(obs = Obs.Sink.null) ?seed ?(domains = 1)
    ?(kills = []) () =
  if domains < 1 then invalid_arg "X11_parallel.run: domains < 1";
  (* seed 0 is the no-override stream (0 lxor site = site). *)
  let master = match seed with Some s -> s | None -> 0 in
  let alloc_cfg =
    Parallel.Sharded.alloc_config
      ~ops_per_shard:(if quick then 4_000 else 20_000)
      ~seed:master ()
  in
  let paging_cfg =
    Parallel.Sharded.paging_config
      ~refs_per_shard:(if quick then 2_000 else 8_000)
      ~seed:master ()
  in
  (* Unsupervised width-1 reference, then the supervised subject at the
     requested width under the kill schedule; the contract says the
     merged engine streams and every count must match exactly. *)
  let a_ref, a_ref_ev = collect_alloc ~domains:1 alloc_cfg in
  let a_sub = supervised_alloc ~domains ~kills alloc_cfg in
  let p_ref, p_ref_ev = collect_paging ~domains:1 paging_cfg in
  let p_sub = supervised_paging ~domains ~kills paging_cfg in
  print_endline "== X11: sharded multicore execution ==";
  Printf.printf
    "(%d alloc shards, %d paging shards; shard count fixes the workload, \
     domains only the width; subject runs supervised%s)\n\n"
    alloc_cfg.Parallel.Sharded.a_shards paging_cfg.Parallel.Sharded.p_shards
    (if kills = [] then ""
     else Printf.sprintf ", %d injected kill(s)" (List.length kills));
  print_endline "-- lock-free fixed-size allocation (free stack + per-shard magazines) --";
  Metrics.Table.print
    ~headers:
      [ "shard"; "allocs"; "frees"; "denied"; "refills"; "flushes"; "live";
        "t (ms)"; "crashes"; "restarts"; "ckpts" ]
    (Array.to_list
       (Array.map
          (fun (s : Parallel.Sharded.shard_alloc) ->
            [
              string_of_int s.sa_shard;
              string_of_int s.sa_allocs;
              string_of_int s.sa_frees;
              string_of_int s.sa_failures;
              string_of_int s.sa_refills;
              string_of_int s.sa_flushes;
              string_of_int s.sa_live;
              Printf.sprintf "%.1f" (float_of_int s.sa_elapsed_us /. 1000.);
            ]
            @ fault_columns a_sub s.sa_shard)
          a_ref.Parallel.Sharded.ar_shards));
  print_newline ();
  print_endline "-- sharded demand paging (one engine per shard, private clocks) --";
  Metrics.Table.print
    ~headers:
      [ "shard"; "refs"; "faults"; "writebacks"; "t (ms)"; "crashes";
        "restarts"; "ckpts" ]
    (Array.to_list
       (Array.map
          (fun (s : Parallel.Sharded.shard_paging) ->
            [
              string_of_int s.sp_shard;
              string_of_int s.sp_refs;
              string_of_int s.sp_faults;
              string_of_int s.sp_writebacks;
              Printf.sprintf "%.1f" (float_of_int s.sp_elapsed_us /. 1000.);
            ]
            @ fault_columns p_sub s.sp_shard)
          p_ref.Parallel.Sharded.pr_shards));
  print_newline ();
  print_endline "-- supervision: bounded restarts over crash-consistent checkpoints --";
  supervision_line "alloc" a_sub;
  supervision_line "paging" p_sub;
  print_newline ();
  print_endline
    "-- determinism contract: recovered trace vs width-1 unsupervised reference --";
  verdict "alloc merged trace:" a_sub ~reference:a_ref_ev;
  verdict "paging merged trace:" p_sub ~reference:p_ref_ev;
  print_newline ();
  (* Splice the streams into the experiment's sink: engine traces as
     runs 0-1, supervision streams (a different vocabulary, so their
     own segments) as runs 2-3, each shifted past everything before
     it.  An escalated run emitted nothing, so emission is all-or-none:
     a partial trace would not re-check. *)
  (match (a_sub, p_sub) with
   | Ok (a_sub_ev, _, a_sup_ev), Ok (p_sub_ev, _, p_sup_ev) ->
     let off1 = max_t a_sub_ev + 1 in
     let off2 = off1 + max_t p_sub_ev + 1 in
     let off3 = off2 + max_t a_sup_ev + 1 in
     emit_segment ?seed
       ~config:
         (Printf.sprintf "x11 par_alloc shards=%d"
            alloc_cfg.Parallel.Sharded.a_shards)
       ~run:0 ~offset:0 obs a_sub_ev;
     emit_segment ?seed
       ~config:
         (Printf.sprintf "x11 par_paging shards=%d"
            paging_cfg.Parallel.Sharded.p_shards)
       ~run:1 ~offset:off1 obs p_sub_ev;
     emit_segment ?seed ~config:"x11 par_alloc supervision" ~run:2 ~offset:off2
       obs a_sup_ev;
     emit_segment ?seed ~config:"x11 par_paging supervision" ~run:3 ~offset:off3
       obs p_sup_ev
   | _ -> ());
  (match (a_sub, p_sub) with Ok _, Ok _ -> true | _ -> false)
