(* X11 (extension): sharded multicore execution.

   The paper's systems serialized the supervisor; this extension asks
   what the simulator itself can say when the machine has several
   processors.  The answer implemented here: shard the workload, give
   every shard its own clocked state, and make the merged observable
   record a pure function of the workload — so the domain count is an
   execution width, never an input.  The experiment runs the two
   sharded engines, prints per-shard accounting, and proves the
   contract on the spot by comparing the merged trace at the requested
   width against the width-1 reference, byte for byte. *)

let collector () =
  let buf = ref [] in
  let sink = Obs.Sink.collect (fun ev -> buf := ev :: !buf) in
  (sink, fun () -> Array.of_list (List.rev !buf))

let collect_alloc ~domains cfg =
  let sink, contents = collector () in
  let report = Parallel.Sharded.run_alloc ~obs:sink ~domains cfg in
  (report, contents ())

let collect_paging ~domains cfg =
  let sink, contents = collector () in
  let report = Parallel.Sharded.run_paging ~obs:sink ~domains cfg in
  (report, contents ())

(* The determinism check is byte-for-byte on the wire encoding — the
   same bytes a --trace file would hold. *)
let traces_equal a b =
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri
      (fun i ev ->
        if not (String.equal (Obs.Event.to_json ev) (Obs.Event.to_json b.(i)))
        then ok := false)
      a;
    !ok
  end

let emit_segment ?seed ~config ~run ~offset obs events =
  if Obs.Sink.is_active obs then begin
    let s = Obs.Sink.segment ?seed ~config ~run ~offset obs in
    Array.iter (fun ev -> Obs.Sink.emit s ev) events
  end

let verdict name equal events =
  Printf.printf "%-44s %s (%d events)\n" name
    (if equal then "identical" else "DIVERGED")
    events

let run ?(quick = false) ?(obs = Obs.Sink.null) ?seed ?(domains = 1) () =
  if domains < 1 then invalid_arg "X11_parallel.run: domains < 1";
  (* seed 0 is the no-override stream (0 lxor site = site). *)
  let master = match seed with Some s -> s | None -> 0 in
  let alloc_cfg =
    Parallel.Sharded.alloc_config
      ~ops_per_shard:(if quick then 4_000 else 20_000)
      ~seed:master ()
  in
  let paging_cfg =
    Parallel.Sharded.paging_config
      ~refs_per_shard:(if quick then 2_000 else 8_000)
      ~seed:master ()
  in
  (* Width-1 reference, then the requested width; the contract says the
     merged streams and every count must match exactly. *)
  let a_ref, a_ref_ev = collect_alloc ~domains:1 alloc_cfg in
  let _a_sub, a_sub_ev = collect_alloc ~domains alloc_cfg in
  let p_ref, p_ref_ev = collect_paging ~domains:1 paging_cfg in
  let _p_sub, p_sub_ev = collect_paging ~domains paging_cfg in
  print_endline "== X11: sharded multicore execution ==";
  Printf.printf
    "(%d alloc shards, %d paging shards; shard count fixes the workload, \
     domains only the width)\n\n"
    alloc_cfg.Parallel.Sharded.a_shards paging_cfg.Parallel.Sharded.p_shards;
  print_endline "-- lock-free fixed-size allocation (free stack + per-shard magazines) --";
  Metrics.Table.print
    ~headers:[ "shard"; "allocs"; "frees"; "denied"; "refills"; "flushes"; "live"; "t (ms)" ]
    (Array.to_list
       (Array.map
          (fun (s : Parallel.Sharded.shard_alloc) ->
            [
              string_of_int s.sa_shard;
              string_of_int s.sa_allocs;
              string_of_int s.sa_frees;
              string_of_int s.sa_failures;
              string_of_int s.sa_refills;
              string_of_int s.sa_flushes;
              string_of_int s.sa_live;
              Printf.sprintf "%.1f" (float_of_int s.sa_elapsed_us /. 1000.);
            ])
          a_ref.Parallel.Sharded.ar_shards));
  print_newline ();
  print_endline "-- sharded demand paging (one engine per shard, private clocks) --";
  Metrics.Table.print
    ~headers:[ "shard"; "refs"; "faults"; "writebacks"; "t (ms)" ]
    (Array.to_list
       (Array.map
          (fun (s : Parallel.Sharded.shard_paging) ->
            [
              string_of_int s.sp_shard;
              string_of_int s.sp_refs;
              string_of_int s.sp_faults;
              string_of_int s.sp_writebacks;
              Printf.sprintf "%.1f" (float_of_int s.sp_elapsed_us /. 1000.);
            ])
          p_ref.Parallel.Sharded.pr_shards));
  print_newline ();
  print_endline "-- determinism contract: merged trace vs width-1 reference --";
  verdict "alloc merged trace:" (traces_equal a_ref_ev a_sub_ev)
    (Array.length a_ref_ev);
  verdict "paging merged trace:" (traces_equal p_ref_ev p_sub_ev)
    (Array.length p_ref_ev);
  print_newline ();
  (* Splice the two merged streams into the experiment's sink as two
     run segments, paging shifted past the alloc shards' clocks. *)
  let alloc_end =
    Array.fold_left
      (fun acc (s : Parallel.Sharded.shard_alloc) -> max acc s.sa_elapsed_us)
      0 a_ref.Parallel.Sharded.ar_shards
  in
  emit_segment ?seed
    ~config:
      (Printf.sprintf "x11 par_alloc shards=%d"
         alloc_cfg.Parallel.Sharded.a_shards)
    ~run:0 ~offset:0 obs a_ref_ev;
  emit_segment ?seed
    ~config:
      (Printf.sprintf "x11 par_paging shards=%d"
         paging_cfg.Parallel.Sharded.p_shards)
    ~run:1 ~offset:(alloc_end + 1) obs p_ref_ev
