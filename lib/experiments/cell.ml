(* Parameterizable experiment entry points ("cells") for campaign
   sweeps: a cell kind names a simulation, its parameters arrive as
   string bindings from a sweep spec, and its results land in a metrics
   registry (exported as one dsas-metrics/1 JSON per cell).  Parameter
   parsing is strict — an unknown or malformed binding is an error, so
   a typo in a spec fails the cell loudly instead of silently running
   defaults. *)

type ctx = {
  params : (string * string) list;
  seed : int;
  quick : bool;
  reg : Obs.Registry.t;
  obs : Obs.Sink.t;
}

type spec = {
  id : string;
  doc : string;
  params : (string * string) list;  (* name, doc (with default) *)
  run : ctx -> (unit, string) result;
}

let check_known (ctx : ctx) known =
  let unknown =
    List.filter (fun (name, _) -> not (List.mem name known)) ctx.params
  in
  match unknown with
  | [] -> Ok ()
  | (name, _) :: _ ->
    Error
      (Printf.sprintf "unknown parameter %S; this cell understands: %s" name
         (String.concat ", " known))

let get (ctx : ctx) name ~default =
  match List.assoc_opt name ctx.params with Some v -> v | None -> default

let get_int (ctx : ctx) name ~default =
  match List.assoc_opt name ctx.params with
  | None -> Ok default
  | Some v ->
    (match int_of_string_opt v with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "parameter %S: %S is not an integer" name v))

let get_float (ctx : ctx) name ~default =
  match List.assoc_opt name ctx.params with
  | None -> Ok default
  | Some v ->
    (match float_of_string_opt v with
     | Some f -> Ok f
     | None -> Error (Printf.sprintf "parameter %S: %S is not a number" name v))

let get_enum ctx name ~default ~values =
  let v = get ctx name ~default in
  if List.mem v values then Ok v
  else
    Error
      (Printf.sprintf "parameter %S: %S is not one of %s" name v
         (String.concat ", " values))

let require_positive name n =
  if n > 0 then Ok n else Error (Printf.sprintf "parameter %S must be positive (got %d)" name n)

(* -- registry shorthands: cells mostly record final gauges/counts -- *)

let gauge (ctx : ctx) name v = Obs.Registry.set (Obs.Registry.gauge ctx.reg name) v

let count (ctx : ctx) name n =
  Obs.Registry.incr ~by:n (Obs.Registry.counter ctx.reg name)

(* One-line config summary stamped into the metrics meta and the trace
   run_start boundary, so every artifact identifies its cell. *)
let config_summary ~cell (ctx : ctx) =
  let params =
    List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ctx.params
  in
  String.concat " "
    ((Printf.sprintf "cell=%s" cell :: params)
     @ [ Printf.sprintf "seed=%d" ctx.seed; Printf.sprintf "quick=%b" ctx.quick ])

let stamp ~cell (ctx : ctx) =
  Obs.Registry.set_meta ctx.reg
    ([ ("cell", cell); ("seed", string_of_int ctx.seed);
       ("quick", string_of_bool ctx.quick) ]
     @ ctx.params)
