(** Extension X6 — sizing storage by the space-time product.

    The paper holds up the space-time product as the significant measure
    of a fetch strategy.  Taken seriously, it is also a {e sizing rule}:
    run a program's reference string against a range of storage
    allotments; too few frames and the time term (fault delays)
    explodes, too many and the space term is waste; the product has an
    interior minimum that says how much working storage the program is
    worth.  The experiment draws the curve for programs of different
    locality and shows the optimum track the program's working-set size. *)

type row = {
  program : string;
  frames : int;
  faults : int;
  elapsed_us : int;
  space_time : float;
  optimal : bool;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
