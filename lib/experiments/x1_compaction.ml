type row = {
  variant : string;
  placed : int;
  failed : int;
  compactions : int;
  words_moved : int;
  move_time_us : int;
  final_frag : float;
}

let words = 1 lsl 15

(* Steady small-object churn with a large request every [period]
   events: the requests compaction exists for. *)
let stream rng ~steps ~period =
  let base =
    Workload.Alloc_stream.live_stream rng ~steps
      ~size:(Workload.Alloc_stream.Geometric { mean = 30.; min_size = 1 })
      ~target_live:(words / 45)
  in
  List.concat
    (List.mapi
       (fun i e ->
         if i > 0 && i mod period = 0 then
           [ Workload.Alloc_stream.Alloc { id = 1_000_000 + i; size = words / 12 }; e ]
         else [ e ])
       base)

let serve ?(obs = Obs.Sink.null) ~compacting events =
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a =
    Freelist.Allocator.create ~obs mem ~base:0 ~len:words ~policy:Freelist.Policy.Best_fit
  in
  let clock = Sim.Clock.create () in
  let channel = Memstore.Channel.create clock ~word_ns:500 in
  let handles = Freelist.Handle_table.create () in
  let by_id = Hashtbl.create 512 in
  let placed = ref 0 and failed = ref 0 and compactions = ref 0 in
  let try_alloc size =
    match Freelist.Allocator.alloc a size with
    | Some addr -> Some addr
    | None ->
      if compacting then begin
        incr compactions;
        Freelist.Allocator.compact a channel ~relocate:(fun old_addr new_addr ->
            Freelist.Handle_table.relocate handles ~old_addr ~new_addr);
        Freelist.Allocator.alloc a size
      end
      else None
  in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match try_alloc size with
         | Some addr ->
           incr placed;
           Hashtbl.replace by_id id (Freelist.Handle_table.register handles addr)
         | None -> incr failed)
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt by_id id with
         | Some h ->
           Freelist.Allocator.free a (Freelist.Handle_table.deref handles h);
           Freelist.Handle_table.release handles h;
           Hashtbl.remove by_id id
         | None -> ()))
    events;
  {
    variant = (if compacting then "best-fit + compaction" else "best-fit, no compaction");
    placed = !placed;
    failed = !failed;
    compactions = !compactions;
    words_moved = Memstore.Channel.words_moved channel;
    move_time_us = Memstore.Channel.time_spent_us channel;
    final_frag =
      Metrics.Fragmentation.external_of_free_blocks (Freelist.Allocator.free_block_sizes a);
  }

let serve_two_ends ?(obs = Obs.Sink.null) events =
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a =
    Freelist.Allocator.create ~obs mem ~base:0 ~len:words
      ~policy:(Freelist.Policy.Two_ends { small_max = 128 })
  in
  let by_id = Hashtbl.create 512 in
  let placed = ref 0 and failed = ref 0 in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match Freelist.Allocator.alloc a size with
         | Some addr ->
           incr placed;
           Hashtbl.replace by_id id addr
         | None -> incr failed)
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt by_id id with
         | Some addr ->
           Freelist.Allocator.free a addr;
           Hashtbl.remove by_id id
         | None -> ()))
    events;
  {
    variant = "two-ends, no compaction";
    placed = !placed;
    failed = !failed;
    compactions = 0;
    words_moved = 0;
    move_time_us = 0;
    final_frag =
      Metrics.Fragmentation.external_of_free_blocks (Freelist.Allocator.free_block_sizes a);
  }

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let steps = if quick then 2_000 else 20_000 in
  let events () = stream (Sim.Rng.derive ?override:seed 313) ~steps ~period:200 in
  (* Clockless allocators stamp events with their operation counter; a
     compacting alloc can retry, so each variant advances time by at
     most twice its event count.  Shift keeps the spliced stream
     monotone. *)
  let t_base = ref 0 in
  let runs = ref 0 in
  let spliced label serve_variant =
    let evs = events () in
    let row =
      serve_variant
        ~obs:
          (Obs.Sink.segment ?seed
             ~config:("x1 variant=" ^ label)
             ~run:!runs ~offset:!t_base obs)
        evs
    in
    incr runs;
    t_base := !t_base + (2 * List.length evs);
    row
  in
  [
    spliced "no-compaction" (fun ~obs evs -> serve ~obs ~compacting:false evs);
    spliced "compacting" (fun ~obs evs -> serve ~obs ~compacting:true evs);
    spliced "two-ends" (fun ~obs evs -> serve_two_ends ~obs evs);
  ]

let run ?quick ?obs ?seed () =
  let rows = measure ?quick ?obs ?seed () in
  print_endline "== X1 (extension): compaction ablation ==";
  print_endline "(small-object churn + periodic large requests; best fit 32K words)\n";
  Metrics.Table.print
    ~headers:[ "variant"; "placed"; "failed"; "compactions"; "words moved"; "move time (us)"; "final frag" ]
    (List.map
       (fun r ->
         [
           r.variant;
           string_of_int r.placed;
           string_of_int r.failed;
           string_of_int r.compactions;
           string_of_int r.words_moved;
           string_of_int r.move_time_us;
           Metrics.Table.fmt_pct r.final_frag;
         ])
       rows);
  print_newline ()
