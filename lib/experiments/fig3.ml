type row = {
  device : string;
  fetch_us : int;
  active : float;
  waiting : float;
  waiting_fraction : float;
  profile : string;  (* the Fig. 3 silhouette for this run *)
}

let page_size = 256

let frames = 12

(* Fetch-speed sweep: from core-to-core speeds through drum to disk. *)
let devices =
  [
    Memstore.Device.custom ~label:"fast-drum" ~latency_us:1_000 ~word_ns:2_000;
    Memstore.Device.drum;
    Memstore.Device.custom ~label:"slow-drum" ~latency_us:20_000 ~word_ns:8_000;
    Memstore.Device.disk;
  ]

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let refs = if quick then 2_000 else 20_000 in
  let rng = Sim.Rng.derive ?override:seed 42 in
  let pages = 24 in
  let extent = pages * page_size in
  (* Page-grained phases: each phase works a 6-page set that fits in
     core, so faults cluster at phase changes — the bursts the figure
     shades. *)
  let page_trace =
    Workload.Trace.working_set_phases rng ~length:refs ~extent:pages ~set_size:6
      ~phase_length:(refs / 8) ~locality:0.98
  in
  let trace = Array.map (fun p -> (p * page_size) + Sim.Rng.int rng page_size) page_trace in
  (* Each device run starts a fresh clock; shifting by the accumulated
     elapsed time splices the runs into one monotone event stream, and
     the segment boundary tells `dsas_sim check` where engines restart. *)
  let t_base = ref 0 in
  let runs = ref 0 in
  let seg ~config =
    let s = Obs.Sink.segment ?seed ~config ~run:!runs ~offset:!t_base obs in
    incr runs;
    s
  in
  let one device =
    let clock = Sim.Clock.create () in
    let core =
      Memstore.Level.make clock Memstore.Device.core ~name:"core"
        ~words:(frames * page_size)
    in
    let backing = Memstore.Level.make clock device ~name:device.Memstore.Device.label ~words:extent in
    let engine =
      Paging.Demand.create
        ~obs:(seg ~config:(Printf.sprintf "fig3 device=%s" device.Memstore.Device.label))
        {
          Paging.Demand.page_size;
          frames;
          pages = extent / page_size;
          core;
          backing;
          policy = Paging.Replacement.lru ();
          tlb = None;
          compute_us_per_ref = 50;
        }
    in
    Paging.Demand.run engine trace;
    t_base := !t_base + Sim.Clock.now clock;
    let st = Paging.Demand.space_time engine in
    {
      device = device.Memstore.Device.label;
      fetch_us = Memstore.Device.transfer_us device ~words:page_size;
      active = Metrics.Space_time.active st;
      waiting = Metrics.Space_time.waiting st;
      waiting_fraction = Metrics.Space_time.waiting_fraction st;
      profile = Metrics.Timeline.render ~width:64 ~height:8 (Paging.Demand.timeline engine);
    }
  in
  List.map one devices

let run ?quick ?obs ?seed () =
  let rows = measure ?quick ?obs ?seed () in
  print_endline "== F3: space-time product under demand paging ==";
  print_endline "(space occupied while awaiting pages vs while executing)\n";
  Metrics.Table.print
    ~headers:[ "backing store"; "page fetch (us)"; "active ST (word-us)"; "waiting ST"; "waiting %" ]
    (List.map
       (fun r ->
         [
           r.device;
           string_of_int r.fetch_us;
           Printf.sprintf "%.3g" r.active;
           Printf.sprintf "%.3g" r.waiting;
           Metrics.Table.fmt_pct r.waiting_fraction;
         ])
       rows);
  print_newline ();
  print_string
    (Metrics.Chart.stacked_bars ~legend:("active space-time", "waiting space-time")
       (List.map (fun r -> (r.device, r.active, r.waiting)) rows));
  (* The figure itself, for the slowest and fastest stores. *)
  (match rows with
   | fastest :: _ ->
     Printf.printf "\ntime profile, %s backing store:\n%s" fastest.device fastest.profile
   | [] -> ());
  (match List.rev rows with
   | slowest :: _ ->
     Printf.printf "\ntime profile, %s backing store:\n%s" slowest.device slowest.profile
   | [] -> ());
  print_newline ()
