(** Experiment A — the appendix survey, measured (A.1 - A.7).

    Prints the four-characteristic classification of every appendix
    machine, each machine's survey notes, and the headline numbers from
    running each on a signature workload scaled to its own working
    storage. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
