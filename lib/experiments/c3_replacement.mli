(** Experiment C3 — replacement strategies (after Belady [1]).

    Fault-rate-versus-memory-size curves for every implemented policy —
    FIFO, LRU, CLOCK, RANDOM, NRU, LFU, the ATLAS learning program, the
    M44 class-random rule, working set — against Belady's unrealizable
    OPT, on three locality structures (cyclic loop, working-set phases,
    Zipf popularity).  Also reproduces Belady's anomaly: FIFO faulting
    more with more memory. *)

type curve = {
  trace_name : string;
  policy : string;
  points : (int * float) list;  (** frames, fault rate *)
}

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> curve list
(** With a sink, every simulated run reports fault / cold-fault /
    eviction events; runs are spliced with {!Obs.Sink.shift} (one unit
    of time per reference) so timestamps stay monotone. *)

val anomaly_rows : unit -> (int * int * int) list
(** (frames, FIFO faults, LRU faults) on the canonical 12-reference
    string. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
