(** Experiment C7 — multiprogramming overlaps fetches with execution
    (ATLAS A.1, M44 A.2).

    Processor utilization as the degree of multiprogramming k rises,
    under a fast and a slow backing store, in two regimes: ample store
    (frames scale with k — utilization climbs toward the compute bound)
    and fixed store (adding jobs shrinks each job's share until the
    system thrashes and utilization falls again). *)

type row = {
  jobs : int;
  fetch_us : int;
  regime : string;
  cpu_utilization : float;
  total_faults : int;
  elapsed_us : int;
}

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> row list
(** With a sink, each scheduler run reports job_start / job_stop and
    fault / eviction events; runs are spliced with {!Obs.Sink.shift} by
    accumulated elapsed time so timestamps stay monotone. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
