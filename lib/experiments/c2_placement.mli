(** Experiment C2 — placement strategies for variable units.

    Each placement policy serves the same steady-state allocation
    streams (a small-skewed mix and a bimodal small/large mix) in a
    fixed store.  Reported: external fragmentation of the final state,
    free-list search length (the bookkeeping cost the paper trades
    against fragmentation), and how many requests could not be placed.
    The paper's candidates: best fit ("common and frequently
    satisfactory") and two-ends ("involves less bookkeeping"). *)

type row = {
  policy : string;
  mix : string;
  external_frag : float;
  holes : int;
  mean_search : float;
  failures : int;
  largest_free : int;
}

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> row list
(** With a sink, each allocator run reports alloc / free / split /
    coalesce events; runs are spliced with {!Obs.Sink.shift} so
    timestamps stay monotone. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
