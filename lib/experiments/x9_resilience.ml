(* X9 (extension): end-to-end failure semantics and load control.

   Two sweeps.  First, the multiprogrammed set from C7/X8d run over a
   faulty drum with [Fail] escalation: terminal fetch failures abort
   and restart jobs (bounded), and the space-time-product controller
   sheds/re-admits jobs as the set thrashes.  Second, the write-side
   fault accounting of the demand engine: with write faults off, every
   write attempt's skipped roll is counted, so the fault-rate
   arithmetic of the x8 tables stays honest. *)

type row = {
  error_prob : float;
  policy : string;
  cpu_utilization : float;
  elapsed_us : int;
  total_faults : int;
  restarts : int;
  jobs_failed : int;
  sheds : int;
  admits : int;
  injected : int;
  failed : int;
}

type write_row = {
  write_error_prob : float;
  writebacks : int;
  write_injected : int;
  write_rolls_skipped : int;
  mirror_fetches : int;
  terminal_failures : int;
}

let frames = 16

let pages_per_job = 16

let jobs_mix ?seed ~refs_per_job () =
  let rng = Sim.Rng.derive ?override:seed 909 in
  Workload.Job.mix rng ~jobs:6 ~refs_per_job ~pages_per_job ~locality:0.9
    ~compute_us_per_ref:60

let fault_for ~error_prob =
  if error_prob > 0. then
    Some
      (Device.Fault.config ~read_error_prob:error_prob ~permanent_prob:0.25
         ~max_retries:2 ~on_exhausted:Device.Fault.Fail ())
  else None

let policies = [ "none"; "space-time" ]

let error_probs ~quick = if quick then [ 0.; 0.15 ] else [ 0.; 0.05; 0.15; 0.3 ]

let one ?seed ~obs ~refs_per_job ~error_prob ~policy () =
  let fault = fault_for ~error_prob in
  let model =
    Device.Model.create
      (Device.Model.config ?fault ~sched:Device.Sched.Satf Device.Geometry.atlas_drum)
  in
  let controller =
    if policy = "none" then None
    else Some (Resilience.Controller.create (Resilience.Controller.config ()))
  in
  let report =
    Dsas.Multiprog.run ~obs ~device:model ?controller ~frames
      ~policy:(Paging.Replacement.lru ()) ~fetch_us:5_000
      (jobs_mix ?seed ~refs_per_job ())
  in
  let stats = Device.Model.stats model in
  {
    error_prob;
    policy;
    cpu_utilization = report.Dsas.Multiprog.cpu_utilization;
    elapsed_us = report.Dsas.Multiprog.elapsed_us;
    total_faults = report.Dsas.Multiprog.total_faults;
    restarts = report.Dsas.Multiprog.restarts;
    jobs_failed = report.Dsas.Multiprog.jobs_failed;
    sheds = (match controller with None -> 0 | Some c -> Resilience.Controller.sheds c);
    admits = (match controller with None -> 0 | Some c -> Resilience.Controller.admits c);
    injected = stats.Device.Model.injected;
    failed = stats.Device.Model.failed;
  }

let measure ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let refs_per_job = if quick then 250 else 1_200 in
  let t_base = ref 0 in
  let runs = ref 0 in
  let seg ~config =
    let s = Obs.Sink.segment ?seed ~config ~run:!runs ~offset:!t_base obs in
    incr runs;
    s
  in
  List.concat_map
    (fun error_prob ->
      List.map
        (fun policy ->
          let r =
            one ?seed
              ~obs:
                (seg
                   ~config:
                     (Printf.sprintf "x9 error_prob=%g policy=%s" error_prob policy))
              ~refs_per_job ~error_prob ~policy ()
          in
          t_base := !t_base + r.elapsed_us;
          r)
        policies)
    (error_probs ~quick)

(* --- write-side fault accounting (demand engine, satellite honesty) --- *)

let page_size = 64

let demand_pages = 24

let demand_engine ?(obs = Obs.Sink.null) ~device ~recovery () =
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core"
      ~words:(8 * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"backing"
      ~words:(demand_pages * page_size)
  in
  Paging.Demand.create ~obs ~device ~recovery
    {
      Paging.Demand.page_size;
      frames = 8;
      pages = demand_pages;
      core;
      backing;
      policy = Paging.Replacement.lru ();
      tlb = None;
      compute_us_per_ref = 30;
    }

let demand_trace ?seed ~refs () =
  let rng = Sim.Rng.derive ?override:seed 1109 in
  let page_trace =
    Workload.Trace.working_set_phases rng ~length:refs ~extent:demand_pages
      ~set_size:6 ~phase_length:(max 1 (refs / 8)) ~locality:0.95
  in
  Array.map (fun p -> (p * page_size) + Sim.Rng.int rng page_size) page_trace

(* One write in four: enough writeback traffic that the skipped-roll
   count is visibly nonzero when write faults are off. *)
let drive_trace engine trace =
  Array.iteri
    (fun i name ->
      if i land 3 = 0 then Paging.Demand.write engine name (Int64.of_int name)
      else
        let (_ : int64) = Paging.Demand.read engine name in
        ())
    trace

let measure_writes ?(quick = false) ?seed () =
  let refs = if quick then 800 else 4_000 in
  let trace = demand_trace ?seed ~refs () in
  List.map
    (fun write_error_prob ->
      let fault =
        Device.Fault.config ~read_error_prob:0.05 ~write_error_prob
          ~permanent_prob:0.2 ~max_retries:2 ~on_exhausted:Device.Fault.Fail ()
      in
      let model =
        Device.Model.create
          (Device.Model.config ~fault ~sched:Device.Sched.Fifo
             Device.Geometry.atlas_drum)
      in
      let engine = demand_engine ~device:model ~recovery:Paging.Demand.Mirror () in
      drive_trace engine trace;
      let stats = Device.Model.stats model in
      {
        write_error_prob;
        writebacks = Paging.Demand.writebacks engine;
        write_injected = stats.Device.Model.write_injected;
        write_rolls_skipped = stats.Device.Model.write_rolls_skipped;
        mirror_fetches = Paging.Demand.mirror_fetches engine;
        terminal_failures = stats.Device.Model.failed;
      })
    [ 0.; 0.1 ]

(* --- chaos scenarios (closures handed to Resilience.Chaos) --- *)

let demand_scenario ~name ~recovery ~quick =
  {
    Resilience.Chaos.name;
    run =
      (fun ~seed ~fault ~obs ->
        let refs = if quick then 300 else 800 in
        let trace = demand_trace ~seed ~refs () in
        let model =
          Device.Model.create ~obs
            (Device.Model.config ~fault ~sched:Device.Sched.Fifo
               Device.Geometry.atlas_drum)
        in
        let engine = demand_engine ~obs ~device:model ~recovery () in
        let surfaced = ref 0 in
        (* One write in four: modified evictions feed write-backs into
           the faulty device, exercising the write-side rolls. *)
        Array.iteri
          (fun i name ->
            let r =
              if i land 3 = 0 then
                Paging.Demand.write_result engine name (Int64.of_int name)
              else
                Result.map
                  (fun (_ : int64) -> ())
                  (Paging.Demand.read_result engine name)
            in
            match r with Ok () -> () | Error _ -> incr surfaced)
          trace;
        let stats = Device.Model.stats model in
        [
          ("faults", Paging.Demand.faults engine);
          ("mirror_fetches", Paging.Demand.mirror_fetches engine);
          ("hard_failures", Paging.Demand.hard_failures engine);
          ("surfaced", !surfaced);
          ("injected", stats.Device.Model.injected);
          ("write_rolls_skipped", stats.Device.Model.write_rolls_skipped);
        ]);
  }

let swapper_scenario ~quick =
  {
    Resilience.Chaos.name = "swapper-mirror-write";
    run =
      (fun ~seed ~fault ~obs:_ ->
        let rng = Sim.Rng.create seed in
        (* Varied sizes fragment core, so placement failures exercise
           the compaction recovery too. *)
        let sizes = [| 500; 380; 620; 450 |] in
        let programs = Array.length sizes in
        let clock = Sim.Clock.create () in
        let core =
          Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:1_400
        in
        let backing =
          Memstore.Level.make clock Memstore.Device.drum ~name:"drum"
            ~words:(Array.fold_left ( + ) 0 sizes)
        in
        let model =
          Device.Model.create
            (Device.Model.config ~fault ~sched:Device.Sched.Fifo
               Device.Geometry.atlas_drum)
        in
        let swapper =
          Swapping.Swapper.create
            {
              Swapping.Swapper.core;
              backing;
              placement = Freelist.Policy.First_fit;
              compact_on_failure = true;
              device = Some model;
            }
        in
        let ids =
          Array.init programs (fun i ->
              Swapping.Swapper.add_program swapper
                ~name:(Printf.sprintf "prog%d" i)
                ~size:(sizes.(i) - 8))
        in
        let rounds = if quick then 16 else 48 in
        let surfaced = ref 0 in
        for round = 1 to rounds do
          let p = Sim.Rng.int rng programs in
          let name = Sim.Rng.int rng (sizes.(p) - 9) in
          (* A failed swap-in leaves the program out; the next round is
             the retry (fresh fault rolls).  Writes dirty the image so
             the eventual swap-out exercises the write-back path. *)
          let r =
            if round land 1 = 0 then
              Swapping.Swapper.write_result swapper ids.(p) name 1L
            else
              Result.map
                (fun (_ : int64) -> ())
                (Swapping.Swapper.read_result swapper ids.(p) name)
          in
          match r with Ok () -> () | Error _ -> incr surfaced
        done;
        [
          ("swap_in_failures", Swapping.Swapper.swap_in_failures swapper);
          ("surfaced", !surfaced);
          ("mirror_writes", Swapping.Swapper.mirror_writes swapper);
          ("compactions", Swapping.Swapper.compactions swapper);
        ]);
  }

let multiprog_scenario ~quick =
  {
    Resilience.Chaos.name = "multiprog-restart";
    run =
      (fun ~seed ~fault ~obs ->
        let refs_per_job = if quick then 120 else 400 in
        (* The model gets no sink: its io timestamps run ahead of the
           scheduler clock, and the scheduler's own events are the
           story here. *)
        let model =
          Device.Model.create
            (Device.Model.config ~fault ~sched:Device.Sched.Satf
               Device.Geometry.atlas_drum)
        in
        let controller =
          Resilience.Controller.create
            (Resilience.Controller.config ~period_us:10_000 ())
        in
        let report =
          Dsas.Multiprog.run ~obs ~device:model ~max_restarts:2 ~controller
            ~frames:12
            ~policy:(Paging.Replacement.lru ())
            ~fetch_us:3_000
            (jobs_mix ~seed ~refs_per_job ())
        in
        [
          ("restarts", report.Dsas.Multiprog.restarts);
          ("jobs_failed", report.Dsas.Multiprog.jobs_failed);
          ("load_sheds", Resilience.Controller.sheds controller);
          ("load_admits", Resilience.Controller.admits controller);
        ]);
  }

let scenarios ?(quick = false) () =
  [
    demand_scenario ~name:"demand-mirror" ~recovery:Paging.Demand.Mirror ~quick;
    demand_scenario ~name:"demand-surface" ~recovery:Paging.Demand.Surface ~quick;
    swapper_scenario ~quick;
    multiprog_scenario ~quick;
  ]

(* --- printing --- *)

let run ?(quick = false) ?obs ?seed () =
  let rows = measure ~quick ?obs:(Some (Option.value obs ~default:Obs.Sink.null)) ?seed () in
  print_endline "== X9 (extension): failure semantics and load control ==";
  print_endline
    "(6 jobs x 16 pages over 16 shared frames on a faulty drum, Fail escalation;\n\
    \ terminal fetch failures abort-and-restart the job; the space-time\n\
    \ controller sheds the thrashing set and re-admits under hysteresis)\n";
  Metrics.Table.print
    ~headers:
      [ "error prob"; "controller"; "cpu util"; "elapsed (ms)"; "faults"; "restarts";
        "jobs failed"; "sheds"; "admits"; "injected"; "terminal" ]
    (List.map
       (fun r ->
         [
           Metrics.Table.fmt_float r.error_prob;
           r.policy;
           Metrics.Table.fmt_float r.cpu_utilization;
           string_of_int (r.elapsed_us / 1000);
           string_of_int r.total_faults;
           string_of_int r.restarts;
           string_of_int r.jobs_failed;
           string_of_int r.sheds;
           string_of_int r.admits;
           string_of_int r.injected;
           string_of_int r.failed;
         ])
       rows);
  print_endline
    "\n--- write-side fault accounting (demand engine, mirror recovery) ---\n";
  Metrics.Table.print
    ~headers:
      [ "write error prob"; "writebacks"; "write errors"; "write rolls skipped";
        "mirror fetches"; "terminal" ]
    (List.map
       (fun w ->
         [
           Metrics.Table.fmt_float w.write_error_prob;
           string_of_int w.writebacks;
           string_of_int w.write_injected;
           string_of_int w.write_rolls_skipped;
           string_of_int w.mirror_fetches;
           string_of_int w.terminal_failures;
         ])
       (measure_writes ~quick ?seed ()));
  print_endline
    "\n(write rolls skipped counts write attempts never at risk: nonzero exactly\n\
    \ when write faults are off, so injected-error arithmetic stays honest)"
