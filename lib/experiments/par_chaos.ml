(* Multicore chaos: the supervised sharded engines under seeded
   shard-kill schedules.

   Each scenario runs a small sharded workload twice: once fault-free
   at width 1 (the reference) and once supervised at the requested
   width under the harness's kill schedule.  The supervised engine
   trace must be byte-identical to the reference — crashes, restarts
   and checkpoint resume are invisible in the observable record — and
   any divergence is surfaced as a counter the harness (and CI) can
   gate on. *)

let shards = 4
let steps ~quick = if quick then 150 else 600

let to_kills kills =
  List.map
    (fun (k : Resilience.Chaos.shard_kill) ->
      {
        Parallel.Supervisor.k_shard = k.sk_shard;
        k_attempt = k.sk_attempt;
        k_progress = k.sk_progress;
        k_stall = k.sk_stall;
      })
    kills

let collector () =
  let buf = ref [] in
  let sink = Obs.Sink.collect (fun ev -> buf := ev :: !buf) in
  (sink, fun () -> List.rev !buf)

let traces_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> String.equal (Obs.Event.to_json x) (Obs.Event.to_json y))
       a b

(* Shared scaffolding: reference run, supervised run, verdict counters.
   [run_ref] writes the fault-free width-1 trace into its sink;
   [run_sup] runs supervised and returns the outcomes, or None on
   escalation (in which case nothing was emitted). *)
let verdict ~engine ~ref_events ~sup_events outcomes =
  List.iter (Obs.Sink.emit engine) sup_events;
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outcomes in
  [
    ("crashes", sum (fun (o : Parallel.Supervisor.outcome) -> o.o_crashes));
    ("restarts", sum (fun (o : Parallel.Supervisor.outcome) -> o.o_restarts));
    ("checkpoints", sum (fun (o : Parallel.Supervisor.outcome) -> o.o_checkpoints));
    ("escalated", 0);
    ("diverged", (if traces_equal ref_events sup_events then 0 else 1));
  ]

let escalated = [ ("escalated", 1); ("diverged", 0) ]

let alloc_scenario ~quick ~domains =
  {
    Resilience.Chaos.sh_name = "par_alloc_supervised";
    sh_run =
      (fun ~seed ~kills ~engine ~supervision ->
        let cfg =
          Parallel.Sharded.alloc_config ~shards ~ops_per_shard:(steps ~quick)
            ~slots_per_shard:64 ~slot_words:8 ~seed ()
        in
        let ref_sink, ref_events = collector () in
        let (_ : Parallel.Sharded.alloc_report) =
          Parallel.Sharded.run_alloc ~obs:ref_sink ~domains:1 cfg
        in
        let sup_sink, sup_events = collector () in
        match
          Parallel.Sharded.run_alloc_supervised ~obs:sup_sink ~supervision
            ~kills:(to_kills kills) ~checkpoint_every:32 ~domains cfg
        with
        | Error _ -> escalated
        | Ok (_, outcomes) ->
          verdict ~engine ~ref_events:(ref_events ())
            ~sup_events:(sup_events ()) outcomes);
  }

let paging_scenario ~quick ~domains =
  {
    Resilience.Chaos.sh_name = "par_paging_supervised";
    sh_run =
      (fun ~seed ~kills ~engine ~supervision ->
        let cfg =
          Parallel.Sharded.paging_config ~shards ~refs_per_shard:(steps ~quick)
            ~frames_per_shard:6 ~pages_per_shard:12 ~seed ()
        in
        let ref_sink, ref_events = collector () in
        let (_ : Parallel.Sharded.paging_report) =
          Parallel.Sharded.run_paging ~obs:ref_sink ~domains:1 cfg
        in
        let sup_sink, sup_events = collector () in
        match
          Parallel.Sharded.run_paging_supervised ~obs:sup_sink ~supervision
            ~kills:(to_kills kills) ~checkpoint_every:32 ~domains cfg
        with
        | Error _ -> escalated
        | Ok (_, outcomes) ->
          verdict ~engine ~ref_events:(ref_events ())
            ~sup_events:(sup_events ()) outcomes);
  }

let scenarios ?(quick = false) ?(domains = 2) () =
  [ alloc_scenario ~quick ~domains; paging_scenario ~quick ~domains ]
