(** Extension X2 — several levels of working storage.

    The paper: fetching an item to a higher storage level "will be
    worthwhile only if the item is going to be used frequently."  A
    fast-core level over a bulk-core level over a drum serves a
    skew-popular reference string; the promotion rule is swept from
    never (bulk only), through promote-after-k, to promote-always.
    Measured: effective access time, promotions (the traffic the rule
    is supposed to suppress), and fast-core hit ratio. *)

type row = {
  rule : string;
  fast_hit_ratio : float;
  promotions : int;
  drum_faults : int;
  effective_access_us : float;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
