type row = {
  allocator : string;
  pressure : string;
  placed : int;
  unplaced : int;
  mean_search : float;
  combines : int;
  final_holes : int;
  external_frag : float;
}

let words = 1 lsl 14

let stream rng ~steps ~fill =
  let mean_size = 48. in
  let target_live = int_of_float (fill *. float_of_int words /. mean_size) in
  Workload.Alloc_stream.live_stream rng ~steps
    ~size:(Workload.Alloc_stream.Geometric { mean = mean_size; min_size = 2 })
    ~target_live

let rice_row ~pressure events =
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let c = Segmentation.Rice_chain.create mem ~base:0 ~len:words in
  let table = Hashtbl.create 512 in
  let placed = ref 0 and unplaced = ref 0 in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match Segmentation.Rice_chain.alloc c ~payload:size ~codeword:id with
         | Some off ->
           incr placed;
           Hashtbl.replace table id off
         | None -> incr unplaced)
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt table id with
         | Some off ->
           Segmentation.Rice_chain.free c off;
           Hashtbl.remove table id
         | None -> ()))
    events;
  let holes = List.map snd (Segmentation.Rice_chain.chain_blocks c) in
  {
    allocator = "rice-chain";
    pressure;
    placed = !placed;
    unplaced = !unplaced;
    mean_search = Metrics.Stats.mean (Segmentation.Rice_chain.chain_search_stats c);
    combines = Segmentation.Rice_chain.combines c;
    final_holes = List.length holes;
    external_frag = Metrics.Fragmentation.external_of_free_blocks holes;
  }

let boundary_row ~pressure events =
  let mem = Memstore.Physical.create ~name:"core" ~words in
  let a = Freelist.Allocator.create mem ~base:0 ~len:words ~policy:Freelist.Policy.First_fit in
  let table = Hashtbl.create 512 in
  let placed = ref 0 in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        (match Freelist.Allocator.alloc a size with
         | Some addr ->
           incr placed;
           Hashtbl.replace table id addr
         | None -> ())
      | Workload.Alloc_stream.Free { id } ->
        (match Hashtbl.find_opt table id with
         | Some addr ->
           Freelist.Allocator.free a addr;
           Hashtbl.remove table id
         | None -> ()))
    events;
  let holes = Freelist.Allocator.free_block_sizes a in
  {
    allocator = "boundary-tag first-fit";
    pressure;
    placed = !placed;
    unplaced = Freelist.Allocator.failures a;
    mean_search = Metrics.Stats.mean (Freelist.Allocator.search_stats a);
    combines = 0;
    final_holes = List.length holes;
    external_frag = Metrics.Fragmentation.external_of_free_blocks holes;
  }

let measure ?(quick = false) ?seed () =
  let steps = if quick then 2_000 else 20_000 in
  List.concat_map
    (fun fill ->
      let pressure = Printf.sprintf "%.0f%% full" (100. *. fill) in
      let events = stream (Sim.Rng.derive ?override:seed 99) ~steps ~fill in
      [ rice_row ~pressure events; boundary_row ~pressure events ])
    [ 0.5; 0.8; 0.95 ]

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== C6: Rice inactive-block chain vs immediate coalescing ==";
  print_endline "(same churn stream; chain combines only on demand)\n";
  Metrics.Table.print
    ~headers:
      [ "pressure"; "allocator"; "placed"; "unplaced"; "mean search"; "combines";
        "holes at end"; "ext frag" ]
    (List.map
       (fun r ->
         [
           r.pressure;
           r.allocator;
           string_of_int r.placed;
           string_of_int r.unplaced;
           Metrics.Table.fmt_float r.mean_search;
           string_of_int r.combines;
           string_of_int r.final_holes;
           Metrics.Table.fmt_pct r.external_frag;
         ])
       rows);
  print_newline ()
