(** Experiment C4 — predictive information (M44 instructions, MULTICS
    advice).

    A phase-structured program is run twice over the same engine
    configuration: once demand-only (the advice stripped out), once
    annotated with will-need prefetches issued with varying lead time
    before each phase change plus wont-need releases after it.  The
    lead-time sweep shows advice is only worth anything when it arrives
    early enough to overlap the fetch with the tail of the previous
    phase — and never hurts, being "essentially advisory". *)

type row = {
  variant : string;  (** "demand only" or "advice, lead=N" *)
  faults : int;
  prefetches : int;
  elapsed_us : int;
  waiting_fraction : float;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
