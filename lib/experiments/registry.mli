(** The experiment registry: every figure and claim of the paper mapped
    to runnable code (see DESIGN.md's per-experiment index). *)

type entry = {
  id : string;  (** e.g. "fig3", "c1" *)
  title : string;
  paper_source : string;  (** where in the paper the claim lives *)
  run : ?quick:bool -> unit -> unit;
}

val all : entry list

val find : string -> entry option
(** Look up by id, case-insensitively. *)

val run_all : ?quick:bool -> unit -> unit
