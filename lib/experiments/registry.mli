(** The experiment registry: every figure and claim of the paper mapped
    to runnable code (see DESIGN.md's per-experiment index). *)

type entry = {
  id : string;  (** e.g. "fig3", "c1" *)
  title : string;
  paper_source : string;  (** where in the paper the claim lives *)
  run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit;
      (** Every experiment accepts a sink; those listed in {!traced}
          actually report events through it, the rest ignore it. *)
}

val all : entry list

val find : string -> entry option
(** Look up by id, case-insensitively. *)

val ids : string list
(** Every experiment id, in registry order (for CLI error messages). *)

val run_all : ?quick:bool -> ?seed:int -> unit -> unit

val traced : string list
(** Ids whose [run] genuinely emits events when given a sink. *)

val is_traced : string -> bool
