type row = {
  scheme : string;
  workload : string;
  fetch_operations : int;
  words_loaded : int;
  elapsed_us : int;
}

let page_size = 64

let pages_per_phase = 48

let total_pages = 128

let compute_us_per_ref = 5

(* A phased program; [density] controls how many of each phase's
   declared pages the references actually touch. *)
let program ~quick ~dense ?override seed =
  let refs_per_phase = if quick then 150 else 1_000 in
  let phases = if quick then 4 else 10 in
  let rng = Sim.Rng.derive ?override seed in
  let generated =
    Predictive.Phased.generate rng ~page_size ~phases ~refs_per_phase
      ~pages_per_phase:(if dense then pages_per_phase else 2)
      ~total_pages ~lead:0
  in
  (* The overlay plan declares the worst case either way. *)
  (generated, phases, refs_per_phase)

let drum = Memstore.Device.drum

let static_overlay ~workload (generated, phases, refs_per_phase) =
  ignore generated;
  (* Each phase: one batched transfer of the declared worst-case set,
     then compute with every access served from core. *)
  let batch_words = pages_per_phase * page_size in
  let batch_us = Memstore.Device.transfer_us drum ~words:batch_words in
  let access_us = Memstore.Device.word_access_us Memstore.Device.core in
  let per_phase = batch_us + (refs_per_phase * (compute_us_per_ref + access_us)) in
  {
    scheme = "static overlays";
    workload;
    fetch_operations = phases;
    words_loaded = phases * batch_words;
    elapsed_us = phases * per_phase;
  }

let demand_paging ~workload (generated, _, _) =
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core"
      ~words:(pages_per_phase * page_size)
  in
  let backing =
    Memstore.Level.make clock drum ~name:"drum" ~words:(total_pages * page_size)
  in
  let engine =
    Paging.Demand.create
      {
        Paging.Demand.page_size;
        frames = pages_per_phase;  (* the same worst-case region *)
        pages = total_pages;
        core;
        backing;
        policy = Paging.Replacement.lru ();
        tlb = None;
        compute_us_per_ref;
      }
  in
  Paging.Demand.run engine (Predictive.Directive.strip generated.Predictive.Phased.steps);
  {
    scheme = "demand paging";
    workload;
    fetch_operations = Paging.Demand.faults engine;
    words_loaded = Paging.Demand.faults engine * page_size;
    elapsed_us = Sim.Clock.now clock;
  }

let measure ?(quick = false) ?seed () =
  let dense = program ~quick ~dense:true ?override:seed 7 in
  let sparse = program ~quick ~dense:false ?override:seed 7 in
  [
    static_overlay ~workload:"dense phases" dense;
    demand_paging ~workload:"dense phases" dense;
    static_overlay ~workload:"sparse phases" sparse;
    demand_paging ~workload:"sparse phases" sparse;
  ]

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== X3 (extension): preplanned overlays vs dynamic allocation ==";
  print_endline
    "(overlay plan loads the declared worst-case set per phase in one batch;\n\
    \ demand paging fetches only touched pages, one drum latency each)\n";
  Metrics.Table.print
    ~headers:[ "workload"; "scheme"; "fetches"; "words loaded"; "elapsed (us)" ]
    (List.map
       (fun r ->
         [
           r.workload;
           r.scheme;
           string_of_int r.fetch_operations;
           string_of_int r.words_loaded;
           string_of_int r.elapsed_us;
         ])
       rows);
  print_newline ()
