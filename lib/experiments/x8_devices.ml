(* Sweep of the lib/device subsystem: device geometry x scheduling
   policy x channel count, measured against the paper's two headline
   numbers — C7's processor utilization (multiprogrammed fetch overlap)
   and F3's space-time waiting share — plus a transient-read-error
   table showing bounded retry and degraded-mode fallback. *)

type mp_row = {
  device : string;
  sched : string;
  channels : int;
  cpu_utilization : float;
  elapsed_us : int;
  mean_latency_us : float;
  mean_depth : float;
  max_depth : int;
}

type st_row = {
  config : string;
  waiting_fraction : float;
  fetch_latency_us : float;
  faults : int;
}

type fault_row = {
  error_prob : float;
  injected : int;
  retries : int;
  degraded : int;
  latency_us : float;
  run_faults : int;
  checksum : int64;
}

let geometries =
  [
    ("fixed", Device.Geometry.fixed_us 5_000);
    ("drum", Device.Geometry.atlas_drum);
    ("disk", Device.Geometry.paper_disk);
  ]

let scheds = [ ("fifo", Device.Sched.Fifo); ("satf", Device.Sched.Satf);
               ("priority", Device.Sched.Priority) ]

(* --- C7-style: multiprogrammed utilization over a timed device --- *)

let jobs_mix ?seed ~refs_per_job () =
  let rng = Sim.Rng.derive ?override:seed 4242 in
  Workload.Job.mix rng ~jobs:6 ~refs_per_job ~pages_per_job:24 ~locality:0.9
    ~compute_us_per_ref:15

let run_multiprog ?(quick = false) ?seed ~device ~sched ~channels () =
  let refs_per_job = if quick then 300 else 1_500 in
  let _, geometry =
    match List.find_opt (fun (n, _) -> n = device) geometries with
    | Some g -> g
    | None -> invalid_arg "X8_devices: unknown device"
  in
  let sched_t =
    match List.find_opt (fun (n, _) -> n = sched) scheds with
    | Some (_, s) -> s
    | None -> invalid_arg "X8_devices: unknown sched"
  in
  let model = Device.Model.create (Device.Model.config ~sched:sched_t ~channels geometry) in
  let report =
    Dsas.Multiprog.run ~device:model ~frames:32 ~policy:(Paging.Replacement.lru ())
      ~fetch_us:5_000
      (jobs_mix ?seed ~refs_per_job ())
  in
  let stats = Device.Model.stats model in
  {
    device;
    sched;
    channels;
    cpu_utilization = report.Dsas.Multiprog.cpu_utilization;
    elapsed_us = report.Dsas.Multiprog.elapsed_us;
    mean_latency_us = stats.Device.Model.mean_read_latency_us;
    mean_depth = stats.Device.Model.mean_queue_depth;
    max_depth = stats.Device.Model.max_queue_depth;
  }

let measure_multiprog ?quick ?seed () =
  List.concat_map
    (fun (device, _) ->
      List.concat_map
        (fun (sched, _) ->
          List.map
            (fun channels -> run_multiprog ?quick ?seed ~device ~sched ~channels ())
            (if device = "fixed" then [ 1 ] else [ 1; 2 ]))
        (if device = "fixed" then [ ("fifo", Device.Sched.Fifo) ] else scheds))
    geometries

(* --- F3-style: the waiting share of the space-time product --- *)

let page_size = 256

let frames = 12

let st_trace ?seed ~refs () =
  let rng = Sim.Rng.derive ?override:seed 42 in
  let pages = 24 in
  let page_trace =
    Workload.Trace.working_set_phases rng ~length:refs ~extent:pages ~set_size:6
      ~phase_length:(refs / 8) ~locality:0.98
  in
  Array.map (fun p -> (p * page_size) + Sim.Rng.int rng page_size) page_trace

let demand_engine ?(obs = Obs.Sink.null) ?device () =
  let clock = Sim.Clock.create () in
  let extent = 24 * page_size in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core"
      ~words:(frames * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"backing" ~words:extent
  in
  Paging.Demand.create ~obs ?device
    {
      Paging.Demand.page_size;
      frames;
      pages = 24;
      core;
      backing;
      policy = Paging.Replacement.lru ();
      tlb = None;
      compute_us_per_ref = 50;
    }

(* Run the trace with one write in eight: modified evictions then
   enqueue write-backs, which compete with later fetches — the traffic
   that separates the scheduling policies. *)
let run_trace engine trace =
  Array.iteri
    (fun i name ->
      if i land 7 = 0 then Paging.Demand.write engine name (Int64.of_int (name + 1))
      else ignore (Paging.Demand.read engine name))
    trace

let measure_spacetime ?(quick = false) ?(obs = Obs.Sink.null) ?seed () =
  let refs = if quick then 2_000 else 10_000 in
  let trace = st_trace ?seed ~refs () in
  let t_base = ref 0 in
  let runs = ref 0 in
  let one config device_of =
    let sink =
      Obs.Sink.segment ?seed ~config:("x8 config=" ^ config) ~run:!runs
        ~offset:!t_base obs
    in
    incr runs;
    let engine = demand_engine ~obs:sink ?device:(device_of sink) () in
    run_trace engine trace;
    t_base := !t_base + Sim.Clock.now (Paging.Demand.clock engine);
    let st = Paging.Demand.space_time engine in
    let latency =
      match Paging.Demand.device engine with
      | Some m -> (Device.Model.stats m).Device.Model.mean_read_latency_us
      | None ->
        float_of_int (Memstore.Device.transfer_us Memstore.Device.drum ~words:page_size)
    in
    {
      config;
      waiting_fraction = Metrics.Space_time.waiting_fraction st;
      fetch_latency_us = latency;
      faults = Paging.Demand.faults engine;
    }
  in
  let timed geometry sched sink =
    Some (Device.Model.create ~obs:sink (Device.Model.config ~sched geometry))
  in
  [
    one "flat (legacy)" (fun _ -> None);
    one "fixed/fifo" (timed (Device.Geometry.fixed Memstore.Device.drum) Device.Sched.Fifo);
    one "drum/fifo" (timed Device.Geometry.atlas_drum Device.Sched.Fifo);
    one "drum/satf" (timed Device.Geometry.atlas_drum Device.Sched.Satf);
    one "disk/fifo" (timed Device.Geometry.paper_disk Device.Sched.Fifo);
    one "disk/satf" (timed Device.Geometry.paper_disk Device.Sched.Satf);
  ]

(* --- fault injection: retries are timing-only --- *)

(* Sum of core after the run: identical contents regardless of injected
   errors is the "memory unchanged" claim made visible. *)
let core_checksum engine trace =
  Array.fold_left
    (fun acc name -> Int64.add acc (Paging.Demand.read engine name))
    0L trace

let measure_faults ?(quick = false) ?seed () =
  let refs = if quick then 1_000 else 4_000 in
  let trace = st_trace ?seed ~refs () in
  List.map
    (fun error_prob ->
      let fault =
        if error_prob > 0. then Some (Device.Fault.config ~read_error_prob:error_prob ())
        else None
      in
      let model =
        Device.Model.create
          (Device.Model.config ?fault ~sched:Device.Sched.Fifo Device.Geometry.atlas_drum)
      in
      let engine = demand_engine ~device:model () in
      run_trace engine trace;
      let stats = Device.Model.stats model in
      let run_faults = Paging.Demand.faults engine in
      let checksum = core_checksum engine trace in
      {
        error_prob;
        injected = stats.Device.Model.injected;
        retries = stats.Device.Model.retries;
        degraded = stats.Device.Model.degraded;
        latency_us = stats.Device.Model.mean_read_latency_us;
        run_faults;
        checksum;
      })
    [ 0.; 0.01; 0.1; 0.4 ]

(* --- presentation --- *)

let print_multiprog rows =
  print_endline "-- C7 lens: utilization over a timed device (6 jobs, 32 frames) --";
  Metrics.Table.print
    ~headers:
      [ "device"; "sched"; "ch"; "cpu util"; "mean fetch (us)"; "mean qdepth"; "max qdepth" ]
    (List.map
       (fun r ->
         [
           r.device;
           r.sched;
           string_of_int r.channels;
           Metrics.Table.fmt_pct r.cpu_utilization;
           Metrics.Table.fmt_float ~decimals:0 r.mean_latency_us;
           Metrics.Table.fmt_float r.mean_depth;
           string_of_int r.max_depth;
         ])
       rows)

let print_spacetime rows =
  print_endline "-- F3 lens: waiting share of the space-time product --";
  Metrics.Table.print
    ~headers:[ "device/sched"; "waiting %"; "mean fetch (us)"; "faults" ]
    (List.map
       (fun r ->
         [
           r.config;
           Metrics.Table.fmt_pct r.waiting_fraction;
           Metrics.Table.fmt_float ~decimals:0 r.fetch_latency_us;
           string_of_int r.faults;
         ])
       rows)

let print_faults rows =
  print_endline "-- transient read errors: bounded retry, degraded fallback --";
  Metrics.Table.print
    ~headers:
      [ "P(error)"; "injected"; "retries"; "degraded"; "mean fetch (us)"; "faults"; "core checksum" ]
    (List.map
       (fun r ->
         [
           Metrics.Table.fmt_float r.error_prob;
           string_of_int r.injected;
           string_of_int r.retries;
           string_of_int r.degraded;
           Metrics.Table.fmt_float ~decimals:0 r.latency_us;
           string_of_int r.run_faults;
           Int64.to_string r.checksum;
         ])
       rows)

let run ?quick ?obs ?seed () =
  print_endline "== X8d (extension): timed backing-store devices ==";
  print_endline
    "(drum = 16 sectors/16ms rotation; disk adds seeks; fixed = flat 5ms.\n\
    \ satf = shortest-access-time-first, the ATLAS sector queue)\n";
  print_multiprog (measure_multiprog ?quick ?seed ());
  print_newline ();
  print_spacetime (measure_spacetime ?quick ?obs ?seed ());
  print_newline ();
  print_faults (measure_faults ?quick ?seed ());
  print_endline
    "(identical fault counts and checksums down the error column: injected\n\
    \ errors cost revolutions, never data -- and satf beats fifo wherever\n\
    \ the queue is deeper than one request)\n"

(* One configuration, chosen from the command line. *)
let run_custom ?quick ~device ~sched ~channels () =
  match (Device.Geometry.of_string device, Device.Sched.of_string sched) with
  | Error e, _ | _, Error e -> Error e
  | Ok _, Ok _ when not (List.mem_assoc device geometries) ->
    Error (Printf.sprintf "device %S has no sweep preset (valid: fixed, drum, disk)" device)
  | Ok _, Ok _ ->
    if channels < 1 then Error "channels must be >= 1"
    else begin
      let r = run_multiprog ?quick ~device ~sched ~channels () in
      print_endline "== X8d: one configuration ==";
      print_multiprog [ r ];
      Ok ()
    end
