type row = {
  tlb_capacity : int;
  hit_ratio : float;
  map_accesses_per_ref : float;
  effective_access_us : float;
  overhead_vs_raw : float;
}

let word_us = 2

let capacities = [ 0; 1; 2; 4; 8; 9; 16; 24; 44; 64 ]

(* A program over a handful of segments with strong locality, like the
   360/67's packed program segments. *)
let workload ~quick rng =
  let refs = if quick then 3_000 else 30_000 in
  let segments = [| 4096; 2048; 1024; 8192; 512; 4096 |] in
  let seg_choice =
    Workload.Trace.zipf rng ~length:refs ~extent:(Array.length segments) ~skew:1.0
  in
  let pair s =
    (* Locality within the segment: a small working region of it. *)
    let region = max 64 (segments.(s) / 8) in
    (s, Sim.Rng.int rng region)
  in
  (segments, Array.map pair seg_choice)

let measure ?(quick = false) ?seed () =
  let one capacity =
    let rng = Sim.Rng.derive ?override:seed 1234 in
    let segments, refs = workload ~quick rng in
    let tlb =
      if capacity = 0 then None
      else Some (Paging.Tlb.create ~capacity Paging.Tlb.Lru_replacement)
    in
    let engine =
      Segmentation.Two_level.create
        {
          Segmentation.Two_level.page_size = 512;
          frames = 64;
          tlb;
          policy = Paging.Replacement.lru ();
        }
    in
    Array.iteri (fun i len -> ignore (Segmentation.Two_level.add_segment engine ~length:len); ignore i)
      segments;
    Segmentation.Two_level.run_segmented engine refs;
    let n = float_of_int (Segmentation.Two_level.refs engine) in
    let effective = Segmentation.Two_level.effective_access_us engine ~word_us in
    {
      tlb_capacity = capacity;
      hit_ratio =
        (match Segmentation.Two_level.tlb engine with
         | Some t -> Paging.Tlb.hit_ratio t
         | None -> 0.);
      map_accesses_per_ref = float_of_int (Segmentation.Two_level.map_accesses engine) /. n;
      effective_access_us = effective;
      overhead_vs_raw = effective /. float_of_int word_us;
    }
  in
  List.map one capacities

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== F4: two-level mapping overhead vs associative memory size ==";
  print_endline "(segment table + page table walked on every associative miss)\n";
  Metrics.Table.print
    ~headers:[ "assoc. memory"; "hit ratio"; "map accesses/ref"; "effective access (us)"; "x raw access" ]
    (List.map
       (fun r ->
         [
           (if r.tlb_capacity = 0 then "none" else string_of_int r.tlb_capacity);
           Metrics.Table.fmt_pct r.hit_ratio;
           Metrics.Table.fmt_float r.map_accesses_per_ref;
           Metrics.Table.fmt_float r.effective_access_us;
           Metrics.Table.fmt_float r.overhead_vs_raw;
         ])
       rows);
  print_newline ();
  print_string
    (Metrics.Chart.series ~x_label:"associative memory capacity" ~y_label:"effective access (us)"
       [
         ( "effective access time",
           List.map (fun r -> (float_of_int r.tlb_capacity, r.effective_access_us)) rows );
       ]);
  print_newline ()
