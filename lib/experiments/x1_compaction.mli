(** Extension X1 — the compaction ablation (DESIGN.md ◊).

    The paper's "two main alternative courses of action" against
    external fragmentation: accept the lost utilization, or "move
    information around in storage so as to remove any unused spaces".
    Same churn stream with periodic large requests, served by best fit
    with and without compact-on-failure (through the storage-to-storage
    channel, with handles keeping references valid), and by the
    two-ends policy as the paper's non-moving alternative. *)

type row = {
  variant : string;
  placed : int;
  failed : int;  (** requests unsatisfied even after any compaction *)
  compactions : int;
  words_moved : int;
  move_time_us : int;
  final_frag : float;
}

val measure : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> row list
(** With a sink, each variant reports alloc / free / split / coalesce
    and (for the compacting variant) compaction_move events; variants
    are spliced with {!Obs.Sink.shift} so timestamps stay monotone. *)

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
