(** Experiment C5 — the unit of allocation: segments (B5000) vs pages
    (ATLAS).

    The same segment-structured workload — many small segments, a few
    large, with working-set locality over whole segments — is served by
    a segment-unit store (descriptor per segment, variable blocks,
    best-fit, cyclic replacement) and by a paged system over the packed
    linear layout of the same segments.  The trade the paper describes:
    the segment store fetches exactly what is named and keeps structure
    (but fragments externally and must move whole segments); the pager
    is simple and placement-free (but wastes partial frames and its
    faults split a segment across many transfers). *)

type row = {
  system : string;
  faults : int;
  words_transferred : int;  (** total words fetched from backing *)
  elapsed_us : int;
  waste : string;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
