type row = {
  variant : string;
  faults : int;
  prefetches : int;
  elapsed_us : int;
  waiting_fraction : float;
}

let page_size = 64

let frames = 12

let total_pages = 48

let make_engine () =
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:(frames * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"drum"
      ~words:(total_pages * page_size)
  in
  Paging.Demand.create
    {
      Paging.Demand.page_size;
      frames;
      pages = total_pages;
      core;
      backing;
      policy = Paging.Replacement.lru ();
      tlb = None;
      compute_us_per_ref = 20;
    }

let stats variant engine =
  {
    variant;
    faults = Paging.Demand.faults engine;
    prefetches = Paging.Demand.prefetches engine;
    elapsed_us = Sim.Clock.now (Paging.Demand.clock engine);
    waiting_fraction = Metrics.Space_time.waiting_fraction (Paging.Demand.space_time engine);
  }

let measure ?(quick = false) ?seed () =
  let refs_per_phase = if quick then 100 else 600 in
  let phases = if quick then 4 else 12 in
  let program lead =
    Predictive.Phased.generate (Sim.Rng.derive ?override:seed 31) ~page_size ~phases ~refs_per_phase
      ~pages_per_phase:6 ~total_pages ~lead
  in
  (* The reference string is identical for every lead (same seed), so
     the demand-only baseline is computed once from lead=0's strip. *)
  let baseline =
    let engine = make_engine () in
    Paging.Demand.run engine (Predictive.Directive.strip (program 0).Predictive.Phased.steps);
    stats "demand only" engine
  in
  let leads = if quick then [ 50 ] else [ 10; 50; 150; 300 ] in
  baseline
  :: List.map
       (fun lead ->
         let engine = make_engine () in
         Predictive.Directive.run_annotated engine (program lead).Predictive.Phased.steps;
         stats (Printf.sprintf "advice, lead=%d refs" lead) engine)
       leads

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== C4: predictive information vs pure demand fetch ==";
  print_endline "(phased program; will-need issued before each phase switch)\n";
  Metrics.Table.print
    ~headers:[ "variant"; "demand faults"; "prefetches"; "elapsed (us)"; "waiting ST" ]
    (List.map
       (fun r ->
         [
           r.variant;
           string_of_int r.faults;
           string_of_int r.prefetches;
           string_of_int r.elapsed_us;
           Metrics.Table.fmt_pct r.waiting_fraction;
         ])
       rows);
  print_newline ();
  print_string
    (Metrics.Chart.bars (List.map (fun r -> (r.variant, float_of_int r.elapsed_us)) rows));
  print_newline ()
