type row = {
  rule : string;
  fast_hit_ratio : float;
  promotions : int;
  drum_faults : int;
  effective_access_us : float;
}

let rules =
  [
    ("never (bulk only)", Paging.Hierarchy.Never);
    ("promote always", Paging.Hierarchy.Always);
    ("promote after 2", Paging.Hierarchy.After 2);
    ("promote after 4", Paging.Hierarchy.After 4);
    ("promote after 8", Paging.Hierarchy.After 8);
  ]

let measure ?(quick = false) ?seed () =
  let refs = if quick then 5_000 else 50_000 in
  let rng = Sim.Rng.derive ?override:seed 616 in
  (* Zipf popularity: a few hot pages worth promoting, a long cold
     tail not worth it. *)
  let trace = Workload.Trace.zipf rng ~length:refs ~extent:256 ~skew:1.1 in
  List.map
    (fun (rule, promotion) ->
      let h =
        Paging.Hierarchy.create
          {
            Paging.Hierarchy.fast_frames = 16;
            bulk_frames = 96;
            fast_us = 1;
            bulk_us = 8;
            fetch_us = 10_000;
            promotion;
            device = None;
          }
      in
      Paging.Hierarchy.run h trace;
      {
        rule;
        fast_hit_ratio =
          float_of_int (Paging.Hierarchy.fast_hits h) /. float_of_int refs;
        promotions = Paging.Hierarchy.promotions h;
        drum_faults = Paging.Hierarchy.faults h;
        effective_access_us = Paging.Hierarchy.effective_access_us h;
      })
    rules

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== X2 (extension): several levels of working storage ==";
  print_endline
    "(16 fast frames @1us over 96 bulk frames @8us over a drum; zipf references)\n";
  Metrics.Table.print
    ~headers:[ "promotion rule"; "fast hits"; "promotions"; "drum faults"; "effective access (us)" ]
    (List.map
       (fun r ->
         [
           r.rule;
           Metrics.Table.fmt_pct r.fast_hit_ratio;
           string_of_int r.promotions;
           string_of_int r.drum_faults;
           Metrics.Table.fmt_float r.effective_access_us;
         ])
       rows);
  print_newline ()
