(** X8d (extension): the timed backing-store subsystem, swept.

    Device geometry (fixed / drum / disk) x scheduling policy (fifo /
    satf / priority) x channel count, read through the paper's two
    lenses — C7's processor utilization and F3's space-time waiting
    share — plus a transient-read-error table demonstrating bounded
    retry and degraded-mode fallback with unchanged memory contents. *)

type mp_row = {
  device : string;
  sched : string;
  channels : int;
  cpu_utilization : float;
  elapsed_us : int;
  mean_latency_us : float;  (** submission -> completion, demand fetches *)
  mean_depth : float;
  max_depth : int;
}

type st_row = {
  config : string;
  waiting_fraction : float;
  fetch_latency_us : float;
  faults : int;
}

type fault_row = {
  error_prob : float;
  injected : int;
  retries : int;
  degraded : int;
  latency_us : float;
  run_faults : int;
  checksum : int64;  (** sum of every word the trace reads back *)
}

val run_multiprog :
  ?quick:bool -> ?seed:int -> device:string -> sched:string -> channels:int -> unit -> mp_row
(** One multiprogramming run of the chosen configuration — the
    parameterizable grid point behind {!measure_multiprog} and the
    campaign [device] cell.  Raises [Invalid_argument] on an unknown
    device or scheduler name (validate first at boundaries). *)

val measure_multiprog : ?quick:bool -> ?seed:int -> unit -> mp_row list

val measure_spacetime : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> st_row list

val measure_faults : ?quick:bool -> ?seed:int -> unit -> fault_row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit

val run_custom :
  ?quick:bool ->
  device:string ->
  sched:string ->
  channels:int ->
  unit ->
  (unit, string) result
(** The [dsas_sim run x8_devices --device ... --io-sched ... --channels ...]
    entry point: one multiprogramming run of the chosen configuration.
    [Error] explains an unknown device/scheduler name. *)
