type row = {
  policy : string;
  load : float;
  mean_latency_us : float;
  revolutions_per_page : float;
}

let sectors = 16

let rotation_us = 16_000  (* ~ATLAS-class drum *)

(* Page requests with exponential interarrivals and uniform sectors. *)
let request_stream rng ~count ~mean_gap_us =
  let now = ref 0. in
  List.init count (fun id ->
      now := !now +. Sim.Rng.exponential rng mean_gap_us;
      {
        Memstore.Drum.id;
        arrival_us = int_of_float !now;
        sector = Sim.Rng.int rng sectors;
      })

let measure ?(quick = false) ?seed () =
  let count = if quick then 400 else 4_000 in
  (* Load = expected requests arriving per revolution. *)
  let loads = [ 0.5; 1.0; 1.5; 2.; 6.; 12. ] in
  List.concat_map
    (fun load ->
      let mean_gap_us = float_of_int rotation_us /. load in
      List.map
        (fun (name, policy) ->
          let rng = Sim.Rng.derive ?override:seed 777 in
          let drum = Memstore.Drum.create ~sectors ~rotation_us policy in
          let completions = Memstore.Drum.serve drum (request_stream rng ~count ~mean_gap_us) in
          let latency = Memstore.Drum.mean_latency_us completions in
          {
            policy = name;
            load;
            mean_latency_us = latency;
            revolutions_per_page = latency /. float_of_int rotation_us;
          })
        [ ("arrival order (FIFO)", Memstore.Drum.Fifo_order);
          ("shortest access first", Memstore.Drum.Shortest_access) ])
    loads

let run ?quick ?obs:_ ?seed () =
  let rows = measure ?quick ?seed () in
  print_endline "== X8 (extension): scheduling the paging drum ==";
  Printf.printf "(%d sectors, %d us per revolution; exponential arrivals)\n\n" sectors
    rotation_us;
  Metrics.Table.print
    ~headers:[ "load (req/rev)"; "policy"; "mean fetch latency (us)"; "revolutions/page" ]
    (List.map
       (fun r ->
         [
           Metrics.Table.fmt_float ~decimals:1 r.load;
           r.policy;
           Metrics.Table.fmt_float ~decimals:0 r.mean_latency_us;
           Metrics.Table.fmt_float r.revolutions_per_page;
         ])
       rows);
  print_endline
    "(under load, arrival-order service queues for whole revolutions while\n\
    \ shortest-access-first picks sectors as they arrive at the heads --\n\
    \ the fetch-time term of F3/C7 is a scheduling outcome, not a constant)\n"
