(** Extension X3 — preplanned overlays vs dynamic allocation.

    The paper's introduction: before dynamic allocation, "the simplest
    strategies involved preplanned allocation and overlaying on the
    basis of worst case estimates of storage requirements."  A phased
    program is executed both ways: a static overlay schedule that loads
    each phase's declared page set in one batched drum transfer (worst
    case: every declared page, used or not), and demand paging that
    fetches only touched pages, one latency each.  Dense phases (every
    declared page used many times) favour the batch; sparse phases
    (most declared pages never touched) favour demand — the trade that
    made "dynamic" win as programs grew less predictable. *)

type row = {
  scheme : string;
  workload : string;
  fetch_operations : int;  (** batches or faults *)
  words_loaded : int;
  elapsed_us : int;
}

val measure : ?quick:bool -> ?seed:int -> unit -> row list

val run : ?quick:bool -> ?obs:Obs.Sink.t -> ?seed:int -> unit -> unit
