let all =
  [
    (Atlas.system, Atlas.notes);
    (M44.system, M44.notes);
    (B5000.system, B5000.notes);
    (Rice.system, Rice.notes);
    (B8500.system, B8500.notes);
    (Multics.system, Multics.notes);
    (Ibm360_67.system, Ibm360_67.notes);
  ]

let characteristics_table () =
  let headers =
    [ "machine"; "name space"; "predictive"; "artificial contiguity"; "unit" ]
  in
  let rows =
    List.map
      (fun (s, _) ->
        let c = s.Dsas.System.characteristics in
        [
          s.Dsas.System.name;
          Namespace.Name_space.describe c.Namespace.Characteristics.name_space;
          Namespace.Characteristics.predictive_to_string
            c.Namespace.Characteristics.predictive;
          (if c.Namespace.Characteristics.artificial_contiguity then "yes" else "no");
          Namespace.Characteristics.allocation_unit_to_string
            c.Namespace.Characteristics.allocation_unit;
        ])
      all
  in
  Metrics.Table.render ~headers rows

let run ?(seed = 7) ?(refs = 20_000) () =
  List.map
    (fun (s, _) ->
      let rng = Sim.Rng.create (seed + Hashtbl.hash s.Dsas.System.name) in
      (* Working-set locality in 512-word blocks, so that the locality
         the program exhibits is locality a page-sized unit can see. *)
      let block = 512 in
      let extent_blocks = 3 * s.Dsas.System.core_words / block in
      let block_trace =
        Workload.Trace.working_set_phases rng ~length:refs ~extent:extent_blocks
          ~set_size:(max 4 (s.Dsas.System.core_words / block / 2))
          ~phase_length:(max 1 (refs / 10))
          ~locality:0.95
      in
      let trace = Array.map (fun b -> (b * block) + Sim.Rng.int rng block) block_trace in
      Dsas.System.run_linear s ~seed trace)
    all

let render reports =
  Metrics.Table.render ~headers:Dsas.System.report_headers
    (Dsas.System.report_rows reports)
