(** Rice University Computer (appendix A.4).

    Codeword-based segmentation; segments are the unit of allocation and
    are limited to the size of physical working storage.  Fetch on first
    access (with explicit fetch/store requests also permitted);
    placement through the chain of inactive blocks with combination of
    adjacent blocks ({!Segmentation.Rice_chain}); replacement "applied
    iteratively until a block of sufficient size is released", taking
    account of backing copies and use-since-last-considered.

    The machine's only backing store was magnetic tape; following the
    paper's own proposal, the simulated configuration uses a drum. *)

val system : Dsas.System.t

val notes : string list
