let system =
  {
    Dsas.System.name = "recommended";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          Namespace.Name_space.Symbolically_segmented { max_extent = 1 lsl 16 };
        predictive = Namespace.Characteristics.Programmer_directives;
        artificial_contiguity = true;  (* "used if it is essential, to
                                          provide large segments" *)
        allocation_unit = Namespace.Characteristics.Variable;
      };
    core_words = 32_768;
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 19;
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented
        {
          placement = Freelist.Policy.Best_fit;
          replacement = Segmentation.Segment_store.Rice_iterative;
          max_segment = Some (1 lsl 16);
        };
    compute_us_per_ref = 2;
  }

let notes =
  [
    "the paper's own untried choice of characteristics, made runnable";
    "symbolic segment names: no dictionary fragmentation to manage";
    "small segments are the allocation unit; large segments allowed";
    "predictions accepted (will-need / wont-need on whole segments)";
  ]
