let system =
  {
    Dsas.System.name = "MULTICS";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          Namespace.Name_space.Linearly_segmented { segment_bits = 18; offset_bits = 18 };
        predictive = Namespace.Characteristics.Programmer_directives;
        artificial_contiguity = true;
        allocation_unit = Namespace.Characteristics.Mixed [ 64; 1024 ];
      };
    core_words = 131_072;
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 20;  (* scaled from the 4M-word drum *)
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented_paged
        { page_size = 1024; frames = 128; policy = Paging.Spec.Lru; tlb_capacity = 16 };
    compute_us_per_ref = 2;
  }

let page_sizes = (64, 1024)

let single_page_waste ~page ~object_words =
  assert (page > 0);
  List.fold_left
    (fun waste words ->
      let frames = (words + page - 1) / page in
      waste + ((frames * page) - words))
    0 object_words

let dual_page_waste ~object_words =
  let small, large = page_sizes in
  List.fold_left
    (fun waste words ->
      (* Whole large pages for the body; the tail rounds up to small
         pages (never more than one large page's worth). *)
      let body = words / large * large in
      let tail = words - body in
      let tail_granted =
        if tail = 0 then 0
        else min large ((tail + small - 1) / small * small)
      in
      waste + (body + tail_granted - words))
    0 object_words

let notes =
  [
    "linearly segmented name space used symbolically by convention";
    "segments to 256K words; two-level mapping (Fig. 4)";
    "two page sizes, 64 and 1024 words, to cut within-page fragmentation";
    "keep-resident / will-need / wont-need advice accepted";
  ]
