(** Burroughs B8500 (appendix A.5).

    "The storage allocation system provided in the B8500 is very
    similar to that of the B5000. ...  The most notable [novel hardware
    facility] is a 44 word thin film associative memory ... used for
    instruction and data fetch lookahead (16 words), temporary storage
    of program reference table elements and index words (24 words) and a
    4 word storage queue."

    Modelled as the B5000 design on fast core, with the 24-word
    PRT-element scratchpad available to callers as {!scratchpad}. *)

val system : Dsas.System.t

val scratchpad : unit -> Paging.Tlb.t
(** A fresh 24-entry associative memory for PRT elements and index
    words, as the F4 experiment's high end. *)

val notes : string list
