let system =
  {
    Dsas.System.name = "360/67";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          (* 24-bit byte addressing: 4 segment bits, 20 offset bits. *)
          Namespace.Name_space.Linearly_segmented { segment_bits = 4; offset_bits = 20 };
        predictive = Namespace.Characteristics.No_predictions;
        artificial_contiguity = true;
        allocation_unit = Namespace.Characteristics.Uniform 512;
      };
    core_words = 98_304;  (* 3 x 256K bytes / 8 bytes per word *)
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 19;  (* 4M-byte drum *)
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented_paged
        {
          page_size = 512;  (* 4096-byte pages *)
          frames = 192;
          policy = Paging.Spec.Lru;
          (* Eight associative registers plus the ninth for the
             instruction counter. *)
          tlb_capacity = 9;
        };
    compute_us_per_ref = 2;
  }

let notes =
  [
    "linearly segmented and used as such; 16 segments with 24-bit addressing";
    "segmentation shortens page tables rather than conveying structure";
    "8-register associative memory + 1 for the instruction counter";
    "automatic recording of use and modification per frame";
  ]
