(** MULTICS on the GE 645 (appendix A.6).

    A "small but useful" configuration: two processors, 128K words of
    core, 4M words of drum, 16M words of disk.  Linearly segmented name
    space used, by convention, symbolically; dynamic segments up to 256K
    words; up to 256K segments.  Allocation by paging with {e two} page
    sizes (64 and 1024 words); two-level mapping through segment and
    page tables with a small associative memory; demand fetch plus three
    predictive provisions (keep-resident / will-need / wont-need).

    Scaling substitution: drum scaled 4M -> 1M words; single-processor
    simulation (the storage system is what is under test).  The dual
    page size is exercised by experiment C8 via {!dual_page_overhead}. *)

val system : Dsas.System.t

val page_sizes : int * int
(** (64, 1024). *)

val dual_page_waste : object_words:int list -> int
(** Internal fragmentation (wasted words) of laying the given objects
    out with the dual page-size rule: 1024-word pages for the body, a
    64-word page for the tail — the scheme that "reduce[s] the loss in
    storage utilization caused by fragmentation occurring within
    pages". *)

val single_page_waste : page:int -> object_words:int list -> int
(** Waste of the same objects under one uniform page size. *)

val notes : string list
