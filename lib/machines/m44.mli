(** IBM M44/44X (appendix A.2).

    An experimental 7044 with ~200,000 words of directly addressable
    8-microsecond core and a 9-million-word IBM 1301 disk as backing
    store.  Each online user sees a "virtual machine" with a 2-million
    word linear name space — ten times real working storage.  Demand
    paging with boot-time-variable page size; replacement "selects at
    random from a set of equally acceptable candidates determined on the
    basis of frequency of usage and whether or not a page has been
    modified"; two special instructions convey predictive information.

    Scaling substitution: the disk is scaled from 9M to 1M words to keep
    the [Bytes] image small; the core/backing speed ratio is
    preserved. *)

val system : Dsas.System.t

val page_size_variants : int list
(** "The page size may be varied at system start-up for experimentation
    purposes." — the C8 experiment sweeps these. *)

val with_page_size : int -> Dsas.System.t

val notes : string list
