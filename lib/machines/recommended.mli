(** The authors' recommended design — built.

    The paper closes its taxonomy by noting that "not all of the more
    promising choices of a set of characteristics have been tried" and
    names its favourite: "(i) a symbolically segmented name space;
    (ii) provisions for accepting predictions about future use of
    segments; (iii) artificial contiguity used if it is essential, to
    provide large segments, but with use of the mapping device avoided
    in accessing small segments; and (iv) nonuniform units of
    allocation, corresponding closely to the size of small segments,
    but with large segments, if allowed, allocated using a set of
    separate blocks."

    This module realizes that design as a runnable system: symbolic
    segments with {e no} 1024-word ceiling (large segments are first-
    class), variable allocation units, second-chance replacement, and
    predictive directives accepted in its characteristics.  Experiment
    X7 races it against the B5000 (which must chop large structures)
    and a MULTICS-style uniform pager (which pays mapping overhead on
    every access). *)

val system : Dsas.System.t

val notes : string list
