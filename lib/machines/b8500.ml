let system =
  {
    Dsas.System.name = "B8500";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          Namespace.Name_space.Symbolically_segmented { max_extent = 1024 };
        predictive = Namespace.Characteristics.No_predictions;
        artificial_contiguity = false;
        allocation_unit = Namespace.Characteristics.Variable;
      };
    core_words = 65_536;
    core_device = Memstore.Device.fast_core;
    backing_words = 1 lsl 18;
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented
        {
          placement = Freelist.Policy.Best_fit;
          replacement = Segmentation.Segment_store.Cyclic;
          max_segment = Some 1024;
        };
    compute_us_per_ref = 1;
  }

let scratchpad () = Paging.Tlb.create ~capacity:24 Paging.Tlb.Lru_replacement

let notes =
  [
    "44-word thin-film associative memory (16 lookahead / 24 PRT+index / 4 queue)";
    "any word in storage usable as an index register";
    "recently used registers and PRT elements retained automatically";
  ]
