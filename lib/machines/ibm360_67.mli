(** IBM System/360 Model 67 (appendix A.7).

    Two processors, three 256K-byte memory modules, 4M-byte drum, ~500M
    bytes of disk.  A {e linearly} segmented name space "used as such":
    with 24-bit addressing only 16 segments of up to one million bytes,
    so independent programs get packed into one segment and segmentation
    serves to shorten page tables, not to convey structure.  The mapping
    follows Fig. 4 with an eight-word associative memory plus a ninth
    register for the instruction counter; use and modification of each
    frame are recorded automatically.

    Words here are 64-bit, so byte capacities are divided by eight. *)

val system : Dsas.System.t

val notes : string list
