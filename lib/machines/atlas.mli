(** Ferranti ATLAS (appendix A.1).

    "The first to incorporate mapping mechanisms which allowed a
    heterogeneous physical storage system to be accessed using a large
    linear address space.  The physical storage consisted of 16,384
    words of core storage and a 98,304 word drum, while the programmer
    could use a full 24-bit address representation.  This was also the
    first use of demand paging as a fetch strategy, storage being
    allocated in units of 512 words.  The replacement strategy ... is
    based on a 'learning program'." *)

val system : Dsas.System.t

val notes : string list
(** Survey remarks beyond the characteristic vector. *)
