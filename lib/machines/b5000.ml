let system =
  {
    Dsas.System.name = "B5000";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          Namespace.Name_space.Symbolically_segmented { max_extent = 1024 };
        predictive = Namespace.Characteristics.No_predictions;
        artificial_contiguity = false;
        allocation_unit = Namespace.Characteristics.Variable;
      };
    core_words = 24_576;  (* "a typical size for working storage is 24,000 words" *)
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 18;
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented
        {
          placement = Freelist.Policy.Best_fit;
          replacement = Segmentation.Segment_store.Cyclic;
          max_segment = Some 1024;
        };
    compute_us_per_ref = 3;
  }

let notes =
  [
    "Program Reference Table holds one descriptor per segment";
    "segments compiled from ALGOL blocks / COBOL paragraphs";
    "1024-word segment limit; compiler splits larger arrays by rows";
    "smallest-sufficient placement, essentially-cyclical replacement";
  ]
