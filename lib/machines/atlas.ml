let system =
  {
    Dsas.System.name = "ATLAS";
    characteristics =
      {
        Namespace.Characteristics.name_space = Namespace.Name_space.Linear { bits = 24 };
        predictive = Namespace.Characteristics.No_predictions;
        artificial_contiguity = true;
        allocation_unit = Namespace.Characteristics.Uniform 512;
      };
    core_words = 16_384;
    core_device = Memstore.Device.core;
    backing_words = 98_304;
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Paged
        {
          page_size = 512;
          frames = 32;  (* 16,384 words of core / 512-word pages *)
          policy = Paging.Spec.Atlas;
          (* One page address register per frame: mapping always hits. *)
          tlb_capacity = 32;
          device = Device.Spec.legacy;
        };
    compute_us_per_ref = 2;
  }

let notes =
  [
    "first demand-paging system; 512-word pages";
    "learning-program replacement (time since use vs previous idle period)";
    "paging used for storage management within one program; I/O overlapped";
  ]
