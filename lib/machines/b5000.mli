(** Burroughs B5000 (appendix A.3).

    "One of the first systems to provide programmers with a segmented
    name space (in fact a symbolically segmented name space).  Segments
    are dynamic but have a maximum size of 1024 words. ...  The segment
    is used directly as the unit of allocation.  Each segment is fetched
    when reference is first made to information in the segment. ...
    Among those found to be effective were a placement strategy of
    choosing the smallest available block of sufficient size and a
    replacement strategy which was essentially cyclical." *)

val system : Dsas.System.t

val notes : string list
