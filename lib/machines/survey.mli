(** The appendix as a measured survey.

    Runs every machine of the appendix on a comparable signature
    workload (a phase-structured reference string scaled to put each
    machine's working storage under the same relative pressure) and
    tabulates the characteristic vectors next to the measured headline
    numbers — experiment A1-A7. *)

val all : (Dsas.System.t * string list) list
(** Every appendix machine with its survey notes, in appendix order. *)

val characteristics_table : unit -> string
(** The four characteristics of each machine, one row per machine. *)

val run : ?seed:int -> ?refs:int -> unit -> Dsas.System.report list
(** Signature run for each machine: a working-set-phased trace over
    3x its working storage. *)

val render : Dsas.System.report list -> string
(** The survey results as a table. *)
