let system =
  {
    Dsas.System.name = "Rice";
    characteristics =
      {
        Namespace.Characteristics.name_space =
          Namespace.Name_space.Symbolically_segmented { max_extent = 16_384 };
        predictive = Namespace.Characteristics.No_predictions;
        artificial_contiguity = false;
        allocation_unit = Namespace.Characteristics.Variable;
      };
    core_words = 32_768;
    core_device = Memstore.Device.core;
    backing_words = 1 lsl 18;
    backing_device = Memstore.Device.drum;
    mechanism =
      Dsas.System.Segmented
        {
          (* Sequential initial placement + first-fit over the inactive
             chain; the chain mechanics themselves are exercised in
             experiment C6 via Rice_chain. *)
          placement = Freelist.Policy.First_fit;
          replacement = Segmentation.Segment_store.Rice_iterative;
          max_segment = Some 16_384;
        };
    compute_us_per_ref = 4;
  }

let notes =
  [
    "codewords: descriptors with an automatic index-register add";
    "blocks carry a back reference to their codeword";
    "inactive-block chain with combination of adjacent blocks";
    "iterative replacement honouring backing copies and use bits";
  ]
