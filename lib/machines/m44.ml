let page_size_variants = [ 256; 512; 1024; 2048; 4096 ]

let with_page_size page_size =
  assert (List.mem page_size page_size_variants);
  {
    Dsas.System.name = (if page_size = 1024 then "M44/44X" else Printf.sprintf "M44/44X(p=%d)" page_size);
    characteristics =
      {
        Namespace.Characteristics.name_space = Namespace.Name_space.Linear { bits = 21 };
        predictive = Namespace.Characteristics.Programmer_directives;
        artificial_contiguity = true;
        allocation_unit = Namespace.Characteristics.Uniform page_size;
      };
    core_words = 196_608;
    core_device = Memstore.Device.slow_core;
    backing_words = 1 lsl 20;  (* scaled from the 9M-word 1301 disk *)
    backing_device = Memstore.Device.disk;
    mechanism =
      Dsas.System.Paged
        {
          page_size;
          frames = 196_608 / page_size;
          policy = Paging.Spec.M44;
          tlb_capacity = 0;  (* mapping via a store, charged per access *)
          device = Device.Spec.legacy;
        };
    compute_us_per_ref = 8;
  }

let system = with_page_size 1024

let notes =
  [
    "virtual machines: 2M-word name space over ~200K words of real core";
    "page size variable at system start-up";
    "predictive instructions: page-will-be-needed / page-not-needed";
    "random-among-candidates replacement (usage frequency + modified bit)";
  ]
