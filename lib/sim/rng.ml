type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* Checkpoint hooks: the whole generator is its 64-bit counter, so a
   saved state restores the exact stream position. *)
let state t = t.state
let of_state s = { state = s }

(* [derive ?override default]: the per-site historical seed, unless a
   global --seed overrides the run.  The override is folded into the
   site's own constant so distinct sites keep distinct streams while
   sites that deliberately share a constant (a regenerated trace) keep
   sharing one. *)
let derive ?override default =
  match override with
  | None -> create default
  | Some s -> create (s lxor default)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* A non-negative 62-bit int, safe on 64-bit OCaml's 63-bit [int]. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  assert (n > 0);
  nonneg t mod n

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let unit_float t =
  (* 53 random bits into [0, 1). *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int mantissa *. 0x1p-53

let float t x = unit_float t *. x

let exponential t mean =
  assert (mean > 0.);
  let u = unit_float t in
  -.mean *. log (1. -. u)

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = unit_float t in
    int_of_float (floor (log (1. -. u) /. log (1. -. p)))

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
