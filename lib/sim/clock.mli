(** A virtual clock counting simulated microseconds.

    The simulator is untethered from wall-clock time: every device access
    advances a clock explicitly.  Time is a plain [int] of microseconds,
    which at 2^62 us gives ~146 millennia of simulated time. *)

type t

val create : unit -> t
(** A clock reading 0. *)

val now : t -> int
(** Current simulated time in microseconds. *)

val advance : t -> int -> unit
(** [advance t dt] moves time forward by [dt] us.  [dt] must be >= 0. *)

val advance_to : t -> int -> unit
(** [advance_to t at] moves time forward to absolute time [at]; a no-op if
    [at] is in the past. *)
