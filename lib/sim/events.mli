(** Discrete-event simulation driver.

    Events are thunks scheduled at absolute virtual times; running the
    queue pops the earliest event, advances the shared {!Clock.t} to its
    time, and executes it.  Handlers may schedule further events. *)

type t

val create : Clock.t -> t

val clock : t -> Clock.t

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] when simulated time reaches [at]; [at]
    must not be in the past. *)

val schedule_after : t -> int -> (unit -> unit) -> unit
(** [schedule_after t dt f] schedules [f] at [now + dt]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val step : t -> bool
(** Execute the earliest pending event, advancing the clock to its time.
    Returns [false] if the queue was empty. *)

val run : t -> unit
(** Run until the queue drains. *)

val run_until : t -> int -> unit
(** Run events with time <= the given bound, then advance the clock to the
    bound. *)
