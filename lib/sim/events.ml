type t = { clock : Clock.t; queue : (unit -> unit) Heap.t }

let create clock = { clock; queue = Heap.create () }

let clock t = t.clock

let schedule t ~at f =
  assert (at >= Clock.now t.clock);
  Heap.add t.queue at f

let schedule_after t dt f = schedule t ~at:(Clock.now t.clock + dt) f

let pending t = Heap.size t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, f) ->
    Clock.advance_to t.clock at;
    f ();
    true

let run t = while step t do () done

let run_until t bound =
  let rec loop () =
    match Heap.min t.queue with
    | Some (at, _) when at <= bound ->
      let (_ : bool) = step t in
      loop ()
    | Some _ | None -> Clock.advance_to t.clock bound
  in
  loop ()
