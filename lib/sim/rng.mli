(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible from a single seed and
    independent components can be given independent streams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val derive : ?override:int -> int -> t
(** [derive ?override default] is [create default] unless [override]
    is given, in which case the stream is re-seeded from
    [override lxor default] — the plumbing behind the global [--seed]
    flag.  Distinct per-site defaults keep distinct streams under one
    override; sites sharing a default (a deliberately regenerated
    trace) keep sharing a stream. *)

val state : t -> int64
(** [state t] exposes the raw splitmix64 counter for checkpointing.
    [of_state (state t)] resumes the stream exactly where [t] is. *)

val of_state : int64 -> t
(** [of_state s] rebuilds a generator from a saved {!state}. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    subsequent outputs of [t] (it is seeded from [t]'s next output). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive.  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the
    given mean.  [mean] must be positive. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success in
    Bernoulli trials with success probability [p] (so the result is >= 0
    with mean [(1-p)/p]).  Requires [0 < p <= 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
