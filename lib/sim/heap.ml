(* Entries carry an insertion sequence number so that equal keys pop in
   FIFO order, keeping event-driven simulations deterministic. *)
type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }

let size t = t.size

let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let ensure_capacity t =
  let cap = Array.length t.entries in
  if t.size >= cap then begin
    let dummy = t.entries.(0) in
    let grown = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.entries 0 grown 0 t.size;
    t.entries <- grown
  end

let sift_up t i0 =
  let e = t.entries.(i0) in
  let rec loop i =
    if i = 0 then i
    else
      let parent = (i - 1) / 2 in
      if less e t.entries.(parent) then begin
        t.entries.(i) <- t.entries.(parent);
        loop parent
      end
      else i
  in
  t.entries.(loop i0) <- e

let sift_down t i0 =
  let e = t.entries.(i0) in
  let rec loop i =
    let l = (2 * i) + 1 in
    if l >= t.size then i
    else
      let r = l + 1 in
      let child = if r < t.size && less t.entries.(r) t.entries.(l) then r else l in
      if less t.entries.(child) e then begin
        t.entries.(i) <- t.entries.(child);
        loop child
      end
      else i
  in
  t.entries.(loop i0) <- e

let add t key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.entries = 0 then t.entries <- Array.make 8 entry;
  ensure_capacity t;
  t.entries.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min t = if t.size = 0 then None else Some (t.entries.(0).key, t.entries.(0).value)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let clear t = t.size <- 0
