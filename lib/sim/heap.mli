(** Binary min-heap keyed by integer priority.

    Used as the backbone of the discrete-event queue and of replacement
    policies that need cheap minimum extraction.  Ties are broken by
    insertion order (FIFO among equal keys), which event-driven simulation
    relies on for determinism. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> int -> 'a -> unit
(** [add t key v] inserts [v] with priority [key]. *)

val min : 'a t -> (int * 'a) option
(** Smallest key and its value, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest key; [None] if empty.
    Among equal keys, the earliest-inserted entry is returned first. *)

val clear : 'a t -> unit
