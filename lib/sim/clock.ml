type t = { mutable now : int }

let create () = { now = 0 }

let now t = t.now

let advance t dt =
  assert (dt >= 0);
  t.now <- t.now + dt

let advance_to t at = if at > t.now then t.now <- at
