(** The timed backing-store model: a request queue feeding [channels]
    identical channels over one {!Geometry.t}, under a {!Sched.t}
    policy, with optional transient-read-error injection ({!Fault}).

    Requests are {e not} scheduled at submission.  They sit in the
    queue until a dispatch is forced or planned, so a request arriving
    later can still win the next free channel under SATF or priority
    scheduling — the whole point of the queueing layer.  All data
    movement stays with the caller (engines blit pages themselves);
    the model answers only {e when}.

    Two consumption styles, which must not be mixed on one instance:

    - {b Synchronous} ({!completion_us}, {!fetch}): for single-threaded
      engines that block on each answer.  Forcing a completion
      dispatches queued requests in policy order until the target is
      served — exact, because nothing else can submit while the engine
      waits.
    - {b Event-loop} ({!deliver_due}, {!take_completion}): for
      [Core.Multiprog].  Dispatch is gated on causality: a channel is
      not committed to a request while an undelivered completion
      precedes the dispatch instant, since the woken job's next request
      could compete for it.

    Obs note: [Io_start]/[Io_done]/[Io_retry] events are stamped with
    the planned service times, which run ahead of the engine's clock;
    they may interleave out of order with engine events (see
    {!Obs.Event}).  The queue-depth series is sampled at submission
    times only, so it stays monotone. *)

type config = {
  geometry : Geometry.t;
  sched : Sched.t;
  channels : int;
  writeback_batch : int;
      (** dispatching a writeback streams up to [writeback_batch - 1]
          further queued writebacks behind it at
          {!Geometry.streamed_us} marginal cost each *)
  fault : Fault.config option;
}

val config :
  ?sched:Sched.t ->
  ?channels:int ->
  ?writeback_batch:int ->
  ?fault:Fault.config ->
  Geometry.t ->
  config
(** Defaults: FIFO, 1 channel, no batching, no faults. *)

type t

type failure = {
  req : int;
  page : int;
  kind : Request.kind;
  attempts : int;  (** service attempts made before giving up *)
  at_us : int;  (** when the device gave up (channel time) *)
}
(** A terminal request failure: a permanent media error, or the retry
    budget exhausted under {!Fault.Fail} escalation.  Only possible
    when the model's fault config says so; the default (and every
    [Degrade]-policy) configuration never produces one. *)

val create : ?obs:Obs.Sink.t -> config -> t

val label : t -> string
(** e.g. ["drum/satf/2ch"]. *)

val submit :
  ?immune:bool -> t -> now:int -> kind:Request.kind -> page:int -> words:int -> int
(** Enqueue a request arriving at [now] (engine clock, monotone);
    returns its id.  No channel is committed yet.  [immune] (default
    false) exempts the request from fault injection — the transport for
    recovery re-fetches. *)

val completion_us : t -> int -> int
(** [completion_us t id] forces request [id] to completion and returns
    its finish time, dispatching any queued requests the policy puts
    ahead of it first.  Consumes the completion: a second call for the
    same id raises [Invalid_argument], as does an id never submitted.
    A terminally-failed request still finishes in time; use
    {!failure_of} or {!result_us} to learn the data never arrived. *)

val result_us : t -> int -> (int, failure) result
(** Like {!completion_us}, but [Error] when the request terminally
    failed.  Consumes both the completion and the failure record. *)

val failure_of : t -> int -> failure option
(** [failure_of t id] is the terminal failure of a request whose
    completion was already delivered (via {!completion_us},
    {!deliver_due} or {!take_completion}), if any; consumes the
    record.  Event-loop engines call this on every delivery. *)

val fetch : t -> now:int -> kind:Request.kind -> page:int -> words:int -> int
(** [submit] + [completion_us] in one step — the common synchronous
    path. *)

val fetch_result :
  ?immune:bool ->
  t -> now:int -> kind:Request.kind -> page:int -> words:int ->
  (int, failure) result
(** [submit] + [result_us] in one step — the synchronous path for
    engines that handle failures. *)

val drain : t -> unit
(** Force-dispatch everything still queued (end-of-run writebacks).
    Completions remain retrievable via {!completion_us} /
    {!take_completion}. *)

val deliver_due : t -> now:int -> (int -> int -> unit) -> unit
(** [deliver_due t ~now f] advances the device to [now]: dispatches
    every causally-safe request whose dispatch instant is <= [now] and
    calls [f id finish_us] for each completion due by [now], oldest
    first, interleaved in causal order. *)

val take_completion : t -> (int * int) option
(** Next completion [(id, finish_us)] in finish order, dispatching as
    needed; the engine blocks until then.  [None] iff the device is
    idle and the queue empty. *)

val queue_depth_series : t -> Obs.Series.t
(** Queue depth sampled at each submission. *)

val pending : t -> int
(** Requests submitted but not yet dispatched. *)

type stats = {
  served : int;
  read_served : int;
  mean_read_latency_us : float;  (** submission -> completion, reads *)
  mean_queue_depth : float;
  max_queue_depth : int;
  busy_us : int;  (** total channel busy time *)
  injected : int;  (** read-attempt errors injected *)
  write_injected : int;  (** write-attempt errors injected *)
  permanent : int;  (** injected errors marked permanent *)
  retries : int;
  degraded : int;  (** requests served by the degraded worst-case pass *)
  failed : int;  (** requests that terminally failed ({!failure}) *)
  write_rolls_skipped : int;
      (** write attempts never at risk ([write_error_prob = 0]) *)
  pending : int;
}

val stats : t -> stats
