type config = { seed : int; read_error_prob : float; max_retries : int }

let config ?(seed = 0x10ca1) ?(max_retries = 2) ~read_error_prob () =
  assert (read_error_prob >= 0. && read_error_prob <= 1. && max_retries >= 0);
  { seed; read_error_prob; max_retries }

type t = {
  cfg : config;
  rng : Sim.Rng.t;
  mutable injected : int;
  mutable retried : int;
  mutable degraded : int;
}

let create cfg = { cfg; rng = Sim.Rng.create cfg.seed; injected = 0; retried = 0; degraded = 0 }

let max_retries t = t.cfg.max_retries

(* One Bernoulli roll per service attempt.  Reads only: a writeback that
   fails would need shadow-copy semantics the engines don't model, and
   the paper's concern is fetch latency. *)
let attempt_fails t ~kind =
  Request.is_read kind
  && t.cfg.read_error_prob > 0.
  && Sim.Rng.float t.rng 1.0 < t.cfg.read_error_prob
  && (t.injected <- t.injected + 1;
      true)

let note_retry t = t.retried <- t.retried + 1

let note_degraded t = t.degraded <- t.degraded + 1

let injected t = t.injected

let retried t = t.retried

let degraded t = t.degraded
