type escalation = Degrade | Fail

type config = {
  seed : int;
  read_error_prob : float;
  write_error_prob : float;
  permanent_prob : float;
  max_retries : int;
  on_exhausted : escalation;
}

let config ?(seed = 0x10ca1) ?(max_retries = 2) ?(write_error_prob = 0.)
    ?(permanent_prob = 0.) ?(on_exhausted = Degrade) ~read_error_prob () =
  assert (read_error_prob >= 0. && read_error_prob <= 1.);
  assert (write_error_prob >= 0. && write_error_prob <= 1.);
  assert (permanent_prob >= 0. && permanent_prob <= 1.);
  assert (max_retries >= 0);
  { seed; read_error_prob; write_error_prob; permanent_prob; max_retries;
    on_exhausted }

type roll = Clean | Transient | Permanent

type t = {
  cfg : config;
  rng : Sim.Rng.t;  (* read-error stream — the original, kept undisturbed *)
  write_rng : Sim.Rng.t;
  perm_rng : Sim.Rng.t;
  mutable injected : int;
  mutable write_injected : int;
  mutable permanent : int;
  mutable retried : int;
  mutable degraded : int;
  mutable failed : int;
  mutable write_rolls_skipped : int;
}

(* The write and permanence streams are seeded independently of the read
   stream (and of each other) so that enabling either leaves the read
   error sequence — and with it every pre-existing fault experiment —
   bit-identical. *)
let create cfg =
  {
    cfg;
    rng = Sim.Rng.create cfg.seed;
    write_rng = Sim.Rng.create (cfg.seed lxor 0x77121375);
    perm_rng = Sim.Rng.create (cfg.seed lxor 0x9e3779b9);
    injected = 0;
    write_injected = 0;
    permanent = 0;
    retried = 0;
    degraded = 0;
    failed = 0;
    write_rolls_skipped = 0;
  }

let max_retries t = t.cfg.max_retries

let on_exhausted t = t.cfg.on_exhausted

(* A failed attempt is permanent with probability [permanent_prob],
   decided on a third stream — and only rolled when the knob is on, so
   the default configuration draws nothing from it. *)
let permanence t =
  if t.cfg.permanent_prob > 0. && Sim.Rng.float t.perm_rng 1.0 < t.cfg.permanent_prob
  then begin
    t.permanent <- t.permanent + 1;
    Permanent
  end
  else Transient

let attempt t ~immune ~kind =
  if immune then begin
    if not (Request.is_read kind) then
      t.write_rolls_skipped <- t.write_rolls_skipped + 1;
    Clean
  end
  else if Request.is_read kind then
    if t.cfg.read_error_prob > 0. && Sim.Rng.float t.rng 1.0 < t.cfg.read_error_prob
    then begin
      t.injected <- t.injected + 1;
      permanence t
    end
    else Clean
  else if t.cfg.write_error_prob > 0. then
    if Sim.Rng.float t.write_rng 1.0 < t.cfg.write_error_prob then begin
      t.write_injected <- t.write_injected + 1;
      permanence t
    end
    else Clean
  else begin
    (* Writes are exempt unless write_error_prob is set; the skipped
       roll is counted so fault-rate arithmetic over a trace can see
       that the write side was never at risk. *)
    t.write_rolls_skipped <- t.write_rolls_skipped + 1;
    Clean
  end

let attempt_fails t ~kind = attempt t ~immune:false ~kind <> Clean

let note_retry t = t.retried <- t.retried + 1

let note_degraded t = t.degraded <- t.degraded + 1

let note_failed t = t.failed <- t.failed + 1

let injected t = t.injected

let write_injected t = t.write_injected

let permanent_count t = t.permanent

let retried t = t.retried

let degraded t = t.degraded

let failed t = t.failed

let write_rolls_skipped t = t.write_rolls_skipped
