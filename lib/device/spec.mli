(** Declarative device choice for engine configuration records.

    [legacy] (no geometry) means "keep the engine's original flat
    [fetch_us] arithmetic": {!instantiate} returns [None] and the
    engine takes its pre-device code path, bit-identical to before the
    subsystem existed.  Any other spec instantiates a fresh
    {!Model.t}. *)

type t = {
  geometry : Geometry.t option;
  sched : Sched.t;
  channels : int;
  writeback_batch : int;
  fault : Fault.config option;
}

val legacy : t

val make :
  ?sched:Sched.t ->
  ?channels:int ->
  ?writeback_batch:int ->
  ?fault:Fault.config ->
  Geometry.t ->
  t
(** Defaults: FIFO, 1 channel, no batching, no faults. *)

val instantiate : ?obs:Obs.Sink.t -> t -> Model.t option
(** [None] exactly for {!legacy}-style specs (no geometry). *)

val label : t -> string
