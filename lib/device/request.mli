(** A single backing-store transfer request.

    [kind] is an alias of {!Obs.Event.io} so engines and the event
    stream share one vocabulary: [Demand] is a fault the program is
    blocked on, [Prefetch] an advisory fetch, [Writeback] a modified
    page going out. *)

type kind = Obs.Event.io = Demand | Prefetch | Writeback

type t = {
  id : int;
  kind : kind;
  page : int;
  words : int;
  arrival_us : int;
  immune : bool;
      (** exempt from fault injection — the transport for recovery
          re-fetches (e.g. a mirror read), which must not themselves be
          failed by the chaos machinery *)
}

val kind_name : kind -> string

val rank : kind -> int
(** Priority class: [Demand] = 0 (most urgent) < [Prefetch] = 1 <
    [Writeback] = 2. *)

val is_read : kind -> bool

val make :
  ?immune:bool ->
  id:int -> kind:kind -> page:int -> words:int -> arrival_us:int -> unit -> t
(** [immune] defaults to [false]. *)
