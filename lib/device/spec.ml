type t = {
  geometry : Geometry.t option;
  sched : Sched.t;
  channels : int;
  writeback_batch : int;
  fault : Fault.config option;
}

let legacy =
  { geometry = None; sched = Sched.Fifo; channels = 1; writeback_batch = 1; fault = None }

let make ?(sched = Sched.Fifo) ?(channels = 1) ?(writeback_batch = 1) ?fault geometry =
  assert (channels >= 1 && writeback_batch >= 1);
  { geometry = Some geometry; sched; channels; writeback_batch; fault }

let instantiate ?obs t =
  match t.geometry with
  | None -> None
  | Some geometry ->
    Some
      (Model.create ?obs
         (Model.config ~sched:t.sched ~channels:t.channels
            ~writeback_batch:t.writeback_batch ?fault:t.fault geometry))

let label t =
  match t.geometry with
  | None -> "legacy"
  | Some g -> Printf.sprintf "%s/%s/%dch" (Geometry.label g) (Sched.name t.sched) t.channels
