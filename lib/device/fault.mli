(** Transient read-error injection.

    Each service {e attempt} of a read (demand or prefetch) fails
    independently with probability [read_error_prob], drawn from a
    dedicated deterministic {!Sim.Rng} stream seeded by [seed] — fault
    decisions never perturb workload randomness.  A failed attempt is
    retried (a full re-service at the device's then-current state) up
    to [max_retries] times; if every retry also fails the request is
    served in degraded mode: one final worst-case-cost pass
    ({!Geometry.worst_us}) that always succeeds.  Errors are
    timing-only — the data a request moves is never corrupted. *)

type config = { seed : int; read_error_prob : float; max_retries : int }

val config : ?seed:int -> ?max_retries:int -> read_error_prob:float -> unit -> config
(** Defaults: [seed = 0x10ca1], [max_retries = 2]. *)

type t

val create : config -> t

val max_retries : t -> int

val attempt_fails : t -> kind:Request.kind -> bool
(** Roll for one attempt.  Always [false] for writebacks.  Counts the
    injection when it returns [true]. *)

val note_retry : t -> unit

val note_degraded : t -> unit

val injected : t -> int

val retried : t -> int

val degraded : t -> int
