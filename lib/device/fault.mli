(** Seeded fault injection for device service attempts.

    Each service {e attempt} of a read (demand or prefetch) fails
    independently with probability [read_error_prob]; writebacks fail
    with probability [write_error_prob] (0 by default — the historical
    reads-only behaviour).  Decisions are drawn from dedicated
    deterministic {!Sim.Rng} streams derived from [seed] — fault
    decisions never perturb workload randomness, and the read, write
    and permanence streams never perturb each other, so turning one
    knob leaves the other sequences bit-identical.

    A failed attempt is {!Transient} unless a further roll (probability
    [permanent_prob], only taken once an attempt has failed) marks it
    {!Permanent} — an unrecoverable media error that no retry will fix.
    Transient failures are retried (a full re-service at the device's
    then-current state) up to [max_retries] times; what happens when the
    budget runs out is the [on_exhausted] policy: [Degrade] serves one
    final worst-case-cost pass ({!Geometry.worst_us}) that always
    succeeds, [Fail] gives up and surfaces a typed failure to the
    engine.  Errors are timing- and outcome-only — data a successful
    request moves is never corrupted. *)

type escalation =
  | Degrade  (** exhausted retries fall back to a worst-case pass *)
  | Fail  (** exhausted retries (and permanent errors) fail the request *)

type config = {
  seed : int;
  read_error_prob : float;
  write_error_prob : float;
  permanent_prob : float;
  max_retries : int;
  on_exhausted : escalation;
}

val config :
  ?seed:int ->
  ?max_retries:int ->
  ?write_error_prob:float ->
  ?permanent_prob:float ->
  ?on_exhausted:escalation ->
  read_error_prob:float ->
  unit ->
  config
(** Defaults: [seed = 0x10ca1], [max_retries = 2],
    [write_error_prob = 0.], [permanent_prob = 0.],
    [on_exhausted = Degrade] — exactly the pre-resilience behaviour. *)

type roll = Clean | Transient | Permanent
(** Outcome of one service attempt's fault roll.  [Permanent] means the
    request is beyond retry; under [on_exhausted = Degrade] it is still
    served degraded (the historical contract), under [Fail] it fails
    immediately. *)

type t

val create : config -> t

val max_retries : t -> int

val on_exhausted : t -> escalation

val attempt : t -> immune:bool -> kind:Request.kind -> roll
(** Roll for one attempt.  [immune] requests (recovery re-fetches) are
    never failed and consume no randomness.  Writebacks with
    [write_error_prob = 0] are likewise exempt; each such skipped roll
    is counted in {!write_rolls_skipped}. *)

val attempt_fails : t -> kind:Request.kind -> bool
(** [attempt t ~immune:false ~kind <> Clean] — the legacy boolean view. *)

val note_retry : t -> unit

val note_degraded : t -> unit

val note_failed : t -> unit

val injected : t -> int
(** Read-attempt failures injected. *)

val write_injected : t -> int
(** Write-attempt failures injected. *)

val permanent_count : t -> int
(** Failures marked permanent. *)

val retried : t -> int

val degraded : t -> int

val failed : t -> int
(** Requests that terminally failed (surfaced to the engine). *)

val write_rolls_skipped : t -> int
(** Write attempts that were never at risk: the roll was skipped because
    [write_error_prob = 0] (or the request was immune). *)
