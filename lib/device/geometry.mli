(** Physical timing models for a backing-store device.

    A geometry answers one question: if a channel is free at time [at]
    with its head at cylinder [head], when does servicing a request for
    [page] start, when does it finish, and where does the head end up?
    All times are microseconds on the caller's simulated clock; the
    rotating surface is phase-locked to t = 0, as in {!Memstore.Drum}.

    - [Fixed] charges {!Memstore.Device.transfer_us} with no positional
      state — the flat latency every engine used before this subsystem
      existed.
    - [Drum] is the ATLAS-style sector drum: the page's sector
      ([page mod sectors]) must rotate under the heads, then one sector
      time (plus per-word overhead) transfers it.
    - [Disk] adds a seek ([seek_base_us] + [seek_per_cyl_us] per
      cylinder crossed) before the rotational wait, and moves the
      head. *)

type t =
  | Fixed of { device : Memstore.Device.t }
  | Drum of { sectors : int; rotation_us : int; word_ns : int }
  | Disk of {
      cylinders : int;
      sectors : int;
      rotation_us : int;
      seek_base_us : int;
      seek_per_cyl_us : int;
      word_ns : int;
    }

val fixed : Memstore.Device.t -> t

val fixed_us : int -> t
(** [fixed_us cost] is a flat device charging exactly [cost] per
    access, independent of transfer size. *)

val drum : ?word_ns:int -> sectors:int -> rotation_us:int -> unit -> t
(** [rotation_us] must divide evenly into [sectors] slots. *)

val disk :
  ?word_ns:int ->
  cylinders:int ->
  sectors:int ->
  rotation_us:int ->
  seek_base_us:int ->
  seek_per_cyl_us:int ->
  unit ->
  t

val atlas_drum : t
(** 16 sectors, 16 ms revolution — one sector per millisecond, the
    granularity of the ATLAS drum transfers in the paper. *)

val paper_disk : t
(** A small movable-head disk: 100 cylinders of 8 sectors, 24 ms
    revolution, 10 ms base seek + 0.5 ms per cylinder. *)

val label : t -> string

val of_string : string -> (t, string) result
(** ["fixed"], ["drum"], ["disk"] (case-insensitive) map to
    [fixed Memstore.Device.drum], {!atlas_drum}, {!paper_disk}. *)

val sector_of : t -> page:int -> int

val cylinder_of : t -> page:int -> int

val service : t -> at:int -> head:int -> page:int -> words:int -> int * int * int
(** [service t ~at ~head ~page ~words] is [(start, finish, head')]:
    the instant data motion for [page] begins (after any seek and
    rotational wait from [at]), the completion instant, and the head
    position afterwards.  [start >= at], [finish > start] for any
    non-degenerate geometry. *)

val start_us : t -> at:int -> head:int -> page:int -> words:int -> int
(** Just the [start] component of {!service} — what SATF minimises. *)

val streamed_us : t -> words:int -> int
(** Marginal cost of one more transfer streamed directly behind the
    previous one (no repositioning) — the unit of writeback batching.
    At least 1 us. *)

val worst_us : t -> words:int -> int
(** Upper bound on one service from any state: full seek plus full
    revolution plus transfer.  The degraded-mode fallback charges
    this. *)
