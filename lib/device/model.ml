type config = {
  geometry : Geometry.t;
  sched : Sched.t;
  channels : int;
  writeback_batch : int;
  fault : Fault.config option;
}

let config ?(sched = Sched.Fifo) ?(channels = 1) ?(writeback_batch = 1) ?fault geometry =
  assert (channels >= 1 && writeback_batch >= 1);
  { geometry; sched; channels; writeback_batch; fault }

type channel = { mutable free_at : int; mutable head : int }

type failure = {
  req : int;
  page : int;
  kind : Request.kind;
  attempts : int;
  at_us : int;
}

type t = {
  cfg : config;
  obs : Obs.Sink.t;
  obs_on : bool;
  fault : Fault.t option;
  chans : channel array;
  mutable queue : Request.t list;  (* submitted, not yet dispatched; arrival order *)
  completions : int Sim.Heap.t;  (* finish_us -> req id, undelivered *)
  finish_of : (int, int) Hashtbl.t;  (* req id -> finish_us, undelivered *)
  failures : (int, failure) Hashtbl.t;  (* req id -> terminal failure, unconsumed *)
  depth_series : Obs.Series.t;
  mutable next_id : int;
  mutable last_arrival_us : int;
  mutable served : int;
  mutable read_served : int;
  mutable read_latency_sum : int;
  mutable busy_us : int;
  mutable depth_sum : int;
  mutable depth_samples : int;
  mutable max_depth : int;
}

type stats = {
  served : int;
  read_served : int;
  mean_read_latency_us : float;
  mean_queue_depth : float;
  max_queue_depth : int;
  busy_us : int;
  injected : int;
  write_injected : int;
  permanent : int;
  retries : int;
  degraded : int;
  failed : int;
  write_rolls_skipped : int;
  pending : int;
}

let create ?(obs = Obs.Sink.null) cfg =
  {
    cfg;
    obs;
    obs_on = Obs.Sink.is_active obs;
    fault = Option.map Fault.create cfg.fault;
    chans = Array.init cfg.channels (fun _ -> { free_at = 0; head = 0 });
    queue = [];
    completions = Sim.Heap.create ();
    finish_of = Hashtbl.create 64;
    failures = Hashtbl.create 8;
    depth_series = Obs.Series.create ();
    next_id = 0;
    last_arrival_us = 0;
    served = 0;
    read_served = 0;
    read_latency_sum = 0;
    busy_us = 0;
    depth_sum = 0;
    depth_samples = 0;
    max_depth = 0;
  }

let label t =
  Printf.sprintf "%s/%s/%dch" (Geometry.label t.cfg.geometry) (Sched.name t.cfg.sched)
    t.cfg.channels

let emit t ~t_us kind = Obs.Sink.emit t.obs (Obs.Event.make ~t_us kind)

let note_depth t =
  let depth = List.length t.queue in
  t.depth_sum <- t.depth_sum + depth;
  t.depth_samples <- t.depth_samples + 1;
  if depth > t.max_depth then t.max_depth <- depth;
  Obs.Series.sample t.depth_series ~t_us:t.last_arrival_us (float_of_int depth)

let submit ?(immune = false) t ~now ~kind ~page ~words =
  (* The series needs monotone time; engine clocks are, but clamp so a
     late-stamped submission cannot crash the probe. *)
  let now = max now t.last_arrival_us in
  t.last_arrival_us <- now;
  let id = t.next_id in
  t.next_id <- id + 1;
  let r = Request.make ~immune ~id ~kind ~page ~words ~arrival_us:now () in
  t.queue <- t.queue @ [ r ];
  note_depth t;
  id

let remove_from_queue t (r : Request.t) =
  t.queue <- List.filter (fun (q : Request.t) -> q.id <> r.id) t.queue

let record_completion t (r : Request.t) ~fin =
  Sim.Heap.add t.completions fin r.id;
  Hashtbl.replace t.finish_of r.id fin;
  t.served <- t.served + 1;
  if Request.is_read r.kind then begin
    t.read_served <- t.read_served + 1;
    t.read_latency_sum <- t.read_latency_sum + (fin - r.arrival_us)
  end;
  if t.obs_on then emit t ~t_us:fin (Io_done { req = r.id; page = r.page; io = r.kind })

(* A terminal failure still completes in time (the channel was busy
   until [fin]); it is delivered like a completion, but the caller can
   see via [failure_of] / [result_us] that the data never arrived. *)
let record_failure t (r : Request.t) ~fin ~attempts =
  Sim.Heap.add t.completions fin r.id;
  Hashtbl.replace t.finish_of r.id fin;
  Hashtbl.replace t.failures r.id
    { req = r.id; page = r.page; kind = r.kind; attempts; at_us = fin };
  (match t.fault with Some f -> Fault.note_failed f | None -> ());
  if t.obs_on then
    emit t ~t_us:fin (Io_error { req = r.id; page = r.page; io = r.kind; attempts })

(* One full service of [r] on [chan] starting no earlier than [td]:
   positioning + transfer, plus fault retries and the escalation pass
   when the retry budget is exhausted (degraded-mode success, or a
   terminal failure under [Fault.Fail]).  Returns the finish time and
   the outcome. *)
let serve t chan (r : Request.t) ~td =
  let g = t.cfg.geometry in
  let escalate f ~fin ~attempt =
    match Fault.on_exhausted f with
    | Fault.Degrade ->
      Fault.note_degraded f;
      (fin + Geometry.worst_us g ~words:r.words, `Ok)
    | Fault.Fail -> (fin, `Failed attempt)
  in
  let rec go at attempt =
    let start, fin, head' = Geometry.service g ~at ~head:chan.head ~page:r.page ~words:r.words in
    if attempt = 1 && t.obs_on then
      emit t ~t_us:start (Io_start { req = r.id; page = r.page; io = r.kind });
    chan.head <- head';
    match t.fault with
    | None -> (fin, `Ok)
    | Some f ->
      (match Fault.attempt f ~immune:r.immune ~kind:r.kind with
       | Fault.Clean -> (fin, `Ok)
       | Fault.Transient ->
         if t.obs_on then emit t ~t_us:fin (Io_retry { req = r.id; attempt });
         if attempt <= Fault.max_retries f then begin
           Fault.note_retry f;
           go fin (attempt + 1)
         end
         else escalate f ~fin ~attempt
       | Fault.Permanent ->
         (* beyond retry: no point burning the budget *)
         if t.obs_on then emit t ~t_us:fin (Io_retry { req = r.id; attempt });
         escalate f ~fin ~attempt)
  in
  go td 1

(* Stream further pending writebacks directly behind a completed one, at
   marginal cost, up to the batch budget.  Oldest-first keeps it
   deterministic under every policy. *)
let rec stream_writebacks t chan ~fin ~budget =
  if budget <= 0 then fin
  else
    let next =
      List.fold_left
        (fun acc (r : Request.t) ->
          if r.kind <> Request.Writeback || r.arrival_us > fin then acc
          else
            match acc with
            | Some (best : Request.t) when Sched.older best r -> acc
            | _ -> Some r)
        None t.queue
    in
    match next with
    | None -> fin
    | Some w ->
      remove_from_queue t w;
      let fin' = fin + Geometry.streamed_us t.cfg.geometry ~words:w.words in
      if t.obs_on then emit t ~t_us:fin (Io_start { req = w.id; page = w.page; io = w.kind });
      t.busy_us <- t.busy_us + (fin' - fin);
      record_completion t w ~fin:fin';
      stream_writebacks t chan ~fin:fin' ~budget:(budget - 1)

let dispatch t chan (r : Request.t) =
  Obs.Prof.span "device.dispatch" @@ fun () ->
  remove_from_queue t r;
  let td = max chan.free_at r.arrival_us in
  let fin, outcome = serve t chan r ~td in
  t.busy_us <- t.busy_us + (fin - td);
  (match outcome with
   | `Ok -> record_completion t r ~fin
   | `Failed attempts -> record_failure t r ~fin ~attempts);
  let fin =
    if r.kind = Request.Writeback then
      stream_writebacks t chan ~fin ~budget:(t.cfg.writeback_batch - 1)
    else fin
  in
  chan.free_at <- fin

(* The channel that frees first; ties go to the lowest index. *)
let best_channel t =
  let best = ref t.chans.(0) in
  Array.iter (fun c -> if c.free_at < !best.free_at then best := c) t.chans;
  !best

(* What would be dispatched next, and when.  Only requests that have
   arrived by the dispatch instant compete — SATF must not see the
   future. *)
let next_plan t =
  match t.queue with
  | [] -> None
  | q ->
    let chan = best_channel t in
    let min_arrival =
      List.fold_left (fun m (r : Request.t) -> min m r.arrival_us) max_int q
    in
    let td = max chan.free_at min_arrival in
    let candidates = List.filter (fun (r : Request.t) -> r.arrival_us <= td) q in
    let r =
      match Sched.pick t.cfg.sched ~geometry:t.cfg.geometry ~at:td ~head:chan.head candidates with
      | Some r -> r
      | None -> assert false (* candidates holds the earliest arrival by construction of td *)
    in
    Some (chan, r, td)

let pop_completion t =
  match Sim.Heap.pop t.completions with
  | None -> None
  | Some (fin, id) ->
    Hashtbl.remove t.finish_of id;
    Some (id, fin)

(* ---- synchronous consumption (single-threaded engines) ---- *)

let completion_us t id =
  match Hashtbl.find_opt t.finish_of id with
  | Some fin ->
    Hashtbl.remove t.finish_of id;
    fin
  | None ->
    let rec force () =
      match next_plan t with
      | None ->
        invalid_arg (Printf.sprintf "Device.Model.completion_us: unknown request %d" id)
      | Some (chan, r, _) ->
        dispatch t chan r;
        (match Hashtbl.find_opt t.finish_of id with
         | Some fin ->
           Hashtbl.remove t.finish_of id;
           fin
         | None -> force ())
    in
    force ()

let failure_of t id =
  match Hashtbl.find_opt t.failures id with
  | Some f ->
    Hashtbl.remove t.failures id;
    Some f
  | None -> None

let result_us t id =
  let fin = completion_us t id in
  match failure_of t id with Some f -> Error f | None -> Ok fin

let fetch t ~now ~kind ~page ~words =
  let id = submit t ~now ~kind ~page ~words in
  completion_us t id

let fetch_result ?immune t ~now ~kind ~page ~words =
  let id = submit ?immune t ~now ~kind ~page ~words in
  result_us t id

let drain t =
  let rec go () =
    match next_plan t with
    | None -> ()
    | Some (chan, r, _) ->
      dispatch t chan r;
      go ()
  in
  go ()

(* ---- event-loop consumption (Core.Multiprog) ---- *)

let deliver_due t ~now f =
  let progress = ref true in
  while !progress do
    progress := false;
    (match Sim.Heap.min t.completions with
     | Some (fin, _) when fin <= now ->
       (match pop_completion t with
        | Some (id, fin) ->
          f id fin;
          progress := true
        | None -> ())
     | _ -> ());
    (match next_plan t with
     | Some (chan, r, td) when td <= now -> (
       (* causality gate: a completion due before the dispatch instant
          must reach the engine first — it may wake a job whose next
          request would compete for this very dispatch. *)
       match Sim.Heap.min t.completions with
       | Some (fin, _) when fin <= td -> ()
       | _ ->
         dispatch t chan r;
         progress := true)
     | _ -> ())
  done

let rec take_completion t =
  match (Sim.Heap.min t.completions, next_plan t) with
  | None, None -> None
  | Some _, None -> pop_completion t
  | None, Some (chan, r, _) ->
    dispatch t chan r;
    take_completion t
  | Some (fin, _), Some (chan, r, td) ->
    if td < fin then begin
      dispatch t chan r;
      take_completion t
    end
    else pop_completion t

(* ---- reporting ---- *)

let queue_depth_series t = t.depth_series

let pending t = List.length t.queue

let stats (t : t) : stats =
  {
    served = t.served;
    read_served = t.read_served;
    mean_read_latency_us =
      (if t.read_served = 0 then 0.
       else float_of_int t.read_latency_sum /. float_of_int t.read_served);
    mean_queue_depth =
      (if t.depth_samples = 0 then 0.
       else float_of_int t.depth_sum /. float_of_int t.depth_samples);
    max_queue_depth = t.max_depth;
    busy_us = t.busy_us;
    injected = (match t.fault with None -> 0 | Some f -> Fault.injected f);
    write_injected = (match t.fault with None -> 0 | Some f -> Fault.write_injected f);
    permanent = (match t.fault with None -> 0 | Some f -> Fault.permanent_count f);
    retries = (match t.fault with None -> 0 | Some f -> Fault.retried f);
    degraded = (match t.fault with None -> 0 | Some f -> Fault.degraded f);
    failed = (match t.fault with None -> 0 | Some f -> Fault.failed f);
    write_rolls_skipped =
      (match t.fault with None -> 0 | Some f -> Fault.write_rolls_skipped f);
    pending = List.length t.queue;
  }
