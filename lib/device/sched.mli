(** Request scheduling policies for a device channel.

    - [Fifo]: strict arrival order, the null policy.
    - [Satf]: shortest-access-time-first — of the requests waiting when
      a channel frees up, serve the one whose service can {e start}
      soonest given the current rotational phase and head position.
      This is the ATLAS drum's sector queueing.
    - [Priority]: demand faults before prefetches before writebacks
      ({!Request.rank}), FIFO within a class — programs blocked on a
      fault never queue behind advisory traffic. *)

type t = Fifo | Satf | Priority

val name : t -> string

val of_string : string -> (t, string) result

val all : t list

val older : Request.t -> Request.t -> bool
(** Strict FIFO order: [(arrival_us, id)] lexicographic. *)

val pick :
  t -> geometry:Geometry.t -> at:int -> head:int -> Request.t list -> Request.t option
(** [pick t ~geometry ~at ~head candidates] chooses which waiting
    request a channel free at [at] (head at [head]) serves next.
    Ties break FIFO — by [(arrival_us, id)] — under every policy, so
    scheduling is deterministic.  [None] iff [candidates] is empty. *)
