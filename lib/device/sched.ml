type t = Fifo | Satf | Priority

let name = function Fifo -> "fifo" | Satf -> "satf" | Priority -> "priority"

let of_string s =
  match String.lowercase_ascii s with
  | "fifo" -> Ok Fifo
  | "satf" -> Ok Satf
  | "priority" -> Ok Priority
  | _ -> Error (Printf.sprintf "unknown I/O scheduler %S; valid: fifo, satf, priority" s)

let all = [ Fifo; Satf; Priority ]

(* Stable tie-break: submission order.  ids are issued monotonically, so
   (arrival_us, id) is a total order matching FIFO. *)
let older (a : Request.t) (b : Request.t) =
  a.arrival_us < b.arrival_us || (a.arrival_us = b.arrival_us && a.id < b.id)

let pick t ~geometry ~at ~head candidates =
  match candidates with
  | [] -> None
  | first :: rest ->
    let better a b =
      match t with
      | Fifo -> older a b
      | Satf ->
        let sa = Geometry.start_us geometry ~at ~head ~page:a.Request.page ~words:a.words in
        let sb = Geometry.start_us geometry ~at ~head ~page:b.Request.page ~words:b.words in
        sa < sb || (sa = sb && older a b)
      | Priority ->
        let ra = Request.rank a.Request.kind and rb = Request.rank b.Request.kind in
        ra < rb || (ra = rb && older a b)
    in
    Some (List.fold_left (fun best r -> if better r best then r else best) first rest)
