type t =
  | Fixed of { device : Memstore.Device.t }
  | Drum of { sectors : int; rotation_us : int; word_ns : int }
  | Disk of {
      cylinders : int;
      sectors : int;
      rotation_us : int;
      seek_base_us : int;
      seek_per_cyl_us : int;
      word_ns : int;
    }

let ceil_div a b = (a + b - 1) / b

let fixed device = Fixed { device }

let fixed_us fetch_us =
  assert (fetch_us >= 0);
  Fixed { device = Memstore.Device.custom ~label:"fixed" ~latency_us:fetch_us ~word_ns:0 }

let drum ?(word_ns = 0) ~sectors ~rotation_us () =
  assert (sectors > 0 && rotation_us > 0 && rotation_us mod sectors = 0 && word_ns >= 0);
  Drum { sectors; rotation_us; word_ns }

let disk ?(word_ns = 0) ~cylinders ~sectors ~rotation_us ~seek_base_us ~seek_per_cyl_us () =
  assert (cylinders > 0 && sectors > 0 && rotation_us > 0);
  assert (rotation_us mod sectors = 0 && seek_base_us >= 0 && seek_per_cyl_us >= 0);
  assert (word_ns >= 0);
  Disk { cylinders; sectors; rotation_us; seek_base_us; seek_per_cyl_us; word_ns }

let atlas_drum = drum ~sectors:16 ~rotation_us:16_000 ()

let paper_disk =
  disk ~cylinders:100 ~sectors:8 ~rotation_us:24_000 ~seek_base_us:10_000
    ~seek_per_cyl_us:500 ()

let label = function
  | Fixed { device } -> device.Memstore.Device.label
  | Drum _ -> "drum"
  | Disk _ -> "disk"

let of_string s =
  match String.lowercase_ascii s with
  | "fixed" -> Ok (fixed Memstore.Device.drum)
  | "drum" -> Ok atlas_drum
  | "disk" -> Ok paper_disk
  | _ -> Error (Printf.sprintf "unknown device %S; valid: fixed, drum, disk" s)

let words_us ~word_ns ~words = ceil_div (words * word_ns) 1000

(* Earliest time >= [now] at which [sector] begins passing the heads
   (the drum/disk surface rotates continuously from t = 0). *)
let next_pass ~sectors ~sector_us ~rotation_us ~now ~sector =
  let slot = now / sector_us in
  let phase = slot mod sectors in
  let delta = (sector - phase + sectors) mod sectors in
  let candidate = (slot + delta) * sector_us in
  if candidate >= now then candidate else candidate + rotation_us

let sector_of t ~page =
  match t with
  | Fixed _ -> 0
  | Drum { sectors; _ } | Disk { sectors; _ } -> ((page mod sectors) + sectors) mod sectors

let cylinder_of t ~page =
  match t with
  | Fixed _ | Drum _ -> 0
  | Disk { cylinders; sectors; _ } ->
    (((page / sectors) mod cylinders) + cylinders) mod cylinders

let service t ~at ~head ~page ~words =
  assert (at >= 0 && words >= 0);
  match t with
  | Fixed { device } -> (at, at + Memstore.Device.transfer_us device ~words, head)
  | Drum { sectors; rotation_us; word_ns } ->
    let sector_us = rotation_us / sectors in
    let sector = sector_of t ~page in
    let start = next_pass ~sectors ~sector_us ~rotation_us ~now:at ~sector in
    (start, start + sector_us + words_us ~word_ns ~words, head)
  | Disk { sectors; rotation_us; seek_base_us; seek_per_cyl_us; word_ns; _ } ->
    let sector_us = rotation_us / sectors in
    let cyl = cylinder_of t ~page in
    let seek_us =
      if head = cyl then 0 else seek_base_us + (seek_per_cyl_us * abs (head - cyl))
    in
    let sector = sector_of t ~page in
    let start = next_pass ~sectors ~sector_us ~rotation_us ~now:(at + seek_us) ~sector in
    (start, start + sector_us + words_us ~word_ns ~words, cyl)

let start_us t ~at ~head ~page ~words =
  let start, _, _ = service t ~at ~head ~page ~words in
  start

let streamed_us t ~words =
  match t with
  | Fixed { device } -> max 1 (words_us ~word_ns:device.Memstore.Device.word_ns ~words)
  | Drum { sectors; rotation_us; word_ns } | Disk { sectors; rotation_us; word_ns; _ } ->
    (rotation_us / sectors) + words_us ~word_ns ~words

let worst_us t ~words =
  match t with
  | Fixed { device } -> Memstore.Device.transfer_us device ~words
  | Drum { sectors; rotation_us; word_ns } ->
    rotation_us + (rotation_us / sectors) + words_us ~word_ns ~words
  | Disk { cylinders; sectors; rotation_us; seek_base_us; seek_per_cyl_us; word_ns } ->
    seek_base_us
    + (seek_per_cyl_us * cylinders)
    + rotation_us
    + (rotation_us / sectors)
    + words_us ~word_ns ~words
