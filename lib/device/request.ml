type kind = Obs.Event.io = Demand | Prefetch | Writeback

type t = {
  id : int;
  kind : kind;
  page : int;
  words : int;
  arrival_us : int;
  immune : bool;
}

let kind_name = Obs.Event.io_name

let rank = function Demand -> 0 | Prefetch -> 1 | Writeback -> 2

let is_read = function Demand | Prefetch -> true | Writeback -> false

let make ?(immune = false) ~id ~kind ~page ~words ~arrival_us () =
  assert (id >= 0 && words >= 0 && arrival_us >= 0);
  { id; kind; page; words; arrival_us; immune }
