(* Tests for the timed backing-store subsystem (lib/device): geometry
   timing, scheduling policies, channel overlap, writeback batching,
   fault injection, and the equivalence of the Fixed geometry with the
   legacy flat-latency arithmetic in Paging.Demand. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* 16 sectors, 16 ms revolution, word_ns = 0: one sector per ms. *)
let drum = Device.Geometry.atlas_drum

(* --- Geometry --- *)

let test_fixed_service () =
  let g = Device.Geometry.fixed_us 5_000 in
  let start, fin, head' = Device.Geometry.service g ~at:7 ~head:3 ~page:9 ~words:256 in
  check_int "starts immediately" 7 start;
  check_int "flat cost" 5_007 fin;
  check_int "head untouched" 3 head'

let test_drum_rotation () =
  (* Page 3 lives in sector 3; from t = 0 it arrives under the heads at
     3 ms and takes one sector time to transfer. *)
  let start, fin, _ = Device.Geometry.service drum ~at:0 ~head:0 ~page:3 ~words:0 in
  check_int "waits for its sector" 3_000 start;
  check_int "one sector to transfer" 4_000 fin;
  (* Just missed it: a full revolution until the next pass. *)
  let start, _, _ = Device.Geometry.service drum ~at:3_500 ~head:0 ~page:3 ~words:0 in
  check_int "full revolution on a miss" 19_000 start;
  (* Sector addressing wraps with the page number. *)
  check_int "sector wraps" 3 (Device.Geometry.sector_of drum ~page:19)

let test_disk_seek_moves_head () =
  let disk = Device.Geometry.paper_disk in
  let page = 3 * 8 in
  (* cylinder 3, sector 0 *)
  let start_far, _, head' = Device.Geometry.service disk ~at:0 ~head:0 ~page ~words:0 in
  check_int "head follows the seek" 3 head';
  let start_near, _, _ = Device.Geometry.service disk ~at:0 ~head:3 ~page ~words:0 in
  check_bool "seek delays the start" true (start_near < start_far)

let test_worst_us_bounds_service () =
  let worst = Device.Geometry.worst_us drum ~words:256 in
  for page = 0 to 31 do
    for k = 0 to 5 do
      let at = k * 1_234 in
      let _, fin, _ = Device.Geometry.service drum ~at ~head:0 ~page ~words:256 in
      check_bool "worst_us bounds any single service" true (fin - at <= worst)
    done
  done

let test_geometry_of_string () =
  check_bool "drum parses (any case)" true
    (match Device.Geometry.of_string "DRUM" with Ok _ -> true | Error _ -> false);
  check_bool "unknown device rejected" true
    (match Device.Geometry.of_string "tape" with Error _ -> true | Ok _ -> false);
  check_bool "unknown sched rejected" true
    (match Device.Sched.of_string "elevator" with Error _ -> true | Ok _ -> false)

(* --- Scheduling --- *)

(* Eight requests to scattered sectors, all queued at t = 0, drained
   synchronously: the mean latency under each policy. *)
let batch_latency ~sched =
  let m = Device.Model.create (Device.Model.config ~sched drum) in
  let ids =
    List.init 8 (fun k ->
        Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:(k * 5 mod 16)
          ~words:0)
  in
  List.iter (fun id -> ignore (Device.Model.completion_us m id)) ids;
  (Device.Model.stats m).Device.Model.mean_read_latency_us

let test_satf_beats_fifo () =
  (* FIFO chases sectors in submission order and loses revolutions;
     SATF sweeps them in rotational order. *)
  check_bool "satf strictly faster at depth > 1" true
    (batch_latency ~sched:Device.Sched.Satf < batch_latency ~sched:Device.Sched.Fifo)

let test_priority_serves_demand_first () =
  let m = Device.Model.create (Device.Model.config ~sched:Device.Sched.Priority drum) in
  let wb =
    List.init 4 (fun k ->
        Device.Model.submit m ~now:0 ~kind:Device.Request.Writeback ~page:(k * 4) ~words:0)
  in
  let d = Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:9 ~words:0 in
  let d_fin = Device.Model.completion_us m d in
  List.iter
    (fun id ->
      check_bool "demand jumps the writeback queue" true
        (d_fin < Device.Model.completion_us m id))
    wb

let test_channels_overlap () =
  let span channels =
    let m =
      Device.Model.create (Device.Model.config ~channels (Device.Geometry.fixed_us 1_000))
    in
    let ids =
      List.init 6 (fun k ->
          Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:k ~words:0)
    in
    List.fold_left (fun acc id -> max acc (Device.Model.completion_us m id)) 0 ids
  in
  check_int "one channel serialises" 6_000 (span 1);
  check_int "two channels halve the span" 3_000 (span 2)

let test_writeback_batching () =
  let busy batch =
    let m = Device.Model.create (Device.Model.config ~writeback_batch:batch drum) in
    let ids =
      List.init 4 (fun k ->
          Device.Model.submit m ~now:0 ~kind:Device.Request.Writeback ~page:(k * 4)
            ~words:256)
    in
    List.iter (fun id -> ignore (Device.Model.completion_us m id)) ids;
    (Device.Model.stats m).Device.Model.busy_us
  in
  check_bool "streamed writebacks cut channel time" true (busy 4 < busy 1)

let test_event_loop_delivery () =
  let m = Device.Model.create (Device.Model.config (Device.Geometry.fixed_us 1_000)) in
  let a = Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:0 ~words:0 in
  let b = Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:1 ~words:0 in
  check_int "both pending" 2 (Device.Model.pending m);
  let got = ref [] in
  Device.Model.deliver_due m ~now:500 (fun id fin -> got := (id, fin) :: !got);
  check_int "nothing due yet" 0 (List.length !got);
  Device.Model.deliver_due m ~now:2_000 (fun id fin -> got := (id, fin) :: !got);
  check_bool "delivered in finish order" true (List.rev !got = [ (a, 1_000); (b, 2_000) ]);
  check_bool "then idle" true (Device.Model.take_completion m = None)

let test_double_completion_rejected () =
  let m = Device.Model.create (Device.Model.config drum) in
  let id = Device.Model.submit m ~now:0 ~kind:Device.Request.Demand ~page:1 ~words:0 in
  ignore (Device.Model.completion_us m id);
  check_bool "consumed completions cannot be re-read" true
    (match Device.Model.completion_us m id with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* --- Equivalence with the legacy flat path --- *)

let page_size = 64
let frames = 4
let pages = 12

let demand_engine ?device () =
  let clock = Sim.Clock.create () in
  let core =
    Memstore.Level.make clock Memstore.Device.core ~name:"core"
      ~words:(frames * page_size)
  in
  let backing =
    Memstore.Level.make clock Memstore.Device.drum ~name:"backing"
      ~words:(pages * page_size)
  in
  Paging.Demand.create ?device
    {
      Paging.Demand.page_size;
      frames;
      pages;
      core;
      backing;
      policy = Paging.Replacement.lru ();
      tlb = None;
      compute_us_per_ref = 5;
    }

let mixed_trace ~refs =
  let rng = Sim.Rng.create 7 in
  Array.init refs (fun _ -> Sim.Rng.int rng (pages * page_size))

(* One write in four: modified evictions exercise the writeback path. *)
let run_trace engine trace =
  Array.iteri
    (fun i a ->
      if i land 3 = 0 then Paging.Demand.write engine a (Int64.of_int (a + 1))
      else ignore (Paging.Demand.read engine a))
    trace

let test_fixed_fifo_matches_legacy () =
  let trace = mixed_trace ~refs:600 in
  let legacy = demand_engine () in
  run_trace legacy trace;
  let timed =
    demand_engine
      ~device:
        (Device.Model.create
           (Device.Model.config (Device.Geometry.fixed Memstore.Device.drum)))
      ()
  in
  run_trace timed trace;
  check_int "same fault count" (Paging.Demand.faults legacy) (Paging.Demand.faults timed);
  check_int "same simulated clock"
    (Sim.Clock.now (Paging.Demand.clock legacy))
    (Sim.Clock.now (Paging.Demand.clock timed))

(* --- Fault injection --- *)

let test_faults_are_timing_only () =
  let trace = mixed_trace ~refs:400 in
  let run fault =
    let model = Device.Model.create (Device.Model.config ?fault drum) in
    let engine = demand_engine ~device:model () in
    run_trace engine trace;
    let sum =
      Array.fold_left (fun acc a -> Int64.add acc (Paging.Demand.read engine a)) 0L trace
    in
    (model, Paging.Demand.faults engine, sum)
  in
  let _, faults0, sum0 = run None in
  let model, faults1, sum1 = run (Some (Device.Fault.config ~read_error_prob:0.3 ())) in
  let st = Device.Model.stats model in
  check_bool "errors were injected" true (st.Device.Model.injected > 0);
  check_bool "and retried" true (st.Device.Model.retries > 0);
  check_int "fault count unchanged" faults0 faults1;
  Alcotest.(check int64) "memory contents unchanged" sum0 sum1

let test_degraded_fallback_is_bounded () =
  let fault = Device.Fault.config ~read_error_prob:1.0 ~max_retries:2 () in
  let m = Device.Model.create (Device.Model.config ~fault drum) in
  let fin = Device.Model.fetch m ~now:0 ~kind:Device.Request.Demand ~page:5 ~words:0 in
  let st = Device.Model.stats m in
  check_int "every attempt failed" 3 st.Device.Model.injected;
  check_int "retries stop at the budget" 2 st.Device.Model.retries;
  check_int "then degraded mode" 1 st.Device.Model.degraded;
  check_bool "which still completes" true (fin > 0)

let test_writes_never_fault () =
  let fault = Device.Fault.config ~read_error_prob:1.0 ~max_retries:0 () in
  let m = Device.Model.create (Device.Model.config ~fault drum) in
  let id = Device.Model.submit m ~now:0 ~kind:Device.Request.Writeback ~page:3 ~words:0 in
  ignore (Device.Model.completion_us m id);
  check_int "write path injects nothing" 0 (Device.Model.stats m).Device.Model.injected

let test_retries_surface_as_events () =
  let retries = ref 0 in
  let sink =
    Obs.Sink.collect (fun e ->
        match e.Obs.Event.kind with Obs.Event.Io_retry _ -> incr retries | _ -> ())
  in
  let fault = Device.Fault.config ~read_error_prob:1.0 ~max_retries:1 () in
  let m = Device.Model.create ~obs:sink (Device.Model.config ~fault drum) in
  ignore (Device.Model.fetch m ~now:0 ~kind:Device.Request.Demand ~page:2 ~words:0);
  check_int "one Io_retry per failed attempt" 2 !retries

(* --- Spec --- *)

let test_spec_legacy_instantiates_to_none () =
  check_bool "legacy means no model" true
    (Option.is_none (Device.Spec.instantiate Device.Spec.legacy));
  check_bool "a geometry means a model" true
    (Option.is_some (Device.Spec.instantiate (Device.Spec.make drum)))

let () =
  Alcotest.run "device"
    [
      ( "geometry",
        [
          Alcotest.test_case "fixed service" `Quick test_fixed_service;
          Alcotest.test_case "drum rotation" `Quick test_drum_rotation;
          Alcotest.test_case "disk seek" `Quick test_disk_seek_moves_head;
          Alcotest.test_case "worst_us bound" `Quick test_worst_us_bounds_service;
          Alcotest.test_case "of_string" `Quick test_geometry_of_string;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "satf beats fifo" `Quick test_satf_beats_fifo;
          Alcotest.test_case "priority" `Quick test_priority_serves_demand_first;
          Alcotest.test_case "channels overlap" `Quick test_channels_overlap;
          Alcotest.test_case "writeback batching" `Quick test_writeback_batching;
          Alcotest.test_case "event-loop delivery" `Quick test_event_loop_delivery;
          Alcotest.test_case "double completion" `Quick test_double_completion_rejected;
        ] );
      ( "engines",
        [
          Alcotest.test_case "fixed/fifo = legacy" `Quick test_fixed_fifo_matches_legacy;
          Alcotest.test_case "spec legacy" `Quick test_spec_legacy_instantiates_to_none;
        ] );
      ( "faults",
        [
          Alcotest.test_case "timing only" `Quick test_faults_are_timing_only;
          Alcotest.test_case "degraded fallback" `Quick test_degraded_fallback_is_bounded;
          Alcotest.test_case "writes never fault" `Quick test_writes_never_fault;
          Alcotest.test_case "Io_retry events" `Quick test_retries_surface_as_events;
        ] );
    ]
