(* Tests for the correctness tooling: the dsas_lint static pass (rules,
   pragma allowlisting, boundary exemption, JSON shape) and the trace
   invariant checker behind `dsas_sim check`. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- linter: one snippet per rule, positive and negative --- *)

let lint ?(file = "lib/fake/module.ml") src = Lint.Engine.lint_source ~file src

let codes ds = List.map (fun (d : Lint.Diagnostic.t) -> Lint.Diagnostic.code_id d.code) ds

let check_codes name expected src =
  Alcotest.(check (list string)) name expected (codes (lint src))

let test_l1_nondeterminism () =
  check_codes "global Random" [ "L1" ] "let x = Random.int 5\n";
  check_codes "self_init" [ "L1" ] "let () = Random.self_init ()\n";
  check_codes "wall clock" [ "L1" ] "let t = Unix.gettimeofday ()\n";
  check_codes "process clock" [ "L1" ] "let t = Sys.time ()\n";
  check_codes "seeded state is fine" []
    "let x st = Random.State.int st 5\n";
  check_codes "own rng is fine" [] "let x rng = Sim.Rng.int rng 5\n"

let test_l2_obj_magic () =
  check_codes "Obj.magic" [ "L2" ] "let y : int = Obj.magic \"3\"\n";
  check_codes "Obj.repr untouched" [] "let y = Obj.repr 3\n"

let test_l3_hash_order () =
  check_codes "iter" [ "L3" ] "let f t = Hashtbl.iter (fun _ _ -> ()) t\n";
  check_codes "fold" [ "L3" ] "let n t = Hashtbl.fold (fun _ _ a -> a + 1) t 0\n";
  check_codes "find_opt is fine" [] "let f t = Hashtbl.find_opt t 3\n"

let test_l4_partial () =
  check_codes "failwith" [ "L4" ] "let f () = failwith \"boom\"\n";
  check_codes "List.hd" [ "L4" ] "let f l = List.hd l\n";
  check_codes "List.tl" [ "L4" ] "let f l = List.tl l\n";
  check_codes "Option.get" [ "L4" ] "let f o = Option.get o\n";
  check_codes "match is fine" []
    "let f l = match l with x :: _ -> x | [] -> 0\n";
  check_codes "invalid_arg is fine" [ ] "let f () = invalid_arg \"no\"\n"

let test_l4_boundary_exempt () =
  let src = "let f () = failwith \"experiment driver may crash\"\n" in
  check_int "library file flagged" 1 (List.length (lint src));
  check_int "experiments exempt" 0
    (List.length (lint ~file:"lib/experiments/x9.ml" src));
  check_int "bin exempt" 0 (List.length (lint ~file:"bin/tool.ml" src));
  check_int "test exempt" 0 (List.length (lint ~file:"test/test_x.ml" src))

let test_l6_ignored_result () =
  check_codes "ignored application" [ "L6" ]
    "let f t = ignore (Hashtbl.find_opt t 3)\n";
  check_codes "qualified ignore" [ "L6" ]
    "let f t = Stdlib.ignore (Hashtbl.find_opt t 3)\n";
  check_codes "typed discard is fine" []
    "let f t = let (_ : int option) = Hashtbl.find_opt t 3 in ()\n";
  check_codes "ignoring a plain value is fine" [] "let f x = ignore x\n"

let test_l6_boundary_exempt () =
  let src = "let f g x = ignore (g x)\n" in
  check_int "library file flagged" 1 (List.length (lint src));
  check_int "experiments exempt" 0
    (List.length (lint ~file:"lib/experiments/x9.ml" src));
  check_int "bin exempt" 0 (List.length (lint ~file:"bin/tool.ml" src))

let test_l5_float_equality () =
  check_codes "literal" [ "L5" ] "let b x = x = 1.0\n";
  check_codes "float expression" [ "L5" ] "let b x y z = x +. y = z\n";
  check_codes "diseq" [ "L5" ] "let b x = x <> 0.5\n";
  check_codes "int equality is fine" [] "let b x = x = 1\n";
  check_codes "ordering is fine" [] "let b x = x > 1.0\n"

(* --- pragmas --- *)

let test_pragma_suppression () =
  check_codes "same line" []
    "let f () = failwith \"x\" (* lint: allow L4 — boundary crash documented *)\n";
  check_codes "line above" []
    "(* lint: allow L4 — boundary crash documented *)\nlet f () = failwith \"x\"\n";
  check_codes "allow-file covers later lines" []
    "(* lint: allow-file L3 — all folds here are order-independent *)\n\
     let n t = Hashtbl.fold (fun _ _ a -> a + 1) t 0\n";
  check_codes "wrong rule does not suppress" [ "pragma"; "L4" ]
    "(* lint: allow L3 — wrong rule *)\nlet f () = failwith \"x\"\n"

let test_pragma_hygiene () =
  check_codes "unused pragma flagged" [ "pragma" ]
    "(* lint: allow L4 — nothing here to suppress *)\nlet x = 1\n";
  check_codes "missing reason flagged" [ "pragma"; "L4" ]
    "let f () = failwith \"x\" (* lint: allow L4 *)\n";
  check_codes "unknown rule flagged" [ "pragma" ]
    "(* lint: allow L9 — no such rule *)\nlet x = 1\n";
  check_codes "unknown keyword flagged" [ "pragma" ]
    "(* lint: permit L4 — wrong verb *)\nlet x = 1\n";
  check_codes "marker in string ignored" []
    "let s = \"lint: allow L4 — not a pragma\"\n"

let test_parse_error_single_diagnostic () =
  match lint "let let = in\n" with
  | [ d ] ->
    Alcotest.(check string) "code" "parse" (Lint.Diagnostic.code_id d.code)
  | ds -> Alcotest.failf "expected one parse diagnostic, got %d" (List.length ds)

let test_rule_ids_roundtrip () =
  List.iter
    (fun r ->
      check_bool "by id" true (Lint.Rule.of_string (Lint.Rule.id r) = Some r);
      check_bool "by slug" true (Lint.Rule.of_string (Lint.Rule.slug r) = Some r))
    Lint.Rule.all;
  check_bool "unknown" true (Lint.Rule.of_string "L7" = None)

let test_diagnostic_json_shape () =
  match lint "let f l = List.hd l\n" with
  | [ d ] ->
    let js = Lint.Diagnostic.to_json d in
    let has needle =
      let nl = String.length needle and jl = String.length js in
      let rec go i = i + nl <= jl && (String.sub js i nl = needle || go (i + 1)) in
      go 0
    in
    check_bool "file field" true (has "\"file\":");
    check_bool "line field" true (has "\"line\":1");
    check_bool "rule field" true (has "\"rule\":\"L4\"");
    check_bool "slug name" true (has "\"name\":\"partial-function\"")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* dune runtest runs us in _build/default/test; a direct `dune exec`
   runs from the project root.  Resolve paths for both. *)
let resolve candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "none of %s exists" (String.concat ", " candidates)

(* The tree itself must be clean: the repo's own sources are the
   linter's largest negative test. *)
let test_lib_tree_clean () =
  let root = resolve [ "../lib"; "lib" ] in
  let files, diagnostics = Lint.Engine.lint_paths [ root ] in
  check_bool "saw many files" true (List.length files > 50);
  List.iter (fun d -> print_endline (Lint.Diagnostic.to_string d)) diagnostics;
  check_int "no violations in lib/" 0 (List.length diagnostics)

(* --- trace checker: synthetic streams, one per invariant class --- *)

let ev t_us kind = Obs.Event.make ~t_us kind

let counts_ids (r : Obs.Check.report) =
  List.map (fun (i, _) -> Obs.Check.invariant_id i) r.Obs.Check.counts

let check_ids name expected events =
  Alcotest.(check (list string)) name expected
    (counts_ids (Obs.Check.check_events events))

let test_check_accepts_clean_stream () =
  let r =
    Obs.Check.check_events
      [
        ev 0 (Obs.Event.Fault { page = 1 });
        ev 0 (Obs.Event.Cold_fault { page = 1 });
        ev 5 (Obs.Event.Fault { page = 2 });
        ev 5 (Obs.Event.Cold_fault { page = 2 });
        ev 9 (Obs.Event.Eviction { page = 1 });
        ev 0 (Obs.Event.Run_start { run = 0; seed = None; config = None });
        ev 3 (Obs.Event.Alloc { addr = 0; size = 8 });
        ev 7 (Obs.Event.Free { addr = 0; size = 8 });
      ]
  in
  check_bool "ok" true (Obs.Check.ok r);
  check_int "events" 8 r.Obs.Check.events;
  check_int "segments" 2 r.Obs.Check.runs

let test_check_clock () =
  check_ids "backwards clock" [ "clock" ]
    [ ev 10 (Obs.Event.Fault { page = 1 }); ev 4 (Obs.Event.Fault { page = 2 }) ]

let test_check_io_pair () =
  let io = Obs.Event.Demand in
  check_ids "done without start" [ "io-pair"; "queue-depth" ]
    [ ev 1 (Obs.Event.Io_done { req = 3; page = 1; io }) ];
  check_ids "dangling start" [ "io-pair" ]
    [ ev 1 (Obs.Event.Io_start { req = 3; page = 1; io }) ];
  check_ids "double start" [ "io-pair" ]
    [
      ev 1 (Obs.Event.Io_start { req = 3; page = 1; io });
      ev 2 (Obs.Event.Io_start { req = 3; page = 1; io });
      ev 3 (Obs.Event.Io_done { req = 3; page = 1; io });
    ];
  check_ids "page mismatch" [ "io-pair" ]
    [
      ev 1 (Obs.Event.Io_start { req = 3; page = 1; io });
      ev 2 (Obs.Event.Io_done { req = 3; page = 2; io });
    ];
  check_ids "retry not in flight" [ "io-pair" ]
    [ ev 1 (Obs.Event.Io_retry { req = 3; attempt = 1 }) ]

let test_check_frames () =
  check_ids "fault of resident page" [ "frames" ]
    [ ev 1 (Obs.Event.Fault { page = 1 }); ev 2 (Obs.Event.Fault { page = 1 }) ];
  check_ids "eviction of absent page" [ "frames" ]
    [ ev 1 (Obs.Event.Eviction { page = 1 }) ];
  check_ids "cold fault never fetched" [ "frames" ]
    [ ev 1 (Obs.Event.Writeback { page = 1 }); ev 1 (Obs.Event.Cold_fault { page = 1 }) ]

let test_check_heap () =
  check_ids "free exceeds alloc" [ "heap" ]
    [
      ev 1 (Obs.Event.Alloc { addr = 0; size = 8 });
      ev 2 (Obs.Event.Free { addr = 0; size = 9 });
    ]

let test_check_vocab () =
  check_ids "paging and allocator kinds mixed" [ "vocab" ]
    [
      ev 1 (Obs.Event.Fault { page = 1 });
      ev 2 (Obs.Event.Alloc { addr = 0; size = 8 });
    ]

let test_check_schema_run_ids () =
  check_ids "run ids must increase" [ "schema" ]
    [
      ev 0 (Obs.Event.Run_start { run = 1; seed = None; config = None });
      ev 0 (Obs.Event.Run_start { run = 1; seed = None; config = None });
    ]

let test_check_segments_reset_state () =
  (* The same page faulting in two different runs is fine; without the
     boundary it would be a frames violation. *)
  check_ids "boundary resets residency" []
    [
      ev 0 (Obs.Event.Run_start { run = 0; seed = None; config = None });
      ev 1 (Obs.Event.Fault { page = 1 });
      ev 0 (Obs.Event.Run_start { run = 1; seed = None; config = None });
      ev 1 (Obs.Event.Fault { page = 1 });
    ]

(* --- the corrupted fixture exercises every invariant class --- *)

let test_corrupt_fixture () =
  let fixture =
    resolve [ "fixtures/corrupt_trace.jsonl"; "test/fixtures/corrupt_trace.jsonl" ]
  in
  match Obs.Check.check_jsonl fixture with
  | Error msg -> Alcotest.failf "fixture unreadable: %s" msg
  | Ok r ->
    check_bool "not ok" false (Obs.Check.ok r);
    let ids = counts_ids r in
    List.iter
      (fun i ->
        let id = Obs.Check.invariant_id i in
        check_bool (id ^ " violated") true (List.mem id ids))
      Obs.Check.all_invariants

(* --- real engines and experiments produce traces the checker accepts --- *)

let collect_events f =
  let acc = ref [] in
  f (Obs.Sink.collect (fun e -> acc := e :: !acc));
  List.rev !acc

let check_experiment name f =
  let events = collect_events f in
  let r = Obs.Check.check_events events in
  check_bool "produced events" true (List.length events > 0);
  if not (Obs.Check.ok r) then begin
    Obs.Check.print r;
    Alcotest.failf "%s trace violates invariants" name
  end

let test_experiment_traces_pass () =
  check_experiment "fig3" (fun obs -> ignore (Experiments.Fig3.measure ~quick:true ~obs ()));
  check_experiment "c7" (fun obs ->
      ignore (Experiments.C7_multiprog.measure ~quick:true ~obs ()));
  check_experiment "x1" (fun obs ->
      ignore (Experiments.X1_compaction.measure ~quick:true ~obs ()));
  check_experiment "x8_devices" (fun obs ->
      ignore (Experiments.X8_devices.measure_spacetime ~quick:true ~obs ()));
  check_experiment "x9_resilience" (fun obs ->
      ignore (Experiments.X9_resilience.measure ~quick:true ~obs ()))

let fault_sim_traces_pass =
  QCheck.Test.make ~name:"fault-sim traces satisfy every invariant" ~count:60
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 12)))
    (fun (frames, refs) ->
      let trace = Array.of_list refs in
      let events =
        collect_events (fun obs ->
            ignore
              (Paging.Fault_sim.run ~obs ~frames ~policy:(Paging.Replacement.lru ())
                 trace))
      in
      Obs.Check.ok (Obs.Check.check_events events))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 nondeterminism" `Quick test_l1_nondeterminism;
          Alcotest.test_case "L2 Obj.magic" `Quick test_l2_obj_magic;
          Alcotest.test_case "L3 hash order" `Quick test_l3_hash_order;
          Alcotest.test_case "L4 partial functions" `Quick test_l4_partial;
          Alcotest.test_case "L4 boundary exemption" `Quick test_l4_boundary_exempt;
          Alcotest.test_case "L5 float equality" `Quick test_l5_float_equality;
          Alcotest.test_case "L6 ignored result" `Quick test_l6_ignored_result;
          Alcotest.test_case "L6 boundary exemption" `Quick test_l6_boundary_exempt;
          Alcotest.test_case "rule ids roundtrip" `Quick test_rule_ids_roundtrip;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "suppression" `Quick test_pragma_suppression;
          Alcotest.test_case "hygiene" `Quick test_pragma_hygiene;
          Alcotest.test_case "parse error" `Quick test_parse_error_single_diagnostic;
          Alcotest.test_case "json shape" `Quick test_diagnostic_json_shape;
          Alcotest.test_case "lib tree clean" `Quick test_lib_tree_clean;
        ] );
      ( "trace-check",
        [
          Alcotest.test_case "clean stream" `Quick test_check_accepts_clean_stream;
          Alcotest.test_case "clock" `Quick test_check_clock;
          Alcotest.test_case "io pairing" `Quick test_check_io_pair;
          Alcotest.test_case "frames" `Quick test_check_frames;
          Alcotest.test_case "heap" `Quick test_check_heap;
          Alcotest.test_case "vocab" `Quick test_check_vocab;
          Alcotest.test_case "run ids" `Quick test_check_schema_run_ids;
          Alcotest.test_case "segment reset" `Quick test_check_segments_reset_state;
          Alcotest.test_case "corrupt fixture" `Quick test_corrupt_fixture;
        ] );
      ( "real-traces",
        [
          Alcotest.test_case "experiments pass" `Quick test_experiment_traces_pass;
          QCheck_alcotest.to_alcotest fault_sim_traces_pass;
        ] );
    ]
