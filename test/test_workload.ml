(* Tests for the workload library: traces, allocation streams, jobs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Trace --- *)

let test_sequential () =
  let t = Workload.Trace.sequential ~length:7 ~extent:3 in
  Alcotest.(check (array int)) "wraps" [| 0; 1; 2; 0; 1; 2; 0 |] t

let test_uniform_bounds () =
  let rng = Sim.Rng.create 1 in
  let t = Workload.Trace.uniform rng ~length:1000 ~extent:17 in
  Array.iter (fun a -> check_bool "in range" true (a >= 0 && a < 17)) t;
  check_bool "uses several addresses" true (Workload.Trace.extent t > 10)

let test_loop () =
  let t = Workload.Trace.loop ~length:10 ~extent:100 ~working_set:4 in
  Alcotest.(check (array int)) "loops" [| 0; 1; 2; 3; 0; 1; 2; 3; 0; 1 |] t

let test_zipf_skewed () =
  let rng = Sim.Rng.create 5 in
  let t = Workload.Trace.zipf rng ~length:10_000 ~extent:100 ~skew:1.2 in
  Array.iter (fun a -> check_bool "in range" true (a >= 0 && a < 100)) t;
  let count0 = Array.fold_left (fun acc a -> if a = 0 then acc + 1 else acc) 0 t in
  let count50 = Array.fold_left (fun acc a -> if a = 50 then acc + 1 else acc) 0 t in
  check_bool "address 0 much hotter than 50" true (count0 > 10 * max 1 count50)

let test_working_set_phases_locality () =
  let rng = Sim.Rng.create 8 in
  let t =
    Workload.Trace.working_set_phases rng ~length:2000 ~extent:1000 ~set_size:10
      ~phase_length:500 ~locality:1.0
  in
  (* With locality 1.0, each 500-reference phase touches at most 10 pages. *)
  let distinct lo hi =
    let seen = Hashtbl.create 16 in
    for i = lo to hi do
      Hashtbl.replace seen t.(i) ()
    done;
    Hashtbl.length seen
  in
  check_bool "phase 1 small" true (distinct 0 499 <= 10);
  check_bool "phase 2 small" true (distinct 500 999 <= 10)

let test_matrix_traversals () =
  let row = Workload.Trace.matrix_row_major ~rows:3 ~cols:4 ~base:100 in
  let col = Workload.Trace.matrix_col_major ~rows:3 ~cols:4 ~base:100 in
  check_int "row first" 100 row.(0);
  check_int "row second is adjacent" 101 row.(1);
  check_int "col first" 100 col.(0);
  check_int "col second jumps a row" 104 col.(1);
  let sorted a = let c = Array.copy a in Array.sort compare c; c in
  Alcotest.(check (array int)) "same footprint" (sorted row) (sorted col)

let test_to_pages () =
  let t = [| 0; 511; 512; 1024; 1535 |] in
  Alcotest.(check (array int)) "page numbers" [| 0; 0; 1; 2; 2 |]
    (Workload.Trace.to_pages ~page_size:512 t)

let test_belady_trace () =
  check_int "length 12" 12 (Array.length Workload.Trace.belady_anomaly_trace)

(* --- Alloc_stream --- *)

let events_are_well_formed events =
  let live = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (function
      | Workload.Alloc_stream.Alloc { id; size } ->
        if size < 1 || Hashtbl.mem live id then ok := false;
        Hashtbl.replace live id ()
      | Workload.Alloc_stream.Free { id } ->
        if not (Hashtbl.mem live id) then ok := false;
        Hashtbl.remove live id)
    events;
  !ok

let test_generate_well_formed () =
  let rng = Sim.Rng.create 21 in
  let events =
    Workload.Alloc_stream.generate rng ~objects:500
      ~size:(Workload.Alloc_stream.Uniform (1, 64)) ~mean_lifetime:20.
  in
  check_bool "well formed" true (events_are_well_formed events);
  let allocs =
    List.length
      (List.filter (function Workload.Alloc_stream.Alloc _ -> true | _ -> false) events)
  in
  let frees = List.length events - allocs in
  check_int "500 allocs" 500 allocs;
  check_int "every object freed" 500 frees

let test_live_stream_reaches_target () =
  let rng = Sim.Rng.create 22 in
  let events =
    Workload.Alloc_stream.live_stream rng ~steps:2000
      ~size:(Workload.Alloc_stream.Exact 8) ~target_live:50
  in
  check_bool "well formed" true (events_are_well_formed events);
  let live =
    List.fold_left
      (fun n -> function
        | Workload.Alloc_stream.Alloc _ -> n + 1
        | Workload.Alloc_stream.Free _ -> n - 1)
      0 events
  in
  check_bool "ends near target" true (live >= 40 && live <= 60)

let test_size_distributions () =
  let rng = Sim.Rng.create 23 in
  check_int "exact" 7 (Workload.Alloc_stream.sample_size rng (Exact 7));
  for _ = 1 to 100 do
    let v = Workload.Alloc_stream.sample_size rng (Uniform (3, 9)) in
    check_bool "uniform bounds" true (v >= 3 && v <= 9);
    let g = Workload.Alloc_stream.sample_size rng (Geometric { mean = 16.; min_size = 2 }) in
    check_bool "geometric min" true (g >= 2);
    let b =
      Workload.Alloc_stream.sample_size rng
        (Bimodal { small = 8; large = 512; large_fraction = 0.1 })
    in
    check_bool "bimodal values" true (b = 8 || b = 512)
  done

let test_peak_live_words () =
  let open Workload.Alloc_stream in
  let events =
    [ Alloc { id = 0; size = 10 }; Alloc { id = 1; size = 20 }; Free { id = 0 };
      Alloc { id = 2; size = 5 } ]
  in
  check_int "peak" 30 (peak_live_words events)

(* --- Job --- *)

let test_job_mix () =
  let rng = Sim.Rng.create 31 in
  let jobs =
    Workload.Job.mix rng ~jobs:3 ~refs_per_job:400 ~pages_per_job:32 ~locality:0.9
      ~compute_us_per_ref:5
  in
  check_int "three jobs" 3 (List.length jobs);
  List.iter
    (fun j ->
      check_int "trace length" 400 (Array.length j.Workload.Job.refs);
      check_bool "touches pages" true (Workload.Job.pages_touched j > 1);
      Array.iter
        (fun p -> check_bool "page in range" true (p >= 0 && p < 32))
        j.Workload.Job.refs)
    jobs

(* --- Trace_io --- *)

let temp_file () = Filename.temp_file "dsas_test" ".trace"

let test_trace_roundtrip () =
  let rng = Sim.Rng.create 41 in
  let trace = Workload.Trace.uniform rng ~length:500 ~extent:1000 in
  let file = temp_file () in
  Workload.Trace_io.save_trace file trace;
  let back = Workload.Trace_io.load_trace file in
  Sys.remove file;
  Alcotest.(check (array int)) "roundtrip" trace back

let test_events_roundtrip () =
  let rng = Sim.Rng.create 43 in
  let events =
    Workload.Alloc_stream.generate rng ~objects:200
      ~size:(Workload.Alloc_stream.Uniform (1, 99)) ~mean_lifetime:15.
  in
  let file = temp_file () in
  Workload.Trace_io.save_events file events;
  let back = Workload.Trace_io.load_events file in
  Sys.remove file;
  check_bool "roundtrip" true (events = back)

let test_load_skips_comments_and_blanks () =
  let file = temp_file () in
  let oc = open_out file in
  output_string oc "# header\n42\n\n  7  \n# tail\n";
  close_out oc;
  let trace = Workload.Trace_io.load_trace file in
  Sys.remove file;
  Alcotest.(check (array int)) "parsed" [| 42; 7 |] trace

(* Traces edited on (or exported from) DOS-style tools arrive with
   CRLF endings and often a blank line or two at the end. *)
let test_load_tolerates_crlf_and_trailing_blanks () =
  let file = temp_file () in
  let oc = open_out_bin file in
  output_string oc "# dos header\r\n42\r\n  7 \r\n\r\n\n";
  close_out oc;
  let trace = Workload.Trace_io.load_trace file in
  Sys.remove file;
  Alcotest.(check (array int)) "parsed" [| 42; 7 |] trace

let test_load_events_tolerates_crlf_and_trailing_blanks () =
  let file = temp_file () in
  let oc = open_out_bin file in
  output_string oc "a 1 10\r\nf 1\r\n\r\n\n";
  close_out oc;
  let events = Workload.Trace_io.load_events file in
  Sys.remove file;
  check_bool "parsed" true
    (events
    = [ Workload.Alloc_stream.Alloc { id = 1; size = 10 }; Workload.Alloc_stream.Free { id = 1 } ])

let test_load_rejects_garbage_with_line_number () =
  let file = temp_file () in
  let oc = open_out file in
  output_string oc "1\n2\nnot-a-number\n";
  close_out oc;
  let result =
    match Workload.Trace_io.load_trace file with
    | _ -> "no error"
    | exception Failure msg -> msg
  in
  Sys.remove file;
  check_bool "names line 3" true
    (String.length result > 0
    && (let rec find i =
          i + 6 <= String.length result
          && (String.sub result i 6 = "line 3" || find (i + 1))
        in
        find 0))

let test_load_events_skips_comments_and_blanks () =
  let file = temp_file () in
  let oc = open_out file in
  output_string oc "# alloc stream\na 1 10\n\n  f 1  \n# tail\n";
  close_out oc;
  let events = Workload.Trace_io.load_events file in
  Sys.remove file;
  check_bool "parsed" true
    (events
    = [ Workload.Alloc_stream.Alloc { id = 1; size = 10 }; Workload.Alloc_stream.Free { id = 1 } ])

let names_line msg n =
  let needle = Printf.sprintf "line %d" n in
  let nl = String.length needle in
  let rec find i =
    i + nl <= String.length msg && (String.sub msg i nl = needle || find (i + 1))
  in
  find 0

let test_load_events_rejects_garbage_with_line_number () =
  let failure_of text =
    let file = temp_file () in
    let oc = open_out file in
    output_string oc text;
    close_out oc;
    let result =
      match Workload.Trace_io.load_events file with
      | _ -> "no error"
      | exception Failure msg -> msg
    in
    Sys.remove file;
    result
  in
  check_bool "unknown verb, line 2" true (names_line (failure_of "a 1 10\nx 2 5\n") 2);
  check_bool "truncated alloc, line 1" true (names_line (failure_of "a 1\n") 1);
  check_bool "non-numeric size, line 3" true
    (names_line (failure_of "a 1 10\nf 1\na 2 big\n") 3)

let events_io_roundtrip_property =
  QCheck.Test.make ~name:"events file roundtrip for arbitrary streams" ~count:50
    QCheck.(
      list
        (map
           (fun (alloc, id, size) ->
             if alloc then Workload.Alloc_stream.Alloc { id; size = 1 + size }
             else Workload.Alloc_stream.Free { id })
           (triple bool (int_bound 10_000) (int_bound 5_000))))
    (fun events ->
      let file = Filename.temp_file "dsas_prop" ".events" in
      Workload.Trace_io.save_events file events;
      let back = Workload.Trace_io.load_events file in
      Sys.remove file;
      back = events)

let trace_io_roundtrip_property =
  QCheck.Test.make ~name:"trace file roundtrip for arbitrary traces" ~count:50
    QCheck.(list (int_bound 1_000_000))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let file = Filename.temp_file "dsas_prop" ".trace" in
      Workload.Trace_io.save_trace file trace;
      let back = Workload.Trace_io.load_trace file in
      Sys.remove file;
      back = trace)

let alloc_stream_property =
  QCheck.Test.make ~name:"generate is well-formed for any params" ~count:50
    QCheck.(triple (int_range 1 200) (int_range 1 100) (int_range 1 50))
    (fun (objects, max_size, lifetime) ->
      let rng = Sim.Rng.create (objects + max_size + lifetime) in
      let events =
        Workload.Alloc_stream.generate rng ~objects
          ~size:(Workload.Alloc_stream.Uniform (1, max_size))
          ~mean_lifetime:(float_of_int lifetime)
      in
      events_are_well_formed events)

let () =
  Alcotest.run "workload"
    [
      ( "trace",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "uniform" `Quick test_uniform_bounds;
          Alcotest.test_case "loop" `Quick test_loop;
          Alcotest.test_case "zipf" `Quick test_zipf_skewed;
          Alcotest.test_case "working set phases" `Quick test_working_set_phases_locality;
          Alcotest.test_case "matrix" `Quick test_matrix_traversals;
          Alcotest.test_case "to_pages" `Quick test_to_pages;
          Alcotest.test_case "belady trace" `Quick test_belady_trace;
        ] );
      ( "alloc_stream",
        [
          Alcotest.test_case "generate" `Quick test_generate_well_formed;
          Alcotest.test_case "live stream" `Quick test_live_stream_reaches_target;
          Alcotest.test_case "size distributions" `Quick test_size_distributions;
          Alcotest.test_case "peak live" `Quick test_peak_live_words;
          QCheck_alcotest.to_alcotest alloc_stream_property;
          QCheck_alcotest.to_alcotest trace_io_roundtrip_property;
        ] );
      ("job", [ Alcotest.test_case "mix" `Quick test_job_mix ]);
      ( "trace_io",
        [
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "events roundtrip" `Quick test_events_roundtrip;
          Alcotest.test_case "comments/blanks" `Quick test_load_skips_comments_and_blanks;
          Alcotest.test_case "crlf/trailing blanks" `Quick
            test_load_tolerates_crlf_and_trailing_blanks;
          Alcotest.test_case "events crlf/trailing blanks" `Quick
            test_load_events_tolerates_crlf_and_trailing_blanks;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage_with_line_number;
          Alcotest.test_case "events comments/blanks" `Quick
            test_load_events_skips_comments_and_blanks;
          Alcotest.test_case "events garbage rejected" `Quick
            test_load_events_rejects_garbage_with_line_number;
          QCheck_alcotest.to_alcotest events_io_roundtrip_property;
        ] );
    ]
