(* Tests for the segmentation library: descriptors/PRT, codewords, the
   Rice inactive-chain allocator, the segment store, two-level mapping. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Descriptor / PRT --- *)

let test_prt_access () =
  let prt = Segmentation.Descriptor.Prt.create () in
  let s = Segmentation.Descriptor.Prt.add prt ~extent:100 in
  let d = Segmentation.Descriptor.Prt.descriptor prt s in
  check_bool "starts absent" true
    (match Segmentation.Descriptor.Prt.address prt ~segment:s ~index:5 with
     | _ -> false
     | exception Segmentation.Descriptor.Segment_absent n -> n = s);
  d.Segmentation.Descriptor.present <- true;
  d.Segmentation.Descriptor.base <- 1000;
  check_int "base + index" 1005 (Segmentation.Descriptor.Prt.address prt ~segment:s ~index:5);
  check_bool "use bit set" true d.Segmentation.Descriptor.used

let test_prt_subscript_check () =
  let prt = Segmentation.Descriptor.Prt.create () in
  let s = Segmentation.Descriptor.Prt.add prt ~extent:10 in
  (Segmentation.Descriptor.Prt.descriptor prt s).Segmentation.Descriptor.present <- true;
  check_bool "subscript trapped" true
    (match Segmentation.Descriptor.Prt.address prt ~segment:s ~index:10 with
     | _ -> false
     | exception Segmentation.Descriptor.Subscript_violation v -> v.extent = 10);
  check_bool "negative trapped" true
    (match Segmentation.Descriptor.Prt.address prt ~segment:s ~index:(-1) with
     | _ -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true)

(* --- Codeword --- *)

let test_codeword_indexing () =
  let regs = Segmentation.Codeword.Registers.create ~count:4 in
  let cw = Segmentation.Codeword.make ~extent:50 ~index_register:2 in
  cw.Segmentation.Codeword.present <- true;
  cw.Segmentation.Codeword.base <- 500;
  check_int "no index" 510
    (Segmentation.Codeword.address regs ~codeword_id:0 cw ~offset:10);
  Segmentation.Codeword.Registers.set regs 2 7;
  check_int "index auto-added" 517
    (Segmentation.Codeword.address regs ~codeword_id:0 cw ~offset:10);
  check_bool "bound check includes index" true
    (match Segmentation.Codeword.address regs ~codeword_id:0 cw ~offset:45 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_codeword_absent () =
  let regs = Segmentation.Codeword.Registers.create ~count:1 in
  let cw = Segmentation.Codeword.make ~extent:10 ~index_register:0 in
  check_bool "absent traps" true
    (match Segmentation.Codeword.address regs ~codeword_id:3 cw ~offset:0 with
     | _ -> false
     | exception Segmentation.Codeword.Segment_absent 3 -> true)

(* --- Rice_chain --- *)

let make_chain ?(words = 256) () =
  let mem = Memstore.Physical.create ~name:"core" ~words in
  (mem, Segmentation.Rice_chain.create mem ~base:0 ~len:words)

let test_rice_sequential_then_chain () =
  let _, c = make_chain ~words:64 () in
  let a = Option.get (Segmentation.Rice_chain.alloc c ~payload:15 ~codeword:1) in
  let b = Option.get (Segmentation.Rice_chain.alloc c ~payload:15 ~codeword:2) in
  check_int "sequential placement" 0 a;
  check_int "second right after" 16 b;
  check_int "frontier" 32 (Segmentation.Rice_chain.frontier c);
  check_int "back reference" 2 (Segmentation.Rice_chain.back_reference c b);
  Segmentation.Rice_chain.validate c;
  Segmentation.Rice_chain.free c a;
  (* Frontier still has room, so sequential placement continues. *)
  let d = Option.get (Segmentation.Rice_chain.alloc c ~payload:31 ~codeword:3) in
  check_int "still sequential" 32 d;
  (* Frontier exhausted; the inactive chain supplies the next block. *)
  let e = Option.get (Segmentation.Rice_chain.alloc c ~payload:15 ~codeword:4) in
  check_int "reused inactive block" a e;
  Segmentation.Rice_chain.validate c

let test_rice_leftover_replaces_block () =
  let _, c = make_chain ~words:64 () in
  let a = Option.get (Segmentation.Rice_chain.alloc c ~payload:40 ~codeword:1) in
  ignore (Option.get (Segmentation.Rice_chain.alloc c ~payload:22 ~codeword:2));
  Segmentation.Rice_chain.free c a;
  (* 41-word inactive block; a 20-word request leaves a 20-word leftover
     that must replace the original in the chain. *)
  let b = Option.get (Segmentation.Rice_chain.alloc c ~payload:20 ~codeword:3) in
  check_int "low end of the hole" a b;
  let chain = Segmentation.Rice_chain.chain_blocks c in
  check_int "one leftover block" 1 (List.length chain);
  let off, size = List.hd chain in
  check_int "leftover offset" (a + 21) off;
  check_int "leftover size" 20 size;
  Segmentation.Rice_chain.validate c

let test_rice_combine_adjacent () =
  let _, c = make_chain ~words:66 () in
  (* Three adjacent 21-word blocks fill the store (frontier 63, 3 words
     slack which is < min block so unusable). *)
  let xs =
    List.init 3 (fun i ->
        Option.get (Segmentation.Rice_chain.alloc c ~payload:20 ~codeword:i))
  in
  check_bool "full" true (Segmentation.Rice_chain.alloc c ~payload:40 ~codeword:9 = None);
  List.iter (Segmentation.Rice_chain.free c) xs;
  (* No single inactive block holds 41 words, but combining does. *)
  let big = Segmentation.Rice_chain.alloc c ~payload:40 ~codeword:9 in
  check_bool "combined blocks satisfy" true (big <> None);
  check_bool "combine counted" true (Segmentation.Rice_chain.combines c >= 1);
  Segmentation.Rice_chain.validate c

let test_rice_double_free () =
  let _, c = make_chain () in
  let a = Option.get (Segmentation.Rice_chain.alloc c ~payload:10 ~codeword:1) in
  Segmentation.Rice_chain.free c a;
  check_bool "double free rejected" true
    (match Segmentation.Rice_chain.free c a with
     | () -> false
     | exception Invalid_argument _ -> true)

let rice_random_ops =
  QCheck.Test.make ~name:"rice chain random ops keep tiling" ~count:80
    QCheck.(list (pair bool (int_range 1 40)))
    (fun ops ->
      let _, c = make_chain ~words:512 () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, n) ->
          if do_alloc || !live = [] then begin
            match Segmentation.Rice_chain.alloc c ~payload:n ~codeword:n with
            | Some off -> live := off :: !live
            | None -> ()
          end
          else begin
            match !live with
            | off :: rest ->
              Segmentation.Rice_chain.free c off;
              live := rest
            | [] -> ()
          end;
          Segmentation.Rice_chain.validate c)
        ops;
      true)

(* --- Segment_store --- *)

let make_store ?(core_words = 512) ?(placement = Freelist.Policy.Best_fit)
    ?(replacement = Segmentation.Segment_store.Cyclic) ?max_segment () =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock Memstore.Device.core ~name:"core" ~words:core_words in
  let backing = Memstore.Level.make clock Memstore.Device.drum ~name:"drum" ~words:16384 in
  Segmentation.Segment_store.create
    { Segmentation.Segment_store.core; backing; placement; replacement; max_segment }

let test_store_fetch_on_first_reference () =
  let t = make_store () in
  let s = Segmentation.Segment_store.define t ~name:"data" ~length:50 () in
  check_bool "absent before touch" false (Segmentation.Segment_store.is_resident t s);
  check_int "no faults yet" 0 (Segmentation.Segment_store.segment_faults t);
  Alcotest.(check int64) "zero filled" 0L (Segmentation.Segment_store.read t s 10);
  check_bool "resident after touch" true (Segmentation.Segment_store.is_resident t s);
  check_int "one fault" 1 (Segmentation.Segment_store.segment_faults t);
  ignore (Segmentation.Segment_store.read t s 20);
  check_int "still one fault" 1 (Segmentation.Segment_store.segment_faults t)

let test_store_data_roundtrip_through_eviction () =
  let t = make_store ~core_words:300 () in
  let a = Segmentation.Segment_store.define t ~length:100 () in
  Segmentation.Segment_store.write t a 42 777L;
  (* Two more 100-word segments overflow the ~300-word core (tag words
     cost a little), forcing [a] out. *)
  let b = Segmentation.Segment_store.define t ~length:100 () in
  let c = Segmentation.Segment_store.define t ~length:100 () in
  ignore (Segmentation.Segment_store.read t b 0);
  ignore (Segmentation.Segment_store.read t c 0);
  check_bool "a evicted" false (Segmentation.Segment_store.is_resident t a);
  check_bool "writeback happened" true (Segmentation.Segment_store.writebacks t >= 1);
  Alcotest.(check int64) "data back from drum" 777L (Segmentation.Segment_store.read t a 42)

let test_store_subscript_violation () =
  let t = make_store () in
  let s = Segmentation.Segment_store.define t ~length:10 () in
  check_bool "trapped" true
    (match Segmentation.Segment_store.read t s 10 with
     | _ -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true)

let test_store_max_segment () =
  let t = make_store ~max_segment:1024 () in
  check_bool "B5000 limit enforced" true
    (match Segmentation.Segment_store.define t ~length:1025 () with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_store_delete () =
  let t = make_store () in
  let s = Segmentation.Segment_store.define t ~length:50 () in
  ignore (Segmentation.Segment_store.read t s 0);
  let live_before = Segmentation.Segment_store.core_live_words t in
  Segmentation.Segment_store.delete t s;
  check_bool "space released" true (Segmentation.Segment_store.core_live_words t < live_before);
  check_bool "dead segment rejected" true
    (match Segmentation.Segment_store.read t s 0 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_store_grow_preserves_content () =
  let t = make_store () in
  let s = Segmentation.Segment_store.define t ~length:20 () in
  Segmentation.Segment_store.write t s 5 123L;
  Segmentation.Segment_store.grow t s ~new_length:60;
  check_int "longer" 60 (Segmentation.Segment_store.length t s);
  Alcotest.(check int64) "content kept" 123L (Segmentation.Segment_store.read t s 5);
  Segmentation.Segment_store.write t s 59 9L;
  Alcotest.(check int64) "new tail usable" 9L (Segmentation.Segment_store.read t s 59)

let test_store_grow_absent_segment () =
  let t = make_store ~core_words:300 () in
  let a = Segmentation.Segment_store.define t ~length:100 () in
  Segmentation.Segment_store.write t a 7 55L;
  let b = Segmentation.Segment_store.define t ~length:100 () in
  let c = Segmentation.Segment_store.define t ~length:100 () in
  ignore (Segmentation.Segment_store.read t b 0);
  ignore (Segmentation.Segment_store.read t c 0);
  check_bool "a absent" false (Segmentation.Segment_store.is_resident t a);
  Segmentation.Segment_store.grow t a ~new_length:150;
  Alcotest.(check int64) "content survives absent grow" 55L (Segmentation.Segment_store.read t a 7)

let test_store_shrink () =
  let t = make_store () in
  let s = Segmentation.Segment_store.define t ~length:50 () in
  Segmentation.Segment_store.write t s 10 3L;
  Segmentation.Segment_store.shrink t s ~new_length:20;
  check_int "shorter" 20 (Segmentation.Segment_store.length t s);
  Alcotest.(check int64) "kept head" 3L (Segmentation.Segment_store.read t s 10);
  check_bool "tail now out of bounds" true
    (match Segmentation.Segment_store.read t s 30 with
     | _ -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true)

let test_store_cyclic_replacement_rotates () =
  let t = make_store ~core_words:250 ~replacement:Segmentation.Segment_store.Cyclic () in
  let segs = List.init 4 (fun _ -> Segmentation.Segment_store.define t ~length:100 ()) in
  (* Stream through all four; only ~2 fit, so the rotor must cycle. *)
  List.iter (fun s -> ignore (Segmentation.Segment_store.read t s 0)) segs;
  List.iter (fun s -> ignore (Segmentation.Segment_store.read t s 0)) segs;
  check_bool "evictions happened" true (Segmentation.Segment_store.evictions t >= 4);
  check_int "faults counted" 8 (Segmentation.Segment_store.segment_faults t)

let test_store_rice_iterative_second_chance () =
  let t = make_store ~core_words:250 ~replacement:Segmentation.Segment_store.Rice_iterative () in
  let a = Segmentation.Segment_store.define t ~length:100 () in
  let b = Segmentation.Segment_store.define t ~length:100 () in
  let c = Segmentation.Segment_store.define t ~length:100 () in
  ignore (Segmentation.Segment_store.read t a 0);
  ignore (Segmentation.Segment_store.read t b 0);
  (* Both resident and used.  Fetching c clears use bits on the sweep,
     then evicts; the store must still make room. *)
  ignore (Segmentation.Segment_store.read t c 0);
  check_bool "room was made" true (Segmentation.Segment_store.is_resident t c)

let test_store_too_big_for_core () =
  let t = make_store ~core_words:100 () in
  let s = Segmentation.Segment_store.define t ~length:200 () in
  check_bool "impossible fit fails" true
    (match Segmentation.Segment_store.read t s 0 with
     | _ -> false
     | exception Failure _ -> true)

(* --- Two_level --- *)

let make_two_level ?(tlb_capacity = 0) ?(frames = 8) () =
  let tlb =
    if tlb_capacity = 0 then None
    else Some (Paging.Tlb.create ~capacity:tlb_capacity Paging.Tlb.Lru_replacement)
  in
  Segmentation.Two_level.create
    { Segmentation.Two_level.page_size = 64; frames; tlb; policy = Paging.Replacement.lru () }

let test_two_level_counts_map_accesses () =
  let t = make_two_level () in
  let s = Segmentation.Two_level.add_segment t ~length:1000 in
  for i = 0 to 99 do
    Segmentation.Two_level.touch t ~segment:s ~offset:(i mod 128) ~write:false
  done;
  check_int "two map accesses per reference without TLB" 200
    (Segmentation.Two_level.map_accesses t);
  check_int "two pages faulted" 2 (Segmentation.Two_level.faults t)

let test_two_level_tlb_cuts_overhead () =
  let run tlb_capacity =
    let t = make_two_level ~tlb_capacity () in
    let s = Segmentation.Two_level.add_segment t ~length:1000 in
    for i = 0 to 999 do
      Segmentation.Two_level.touch t ~segment:s ~offset:(i mod 128) ~write:false
    done;
    Segmentation.Two_level.map_accesses t
  in
  let without = run 0 and with_tlb = run 8 in
  check_bool "associative memory removes nearly all map accesses" true
    (with_tlb * 10 < without)

let test_two_level_segments_isolated () =
  let t = make_two_level ~frames:4 () in
  let a = Segmentation.Two_level.add_segment t ~length:100 in
  let b = Segmentation.Two_level.add_segment t ~length:100 in
  Segmentation.Two_level.touch t ~segment:a ~offset:0 ~write:false;
  Segmentation.Two_level.touch t ~segment:b ~offset:0 ~write:false;
  (* Same offset in different segments = different pages. *)
  check_int "two distinct pages" 2 (Segmentation.Two_level.resident_pages t);
  check_bool "bounds per segment" true
    (match Segmentation.Two_level.touch t ~segment:a ~offset:100 ~write:false with
     | () -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true)

let test_two_level_dynamic_growth () =
  let t = make_two_level () in
  let s = Segmentation.Two_level.add_segment t ~length:10 in
  check_bool "beyond extent trapped" true
    (match Segmentation.Two_level.touch t ~segment:s ~offset:50 ~write:false with
     | () -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true);
  Segmentation.Two_level.grow_segment t ~segment:s ~new_length:100;
  Segmentation.Two_level.touch t ~segment:s ~offset:50 ~write:false;
  check_int "grown segment usable" 100 (Segmentation.Two_level.segment_length t s)

let test_two_level_effective_access () =
  let t = make_two_level () in
  let s = Segmentation.Two_level.add_segment t ~length:100 in
  Segmentation.Two_level.touch t ~segment:s ~offset:0 ~write:false;
  (* 1 data access + 2 map accesses, 2 us each: 6 us per reference. *)
  Alcotest.(check (float 1e-9)) "3x word cost" 6.
    (Segmentation.Two_level.effective_access_us t ~word_us:2)

(* Property: under arbitrary define/read/write/grow/delete sequences
   with eviction pressure, every read agrees with a reference model. *)
let segment_store_model_property =
  QCheck.Test.make ~name:"segment store agrees with a model under churn" ~count:30
    QCheck.(list_of_size Gen.(int_range 20 120)
              (pair (int_bound 5) (pair (int_bound 9) (int_bound 200))))
    (fun ops ->
      (* Small core so eviction/refetch happens constantly. *)
      let store = make_store ~core_words:300 () in
      (* Model: per segment, an int64 array mirroring its contents. *)
      let segments = ref [] in  (* (id, contents array ref) *)
      let nth k = List.nth !segments (k mod List.length !segments) in
      let ok = ref true in
      List.iteri
        (fun i (op, (k, magnitude)) ->
          let fresh = Int64.of_int ((i * 104729) + 7) in
          match op with
          | 0 ->
            (* define a new segment, 1..100 words *)
            let length = 1 + (magnitude mod 100) in
            let id = Segmentation.Segment_store.define store ~length () in
            segments := (id, ref (Array.make length 0L)) :: !segments
          | 1 | 2 when !segments <> [] ->
            (* write somewhere in an existing segment *)
            let id, contents = nth k in
            let idx = magnitude mod Array.length !contents in
            Segmentation.Segment_store.write store id idx fresh;
            !contents.(idx) <- fresh
          | 3 | 4 when !segments <> [] ->
            (* read and compare against the model *)
            let id, contents = nth k in
            let idx = magnitude mod Array.length !contents in
            if Segmentation.Segment_store.read store id idx <> !contents.(idx) then
              ok := false
          | 5 when !segments <> [] && List.length !segments > 1 ->
            (* grow: contents preserved, tail zero *)
            let id, contents = nth k in
            let old = Array.length !contents in
            if old < 120 then begin
              let grown = old + 1 + (magnitude mod 30) in
              Segmentation.Segment_store.grow store id ~new_length:grown;
              let bigger = Array.make grown 0L in
              Array.blit !contents 0 bigger 0 old;
              contents := bigger
            end
          | _ -> ())
        ops;
      (* Final sweep: every cell of every segment must match. *)
      List.iter
        (fun (id, contents) ->
          Array.iteri
            (fun idx v ->
              if Segmentation.Segment_store.read store id idx <> v then ok := false)
            !contents)
        !segments;
      !ok)

(* --- Sharing --- *)

let test_sharing_rights_enforced () =
  let store = make_store () in
  let sharing = Segmentation.Sharing.create store in
  let editor = Segmentation.Sharing.add_program sharing ~name:"editor" in
  let compiler = Segmentation.Sharing.add_program sharing ~name:"compiler" in
  let library = Segmentation.Segment_store.define store ~name:"shared-lib" ~length:100 () in
  Segmentation.Sharing.grant sharing editor ~segment:library
    ~rights:[ Segmentation.Sharing.Read; Segmentation.Sharing.Execute ];
  Segmentation.Sharing.grant sharing compiler ~segment:library
    ~rights:[ Segmentation.Sharing.Read; Segmentation.Sharing.Write ];
  (* Both sharers reach the same copy. *)
  Segmentation.Sharing.write sharing compiler library 5 99L;
  Alcotest.(check int64) "editor sees compiler write" 99L
    (Segmentation.Sharing.read sharing editor library 5);
  check_int "one segment fault despite two sharers" 1
    (Segmentation.Segment_store.segment_faults store);
  (* The editor lacks Write. *)
  check_bool "write without right trapped" true
    (match Segmentation.Sharing.write sharing editor library 0 1L with
     | () -> false
     | exception Segmentation.Sharing.Protection_violation v ->
       v.program = "editor" && v.needed = Segmentation.Sharing.Write);
  (* The compiler lacks Execute. *)
  check_bool "execute without right trapped" true
    (match Segmentation.Sharing.fetch_for_execute sharing compiler library with
     | () -> false
     | exception Segmentation.Sharing.Protection_violation _ -> true);
  Alcotest.(check (list string)) "sharers listed" [ "compiler"; "editor" ]
    (List.sort compare (Segmentation.Sharing.sharers sharing ~segment:library))

let test_sharing_not_granted_and_revoke () =
  let store = make_store () in
  let sharing = Segmentation.Sharing.create store in
  let p = Segmentation.Sharing.add_program sharing ~name:"p" in
  let s = Segmentation.Segment_store.define store ~length:10 () in
  check_bool "ungranted access trapped" true
    (match Segmentation.Sharing.read sharing p s 0 with
     | _ -> false
     | exception Segmentation.Sharing.Not_granted _ -> true);
  Segmentation.Sharing.grant sharing p ~segment:s ~rights:[ Segmentation.Sharing.Read ];
  ignore (Segmentation.Sharing.read sharing p s 0);
  Alcotest.(check (list bool)) "rights readable" [ true ]
    (List.map (fun r -> r = Segmentation.Sharing.Read)
       (Segmentation.Sharing.rights sharing p ~segment:s));
  Segmentation.Sharing.revoke sharing p ~segment:s;
  check_bool "revoked access trapped" true
    (match Segmentation.Sharing.read sharing p s 0 with
     | _ -> false
     | exception Segmentation.Sharing.Not_granted _ -> true)

let test_store_space_time_accounting () =
  let t = make_store ~core_words:300 () in
  let a = Segmentation.Segment_store.define t ~length:100 () in
  let b = Segmentation.Segment_store.define t ~length:100 () in
  let c = Segmentation.Segment_store.define t ~length:100 () in
  List.iter
    (fun s ->
      for i = 0 to 20 do
        ignore (Segmentation.Segment_store.read t s i)
      done)
    [ a; b; c; a; b; c ];
  let st = Segmentation.Segment_store.space_time t in
  check_bool "active accrued" true (Metrics.Space_time.active st > 0.);
  check_bool "waiting accrued (drum fetches)" true (Metrics.Space_time.waiting st > 0.);
  (* Drum fetches of 100 words dwarf 2us core reads. *)
  check_bool "fetch-dominated" true (Metrics.Space_time.waiting_fraction st > 0.5);
  check_bool "timeline recorded" true
    (Metrics.Timeline.segments (Segmentation.Segment_store.timeline t) > 0)

(* --- Dual_pager --- *)

let make_dual ?(small_frames = 8) ?(large_frames = 2) () =
  Segmentation.Dual_pager.create
    { Segmentation.Dual_pager.small_page = 64; large_page = 1024; small_frames; large_frames }

let test_dual_pager_classes () =
  let d = make_dual () in
  (* 2500-word segment: body = 2 large pages, tail = 452 words of small
     pages. *)
  let s = Segmentation.Dual_pager.add_segment d ~length:2500 in
  Segmentation.Dual_pager.touch d ~segment:s ~offset:0 ~write:false;
  Segmentation.Dual_pager.touch d ~segment:s ~offset:1500 ~write:false;
  check_int "two large faults" 2 (Segmentation.Dual_pager.large_faults d);
  check_int "no small faults yet" 0 (Segmentation.Dual_pager.small_faults d);
  Segmentation.Dual_pager.touch d ~segment:s ~offset:2048 ~write:false;
  Segmentation.Dual_pager.touch d ~segment:s ~offset:2400 ~write:false;
  check_int "tail goes to small pages" 2 (Segmentation.Dual_pager.small_faults d);
  check_int "resident words" ((2 * 1024) + (2 * 64)) (Segmentation.Dual_pager.resident_words d);
  (* The last tail page covers words 2432..2495 of which all lie inside
     the 2500-word extent: everything resident is useful here. *)
  check_int "useful words" ((2 * 1024) + (2 * 64))
    (Segmentation.Dual_pager.resident_useful_words d)

let test_dual_pager_tail_waste_visible () =
  let d = make_dual () in
  (* A 10-word segment holds one small page, 54 words of it waste. *)
  let s = Segmentation.Dual_pager.add_segment d ~length:10 in
  Segmentation.Dual_pager.touch d ~segment:s ~offset:5 ~write:false;
  check_int "one small page held" 64 (Segmentation.Dual_pager.resident_words d);
  check_int "only the extent useful" 10 (Segmentation.Dual_pager.resident_useful_words d)

let test_dual_pager_pools_replace_independently () =
  let d = make_dual ~small_frames:2 ~large_frames:1 () in
  let s = Segmentation.Dual_pager.add_segment d ~length:4096 in
  (* Two large pages through one large frame: each touch faults. *)
  Segmentation.Dual_pager.touch d ~segment:s ~offset:0 ~write:false;
  Segmentation.Dual_pager.touch d ~segment:s ~offset:1024 ~write:false;
  Segmentation.Dual_pager.touch d ~segment:s ~offset:0 ~write:false;
  check_int "large pool thrashes" 3 (Segmentation.Dual_pager.large_faults d);
  check_int "small pool untouched" 0 (Segmentation.Dual_pager.small_faults d)

let test_dual_pager_bounds () =
  let d = make_dual () in
  let s = Segmentation.Dual_pager.add_segment d ~length:100 in
  check_bool "subscript trapped" true
    (match Segmentation.Dual_pager.touch d ~segment:s ~offset:100 ~write:false with
     | () -> false
     | exception Segmentation.Descriptor.Subscript_violation _ -> true)

let () =
  Alcotest.run "segmentation"
    [
      ( "descriptor",
        [
          Alcotest.test_case "prt access" `Quick test_prt_access;
          Alcotest.test_case "subscript check" `Quick test_prt_subscript_check;
        ] );
      ( "codeword",
        [
          Alcotest.test_case "indexing" `Quick test_codeword_indexing;
          Alcotest.test_case "absent" `Quick test_codeword_absent;
        ] );
      ( "rice_chain",
        [
          Alcotest.test_case "sequential then chain" `Quick test_rice_sequential_then_chain;
          Alcotest.test_case "leftover replaces" `Quick test_rice_leftover_replaces_block;
          Alcotest.test_case "combine adjacent" `Quick test_rice_combine_adjacent;
          Alcotest.test_case "double free" `Quick test_rice_double_free;
          QCheck_alcotest.to_alcotest rice_random_ops;
        ] );
      ( "segment_store",
        [
          Alcotest.test_case "fetch on first reference" `Quick test_store_fetch_on_first_reference;
          Alcotest.test_case "roundtrip via eviction" `Quick test_store_data_roundtrip_through_eviction;
          Alcotest.test_case "subscript violation" `Quick test_store_subscript_violation;
          Alcotest.test_case "max segment" `Quick test_store_max_segment;
          Alcotest.test_case "delete" `Quick test_store_delete;
          Alcotest.test_case "grow preserves content" `Quick test_store_grow_preserves_content;
          Alcotest.test_case "grow absent segment" `Quick test_store_grow_absent_segment;
          Alcotest.test_case "shrink" `Quick test_store_shrink;
          Alcotest.test_case "cyclic replacement" `Quick test_store_cyclic_replacement_rotates;
          Alcotest.test_case "rice iterative" `Quick test_store_rice_iterative_second_chance;
          Alcotest.test_case "too big for core" `Quick test_store_too_big_for_core;
          Alcotest.test_case "space-time accounting" `Quick test_store_space_time_accounting;
        ] );
      ( "model",
        [ QCheck_alcotest.to_alcotest segment_store_model_property ] );
      ( "sharing",
        [
          Alcotest.test_case "rights enforced" `Quick test_sharing_rights_enforced;
          Alcotest.test_case "grant/revoke" `Quick test_sharing_not_granted_and_revoke;
        ] );
      ( "dual_pager",
        [
          Alcotest.test_case "classes" `Quick test_dual_pager_classes;
          Alcotest.test_case "tail waste" `Quick test_dual_pager_tail_waste_visible;
          Alcotest.test_case "independent pools" `Quick test_dual_pager_pools_replace_independently;
          Alcotest.test_case "bounds" `Quick test_dual_pager_bounds;
        ] );
      ( "two_level",
        [
          Alcotest.test_case "map access counting" `Quick test_two_level_counts_map_accesses;
          Alcotest.test_case "tlb cuts overhead" `Quick test_two_level_tlb_cuts_overhead;
          Alcotest.test_case "segments isolated" `Quick test_two_level_segments_isolated;
          Alcotest.test_case "dynamic growth" `Quick test_two_level_dynamic_growth;
          Alcotest.test_case "effective access" `Quick test_two_level_effective_access;
        ] );
    ]
