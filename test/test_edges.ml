(* Edge cases and failure injection across libraries: the smallest
   configurations, degenerate inputs, and deliberately corrupted state
   that the validators must catch. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- smallest configurations --- *)

let test_allocator_minimum_region () =
  let mem = Memstore.Physical.create ~name:"m" ~words:4 in
  let a = Freelist.Allocator.create mem ~base:0 ~len:4 ~policy:Freelist.Policy.First_fit in
  (* The whole region is one minimum block: a 1-word request takes it
     all (payload 2). *)
  let addr = Option.get (Freelist.Allocator.alloc a 1) in
  check_int "payload spans block" 2 (Freelist.Allocator.payload_size a addr);
  check_bool "region exhausted" true (Freelist.Allocator.alloc a 1 = None);
  Freelist.Allocator.free a addr;
  Freelist.Allocator.validate a

let test_buddy_one_word () =
  let b = Freelist.Buddy.create ~words:1 in
  let off = Option.get (Freelist.Buddy.alloc b 1) in
  check_int "only offset" 0 off;
  check_bool "full" true (Freelist.Buddy.alloc b 1 = None);
  Freelist.Buddy.free b off;
  check_int "whole store free" 1 (Freelist.Buddy.largest_free b)

let test_buddy_oversized_request () =
  let b = Freelist.Buddy.create ~words:64 in
  check_bool "too big refused" true (Freelist.Buddy.alloc b 65 = None);
  check_int "granted_size of 1" 1 (Freelist.Buddy.granted_size 1)

let test_single_frame_paging () =
  let trace = Workload.Trace.sequential ~length:10 ~extent:5 in
  let r = Paging.Fault_sim.run ~frames:1 ~policy:(Paging.Replacement.lru ()) trace in
  check_int "every distinct-page switch faults" 10 r.Paging.Fault_sim.faults

let test_every_policy_single_candidate () =
  (* With one frame, choose_victim always sees exactly one candidate;
     no policy may crash or pick anything else. *)
  let rng = Sim.Rng.create 3 in
  let trace = Workload.Trace.uniform (Sim.Rng.split rng) ~length:200 ~extent:9 in
  List.iter
    (fun policy ->
      let r = Paging.Fault_sim.run ~frames:1 ~policy trace in
      check_bool (policy.Paging.Replacement.name ^ " ran") true
        (r.Paging.Fault_sim.faults <= 200))
    (Paging.Replacement.all_practical rng @ [ Paging.Replacement.opt trace ])

let test_tlb_capacity_one () =
  let tlb = Paging.Tlb.create ~capacity:1 Paging.Tlb.Lru_replacement in
  Paging.Tlb.insert tlb ~key:1 ~value:10;
  Paging.Tlb.insert tlb ~key:2 ~value:20;
  check_bool "only the newest survives" true
    (Paging.Tlb.lookup tlb 2 = Some 20 && Paging.Tlb.lookup tlb 1 = None)

(* --- degenerate workloads --- *)

let test_empty_trace_everywhere () =
  let empty = [||] in
  let r = Paging.Fault_sim.run ~frames:4 ~policy:(Paging.Replacement.fifo ()) empty in
  check_int "no refs" 0 r.Paging.Fault_sim.refs;
  Alcotest.(check (float 1e-9)) "rate 0" 0. (Paging.Fault_sim.fault_rate r);
  check_int "extent 0" 0 (Workload.Trace.extent empty);
  check_int "peak of empty stream" 0 (Workload.Alloc_stream.peak_live_words [])

let test_single_page_program () =
  let clock = Sim.Clock.create () in
  let core = Memstore.Level.make clock Memstore.Device.core ~name:"c" ~words:64 in
  let backing = Memstore.Level.make clock Memstore.Device.drum ~name:"d" ~words:64 in
  let engine =
    Paging.Demand.create
      {
        Paging.Demand.page_size = 64;
        frames = 1;
        pages = 1;
        core;
        backing;
        policy = Paging.Replacement.lru ();
        tlb = None;
        compute_us_per_ref = 1;
      }
  in
  Paging.Demand.run engine (Workload.Trace.sequential ~length:100 ~extent:64);
  check_int "one cold fault only" 1 (Paging.Demand.faults engine)

(* --- failure injection: corrupting simulated memory must be caught --- *)

let test_validate_catches_corrupted_header () =
  let mem = Memstore.Physical.create ~name:"m" ~words:256 in
  let a = Freelist.Allocator.create mem ~base:0 ~len:256 ~policy:Freelist.Policy.First_fit in
  let addr = Option.get (Freelist.Allocator.alloc a 10) in
  ignore (Freelist.Allocator.alloc a 10);
  (* Smash the first block's header (it sits just before the payload). *)
  Memstore.Physical.write mem (addr - 1) 12345L;
  check_bool "validate detects it" true
    (match Freelist.Allocator.validate a with
     | () -> false
     | exception Failure _ -> true)

let test_validate_catches_corrupted_free_link () =
  let mem = Memstore.Physical.create ~name:"m" ~words:256 in
  let a = Freelist.Allocator.create mem ~base:0 ~len:256 ~policy:Freelist.Policy.First_fit in
  let x = Option.get (Freelist.Allocator.alloc a 10) in
  let y = Option.get (Freelist.Allocator.alloc a 10) in
  ignore (Freelist.Allocator.alloc a 10);
  Freelist.Allocator.free a x;
  Freelist.Allocator.free a y;  (* two free blocks: x's and the tail *)
  (* Corrupt the first free block's next pointer (word addr..). *)
  Memstore.Physical.write mem x 99999L;
  check_bool "validate detects bad link" true
    (match Freelist.Allocator.validate a with
     | () -> false
     | exception Failure _ -> true
     | exception Memstore.Physical.Bound_violation _ -> true)

let test_rice_validate_catches_gap () =
  let mem = Memstore.Physical.create ~name:"m" ~words:64 in
  let c = Segmentation.Rice_chain.create mem ~base:0 ~len:64 in
  let a = Segmentation.Rice_chain.alloc c ~payload:10 ~codeword:1 in
  ignore a;
  ignore (Segmentation.Rice_chain.alloc c ~payload:10 ~codeword:2);
  Segmentation.Rice_chain.free c (Option.get a);
  (* Corrupt the freed block's recorded size. *)
  Memstore.Physical.write mem (Option.get a) 3L;
  check_bool "tiling violation caught" true
    (match Segmentation.Rice_chain.validate c with
     | () -> false
     | exception Failure _ -> true)

(* --- name spaces, smallest and largest --- *)

let test_name_space_one_bit () =
  let ns = Namespace.Name_space.Linear { bits = 1 } in
  check_bool "two names" true (Namespace.Name_space.extent ns = Some 2);
  check_bool "name 1 ok" true (Namespace.Name_space.split ns 1 = (0, 1));
  check_bool "name 2 violates" true
    (match Namespace.Name_space.split ns 2 with
     | _ -> false
     | exception Namespace.Name_space.Name_violation _ -> true)

let test_relocation_zero_limit () =
  let r = Swapping.Relocation.create ~base:0 ~limit:0 in
  check_bool "nothing addressable" true
    (match Swapping.Relocation.translate r 0 with
     | _ -> false
     | exception Swapping.Relocation.Limit_violation _ -> true)

(* --- charts with degenerate data --- *)

let test_charts_degenerate () =
  check_bool "single bar" true (String.length (Metrics.Chart.bars [ ("x", 5.) ]) > 0);
  check_bool "all-zero bars" true
    (String.length (Metrics.Chart.bars [ ("x", 0.); ("y", 0.) ]) > 0);
  check_bool "single point series" true
    (String.length
       (Metrics.Chart.series ~x_label:"x" ~y_label:"y" [ ("s", [ (1., 1.) ]) ])
    > 0)

(* --- histogram percentile extremes --- *)

let test_histogram_extremes () =
  let h = Metrics.Histogram.log2 ~max_exponent:4 in
  check_int "empty percentile" 0 (Metrics.Histogram.percentile h 0.5);
  Metrics.Histogram.add h 1_000_000;
  check_int "clamped into last bucket" 16 (Metrics.Histogram.percentile h 1.0)

(* --- machine: smallest program --- *)

let test_machine_halt_only () =
  let clock = Sim.Clock.create () in
  let level = Memstore.Level.make clock Memstore.Device.core ~name:"c" ~words:16 in
  let cpu =
    Machine.Cpu.create (Machine.Addressing.absolute level)
      ~code_at:(fun pc -> { Machine.Addressing.segment = 0; offset = pc })
  in
  Machine.Cpu.load_program cpu [| Machine.Isa.Halt |];
  Machine.Cpu.run cpu;
  check_int "one step" 1 (Machine.Cpu.steps cpu);
  (* Stepping a halted CPU is a no-op. *)
  Machine.Cpu.step cpu;
  check_int "still one step" 1 (Machine.Cpu.steps cpu)

let () =
  Alcotest.run "edges"
    [
      ( "smallest configurations",
        [
          Alcotest.test_case "allocator minimum region" `Quick test_allocator_minimum_region;
          Alcotest.test_case "buddy one word" `Quick test_buddy_one_word;
          Alcotest.test_case "buddy oversized" `Quick test_buddy_oversized_request;
          Alcotest.test_case "single frame paging" `Quick test_single_frame_paging;
          Alcotest.test_case "single candidate policies" `Quick test_every_policy_single_candidate;
          Alcotest.test_case "tlb capacity one" `Quick test_tlb_capacity_one;
        ] );
      ( "degenerate workloads",
        [
          Alcotest.test_case "empty trace" `Quick test_empty_trace_everywhere;
          Alcotest.test_case "single page program" `Quick test_single_page_program;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "corrupted header" `Quick test_validate_catches_corrupted_header;
          Alcotest.test_case "corrupted free link" `Quick test_validate_catches_corrupted_free_link;
          Alcotest.test_case "rice tiling" `Quick test_rice_validate_catches_gap;
        ] );
      ( "limits",
        [
          Alcotest.test_case "one-bit name space" `Quick test_name_space_one_bit;
          Alcotest.test_case "zero limit register" `Quick test_relocation_zero_limit;
          Alcotest.test_case "degenerate charts" `Quick test_charts_degenerate;
          Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
          Alcotest.test_case "halt-only program" `Quick test_machine_halt_only;
        ] );
    ]
